//! Sharded execution: partition rows across N shards, run their plans
//! as stealable morsels on a persistent worker pool, merge partial
//! aggregates.
//!
//! A [`ShardedDatabase`] fronts N independent [`Database`] shards
//! (shared-nothing: each owns the catalogue and session for its row
//! partition) plus one [`Executor`] — a fixed pool of persistent
//! workers, each with its own long-lived session/machine.
//! [`ShardedDatabase::register`] splits a table into N contiguous row
//! chunks — contiguity preserves per-chunk sortedness metadata, so
//! presorted plans still kick in per shard — and a query runs in three
//! phases:
//!
//! 1. **plan** the query on every non-empty shard (each shard's plan
//!    cache and adaptive §V-D choice apply to *its* partition);
//! 2. **execute** each plan's distributive slice as fixed-size
//!    *morsels* (row ranges run via
//!    [`crate::Session::run_partial_range`]) on the pooled workers —
//!    idle workers steal a skewed shard's tail instead of waiting, and
//!    every morsel still runs the algorithm its *shard's* statistics
//!    picked;
//! 3. **merge** the [`vagg_core::PartialAggregate`]s (COUNT/SUM add,
//!    MIN/MAX combine) and finalise the non-distributive tail —
//!    HAVING, ORDER BY, LIMIT — once on the coordinator.
//!
//! Composite `GROUP BY` shards too: fused keys are measured per input,
//! so raw partials would not be comparable across shards — instead the
//! workers re-key every partial through a query-scoped, cooperatively
//! built [`KeyDictionary`] (tuple → dense id), the coordinator merges
//! by dense id, and resolves ids back to globally fused keys once on
//! the merged (small) output. The answer matches a single session's
//! bit for bit, including `HAVING`/`ORDER BY`/`LIMIT` tails.
//!
//! The write path shards too: [`ShardedDatabase::append_rows`] /
//! [`ShardedDatabase::insert_sql`] route each appended batch to the
//! currently *smallest* shard (ties broken by a rotating cursor), so
//! interleaved uneven batches keep the partitions balanced; every
//! shard keeps its own delta store, live statistics, data version and
//! compaction schedule, so concurrent read traffic keeps merging
//! correct partials while rows stream in.
//!
//! Reads can pin an **atomic cross-shard cut**:
//! [`ShardedDatabase::snapshot`] captures one [`Snapshot`] per shard in
//! a single pass (no append can interleave), and
//! [`ShardedDatabase::run_sql_at`] /
//! [`ShardedDatabase::execute_prepared_at`] answer from that cut — a
//! consistent database-wide view, where the bare `run_sql` path could
//! otherwise see shard 0 post-append and shard 3 pre-append. Drift is
//! observable without snapshots too: [`ShardedDatabase::data_versions`]
//! and [`ShardedDatabase::table_stats`] mirror the single-session
//! accessors per shard and merged.

use crate::cancel::CancelToken;
use crate::catalogue::CatOp;
use crate::database::ExplainOutput;
use crate::database::{Database, MutationReceipt, SqlError};
use crate::delta::TableStats;
use crate::engine::{Engine, ExecutionReport, QueryOutput, Row};
use crate::executor::{Executor, ExecutorConfig, ExecutorError, ExecutorStats, Morsel, MorselOutcome};
use crate::filter::Predicate;
use crate::ingest::{CompactionPolicy, RowBatch};
use crate::join::{
    derived_table, plan_join, side_columns, ColumnSet, JoinBuildSink, JoinIndex, JoinMorsel,
    JoinPlan, JoinStrategy, JoinWork,
};
use crate::metrics::{MetricsSnapshot, SlowQuery};
use crate::plan::{PlanError, PlanStep, QueryPlan};
use crate::prepared::PreparedStatement;
use crate::query::{AggregateQuery, Having, OrderBy, OrderKey};
use crate::recovery;
use crate::session::agg_column;
use crate::session::assemble_rows;
use crate::snapshot::{Snapshot, SnapshotStats};
use crate::sql::SqlQuery;
use crate::sql::{parse_statement, parse_template, Statement};
use crate::table::Table;
use crate::trace::{QueryTrace, WorkerRollup};
use crate::wal::{self, WalError, WalRecord, WalWriter};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use vagg_core::{AggResult, PartialAggregate};
use vagg_sim::SimConfig;

/// A row-partitioned database: one coordinator over N shard catalogues
/// and one persistent morsel [`Executor`]. See the [module docs](self).
#[derive(Debug)]
pub struct ShardedDatabase {
    shards: Vec<Database>,
    /// Ingest tie-break cursor: among equally small shards, the next
    /// batch lands on the first one at or after this index.
    next_shard: usize,
    /// The persistent worker pool running every query's morsels.
    executor: Executor,
    /// The machine configuration the workers' sessions run (the
    /// shards' engine configuration).
    sim: SimConfig,
    /// The cross-shard commit log ([`ShardedDatabase::open`] only).
    coordinator: Option<Coordinator>,
}

/// The coordinator's own write-ahead log: nothing but
/// [`WalRecord::Commit`] records, one per multi-shard operation. A
/// shard-log record tagged with a global transaction id is ignored on
/// replay unless this log committed the id — which makes cross-shard
/// writes atomic across a crash (see [`ShardedDatabase::open`]).
#[derive(Debug)]
struct Coordinator {
    log: PathBuf,
    writer: WalWriter,
}

impl Coordinator {
    /// A fresh, unique, nonzero global transaction id. The commit
    /// record's prospective LSN serves: every commit consumes exactly
    /// one LSN, so ids never repeat — even across restarts.
    fn next_gtid(&self) -> u64 {
        self.writer.next_lsn()
    }

    /// Durably commits `gtid` — the single point that makes a
    /// multi-shard operation's records (already flushed on every
    /// touched shard) count during recovery.
    fn commit(&mut self, gtid: u64) -> Result<(), SqlError> {
        self.writer.append(&WalRecord::Commit { txn: gtid });
        self.writer.flush()?;
        Ok(())
    }
}

/// What one sharded append did (see [`ShardedDatabase::append_rows`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedIngestReceipt {
    /// Total rows appended across all shards.
    pub rows: usize,
    /// Rows routed to each shard by the smallest-shard router.
    pub per_shard: Vec<usize>,
    /// Shards whose append tripped their compaction threshold.
    pub compactions: usize,
}

/// What a sharded query produced: the merged rows, a coordinator
/// report, per-shard execution reports and per-worker load accounting.
#[derive(Debug, Clone)]
pub struct ShardedOutput {
    /// The merged result rows, ordered by group key (or as the ORDER BY
    /// clause demands) — identical to a single-session execution for
    /// the distributive aggregates COUNT/SUM/MIN/MAX (and AVG, which
    /// falls out of SUM/COUNT on readback), including composite
    /// `GROUP BY` (merged through the query's [`KeyDictionary`]).
    pub rows: Vec<Row>,
    /// The coordinator's view: `cycles` is the *makespan* (the most
    /// loaded executor worker — the workers run in parallel),
    /// `rows_aggregated` the sum of surviving rows, `cpt` the makespan
    /// divided by the total *input* rows (the field's usual contract),
    /// and `algorithm`/`steps` come from the first shard that
    /// aggregated (shards may adaptively choose different algorithms
    /// for their partitions; see `shard_reports`).
    pub report: ExecutionReport,
    /// Every non-empty shard's distributive execution report: cycles
    /// are the shard's *total work* summed over its morsels wherever
    /// they ran, so `shard_reports` cycles add up to the whole query's
    /// work while `report.cycles` is the parallel makespan.
    pub shard_reports: Vec<ExecutionReport>,
    /// Simulated cycles per executor worker under the deterministic
    /// morsel schedule (least-loaded worker acts next; stolen morsels
    /// are charged to the thief). The makespan is the maximum entry;
    /// the spread shows how well stealing levelled a skewed partition.
    pub worker_loads: Vec<u64>,
    /// Morsels the schedule served on a worker other than their home
    /// worker — zero when stealing is disabled
    /// ([`ExecutorConfig::steal`]).
    pub steals: u64,
    /// The execution trace, present when the statement was an
    /// `EXPLAIN ANALYZE` (boxed: traces carry per-morsel spans and are
    /// much larger than the merged rows).
    pub trace: Option<Box<QueryTrace>>,
}

/// An atomic cross-shard point-in-time cut of a [`ShardedDatabase`]:
/// one [`Snapshot`] per shard, captured with **every shard's registry
/// read lock held at once** — no write through any handle (the
/// coordinator's `&mut self` API or a cloned shard-catalogue handle)
/// can interleave between two shards' cuts. Reads at it
/// ([`ShardedDatabase::run_sql_at`],
/// [`ShardedDatabase::execute_prepared_at`]) see every shard at the
/// same moment: shard 0 can never answer post-append while shard 3
/// answers pre-append.
#[derive(Debug)]
pub struct ShardedSnapshot {
    shards: Vec<Snapshot>,
}

impl ShardedSnapshot {
    /// Shards in the cut.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard snapshots, in shard order.
    pub fn shards(&self) -> &[Snapshot] {
        &self.shards
    }

    /// Each shard's pinned data version of `table`, in shard order
    /// (`None` if any shard lacks the table).
    pub fn data_versions(&self, table: &str) -> Option<Vec<u64>> {
        self.shards.iter().map(|s| s.data_version(table)).collect()
    }

    /// The merged pinned data version of `table` — see
    /// [`ShardedDatabase::data_version`] for the definition.
    pub fn data_version(&self, table: &str) -> Option<u64> {
        merged_data_version(self.data_versions(table)?)
    }

    /// The pinned statistics of `table` merged across shards (see
    /// [`TableStats::merged`]).
    pub fn table_stats(&self, table: &str) -> Option<TableStats> {
        let parts: Option<Vec<TableStats>> =
            self.shards.iter().map(|s| s.table_stats(table)).collect();
        TableStats::merged(&parts?)
    }
}

/// One merged data version for a row-partitioned table: `1` for a
/// freshly registered table, `+1` for every shard-level delta bump —
/// the total ingest activity the partitions have absorbed, so drift
/// between a plan and the sharded table is observable as one number.
fn merged_data_version(per_shard: Vec<u64>) -> Option<u64> {
    Some(1 + per_shard.iter().map(|v| v - 1).sum::<u64>())
}

/// `workers == 0` in an [`ExecutorConfig`] means "one worker per
/// shard".
fn resolve(config: ExecutorConfig, shards: usize) -> ExecutorConfig {
    ExecutorConfig {
        workers: if config.workers == 0 {
            shards
        } else {
            config.workers
        },
        ..config
    }
}

/// A statement prepared once against every shard of a
/// [`ShardedDatabase`] — see [`ShardedDatabase::prepare`].
#[derive(Debug)]
pub struct ShardedStatement {
    stmts: Vec<PreparedStatement>,
    executions: u64,
}

impl ShardedStatement {
    /// `?` placeholders the statement declares.
    pub fn parameter_count(&self) -> usize {
        self.stmts.first().map_or(0, |s| s.parameter_count())
    }

    /// Successful sharded executions so far.
    pub fn executions(&self) -> u64 {
        self.executions
    }

    /// Total re-plans across every shard (see
    /// [`PreparedStatement::replans`]).
    pub fn replans(&self) -> u64 {
        self.stmts.iter().map(|s| s.replans()).sum()
    }

    /// Total cheap plan refreshes across every shard (see
    /// [`PreparedStatement::rebases`]).
    pub fn rebases(&self) -> u64 {
        self.stmts.iter().map(|s| s.rebases()).sum()
    }
}

impl ShardedDatabase {
    /// An empty sharded database with `shards` partitions (minimum 1),
    /// each on the paper's machine configuration, served by a worker
    /// pool of the default [`ExecutorConfig`] (one worker per shard).
    pub fn new(shards: usize) -> Self {
        Self::with_engine(Engine::new(), shards)
    }

    /// An empty sharded database whose shard sessions all use (clones
    /// of) a custom engine.
    pub fn with_engine(engine: Engine, shards: usize) -> Self {
        Self::with_executor(engine, shards, ExecutorConfig::default())
    }

    /// An empty sharded database with an explicit executor shape
    /// (worker count, morsel size, stealing) — `config.workers == 0`
    /// means one worker per shard.
    pub fn with_executor(engine: Engine, shards: usize, config: ExecutorConfig) -> Self {
        let shards = shards.max(1);
        let sim = engine.config().clone();
        Self {
            shards: (0..shards)
                .map(|_| Database::with_engine(engine.clone()))
                .collect(),
            next_shard: 0,
            executor: Executor::new(resolve(config, shards), sim.clone()),
            sim,
            coordinator: None,
        }
    }

    /// Opens (or creates) a **durable** sharded database at `path`: one
    /// subdirectory (and write-ahead log) per shard plus the
    /// coordinator's own commit log. Single-shard writes (routed
    /// appends) log on their shard alone; multi-shard writes
    /// (registration, `DELETE`/`UPDATE` via
    /// [`ShardedDatabase::mutate_sql`]) are tagged with a global
    /// transaction id on every touched shard and only count after the
    /// coordinator's commit record lands — a crash between two shards'
    /// flushes rolls the whole operation back on reopen, never half of
    /// it.
    ///
    /// `shards` applies when creating; an existing database reopens
    /// with the shard count it was created with (the argument is
    /// ignored then — partitions on disk are authoritative).
    ///
    /// # Errors
    ///
    /// [`SqlError::Wal`] for unreadable or corrupt logs (a torn tail on
    /// any log is truncated, not an error), and any replay error a
    /// damaged record sequence produces.
    pub fn open(path: impl AsRef<Path>, shards: usize) -> Result<Self, SqlError> {
        let dir = path.as_ref();
        std::fs::create_dir_all(dir).map_err(|e| WalError::Io(e.to_string()))?;
        let shards = {
            let existing = (0..)
                .take_while(|i| dir.join(format!("shard-{i}")).is_dir())
                .count();
            if existing > 0 {
                existing
            } else {
                shards.max(1)
            }
        };
        let log = dir.join("coordinator.log");
        let (committed, writer) = if log.exists() {
            let contents = wal::read_log(&log)?;
            if let Some(valid_len) = contents.torn {
                // A torn commit record is an uncommitted cross-shard
                // operation: truncating it rolls the operation back on
                // every shard.
                wal::truncate(&log, valid_len)?;
            }
            let committed = recovery::committed_set(&contents.records, &BTreeSet::new());
            (committed, WalWriter::append_to(&log, contents.next_lsn)?)
        } else {
            (BTreeSet::new(), WalWriter::create(&log)?)
        };
        let shard_dbs = (0..shards)
            .map(|i| Database::open_with(&dir.join(format!("shard-{i}")), &committed))
            .collect::<Result<Vec<_>, _>>()?;
        let sim = shard_dbs[0].catalogue().engine().config().clone();
        Ok(Self {
            shards: shard_dbs,
            next_shard: 0,
            executor: Executor::new(resolve(ExecutorConfig::default(), shards), sim.clone()),
            sim,
            coordinator: Some(Coordinator { log, writer }),
        })
    }

    /// Whether this database owns write-ahead logs (was opened with
    /// [`ShardedDatabase::open`]).
    pub fn is_durable(&self) -> bool {
        self.coordinator.is_some()
    }

    /// Checkpoints every shard's log (see [`Database::checkpoint`]) and
    /// then truncates the coordinator's commit log — the shard images
    /// are all autocommit records now, so no global transaction id
    /// needs vouching for. A no-op on non-durable databases.
    pub fn checkpoint(&mut self) -> Result<(), SqlError> {
        if self.coordinator.is_none() {
            return Ok(());
        }
        for shard in &mut self.shards {
            shard.checkpoint()?;
        }
        let coord = self.coordinator.as_mut().expect("checked above");
        coord.writer = wal::rewrite(&coord.log, &[], coord.writer.next_lsn())?;
        Ok(())
    }

    /// Replaces the worker pool with a freshly spawned one of the given
    /// shape (`workers == 0` means one worker per shard). The old pool
    /// is joined; its cumulative [`ExecutorStats`] are discarded. This
    /// is also how the bench measures what pooling buys: rebuilding
    /// per query reproduces the old spawn-threads-per-query regime.
    ///
    /// # Errors
    ///
    /// [`ExecutorError::ZeroMorselRows`] for `morsel_rows == 0` (the
    /// old pool is left in place). `workers == 0` is the "one worker
    /// per shard" sentinel here, resolved before the pool is built.
    pub fn set_executor_config(&mut self, config: ExecutorConfig) -> Result<(), ExecutorError> {
        self.executor = Executor::try_new(resolve(config, self.shards.len()), self.sim.clone())?;
        Ok(())
    }

    /// The executor's resolved configuration.
    pub fn executor_config(&self) -> ExecutorConfig {
        self.executor.config()
    }

    /// The executor's cumulative counters (queries, morsels, steals)
    /// since the current pool was built.
    pub fn executor_stats(&self) -> ExecutorStats {
        self.executor.stats()
    }

    /// One metrics snapshot for the whole sharded database: every
    /// shard's [`Database::metrics`] summed (counters and the query
    /// cycle histogram; the worst slow queries kept), plus the shared
    /// worker pool's counters as `executor_queries` / `executor_morsels`
    /// / `executor_steals`.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        for shard in &self.shards {
            snap.merge(shard.metrics());
        }
        let stats = self.executor.stats();
        snap.add("executor_queries", stats.queries);
        snap.add("executor_morsels", stats.morsels);
        snap.add("executor_steals", stats.steals);
        snap.add("executor_cancelled_morsels", stats.cancelled_morsels);
        snap.add("executor_morsels_pruned", stats.morsels_pruned);
        snap.add("executor_rows_pruned", stats.rows_pruned);
        snap.add("executor_affinity_moves", stats.affinity_moves);
        snap.add("executor_queued", stats.queued());
        snap.add("executor_inflight", stats.inflight());
        snap
    }

    /// The worst coordinator queries on record, sorted worst-first (the
    /// coordinator records into shard 0's registry; see
    /// [`Database::slow_queries`]).
    pub fn slow_queries(&self) -> Vec<SlowQuery> {
        self.shards
            .first()
            .map(Database::slow_queries)
            .unwrap_or_default()
    }

    /// Only coordinator queries costing at least `cycles` enter the
    /// slow-query ring (see [`Database::set_slow_query_threshold`]).
    pub fn set_slow_query_threshold(&self, cycles: u64) {
        if let Some(shard) = self.shards.first() {
            shard.set_slow_query_threshold(cycles);
        }
    }

    /// Sets every shard's delta-compaction policy (each shard compacts
    /// its own partition independently).
    pub fn set_compaction_policy(&mut self, policy: CompactionPolicy) {
        for shard in &self.shards {
            shard.catalogue().set_compaction_policy(policy);
        }
    }

    /// Number of shard sessions.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard sessions (for per-shard accounting).
    pub fn shards(&self) -> &[Database] {
        &self.shards
    }

    /// Captures an atomic cross-shard point-in-time cut: every shard's
    /// registry read lock is acquired first (in shard order), then
    /// each shard is cut under the held locks — so no write through
    /// *any* handle (the coordinator's `&mut self` API or a cloned
    /// shard-catalogue handle on another thread) can land between two
    /// shards' cuts. Reads at the cut are a consistent database-wide
    /// view, however much ingest streams in afterwards.
    pub fn snapshot(&self) -> ShardedSnapshot {
        // Phase 1: lock all shards. Always in shard order, and this is
        // the only multi-catalogue lock acquirer, so no cycle exists.
        let guards: Vec<_> = self
            .shards
            .iter()
            .map(|shard| shard.catalogue().registry_read())
            .collect();
        // Phase 2: cut each shard while every lock is still held.
        ShardedSnapshot {
            shards: self
                .shards
                .iter()
                .zip(&guards)
                .map(|(shard, guard)| shard.catalogue().capture_under(guard))
                .collect(),
        }
    }

    /// Each shard's live data version of `table`, in shard order —
    /// the per-shard drift view ([`Database::data_version`] per
    /// partition). `None` if any shard lacks the table.
    pub fn data_versions(&self, table: &str) -> Option<Vec<u64>> {
        self.shards
            .iter()
            .map(|shard| shard.data_version(table))
            .collect()
    }

    /// The merged live data version of `table`: `1` for a freshly
    /// registered table, `+1` for every shard-level delta bump — total
    /// ingest activity across the partitions, the sharded counterpart
    /// of [`Database::data_version`].
    pub fn data_version(&self, table: &str) -> Option<u64> {
        merged_data_version(self.data_versions(table)?)
    }

    /// Each shard's live statistics of `table`, in shard order.
    pub fn table_stats_per_shard(&self, table: &str) -> Option<Vec<TableStats>> {
        self.shards
            .iter()
            .map(|shard| shard.table_stats(table))
            .collect()
    }

    /// The live statistics of `table` merged across every shard (row
    /// counts add, min/max combine, KMV sketches union; `sorted` means
    /// sorted within every partition — see [`TableStats::merged`]):
    /// the sharded counterpart of [`Database::table_stats`].
    pub fn table_stats(&self, table: &str) -> Option<TableStats> {
        TableStats::merged(&self.table_stats_per_shard(table)?)
    }

    /// The snapshot subsystem's counters summed across every shard's
    /// catalogue (pins, deferred/reclaimed GCs — see
    /// [`crate::SharedCatalogue::snapshot_stats`]).
    pub fn snapshot_stats(&self) -> SnapshotStats {
        let mut out = SnapshotStats::default();
        for shard in &self.shards {
            out.absorb(&shard.catalogue().snapshot_stats());
        }
        out
    }

    /// Registers a table, splitting its rows into `shard_count`
    /// contiguous chunks — shard `i` owns rows
    /// `[i·⌈n/N⌉, (i+1)·⌈n/N⌉)`. Chunks keep their columns' relative
    /// order, so a sorted column stays sorted within every shard.
    ///
    /// On a durable database the registration is one atomic cross-shard
    /// write: every shard's log record carries one global transaction
    /// id, committed by the coordinator only after all shards flushed —
    /// a crash mid-registration rolls the whole table back on reopen.
    pub fn register(&mut self, table: Table) {
        let n = table.rows();
        let shard_count = self.shards.len();
        let chunk = n.div_ceil(shard_count).max(1);
        let parts = (0..shard_count)
            .map(|i| {
                let lo = (i * chunk).min(n);
                let hi = ((i + 1) * chunk).min(n);
                let mut part = Table::new(table.name());
                for col in table.column_names() {
                    let data = table.column(col).expect("listed column exists");
                    part = part.with_column(col, data[lo..hi].to_vec());
                }
                part
            })
            .collect();
        self.register_parts(parts);
    }

    /// Registers a table with caller-chosen partitions: `parts[i]`
    /// becomes shard `i`'s partition verbatim. This is the control
    /// knob [`ShardedDatabase::register`]'s even contiguous split
    /// deliberately lacks — skewed placements for stress tests and
    /// benches, or locality-driven placements an ingest pipeline
    /// already decided on.
    ///
    /// # Panics
    ///
    /// If `parts` does not hold exactly one table per shard, or the
    /// parts disagree on the table name (they are partitions of *one*
    /// logical table).
    pub fn register_partitioned(&mut self, parts: Vec<Table>) {
        assert_eq!(
            parts.len(),
            self.shards.len(),
            "one partition per shard ({} shards)",
            self.shards.len()
        );
        let name = parts[0].name().to_string();
        assert!(
            parts.iter().all(|p| p.name() == name),
            "partitions of one logical table share its name"
        );
        self.register_parts(parts);
    }

    /// The shared tail of both register paths: install one partition
    /// per shard, all records tagged with one global transaction id,
    /// flushed everywhere before the coordinator commits. WAL failures
    /// panic — the register signatures predate durability and cannot
    /// carry the error, and losing a registration silently would
    /// corrupt every later replay.
    fn register_parts(&mut self, parts: Vec<Table>) {
        let gtid = self
            .coordinator
            .as_ref()
            .map_or(crate::wal::AUTOCOMMIT, Coordinator::next_gtid);
        for (shard, part) in self.shards.iter_mut().zip(parts) {
            shard.register_buffered(part, gtid);
        }
        for shard in &mut self.shards {
            shard
                .flush_wal()
                .expect("write-ahead log append failed during register");
        }
        if let Some(coord) = self.coordinator.as_mut() {
            coord
                .commit(gtid)
                .expect("coordinator commit failed during register");
        }
    }

    /// Appends a batch of rows, routing the whole batch to the shard
    /// whose partition of `table` is currently **smallest** (ties
    /// broken by a rotating cursor, so equal shards take turns): the
    /// batch lands in that shard's delta store, bumps its data version,
    /// and may trip its compaction threshold — the per-shard write path
    /// mirrors the single-session one exactly, so sharded reads stay
    /// correct under interleaved ingest. Size-aware routing keeps
    /// partitions balanced under *uneven* batch streams, where blind
    /// rotation would slowly skew them.
    ///
    /// # Errors
    ///
    /// As [`Database::append_rows`]; the batch is validated before any
    /// shard is touched, so a rejected batch mutates nothing.
    pub fn append_rows(
        &mut self,
        table: &str,
        batch: RowBatch,
    ) -> Result<ShardedIngestReceipt, SqlError> {
        // Validate against *every* shard's schema before any shard is
        // touched: shard catalogues are independently reachable, so a
        // divergent re-registration on one shard must fail the whole
        // batch up front rather than leave earlier shards mutated.
        for shard in &self.shards {
            let schema = shard
                .catalogue()
                .schema(table)
                .ok_or_else(|| SqlError::UnknownTable(table.to_string()))?;
            let names: Vec<&str> = schema.iter().map(String::as_str).collect();
            batch.validate(&names).map_err(SqlError::Ingest)?;
        }

        let n = batch.rows();
        let shard_count = self.shards.len();
        // Size probe via the incrementally maintained statistics:
        // `table()` would materialise each shard's base++delta view —
        // an O(partition) copy per append on the write hot path.
        let sizes: Vec<usize> = self
            .shards
            .iter()
            .map(|s| s.table_stats(table).map_or(0, |stats| stats.rows()))
            .collect();
        let smallest = *sizes.iter().min().expect("at least one shard");
        let chosen = (0..shard_count)
            .map(|k| (self.next_shard + k) % shard_count)
            .find(|&s| sizes[s] == smallest)
            .expect("a smallest shard exists");
        let mut per_shard = vec![0usize; shard_count];
        let mut compactions = 0;
        if n > 0 {
            // Through the shard's `Database` write path, not its bare
            // catalogue: a durable shard logs the batch (or checkpoints
            // on compaction) before reporting the receipt. A routed
            // append touches one shard only, so its own autocommit
            // record is already atomic — no coordinator involvement.
            let receipt = self.shards[chosen].append_rows(table, batch)?;
            per_shard[chosen] = n;
            if receipt.compacted {
                compactions += 1;
            }
            self.next_shard = (chosen + 1) % shard_count;
        }
        Ok(ShardedIngestReceipt {
            rows: n,
            per_shard,
            compactions,
        })
    }

    /// Parses and runs one `INSERT`, routing the tuples across the
    /// shards like [`ShardedDatabase::append_rows`].
    ///
    /// # Errors
    ///
    /// Parse errors, [`SqlError::UnknownTable`], [`SqlError::Ingest`];
    /// a `SELECT`/`EXPLAIN` is a typed parse error (use
    /// [`ShardedDatabase::run_sql`]).
    pub fn insert_sql(&mut self, sql: &str) -> Result<ShardedIngestReceipt, SqlError> {
        match parse_statement(sql)? {
            Statement::Insert(ins) => {
                let batch =
                    RowBatch::from_rows(&ins.columns, &ins.rows).map_err(SqlError::Ingest)?;
                self.append_rows(&ins.table, batch)
            }
            Statement::Select(_) => Err(SqlError::Parse(crate::sql::ParseSqlError::Expected {
                expected: "INSERT",
                found: "SELECT".into(),
            })),
            Statement::Explain(_) | Statement::ExplainAnalyze(_) => {
                Err(SqlError::Parse(crate::sql::ParseSqlError::Expected {
                    expected: "INSERT",
                    found: "EXPLAIN".into(),
                }))
            }
            Statement::Delete(_) | Statement::Update(_) => Err(SqlError::MutationStatement),
            Statement::CreateSnapshot(_) => Err(SqlError::ShardedTimeTravel),
            Statement::Begin { .. } | Statement::Commit | Statement::Rollback => {
                Err(SqlError::TransactionStatement)
            }
        }
    }

    /// Parses and runs one `DELETE` or `UPDATE` across every shard:
    /// each shard resolves the predicate against its own partition,
    /// tombstones / overwrites its matches, and on a durable database
    /// all shards' records are tagged with one global transaction id
    /// and committed by the coordinator after every shard's log flushed
    /// — the mutation is atomic across a crash, all shards or none.
    ///
    /// The receipt's `rows` is the total across shards and
    /// `data_version` the merged version (see
    /// [`ShardedDatabase::data_version`]).
    ///
    /// # Errors
    ///
    /// Parse errors, [`SqlError::UnknownTable`], and
    /// [`SqlError::Plan`] for an `UPDATE ... SET` naming an unknown
    /// column — all surfaced before any shard is mutated.
    pub fn mutate_sql(&mut self, sql: &str) -> Result<MutationReceipt, SqlError> {
        match parse_statement(sql)? {
            Statement::Delete(del) => self.mutate_shards(&del.table, None, del.filter.as_ref()),
            Statement::Update(upd) => {
                self.mutate_shards(&upd.table, Some(&upd.sets), upd.filter.as_ref())
            }
            Statement::Insert(_) => Err(SqlError::InsertStatement),
            Statement::Select(_) | Statement::Explain(_) | Statement::ExplainAnalyze(_) => {
                Err(SqlError::Parse(crate::sql::ParseSqlError::Expected {
                    expected: "DELETE or UPDATE",
                    found: "SELECT".into(),
                }))
            }
            Statement::CreateSnapshot(_) => Err(SqlError::ShardedTimeTravel),
            Statement::Begin { .. } | Statement::Commit | Statement::Rollback => {
                Err(SqlError::TransactionStatement)
            }
        }
    }

    /// The cross-shard mutation engine behind
    /// [`ShardedDatabase::mutate_sql`]: `sets == None` deletes,
    /// `Some(sets)` updates. Resolution runs on every shard before any
    /// shard is mutated, so validation errors leave nothing
    /// half-applied; the in-memory applies then run shard by shard
    /// under the coordinator's `&mut self` (no reader can interleave a
    /// write), and durability is one gtid-tagged commit.
    fn mutate_shards(
        &mut self,
        table: &str,
        sets: Option<&Vec<(String, u32)>>,
        filter: Option<&(String, Predicate)>,
    ) -> Result<MutationReceipt, SqlError> {
        // Phase 1: resolve and validate everywhere, mutating nothing.
        let mut ops: Vec<Option<CatOp>> = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            let cat = shard.catalogue();
            if let Some(sets) = sets {
                let schema = cat
                    .schema(table)
                    .ok_or_else(|| SqlError::UnknownTable(table.to_string()))?;
                for (column, _) in sets {
                    if !schema.contains(column) {
                        return Err(SqlError::Plan(PlanError::UnknownColumn(column.clone())));
                    }
                }
            }
            let rows = cat.resolve_physical(table, filter)?;
            ops.push(if rows.is_empty() {
                None
            } else {
                Some(match sets {
                    None => CatOp::Delete {
                        table: table.to_string(),
                        rows,
                    },
                    Some(sets) => CatOp::Update {
                        table: table.to_string(),
                        rows,
                        sets: sets.clone(),
                    },
                })
            });
        }
        // Phase 2: apply and log, one gtid across every touched shard.
        let gtid = self
            .coordinator
            .as_ref()
            .map_or(crate::wal::AUTOCOMMIT, Coordinator::next_gtid);
        let mut total = 0usize;
        for (shard, op) in self.shards.iter_mut().zip(&ops) {
            let Some(op) = op else { continue };
            total += match op {
                CatOp::Delete { rows, .. } | CatOp::Update { rows, .. } => rows.len(),
                CatOp::Append { .. } => unreachable!("mutations are deletes or updates"),
            };
            shard.catalogue().apply_ops(std::slice::from_ref(op))?;
            shard.log_record(&crate::database::record_of(op, gtid));
        }
        if total > 0 {
            for shard in &mut self.shards {
                shard.flush_wal()?;
            }
            if let Some(coord) = self.coordinator.as_mut() {
                coord.commit(gtid)?;
            }
            for shard in &mut self.shards {
                shard.compact_and_checkpoint(table)?;
            }
        }
        let data_version = self
            .data_version(table)
            .ok_or_else(|| SqlError::UnknownTable(table.to_string()))?;
        Ok(MutationReceipt {
            rows: total,
            data_version,
        })
    }

    /// Parses and runs one `SELECT` across every shard, merging the
    /// partial aggregates (see the [module docs](self)).
    /// `EXPLAIN ANALYZE SELECT …` executes with per-morsel tracing on
    /// and returns the span tree in [`ShardedOutput::trace`]. Bare
    /// `EXPLAIN` is rejected — use [`ShardedDatabase::explain_sql`]
    /// for the typed per-shard plan — and so is `INSERT` (use
    /// [`ShardedDatabase::insert_sql`], which routes rows to shards).
    ///
    /// # Errors
    ///
    /// As [`Database::run_sql`], plus [`SqlError::ExplainStatement`]
    /// for `EXPLAIN` and [`SqlError::InsertStatement`] for `INSERT`.
    /// Composite `GROUP BY` shards like any other query (merged through
    /// the query's [`KeyDictionary`]); only a *global* fused-key domain
    /// exceeding the 32-bit key space is rejected, with the same typed
    /// [`PlanError::CompositeKeyOverflow`] a single session reports.
    pub fn run_sql(&mut self, sql: &str) -> Result<ShardedOutput, SqlError> {
        self.run_sql_governed(sql, None)
    }

    /// [`ShardedDatabase::run_sql`] under a [`CancelToken`]: the
    /// executor checks the token at every morsel pop, so tripping it —
    /// from any thread holding a clone — surfaces a typed
    /// [`SqlError::Cancelled`] within one morsel's latency and frees
    /// the pool for the next query. The token's optional deadline and
    /// morsel budget trip the same way; cancelled queries are counted
    /// in [`ShardedDatabase::metrics`].
    ///
    /// # Errors
    ///
    /// As [`ShardedDatabase::run_sql`], plus [`SqlError::Cancelled`].
    pub fn run_sql_cancellable(
        &mut self,
        sql: &str,
        token: &CancelToken,
    ) -> Result<ShardedOutput, SqlError> {
        self.run_sql_governed(sql, Some(token))
    }

    fn run_sql_governed(
        &mut self,
        sql: &str,
        cancel: Option<&CancelToken>,
    ) -> Result<ShardedOutput, SqlError> {
        let run = |db: &mut Self| match parse_statement(sql)? {
            Statement::Select(q) => {
                if q.as_of.is_some() {
                    return Err(SqlError::ShardedTimeTravel);
                }
                let out = if q.join.is_some() {
                    // An atomic cross-shard cut: both join sides read
                    // the same moment on every shard.
                    let cut = db.snapshot();
                    db.run_join_cut(&cut, &q, None, cancel)?
                } else {
                    db.run_query(&q.table, &q.query, None, cancel)?
                };
                db.note_query(sql, &out);
                Ok(out)
            }
            Statement::ExplainAnalyze(q) => {
                if q.as_of.is_some() {
                    return Err(SqlError::ShardedTimeTravel);
                }
                let mut trace = QueryTrace::new(sql.trim().to_string());
                let mut out = if q.join.is_some() {
                    let cut = db.snapshot();
                    db.run_join_cut(&cut, &q, Some(&mut trace), cancel)?
                } else {
                    db.run_query(&q.table, &q.query, Some(&mut trace), cancel)?
                };
                out.trace = Some(Box::new(trace));
                db.note_query(sql, &out);
                Ok(out)
            }
            Statement::Explain(_) => Err(SqlError::ExplainStatement),
            Statement::Insert(_) => Err(SqlError::InsertStatement),
            Statement::Delete(_) | Statement::Update(_) => Err(SqlError::MutationStatement),
            Statement::CreateSnapshot(_) => Err(SqlError::ShardedTimeTravel),
            Statement::Begin { .. } | Statement::Commit | Statement::Rollback => {
                Err(SqlError::TransactionStatement)
            }
        };
        let out = run(self);
        if matches!(out, Err(SqlError::Cancelled(_))) {
            if let Some(shard) = self.shards.first() {
                shard.catalogue().metrics().record_cancelled();
            }
        }
        out
    }

    /// Folds one finished query into the coordinator's metrics registry
    /// (shard 0's catalogue owns the sharded registry; see
    /// [`ShardedDatabase::metrics`]).
    fn note_query(&self, sql: &str, out: &ShardedOutput) {
        let Some(shard) = self.shards.first() else {
            return;
        };
        let metrics = shard.catalogue().metrics();
        metrics.record_query(
            sql.trim(),
            out.report.cycles,
            out.rows.len() as u64,
            out.report.steps.len(),
        );
        if out.trace.is_some() {
            metrics.record_traced_query();
        }
    }

    /// Parses and runs one `SELECT` **at an atomic cross-shard
    /// snapshot** (see [`ShardedDatabase::snapshot`]): every shard
    /// plans and executes against its pinned cut, so the merged answer
    /// is a consistent database-wide view however much routed ingest
    /// has landed since the cut.
    ///
    /// # Errors
    ///
    /// As [`ShardedDatabase::run_sql`], plus [`SqlError::ReadOnly`]
    /// for `INSERT` (snapshots are immutable),
    /// [`SqlError::SnapshotShardMismatch`] when the snapshot's shard
    /// count differs from this database's, and
    /// [`SqlError::ForeignSnapshot`] when a shard cut belongs to a
    /// different catalogue.
    pub fn run_sql_at(
        &mut self,
        snap: &ShardedSnapshot,
        sql: &str,
    ) -> Result<ShardedOutput, SqlError> {
        match parse_statement(sql)? {
            Statement::Select(q) => {
                let out = self.run_stmt_at(snap, &q, None)?;
                self.note_query(sql, &out);
                Ok(out)
            }
            Statement::ExplainAnalyze(q) => {
                let mut trace = QueryTrace::new(sql.trim().to_string());
                let mut out = self.run_stmt_at(snap, &q, Some(&mut trace))?;
                out.trace = Some(Box::new(trace));
                self.note_query(sql, &out);
                Ok(out)
            }
            Statement::Explain(_) => Err(SqlError::ExplainStatement),
            Statement::Insert(_) | Statement::Delete(_) | Statement::Update(_) => {
                Err(SqlError::ReadOnly)
            }
            Statement::CreateSnapshot(_) => Err(SqlError::ShardedTimeTravel),
            Statement::Begin { .. } | Statement::Commit | Statement::Rollback => {
                Err(SqlError::TransactionStatement)
            }
        }
    }

    /// The `SELECT`-at-snapshot body shared by the plain and
    /// `EXPLAIN ANALYZE` arms of [`ShardedDatabase::run_sql_at`].
    fn run_stmt_at(
        &mut self,
        snap: &ShardedSnapshot,
        q: &SqlQuery,
        trace: Option<&mut QueryTrace>,
    ) -> Result<ShardedOutput, SqlError> {
        if q.as_of.is_some() {
            return Err(SqlError::ShardedTimeTravel);
        }
        if q.join.is_some() {
            self.check_snapshot(snap)?;
            for (shard, cut) in self.shards.iter().zip(snap.shards.iter()) {
                if !cut.catalogue().is_same(shard.catalogue()) {
                    return Err(SqlError::ForeignSnapshot);
                }
            }
            return self.run_join_cut(snap, q, trace, None);
        }
        self.run_query_at(snap, &q.table, &q.query, trace)
    }

    /// Plans a statement against the first non-empty shard's partition
    /// (every shard plans the same shape; estimates are per-partition).
    /// A statement with a `JOIN` clause routes through the join planner
    /// and returns [`ExplainOutput::Join`] — the typed [`JoinPlan`] at
    /// an atomic cross-shard cut, as [`ShardedDatabase::explain_join_sql`]
    /// produces.
    ///
    /// # Errors
    ///
    /// As [`Database::explain_sql`].
    pub fn explain_sql(&self, sql: &str) -> Result<ExplainOutput, SqlError> {
        let q = match parse_statement(sql)? {
            Statement::Select(q) | Statement::Explain(q) | Statement::ExplainAnalyze(q) => q,
            Statement::Insert(_) => return Err(SqlError::InsertStatement),
            Statement::Delete(_) | Statement::Update(_) => return Err(SqlError::MutationStatement),
            Statement::CreateSnapshot(_) => return Err(SqlError::ShardedTimeTravel),
            Statement::Begin { .. } | Statement::Commit | Statement::Rollback => {
                return Err(SqlError::TransactionStatement)
            }
        };
        if q.as_of.is_some() {
            return Err(SqlError::ShardedTimeTravel);
        }
        if q.join.is_some() {
            let cut = self.snapshot();
            return Ok(ExplainOutput::Join(Box::new(self.plan_join_cut(&cut, &q)?)));
        }
        let shard = self
            .first_populated_shard(&q.table)?
            .ok_or(SqlError::Plan(PlanError::EmptyTable))?;
        Ok(ExplainOutput::Plan(Box::new(
            self.shards[shard]
                .catalogue()
                .plan_query(&q.table, &q.query)?,
        )))
    }

    /// Plans a two-table `JOIN` statement against an atomic cross-shard
    /// cut without executing it: the [`JoinPlan`] carries the §V-D
    /// build-side choice and the sharded exchange strategy
    /// ([`JoinStrategy::Broadcast`] or [`JoinStrategy::Partition`])
    /// picked from the merged [`TableStats`] of both sides. Accepts a
    /// bare `SELECT` or an `EXPLAIN SELECT`.
    ///
    /// # Errors
    ///
    /// As [`ShardedDatabase::explain_sql`], plus
    /// [`SqlError::JoinStatement`] when the statement has no `JOIN`
    /// clause.
    pub fn explain_join_sql(&self, sql: &str) -> Result<JoinPlan, SqlError> {
        let q = match parse_statement(sql)? {
            Statement::Select(q) | Statement::Explain(q) | Statement::ExplainAnalyze(q) => q,
            Statement::Insert(_) => return Err(SqlError::InsertStatement),
            Statement::Delete(_) | Statement::Update(_) => return Err(SqlError::MutationStatement),
            Statement::CreateSnapshot(_) => return Err(SqlError::ShardedTimeTravel),
            Statement::Begin { .. } | Statement::Commit | Statement::Rollback => {
                return Err(SqlError::TransactionStatement)
            }
        };
        if q.as_of.is_some() {
            return Err(SqlError::ShardedTimeTravel);
        }
        if q.join.is_none() {
            return Err(SqlError::JoinStatement);
        }
        let cut = self.snapshot();
        self.plan_join_cut(&cut, &q)
    }

    /// Prepares a statement once against every shard; execute it with
    /// [`ShardedDatabase::execute_prepared`]. The SQL is parsed once
    /// and the template shared (`Arc`) across the per-shard statements,
    /// so preparing stays O(1) in the shard count.
    ///
    /// # Errors
    ///
    /// As [`Database::prepare`] (validated eagerly against the first
    /// non-empty shard).
    pub fn prepare(&self, sql: &str) -> Result<ShardedStatement, SqlError> {
        let template = Arc::new(parse_template(sql)?);
        if template.join.is_some() {
            return Err(SqlError::JoinStatement);
        }
        // Validate eagerly where there are rows to plan against (an
        // empty shard cannot plan until a re-register populates it).
        if let Some(i) = self.first_populated_shard(&template.table)? {
            self.shards[i]
                .catalogue()
                .plan_query(&template.table, &template.query)?;
        }
        let stmts = self
            .shards
            .iter()
            .map(|_| PreparedStatement::from_template(Arc::clone(&template)))
            .collect();
        Ok(ShardedStatement {
            stmts,
            executions: 0,
        })
    }

    /// Binds `params` on every shard's prepared statement, executes
    /// the distributive slices concurrently and merges, exactly like
    /// [`ShardedDatabase::run_sql`] without the parse/plan work.
    ///
    /// # Errors
    ///
    /// Bind errors ([`PlanError::BindArity`] / [`PlanError::BindType`]
    /// wrapped in [`SqlError::Plan`]) and re-planning errors.
    pub fn execute_prepared(
        &mut self,
        stmt: &mut ShardedStatement,
        params: &[u64],
    ) -> Result<ShardedOutput, SqlError> {
        if stmt.stmts.len() != self.shards.len() {
            return Err(SqlError::ShardMismatch {
                statement: stmt.stmts.len(),
                database: self.shards.len(),
            });
        }
        let mut query = None;
        let mut plans: Vec<Option<QueryPlan>> = Vec::with_capacity(self.shards.len());
        for (shard, prepared) in self.shards.iter().zip(stmt.stmts.iter_mut()) {
            if shard.table(prepared.table()).is_some_and(|t| t.rows() > 0) {
                let plan = prepared.bound_plan(shard.catalogue(), params)?;
                query.get_or_insert_with(|| plan.query().clone());
                plans.push(Some(plan));
            } else {
                query.get_or_insert(prepared.bind(params).map_err(SqlError::Plan)?);
                plans.push(None);
            }
        }
        // An entirely empty table cannot plan anywhere: fail exactly
        // like `run_sql` does (also keeping unvalidated queries away
        // from the coordinator tail — plan-time validation runs on
        // populated shards only).
        if plans.iter().all(Option::is_none) {
            return Err(SqlError::Plan(PlanError::EmptyTable));
        }
        let query = query.expect("a populated shard bound the query");
        let out = self.execute_plans(&query, plans, None, None)?;
        stmt.executions += 1;
        Ok(out)
    }

    /// Binds `params` on every shard's prepared statement **at an
    /// atomic cross-shard snapshot**: each shard's plan is pinned (or
    /// rebased) to its cut's statistics, so a statement prepared
    /// before heavy ingest reproduces the pinned answer exactly —
    /// even if the live §V-D choice has flipped on some shards since.
    ///
    /// # Errors
    ///
    /// As [`ShardedDatabase::execute_prepared`], plus
    /// [`SqlError::SnapshotShardMismatch`] /
    /// [`SqlError::ForeignSnapshot`] for cuts that do not match this
    /// database.
    pub fn execute_prepared_at(
        &mut self,
        stmt: &mut ShardedStatement,
        snap: &ShardedSnapshot,
        params: &[u64],
    ) -> Result<ShardedOutput, SqlError> {
        if stmt.stmts.len() != self.shards.len() {
            return Err(SqlError::ShardMismatch {
                statement: stmt.stmts.len(),
                database: self.shards.len(),
            });
        }
        self.check_snapshot(snap)?;
        let mut query = None;
        let mut plans: Vec<Option<QueryPlan>> = Vec::with_capacity(self.shards.len());
        for ((shard, cut), prepared) in self
            .shards
            .iter()
            .zip(snap.shards.iter())
            .zip(stmt.stmts.iter_mut())
        {
            let populated = cut.table(prepared.table()).is_some_and(|t| t.rows() > 0);
            if populated {
                let plan = prepared.bound_plan_at(shard.catalogue(), Some(cut), params)?;
                query.get_or_insert_with(|| plan.query().clone());
                plans.push(Some(plan));
            } else {
                query.get_or_insert(prepared.bind(params).map_err(SqlError::Plan)?);
                plans.push(None);
            }
        }
        if plans.iter().all(Option::is_none) {
            return Err(SqlError::Plan(PlanError::EmptyTable));
        }
        let query = query.expect("a populated shard bound the query");
        let out = self.execute_plans(&query, plans, None, None)?;
        stmt.executions += 1;
        Ok(out)
    }

    /// The shard-count compatibility check shared by the at-snapshot
    /// read paths.
    fn check_snapshot(&self, snap: &ShardedSnapshot) -> Result<(), SqlError> {
        if snap.shards.len() != self.shards.len() {
            return Err(SqlError::SnapshotShardMismatch {
                snapshot: snap.shards.len(),
                database: self.shards.len(),
            });
        }
        Ok(())
    }

    /// The index of the first shard whose partition of `table` has
    /// rows, or `None` when the table is entirely empty.
    ///
    /// # Errors
    ///
    /// [`SqlError::UnknownTable`] when the table is unregistered.
    fn first_populated_shard(&self, table: &str) -> Result<Option<usize>, SqlError> {
        let mut seen = false;
        for (i, shard) in self.shards.iter().enumerate() {
            match shard.table(table) {
                Some(t) if t.rows() > 0 => return Ok(Some(i)),
                Some(_) => seen = true,
                None => {}
            }
        }
        if seen {
            Ok(None)
        } else {
            Err(SqlError::UnknownTable(table.to_string()))
        }
    }

    fn run_query(
        &mut self,
        table: &str,
        query: &AggregateQuery,
        trace: Option<&mut QueryTrace>,
        cancel: Option<&CancelToken>,
    ) -> Result<ShardedOutput, SqlError> {
        // Plan every populated shard up front so errors surface before
        // any morsel runs.
        self.first_populated_shard(table)?;
        let plans = self
            .shards
            .iter()
            .map(|shard| match shard.table(table) {
                Some(t) if t.rows() > 0 => shard.catalogue().plan_query(table, query).map(Some),
                _ => Ok(None),
            })
            .collect::<Result<Vec<_>, _>>()?;
        if plans.iter().all(Option::is_none) {
            return Err(SqlError::Plan(PlanError::EmptyTable));
        }
        self.execute_plans(query, plans, trace, cancel)
    }

    /// [`ShardedDatabase::run_query`] at a pinned cross-shard cut:
    /// every shard plans via
    /// [`crate::SharedCatalogue::plan_query_at`] against its snapshot.
    fn run_query_at(
        &mut self,
        snap: &ShardedSnapshot,
        table: &str,
        query: &AggregateQuery,
        trace: Option<&mut QueryTrace>,
    ) -> Result<ShardedOutput, SqlError> {
        self.check_snapshot(snap)?;
        // Unknown-table / all-empty detection runs against the *cut*:
        // a table registered after the snapshot does not exist here.
        let mut seen = false;
        let mut plans: Vec<Option<QueryPlan>> = Vec::with_capacity(self.shards.len());
        for (shard, cut) in self.shards.iter().zip(snap.shards.iter()) {
            match cut.table(table) {
                Some(t) if t.rows() > 0 => {
                    plans.push(Some(shard.catalogue().plan_query_at(cut, table, query)?));
                    seen = true;
                }
                Some(_) => {
                    plans.push(None);
                    seen = true;
                }
                None => plans.push(None),
            }
        }
        if !seen {
            return Err(SqlError::UnknownTable(table.to_string()));
        }
        if plans.iter().all(Option::is_none) {
            return Err(SqlError::Plan(PlanError::EmptyTable));
        }
        self.execute_plans(query, plans, trace, None)
    }

    /// Plans a two-table join at a cross-shard cut: schemas from any
    /// shard's partition (all shards share the schema), statistics and
    /// data versions **merged** across the cut — so the §V-D build-side
    /// choice and the broadcast/partition decision see the whole
    /// table, not one partition.
    fn plan_join_cut(&self, cut: &ShardedSnapshot, q: &SqlQuery) -> Result<JoinPlan, SqlError> {
        let join = q.join.as_ref().expect("caller verified a join clause");
        let fetch = |name: &str| -> Result<(Table, TableStats, u64), SqlError> {
            let missing = || SqlError::UnknownTable(name.to_string());
            let schema = cut
                .shards
                .iter()
                .find_map(|s| s.table(name))
                .ok_or_else(missing)?;
            let stats = cut.table_stats(name).ok_or_else(missing)?;
            let version = cut.data_version(name).ok_or_else(missing)?;
            Ok((schema, stats, version))
        };
        let (lt, ls, lv) = fetch(&q.table)?;
        let (rt, rs, rv) = fetch(&join.table)?;
        Ok(plan_join(
            &q.query,
            join,
            &q.table,
            &lt,
            &ls,
            lv,
            &rt,
            &rs,
            rv,
            self.shards.len(),
            None,
        )?)
    }

    /// Executes a two-table join at a cross-shard cut — the sharded
    /// exchange (see [`crate::join`]):
    ///
    /// 1. **Build**, cooperatively: the build side's partitions are
    ///    concatenated into one global row id space and split into
    ///    morsels on the executor; every worker interns key tuples into
    ///    the shared sink(s) — one global sink under
    ///    [`JoinStrategy::Broadcast`], one sink per shard keyed by a
    ///    hash of the join key under [`JoinStrategy::Partition`].
    /// 2. **Probe**, streamed: after the coordinator freezes the
    ///    indexes (the phase barrier), each shard's probe partition is
    ///    morselized and streamed through them; partitioned probes
    ///    route each row to the one index its key hashes to.
    /// 3. **Aggregate**: the matched pairs gather per-shard derived
    ///    tables, and the ordinary sharded aggregation pipeline
    ///    ([`ShardedDatabase::run_sql`]'s morsel + merge + coordinator
    ///    tail) runs over them unchanged.
    fn run_join_cut(
        &mut self,
        cut: &ShardedSnapshot,
        q: &SqlQuery,
        mut trace: Option<&mut QueryTrace>,
        cancel: Option<&CancelToken>,
    ) -> Result<ShardedOutput, SqlError> {
        let plan = self.plan_join_cut(cut, q)?;
        let parts = |name: &str| -> Result<Vec<Table>, SqlError> {
            cut.shards
                .iter()
                .map(|s| {
                    s.table(name)
                        .ok_or_else(|| SqlError::UnknownTable(name.to_string()))
                })
                .collect()
        };
        let (lparts, rparts) = (parts(plan.left_table())?, parts(plan.right_table())?);
        let (bparts, pparts) = if plan.build_right() {
            (rparts, lparts)
        } else {
            (lparts, rparts)
        };
        let (bkeys, pkeys) = (plan.build_keys(), plan.probe_keys());
        let build = ColumnSet::concat(&bparts, &side_columns(&plan, true));
        let morsel_rows = self.executor.config().morsel_rows.max(1);

        // Build phase: one sink broadcasts, N sinks partition by key
        // hash. Build morsels carry a spreading tag so they seed
        // across the whole pool.
        let nparts = match plan.strategy() {
            JoinStrategy::Partition => self.shards.len(),
            JoinStrategy::Local | JoinStrategy::Broadcast => 1,
        };
        let sinks: Arc<Vec<JoinBuildSink>> =
            Arc::new((0..nparts).map(|_| JoinBuildSink::new()).collect());
        let build_keys: Arc<Vec<Arc<[u32]>>> = Arc::new(build.keys(&bkeys));
        let build_rows = build_keys.first().map_or(0, |k| k.len());
        let mut morsels = Vec::new();
        let (mut lo, mut tag) = (0, 0);
        while lo < build_rows {
            let hi = (lo + morsel_rows).min(build_rows);
            morsels.push(JoinMorsel {
                shard: tag,
                keys: Arc::clone(&build_keys),
                lo,
                hi,
                work: JoinWork::Build {
                    sinks: Arc::clone(&sinks),
                },
            });
            tag += 1;
            lo = hi;
        }
        self.executor.execute_join(morsels, cancel);
        check_cancel(cancel)?;

        // Phase barrier: freeze the sinks into deterministic indexes,
        // then stream each shard's probe partition through them.
        let freeze0 = std::time::Instant::now();
        let indexes: Arc<Vec<JoinIndex>> =
            Arc::new(sinks.iter().map(JoinBuildSink::freeze).collect());
        let freeze_ns = freeze0.elapsed().as_nanos() as u64;
        let probe_sets: Vec<ColumnSet> = pparts
            .iter()
            .map(|t| ColumnSet::from_table(t, &side_columns(&plan, false)))
            .collect();
        let mut probes = Vec::new();
        for (shard, set) in probe_sets.iter().enumerate() {
            let keys: Arc<Vec<Arc<[u32]>>> = Arc::new(set.keys(&pkeys));
            let rows = pparts[shard].rows();
            let mut lo = 0;
            while lo < rows {
                let hi = (lo + morsel_rows).min(rows);
                probes.push(JoinMorsel {
                    shard,
                    keys: Arc::clone(&keys),
                    lo,
                    hi,
                    work: JoinWork::Probe {
                        indexes: Arc::clone(&indexes),
                    },
                });
                lo = hi;
            }
        }
        let mut outcomes = self.executor.execute_join(probes, cancel);
        check_cancel(cancel)?;
        // Morsels complete in racy order; pair order must not.
        outcomes.sort_by_key(|o| (o.shard, o.lo));

        if let Some(t) = trace.as_deref_mut() {
            // The join phases are host-side shared-state work (interning
            // into the sinks, probing the frozen indexes): no simulated
            // cycles, observed rows only.
            let entries: u64 = indexes.iter().map(|i| i.entries() as u64).sum();
            let hits: u64 = indexes.iter().map(JoinIndex::dict_hits).sum();
            let probe_rows: u64 = pparts.iter().map(|p| p.rows() as u64).sum();
            let pairs: u64 = outcomes.iter().map(|o| o.pairs.len() as u64).sum();
            for step in plan.steps() {
                match step {
                    PlanStep::JoinBuild { .. } => t.record_host_step(
                        step.to_string(),
                        step.estimated_rows(),
                        build_rows as u64,
                        entries,
                    ),
                    PlanStep::JoinProbe { .. } => t.record_host_step(
                        step.to_string(),
                        step.estimated_rows(),
                        probe_rows,
                        pairs,
                    ),
                    _ => {}
                }
            }
            t.dict_entries += entries;
            t.dict_hits += hits;
            t.freeze_ns = Some(t.freeze_ns.unwrap_or(0) + freeze_ns);
        }

        // Gather per-shard derived tables and run the ordinary sharded
        // aggregation pipeline over them.
        let derived: Vec<Table> = (0..self.shards.len())
            .map(|s| {
                let pairs: Vec<(u32, u32)> = outcomes
                    .iter()
                    .filter(|o| o.shard == s)
                    .flat_map(|o| o.pairs.iter().copied())
                    .collect();
                derived_table(&plan, &pairs, &probe_sets[s], &build)
            })
            .collect();
        let engine = self.shards[0].catalogue().engine();
        let plans: Vec<Option<QueryPlan>> = derived
            .iter()
            .map(|t| {
                if t.rows() == 0 {
                    Ok(None)
                } else {
                    engine.plan(t, plan.query()).map(Some)
                }
            })
            .collect::<Result<_, PlanError>>()?;
        if plans.iter().all(Option::is_none) {
            // No key matched anywhere: zero rows, not a planning error.
            return Ok(ShardedOutput {
                rows: Vec::new(),
                report: ExecutionReport {
                    algorithm: None,
                    rows_aggregated: 0,
                    cycles: 0,
                    cpt: 0.0,
                    steps: plan.steps().to_vec(),
                },
                shard_reports: Vec::new(),
                worker_loads: vec![0; self.executor.worker_count()],
                steals: 0,
                trace: None,
            });
        }
        let mut out = self.execute_plans(plan.query(), plans, trace, cancel)?;
        let mut steps = plan.steps().to_vec();
        steps.append(&mut out.report.steps);
        out.report.steps = steps;
        Ok(out)
    }

    /// Phase 2 + 3: split every shard's plan into morsels, run them on
    /// the persistent worker pool (idle workers steal a skewed shard's
    /// tail), merge the partials, finalise the tail on the coordinator.
    fn execute_plans(
        &mut self,
        query: &AggregateQuery,
        plans: Vec<Option<QueryPlan>>,
        mut trace: Option<&mut QueryTrace>,
        cancel: Option<&CancelToken>,
    ) -> Result<ShardedOutput, SqlError> {
        let morsel_rows = self.executor.morsel_rows_hint().max(1);
        let prune = self.executor.config().prune;
        let plans: Vec<Option<Arc<QueryPlan>>> =
            plans.into_iter().map(|p| p.map(Arc::new)).collect();
        // Composite grouping rides the forced-domain fast path: every
        // shard plan already carries its partition's exact per-column
        // key domains (the planner computed them for the overflow
        // check), and their elementwise max is the domain over the
        // whole partitioned input — exactly what a single session
        // would measure. Forcing those domains into every morsel's
        // fusion puts all partials in one shared fused key space, so
        // they merge directly: no per-morsel max scans, no dictionary,
        // no re-keying. The *global* product must be re-vetted here —
        // each shard's plan only checked its own partition.
        let forced: Option<Arc<[u64]>> = if query.group_by_rest.is_empty() {
            None
        } else {
            let mut domains: Vec<u64> = Vec::new();
            for plan in plans.iter().flatten() {
                if domains.is_empty() {
                    domains = plan.key_domains().to_vec();
                } else {
                    for (d, &x) in domains.iter_mut().zip(plan.key_domains()) {
                        *d = (*d).max(x);
                    }
                }
            }
            let total: u128 = domains.iter().map(|&d| d as u128).product();
            if total > u32::MAX as u128 + 1 {
                return Err(SqlError::Plan(PlanError::CompositeKeyOverflow {
                    domain: total.min(u64::MAX as u128) as u64,
                }));
            }
            Some(domains.into())
        };
        if let Some(t) = trace.as_deref_mut() {
            // Establish the rollup order and sum each step's estimate
            // across the shard plans (shards may pick different
            // algorithms; their steps roll up separately by rendering).
            for plan in plans.iter().flatten() {
                t.estimate_plan(plan);
            }
        }
        let mut morsels = Vec::new();
        let (mut pruned_morsels, mut pruned_rows) = (0u64, 0u64);
        for (shard, plan) in plans.iter().enumerate() {
            let Some(plan) = plan else { continue };
            let mut lo = 0;
            while lo < plan.rows() {
                let hi = (lo + morsel_rows).min(plan.rows());
                // Zone-map pruning: a morsel whose zones prove the
                // WHERE predicate matches nothing contributes exactly
                // what a filter-emptied morsel would — an empty
                // partial — so it is dropped before dispatch.
                if prune && plan.prunes_range(lo, hi) {
                    pruned_morsels += 1;
                    pruned_rows += (hi - lo) as u64;
                } else {
                    morsels.push(Morsel {
                        shard,
                        plan: Arc::clone(plan),
                        lo,
                        hi,
                        domains: forced.clone(),
                        traced: trace.is_some(),
                    });
                }
                lo = hi;
            }
        }
        if pruned_morsels > 0 {
            self.executor.note_pruned(pruned_morsels, pruned_rows);
        }
        if let Some(t) = trace.as_deref_mut() {
            t.morsels_dispatched += morsels.len() as u64;
            t.morsels_pruned += pruned_morsels;
            t.rows_pruned += pruned_rows;
        }
        let outcomes = self.executor.execute(morsels, cancel);
        // A tripped token means the outcome set is incomplete: surface
        // the typed error instead of merging a partial answer.
        check_cancel(cancel)?;

        // Worker accounting: the measured morsel costs are scheduled
        // onto W virtual workers deterministically (host threads race
        // wall time, which says nothing about simulated cycles — see
        // `virtual_schedule`); the busiest worker's total is the
        // parallel makespan.
        let sched = crate::executor::virtual_schedule(
            &outcomes,
            self.executor.worker_count(),
            self.executor.config().steal,
        );

        if let Some(t) = trace.as_deref_mut() {
            let mut spans: Vec<_> = outcomes.iter().filter_map(|o| o.trace.clone()).collect();
            // Completion order is racy; the trace keeps (shard, lo).
            spans.sort_by_key(|s| (s.shard, s.lo));
            for span in &spans {
                t.record_steps(&span.steps);
                t.queue_wait_ns += span.queue_wait_ns;
            }
            t.morsels.extend(spans);
            t.workers = (0..sched.loads.len())
                .map(|w| WorkerRollup {
                    worker: w,
                    cycles: sched.loads[w],
                    morsels: sched.morsels[w],
                    steals: sched.stolen[w],
                })
                .collect();
            t.steals = sched.steals;
        }
        let (worker_loads, steals) = (sched.loads, sched.steals);

        let partial_groups: u64 = outcomes
            .iter()
            .map(|o| o.run.partial.base.groups.len() as u64)
            .sum();
        let merged = PartialAggregate::merge_all(outcomes.iter().map(|o| o.run.partial.clone()))
            .unwrap_or_else(|| PartialAggregate::empty(query.needs_minmax()));
        // With forced domains every partial is keyed in the same
        // global fused space and the merge-join above already produced
        // the single-session answer, sorted by fused key — only the
        // decomposition radices remain to recover the column parts.
        let rest_domains: Vec<u32> = forced
            .as_ref()
            .map_or_else(Vec::new, |d| d[1..].iter().map(|&d| d as u32).collect());
        let (mut base, mut mm) = (merged.base, merged.minmax);
        // The coordinator tail's host steps slot into the trace between
        // the distributive steps and the finalisers, mirroring when
        // they actually ran.
        let finaliser = plans.iter().flatten().find_map(|p| {
            p.steps()
                .iter()
                .find(|s| {
                    matches!(
                        s,
                        PlanStep::VectorHaving { .. }
                            | PlanStep::VectorOrderBy { .. }
                            | PlanStep::Limit(_)
                    )
                })
                .map(ToString::to_string)
        });
        if let Some(t) = trace.as_deref_mut() {
            t.record_host_step_before(
                finaliser.as_deref(),
                "MergePartials".to_string(),
                None,
                partial_groups,
                base.groups.len() as u64,
            );
        }
        if let Some(h) = &query.having {
            let before = base.groups.len() as u64;
            host_having(h, &mut base, &mut mm);
            if let Some(t) = trace.as_deref_mut() {
                if let Some(step) =
                    find_plan_step(&plans, |s| matches!(s, PlanStep::VectorHaving { .. }))
                {
                    t.record_host_step(step, None, before, base.groups.len() as u64);
                }
            }
        }
        if let Some(ob) = &query.order_by {
            let before = base.groups.len() as u64;
            host_order_by(ob, &mut base, &mut mm);
            if let Some(t) = trace.as_deref_mut() {
                if let Some(step) =
                    find_plan_step(&plans, |s| matches!(s, PlanStep::VectorOrderBy { .. }))
                {
                    t.record_host_step(step, None, before, before);
                }
                if let Some(step) = find_plan_step(&plans, |s| matches!(s, PlanStep::Limit(_))) {
                    t.record_host_step(step, None, before, base.groups.len() as u64);
                }
            }
        }
        let rows = assemble_rows(
            query,
            &base,
            mm.as_ref().map(|(a, b)| (&a[..], &b[..])),
            &rest_domains,
        );

        // Per-shard reports: one shard's work summed over its morsels,
        // wherever they ran.
        let mut shard_reports = Vec::new();
        for (s, plan) in plans.iter().enumerate() {
            let Some(plan) = plan else { continue };
            let mine: Vec<&MorselOutcome> = outcomes.iter().filter(|o| o.shard == s).collect();
            let cycles: u64 = mine.iter().map(|o| o.run.report.cycles).sum();
            let rows_aggregated: usize = mine.iter().map(|o| o.run.report.rows_aggregated).sum();
            let aggregated = mine
                .iter()
                .find(|o| o.run.report.algorithm.is_some())
                .or(mine.first());
            shard_reports.push(ExecutionReport {
                algorithm: aggregated.and_then(|o| o.run.report.algorithm),
                rows_aggregated,
                cycles,
                cpt: if plan.rows() == 0 {
                    0.0
                } else {
                    cycles as f64 / plan.rows() as f64
                },
                steps: aggregated
                    .map(|o| o.run.report.steps.clone())
                    .unwrap_or_default(),
            });
        }
        let aggregated = shard_reports
            .iter()
            .find(|r| r.algorithm.is_some())
            .or(shard_reports.first());
        let cycles = worker_loads.iter().copied().max().unwrap_or(0);
        let total_rows: usize = shard_reports.iter().map(|r| r.rows_aggregated).sum();
        // `cpt` keeps the field's contract — cycles per *input* tuple —
        // with the makespan as the cycle count: the parallel cost of
        // pushing the whole table through.
        let input_rows: usize = plans.iter().flatten().map(|p| p.rows()).sum();
        let report = ExecutionReport {
            algorithm: aggregated.and_then(|r| r.algorithm),
            rows_aggregated: total_rows,
            cycles,
            cpt: if input_rows == 0 {
                0.0
            } else {
                cycles as f64 / input_rows as f64
            },
            steps: aggregated.map(|r| r.steps.clone()).unwrap_or_default(),
        };
        if let Some(t) = trace {
            t.cycles = report.cycles;
            t.rows = rows.len() as u64;
        }
        Ok(ShardedOutput {
            rows,
            report,
            shard_reports,
            worker_loads,
            steals,
            trace: None,
        })
    }
}

/// Surfaces a tripped [`CancelToken`] as the typed
/// [`SqlError::Cancelled`] — called right after each executor
/// submission returns, before any partial outcome is merged.
fn check_cancel(cancel: Option<&CancelToken>) -> Result<(), SqlError> {
    match cancel.and_then(CancelToken::cause) {
        Some(cause) => Err(SqlError::Cancelled(cause)),
        None => Ok(()),
    }
}

/// The rendered form of the first plan step matching `pred` across the
/// shard plans — the rollup key the coordinator's host-side finalisers
/// record their actuals under (the shards all plan the same tail).
fn find_plan_step(
    plans: &[Option<Arc<QueryPlan>>],
    pred: impl Fn(&PlanStep) -> bool,
) -> Option<String> {
    plans
        .iter()
        .flatten()
        .find_map(|p| p.steps().iter().find(|s| pred(s)).map(ToString::to_string))
}

/// Convenience: the merged output in [`QueryOutput`] form.
impl From<ShardedOutput> for QueryOutput {
    fn from(out: ShardedOutput) -> Self {
        QueryOutput {
            rows: out.rows,
            report: out.report,
        }
    }
}

// Coordinator-side HAVING over the merged (small) output table: the
// same semantics as the shards' vectorised kernel, applied host-side
// because the merged table lives on the coordinator host. Shared with
// the single-session cancellable morsel loop.
pub(crate) fn host_having(h: &Having, base: &mut AggResult, mm: &mut Option<(Vec<u32>, Vec<u32>)>) {
    let pred_col = agg_column(h.agg, base, mm).to_vec();
    let keep: Vec<bool> = pred_col.iter().map(|&x| h.pred.matches(x)).collect();
    let filter = |col: &mut Vec<u32>| {
        let mut it = keep.iter();
        col.retain(|_| *it.next().expect("keep mask covers every row"));
    };
    filter(&mut base.groups);
    filter(&mut base.counts);
    filter(&mut base.sums);
    if let Some((mins, maxs)) = mm {
        filter(mins);
        filter(maxs);
    }
}

// Coordinator-side ORDER BY + LIMIT: a stable sort on the same key the
// shards' radix kernel would use (complement for DESC), then truncate.
pub(crate) fn host_order_by(
    ob: &OrderBy,
    base: &mut AggResult,
    mm: &mut Option<(Vec<u32>, Vec<u32>)>,
) {
    let n = base.len();
    let keys: Vec<u32> = match ob.key {
        OrderKey::Group => base.groups.clone(),
        OrderKey::Agg(a) => agg_column(a, base, mm).to_vec(),
    };
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by_key(|&i| if ob.desc { u32::MAX - keys[i] } else { keys[i] });
    let keep = ob.limit.unwrap_or(n).min(n);
    let permute = |col: &mut Vec<u32>| {
        let reordered: Vec<u32> = idx.iter().take(keep).map(|&i| col[i]).collect();
        *col = reordered;
    };
    permute(&mut base.groups);
    permute(&mut base.counts);
    permute(&mut base.sums);
    if let Some((mins, maxs)) = mm {
        permute(mins);
        permute(maxs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SqlOutcome;

    fn events(n: usize) -> Table {
        Table::new("events")
            .with_column("g", (0..n).map(|i| ((i * 7919) % 23) as u32).collect())
            .with_column("v", (0..n).map(|i| ((i * 31) % 100) as u32).collect())
    }

    fn single_answer(n: usize, sql: &str) -> QueryOutput {
        let mut db = Database::new();
        db.register(events(n));
        db.execute_sql(sql).unwrap()
    }

    #[test]
    fn sharded_aggregates_match_a_single_session() {
        let sql = "SELECT g, COUNT(*), SUM(v), MIN(v), MAX(v), AVG(v) \
                   FROM events GROUP BY g";
        let single = single_answer(1000, sql);
        for shards in [1, 2, 4, 8] {
            let mut sharded = ShardedDatabase::new(shards);
            sharded.register(events(1000));
            let out = sharded.run_sql(sql).unwrap();
            assert_eq!(out.rows, single.rows, "{shards} shards");
            assert_eq!(out.report.rows_aggregated, 1000);
            assert_eq!(out.shard_reports.len(), shards);
        }
    }

    #[test]
    fn sharded_where_having_order_limit_match_a_single_session() {
        let sql = "SELECT g, COUNT(*), SUM(v) FROM events WHERE v > 40 \
                   GROUP BY g HAVING SUM(v) > 500 ORDER BY SUM(v) DESC LIMIT 5";
        let single = single_answer(1000, sql);
        let mut sharded = ShardedDatabase::new(4);
        sharded.register(events(1000));
        let out = sharded.run_sql(sql).unwrap();
        assert_eq!(out.rows, single.rows);
    }

    #[test]
    fn makespan_cycles_are_the_busiest_worker() {
        let mut sharded = ShardedDatabase::new(4);
        sharded.register(events(400));
        let out = sharded
            .run_sql("SELECT g, SUM(v) FROM events WHERE v > 40 GROUP BY g")
            .unwrap();
        let makespan = *out.worker_loads.iter().max().unwrap();
        assert_eq!(out.report.cycles, makespan);
        assert!(out.shard_reports.iter().all(|r| r.cycles > 0));
        // Every cycle of shard work is accounted to exactly one worker.
        assert_eq!(
            out.worker_loads.iter().sum::<u64>(),
            out.shard_reports.iter().map(|r| r.cycles).sum::<u64>()
        );
        // cpt keeps its contract: makespan cycles per *input* tuple
        // (400 rows entered the shards), not per surviving row.
        assert!(out.report.rows_aggregated < 400, "the filter removed rows");
        assert!((out.report.cpt - makespan as f64 / 400.0).abs() < 1e-12);
    }

    #[test]
    fn the_worker_pool_persists_across_queries() {
        let mut sharded = ShardedDatabase::new(2);
        sharded.register(events(200));
        assert_eq!(sharded.executor_config().workers, 2, "0 = shard count");
        for _ in 0..3 {
            sharded
                .run_sql("SELECT g, SUM(v) FROM events GROUP BY g")
                .unwrap();
        }
        let stats = sharded.executor_stats();
        assert_eq!(stats.queries, 3, "one pool served every query");
        assert!(stats.morsels >= 6, "at least one morsel per shard");
        // Rebuilding the pool resets its counters (the spawn-per-query
        // regime the bench measures).
        sharded
            .set_executor_config(ExecutorConfig {
                workers: 3,
                morsel_rows: 64,
                steal: false,
                ..ExecutorConfig::default()
            })
            .unwrap();
        assert_eq!(sharded.executor_stats(), ExecutorStats::default());
        let out = sharded
            .run_sql("SELECT g, SUM(v) FROM events GROUP BY g")
            .unwrap();
        assert_eq!(out.worker_loads.len(), 3);
        assert_eq!(out.steals, 0, "stealing disabled");
        assert_eq!(sharded.executor_stats().queries, 1);
        // Degenerate sizes are rejected with typed errors; the pool
        // (and its counters) survives the refused reconfiguration.
        let err = sharded
            .set_executor_config(ExecutorConfig {
                morsel_rows: 0,
                ..ExecutorConfig::default()
            })
            .unwrap_err();
        assert_eq!(err, crate::executor::ExecutorError::ZeroMorselRows);
        assert_eq!(sharded.executor_stats().queries, 1, "pool untouched");
    }

    #[test]
    fn stealing_levels_a_skewed_partition_without_changing_results() {
        let sql = "SELECT g, COUNT(*), SUM(v), MIN(v) FROM events GROUP BY g";
        let single = single_answer(1200, sql);
        let skewed_parts = |n: usize| {
            // 90% of the rows on shard 0, the rest spread thin.
            let t = events(n);
            let cuts = [0, n * 9 / 10, n * 29 / 30, n * 59 / 60, n];
            (0..4)
                .map(|i| {
                    let (lo, hi) = (cuts[i], cuts[i + 1]);
                    let mut part = Table::new("events");
                    for col in t.column_names() {
                        part = part.with_column(col, t.column(col).unwrap()[lo..hi].to_vec());
                    }
                    part
                })
                .collect::<Vec<_>>()
        };
        let mut makespans = Vec::new();
        for steal in [false, true] {
            let mut sharded = ShardedDatabase::with_executor(
                Engine::new(),
                4,
                ExecutorConfig {
                    workers: 4,
                    morsel_rows: 32,
                    steal,
                    ..ExecutorConfig::default()
                },
            );
            sharded.register_partitioned(skewed_parts(1200));
            // Warm the pool (first-touch cache misses), then measure —
            // the steady state a persistent pool exists for.
            sharded.run_sql(sql).unwrap();
            let out = sharded.run_sql(sql).unwrap();
            assert_eq!(out.rows, single.rows, "steal={steal}");
            if steal {
                assert!(out.steals > 0, "idle workers raided the hot shard");
            } else {
                assert_eq!(out.steals, 0);
            }
            makespans.push(out.report.cycles);
        }
        assert!(
            makespans[1] < makespans[0],
            "stealing shortened the skewed makespan: {} < {}",
            makespans[1],
            makespans[0]
        );
    }

    #[test]
    fn statements_refuse_a_database_with_a_different_shard_count() {
        let mut two = ShardedDatabase::new(2);
        two.register(events(100));
        let mut stmt = two
            .prepare("SELECT g, SUM(v) FROM events WHERE v > ? GROUP BY g")
            .unwrap();
        let mut four = ShardedDatabase::new(4);
        four.register(events(100));
        let e = four.execute_prepared(&mut stmt, &[10]).unwrap_err();
        assert_eq!(
            e,
            SqlError::ShardMismatch {
                statement: 2,
                database: 4
            }
        );
        assert!(e.to_string().contains("2 shard(s)"));
        // On its own database the statement still works.
        assert!(!two
            .execute_prepared(&mut stmt, &[10])
            .unwrap()
            .rows
            .is_empty());
    }

    #[test]
    fn more_shards_than_rows_skips_empty_partitions() {
        let mut sharded = ShardedDatabase::new(8);
        sharded.register(
            Table::new("events")
                .with_column("g", vec![1, 1, 2])
                .with_column("v", vec![10, 20, 30]),
        );
        let out = sharded
            .run_sql("SELECT g, COUNT(*), SUM(v) FROM events GROUP BY g")
            .unwrap();
        assert_eq!(out.rows.len(), 2);
        assert_eq!(out.report.rows_aggregated, 3);
        assert!(out.shard_reports.len() < 8, "empty shards never ran");
    }

    fn two_key_table(n: usize) -> Table {
        Table::new("t")
            .with_column("a", (0..n).map(|i| ((i * 13) % 5) as u32).collect())
            .with_column("b", (0..n).map(|i| ((i * 7) % 9) as u32).collect())
            .with_column("v", (0..n).map(|i| ((i * 3) % 50) as u32).collect())
    }

    #[test]
    fn composite_group_by_shards_and_matches_a_single_session() {
        // Shards fuse (a, b) with *locally* measured domains; the
        // shared key dictionary makes the partials mergeable and the
        // answer must match a single session bit for bit.
        let sql = "SELECT a, b, COUNT(*), SUM(v), MIN(v), MAX(v) FROM t \
                   WHERE v <> 7 GROUP BY a, b";
        let mut single = Database::new();
        single.register(two_key_table(300));
        let expect = single.execute_sql(sql).unwrap();
        for shards in [1, 2, 4, 7] {
            let mut sharded = ShardedDatabase::new(shards);
            sharded.register(two_key_table(300));
            let out = sharded.run_sql(sql).unwrap();
            assert_eq!(out.rows, expect.rows, "{shards} shards");
        }
    }

    #[test]
    fn composite_group_by_prepares_and_reads_snapshots() {
        let sql = "SELECT a, b, COUNT(*), SUM(v) FROM t WHERE v < ? GROUP BY a, b";
        let mut sharded = ShardedDatabase::new(3);
        sharded.register(two_key_table(120));
        let mut single = Database::new();
        single.register(two_key_table(120));

        // Prepared path.
        let mut stmt = sharded.prepare(sql).unwrap();
        let mut fresh = single.prepare(sql).unwrap();
        for threshold in [10u64, 40, 50] {
            let got = sharded.execute_prepared(&mut stmt, &[threshold]).unwrap();
            let expect = fresh.execute(&mut single, &[threshold]).unwrap();
            assert_eq!(got.rows, expect.rows, "threshold {threshold}");
        }

        // Snapshot paths keep answering the pinned cut after ingest.
        let snap = sharded.snapshot();
        let before = sharded.execute_prepared(&mut stmt, &[50]).unwrap();
        sharded
            .insert_sql("INSERT INTO t (a, b, v) VALUES (9, 9, 1), (9, 8, 2)")
            .unwrap();
        let at = sharded
            .execute_prepared_at(&mut stmt, &snap, &[50])
            .unwrap();
        assert_eq!(at.rows, before.rows, "pinned composite cut");
        let at = sharded
            .run_sql_at(
                &snap,
                "SELECT a, b, COUNT(*), SUM(v) FROM t WHERE v < 50 GROUP BY a, b",
            )
            .unwrap();
        assert_eq!(at.rows, before.rows);
        // The live read sees the two appended (9, *) groups.
        let live = sharded.execute_prepared(&mut stmt, &[50]).unwrap();
        assert_eq!(live.rows.len(), before.rows.len() + 2);
    }

    #[test]
    fn composite_group_by_with_tails_matches_a_single_session() {
        let sql = "SELECT a, b, COUNT(*), SUM(v) FROM t WHERE v > 2 GROUP BY a, b \
                   HAVING SUM(v) > 100 ORDER BY SUM(v) DESC LIMIT 7";
        let mut single = Database::new();
        single.register(two_key_table(400));
        let expect = single.execute_sql(sql).unwrap();
        let mut sharded = ShardedDatabase::new(4);
        sharded.register(two_key_table(400));
        let out = sharded.run_sql(sql).unwrap();
        assert_eq!(out.rows, expect.rows);
        assert!(!out.rows.is_empty());
        assert_eq!(out.rows[0].group_parts.len(), 2, "decomposed (a, b)");
    }

    #[test]
    fn cross_shard_composite_domain_overflow_is_typed() {
        // Each shard's own domain product fits u32, but the global
        // product (measured across shards) does not: shard 0 maxes a,
        // shard 1 maxes b.
        let mut sharded = ShardedDatabase::new(2);
        sharded.register_partitioned(vec![
            Table::new("t")
                .with_column("a", vec![1 << 17, 1])
                .with_column("b", vec![0, 1])
                .with_column("v", vec![1, 2]),
            Table::new("t")
                .with_column("a", vec![0, 1])
                .with_column("b", vec![1 << 17, 1])
                .with_column("v", vec![3, 4]),
        ]);
        let e = sharded
            .run_sql("SELECT a, b, COUNT(*) FROM t GROUP BY a, b")
            .unwrap_err();
        assert!(
            matches!(
                e,
                SqlError::Plan(PlanError::CompositeKeyOverflow { domain })
                    if domain > u32::MAX as u64
            ),
            "got {e:?}"
        );
    }

    #[test]
    fn prepared_sharded_pipeline_matches_fresh_sql() {
        let mut sharded = ShardedDatabase::new(4);
        sharded.register(events(800));
        let mut stmt = sharded
            .prepare("SELECT g, COUNT(*), SUM(v), MIN(v) FROM events WHERE v < ? GROUP BY g")
            .unwrap();
        for threshold in [10u64, 50, 99, 1] {
            let prepared = sharded.execute_prepared(&mut stmt, &[threshold]).unwrap();
            let fresh = single_answer(
                800,
                &format!(
                    "SELECT g, COUNT(*), SUM(v), MIN(v) FROM events \
                     WHERE v < {threshold} GROUP BY g"
                ),
            );
            assert_eq!(prepared.rows, fresh.rows, "threshold {threshold}");
        }
        assert_eq!(stmt.executions(), 4);
        assert_eq!(stmt.replans(), 0, "bound four times, planned once");
        assert_eq!(stmt.parameter_count(), 1);
        assert_eq!(stmt.stmts.len(), 4);
    }

    #[test]
    fn sharded_filter_removing_everything_yields_empty_rows() {
        let mut sharded = ShardedDatabase::new(3);
        sharded.register(events(90));
        let out = sharded
            .run_sql("SELECT g, SUM(v) FROM events WHERE v > 1000 GROUP BY g")
            .unwrap();
        assert!(out.rows.is_empty());
        assert_eq!(out.report.algorithm, None);
        assert_eq!(out.report.rows_aggregated, 0);
    }

    #[test]
    fn explain_is_rejected_but_explain_sql_plans() {
        let mut sharded = ShardedDatabase::new(2);
        sharded.register(events(100));
        let e = sharded
            .run_sql("EXPLAIN SELECT g, SUM(v) FROM events GROUP BY g")
            .unwrap_err();
        assert_eq!(e, SqlError::ExplainStatement);
        let out = sharded
            .explain_sql("SELECT g, SUM(v) FROM events GROUP BY g")
            .unwrap();
        let plan = out.plan().expect("non-join SELECT yields a query plan");
        assert_eq!(plan.rows(), 50, "plans one shard's partition");
    }

    #[test]
    fn unknown_table_is_reported() {
        let mut sharded = ShardedDatabase::new(2);
        let e = sharded
            .run_sql("SELECT g, SUM(v) FROM nope GROUP BY g")
            .unwrap_err();
        assert_eq!(e, SqlError::UnknownTable("nope".into()));
    }

    #[test]
    fn sharded_snapshots_are_an_atomic_cross_shard_cut() {
        let sql = "SELECT g, COUNT(*), SUM(v) FROM events GROUP BY g";
        let mut sharded = ShardedDatabase::new(4);
        sharded.register(events(400));
        let snap = sharded.snapshot();
        let before = sharded.run_sql(sql).unwrap();

        // Routed ingest mutates the live table...
        sharded
            .insert_sql("INSERT INTO events (g, v) VALUES (0, 1), (1, 2), (2, 3), (3, 4), (4, 5)")
            .unwrap();
        assert_eq!(sharded.run_sql(sql).unwrap().report.rows_aggregated, 405);

        // ...and the snapshot keeps answering the pre-append cut on
        // every shard: no shard mixes post-append rows in.
        let at = sharded.run_sql_at(&snap, sql).unwrap();
        assert_eq!(at.rows, before.rows);
        assert_eq!(at.report.rows_aggregated, 400);
        assert_eq!(snap.data_versions("events"), Some(vec![1, 1, 1, 1]));
    }

    #[test]
    fn sharded_snapshot_misuse_is_typed() {
        let mut four = ShardedDatabase::new(4);
        four.register(events(100));
        let snap = four.snapshot();
        // Wrong shard count.
        let mut two = ShardedDatabase::new(2);
        two.register(events(100));
        let e = two
            .run_sql_at(&snap, "SELECT g, SUM(v) FROM events GROUP BY g")
            .unwrap_err();
        assert_eq!(
            e,
            SqlError::SnapshotShardMismatch {
                snapshot: 4,
                database: 2
            }
        );
        assert!(e.to_string().contains("4 shard(s)"));
        // Right count, wrong catalogues.
        let mut other = ShardedDatabase::new(4);
        other.register(events(100));
        let e = other
            .run_sql_at(&snap, "SELECT g, SUM(v) FROM events GROUP BY g")
            .unwrap_err();
        assert_eq!(e, SqlError::ForeignSnapshot);
        // Writes and transaction brackets are rejected.
        let e = four
            .run_sql_at(&snap, "INSERT INTO events (g, v) VALUES (1, 2)")
            .unwrap_err();
        assert_eq!(e, SqlError::ReadOnly);
        let e = four.run_sql_at(&snap, "BEGIN READ ONLY").unwrap_err();
        assert_eq!(e, SqlError::TransactionStatement);
    }

    #[test]
    fn prepared_statements_execute_at_sharded_snapshots() {
        let sql = "SELECT g, COUNT(*), SUM(v) FROM events WHERE v < ? GROUP BY g";
        let mut sharded = ShardedDatabase::new(3);
        sharded.register(events(90));
        let mut stmt = sharded.prepare(sql).unwrap();
        let snap = sharded.snapshot();
        let before = sharded.execute_prepared(&mut stmt, &[100]).unwrap();
        sharded
            .insert_sql("INSERT INTO events (g, v) VALUES (1, 1), (2, 2)")
            .unwrap();
        let at = sharded
            .execute_prepared_at(&mut stmt, &snap, &[100])
            .unwrap();
        assert_eq!(at.rows, before.rows, "pinned cross-shard cut");
        let live = sharded.execute_prepared(&mut stmt, &[100]).unwrap();
        assert_eq!(live.report.rows_aggregated, 92);
        assert_eq!(stmt.executions(), 3);
    }

    #[test]
    fn sharded_drift_accessors_mirror_the_single_session_ones() {
        let mut sharded = ShardedDatabase::new(4);
        sharded.register(events(100));
        assert_eq!(sharded.data_versions("events"), Some(vec![1, 1, 1, 1]));
        assert_eq!(sharded.data_version("events"), Some(1));
        assert_eq!(sharded.data_versions("nope"), None);
        assert!(sharded.table_stats("nope").is_none());

        // A 3-row insert lands whole on the smallest shard: one
        // per-shard bump, merged version 1 + 1.
        sharded
            .insert_sql("INSERT INTO events (g, v) VALUES (50, 200), (1, 2), (2, 3)")
            .unwrap();
        let versions = sharded.data_versions("events").unwrap();
        assert_eq!(versions.iter().filter(|&&v| v == 2).count(), 1);
        assert_eq!(sharded.data_version("events"), Some(2));

        // Merged statistics cover every partition.
        let stats = sharded.table_stats("events").unwrap();
        assert_eq!(stats.rows(), 103);
        assert_eq!(stats.column("g").unwrap().max, Some(50));
        assert_eq!(stats.column("v").unwrap().max, Some(200));
        let per_shard = sharded.table_stats_per_shard("events").unwrap();
        assert_eq!(per_shard.len(), 4);
        assert_eq!(per_shard.iter().map(TableStats::rows).sum::<usize>(), 103);

        // Snapshot counters aggregate across shard catalogues.
        let snap = sharded.snapshot();
        let stats = sharded.snapshot_stats();
        assert_eq!(stats.live_snapshots, 4, "one cut per shard");
        assert!(stats.live_pins >= 4);
        drop(snap);
        assert_eq!(sharded.snapshot_stats().live_snapshots, 0);
    }

    #[test]
    fn routed_ingest_matches_a_single_session() {
        let sql = "SELECT g, COUNT(*), SUM(v), MIN(v), MAX(v) FROM events GROUP BY g";
        let mut sharded = ShardedDatabase::new(4);
        sharded.register(events(200));

        let mut single = Database::new();
        single.register(events(200));

        // Stream several batches through both write paths.
        for (lo, hi) in [(0u32, 40u32), (40, 41), (41, 100)] {
            let g: Vec<u32> = (lo..hi).map(|i| i % 17).collect();
            let v: Vec<u32> = (lo..hi).map(|i| i % 50).collect();
            let batch = || {
                RowBatch::new()
                    .with_column("g", g.clone())
                    .with_column("v", v.clone())
            };
            let receipt = sharded.append_rows("events", batch()).unwrap();
            assert_eq!(receipt.rows, (hi - lo) as usize);
            assert_eq!(receipt.per_shard.iter().sum::<usize>(), receipt.rows);
            single.append_rows("events", batch()).unwrap();
            let got = sharded.run_sql(sql).unwrap();
            let expect = single.execute_sql(sql).unwrap();
            assert_eq!(got.rows, expect.rows, "after batch {lo}..{hi}");
        }
    }

    fn shard_rows(sharded: &ShardedDatabase) -> Vec<usize> {
        sharded
            .shards()
            .iter()
            .map(|s| s.table("events").unwrap().rows())
            .collect()
    }

    #[test]
    fn equal_shards_take_turns_like_round_robin() {
        let mut sharded = ShardedDatabase::new(4);
        sharded.register(events(0));
        // 6 one-row batches over all-equal shards: the tie-break cursor
        // spreads them 2/2/1/1 instead of piling all six onto shard 0.
        for i in 0..6u32 {
            let r = sharded
                .append_rows(
                    "events",
                    RowBatch::new()
                        .with_column("g", vec![i])
                        .with_column("v", vec![i]),
                )
                .unwrap();
            assert_eq!(r.rows, 1);
            assert_eq!(r.per_shard.iter().sum::<usize>(), 1);
        }
        assert_eq!(shard_rows(&sharded), vec![2, 2, 1, 1]);
    }

    #[test]
    fn uneven_batches_route_to_the_smallest_shard_and_stay_balanced() {
        let mut sharded = ShardedDatabase::new(3);
        sharded.register(events(0));
        // Interleaved uneven batches: blind rotation would pile the big
        // batches onto whichever shard the cursor happened to point at;
        // size-aware routing keeps the partitions level.
        let batch = |rows: usize| {
            RowBatch::new()
                .with_column("g", vec![1; rows])
                .with_column("v", vec![2; rows])
        };
        for &rows in &[10usize, 1, 1, 10, 1, 1, 10, 4, 4, 2] {
            sharded.append_rows("events", batch(rows)).unwrap();
        }
        let sizes = shard_rows(&sharded);
        assert_eq!(sizes.iter().sum::<usize>(), 44);
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(
            max - min <= 10,
            "partitions stay within one max-batch of each other: {sizes:?}"
        );
        // The big batches went to three *different* shards (each was
        // smallest when its batch arrived).
        assert!(sizes.iter().all(|&s| s >= 10), "{sizes:?}");
    }

    #[test]
    fn sharded_insert_sql_routes_and_rejects_misuse() {
        let mut sharded = ShardedDatabase::new(2);
        sharded.register(events(10));
        let receipt = sharded
            .insert_sql("INSERT INTO events (g, v) VALUES (1, 2), (3, 4), (5, 6)")
            .unwrap();
        assert_eq!(receipt.rows, 3);
        assert_eq!(receipt.per_shard, vec![3, 0], "whole batch, one shard");
        let out = sharded
            .run_sql("SELECT g, COUNT(*), SUM(v) FROM events GROUP BY g")
            .unwrap();
        assert_eq!(out.report.rows_aggregated, 13);

        // run_sql refuses INSERT (typed, nothing appended)...
        let e = sharded
            .run_sql("INSERT INTO events (g, v) VALUES (1, 2)")
            .unwrap_err();
        assert_eq!(e, SqlError::InsertStatement);
        // ...and insert_sql refuses SELECT.
        let e = sharded
            .insert_sql("SELECT g, SUM(v) FROM events GROUP BY g")
            .unwrap_err();
        assert!(matches!(e, SqlError::Parse(_)));
        assert_eq!(
            sharded
                .run_sql("SELECT g, COUNT(*), SUM(v) FROM events GROUP BY g")
                .unwrap()
                .report
                .rows_aggregated,
            13
        );
    }

    #[test]
    fn rejected_sharded_batches_mutate_no_shard() {
        use crate::ingest::IngestError;
        let mut sharded = ShardedDatabase::new(2);
        sharded.register(events(10));
        // Ragged batch: shard 0's sub-batch alone would be valid (one
        // row of each column), so the pre-validation is load-bearing.
        let e = sharded
            .append_rows(
                "events",
                RowBatch::new()
                    .with_column("g", vec![1, 2])
                    .with_column("v", vec![9]),
            )
            .unwrap_err();
        assert_eq!(
            e,
            SqlError::Ingest(IngestError::RaggedBatch {
                column: "v".into(),
                rows: 1,
                expected: 2
            })
        );
        for shard in sharded.shards() {
            assert_eq!(shard.table("events").unwrap().rows(), 5);
        }
        let e = sharded
            .append_rows("nope", RowBatch::new().with_column("g", vec![1]))
            .unwrap_err();
        assert_eq!(e, SqlError::UnknownTable("nope".into()));
    }

    #[test]
    fn per_shard_compaction_triggers_independently() {
        use crate::ingest::CompactionPolicy;
        let mut sharded = ShardedDatabase::new(2);
        sharded.register(events(4));
        sharded.set_compaction_policy(CompactionPolicy::every(2));
        // Two 2-row batches: the router sends one to each shard (the
        // second shard is smallest after the first lands), and each
        // shard's delta hits its own threshold.
        for _ in 0..2 {
            let receipt = sharded
                .append_rows(
                    "events",
                    RowBatch::new()
                        .with_column("g", vec![1, 2])
                        .with_column("v", vec![1, 2]),
                )
                .unwrap();
            assert_eq!(receipt.compactions, 1);
        }
        for shard in sharded.shards() {
            assert_eq!(shard.catalogue().delta_rows("events"), Some(0));
            assert_eq!(shard.table("events").unwrap().rows(), 4);
        }
    }

    #[test]
    fn prepared_sharded_statements_see_appended_rows() {
        let mut sharded = ShardedDatabase::new(3);
        sharded.register(events(90));
        let mut stmt = sharded
            .prepare("SELECT g, COUNT(*), SUM(v) FROM events WHERE v < ? GROUP BY g")
            .unwrap();
        let before = sharded.execute_prepared(&mut stmt, &[100]).unwrap();
        assert_eq!(before.report.rows_aggregated, 90);
        sharded
            .insert_sql("INSERT INTO events (g, v) VALUES (0, 1), (1, 2), (2, 3)")
            .unwrap();
        let after = sharded.execute_prepared(&mut stmt, &[100]).unwrap();
        assert_eq!(after.report.rows_aggregated, 93, "ingest visible");
        assert_eq!(stmt.replans(), 0, "no shard's §V-D choice flipped");
    }

    #[test]
    fn empty_table_fails_prepared_execution_like_run_sql() {
        // With zero rows everywhere, no shard ever validated the query
        // at plan time — execution must fail with the same typed error
        // run_sql gives, never reach the coordinator tail.
        let mut sharded = ShardedDatabase::new(2);
        sharded.register(
            Table::new("r")
                .with_column("g", Vec::new())
                .with_column("v", Vec::new()),
        );
        let sql = "SELECT g, SUM(v), AVG(v) FROM r GROUP BY g HAVING AVG(v) > ?";
        // Prepare succeeds (nothing to plan against yet)...
        let mut stmt = sharded.prepare(sql).unwrap();
        // ...and execution reports EmptyTable, exactly like run_sql.
        let e = sharded.execute_prepared(&mut stmt, &[1]).unwrap_err();
        assert_eq!(e, SqlError::Plan(PlanError::EmptyTable));
        let e = sharded
            .run_sql("SELECT g, SUM(v) FROM r GROUP BY g")
            .unwrap_err();
        assert_eq!(e, SqlError::Plan(PlanError::EmptyTable));

        // Once rows arrive, the invalid HAVING AVG is caught by the
        // shard planner as a typed error, not a panic.
        sharded.register(
            Table::new("r")
                .with_column("g", vec![1, 2])
                .with_column("v", vec![3, 4]),
        );
        let e = sharded.execute_prepared(&mut stmt, &[1]).unwrap_err();
        assert_eq!(
            e,
            SqlError::Plan(PlanError::UnsupportedAvgPredicate { clause: "HAVING" })
        );
    }

    #[test]
    fn sharded_mutations_match_a_single_session() {
        let delete = "DELETE FROM events WHERE v > 80";
        let update = "UPDATE events SET v = 5 WHERE g <> 3";
        let sql = "SELECT g, COUNT(*), SUM(v) FROM events GROUP BY g";
        let single = {
            let mut db = Database::new();
            db.register(events(400));
            let deleted = match db.run_sql(delete).unwrap() {
                SqlOutcome::Deleted(r) => r.rows,
                other => panic!("DELETE reports a receipt: {other:?}"),
            };
            let updated = match db.run_sql(update).unwrap() {
                SqlOutcome::Updated(r) => r.rows,
                other => panic!("UPDATE reports a receipt: {other:?}"),
            };
            (deleted, updated, db.execute_sql(sql).unwrap().rows)
        };
        let mut sharded = ShardedDatabase::new(4);
        sharded.register(events(400));
        let deleted = sharded.mutate_sql(delete).unwrap();
        assert_eq!(deleted.rows, single.0, "same rows tombstoned in total");
        let updated = sharded.mutate_sql(update).unwrap();
        assert_eq!(updated.rows, single.1);
        assert_eq!(sharded.run_sql(sql).unwrap().rows, single.2);
    }

    #[test]
    fn sharded_mutate_sql_rejects_non_mutations_and_bad_columns() {
        let mut sharded = ShardedDatabase::new(2);
        sharded.register(events(50));
        assert!(matches!(
            sharded.mutate_sql("SELECT g, COUNT(*) FROM events GROUP BY g"),
            Err(SqlError::Parse(_))
        ));
        assert!(matches!(
            sharded.mutate_sql("INSERT INTO events (g, v) VALUES (1, 2)"),
            Err(SqlError::InsertStatement)
        ));
        assert_eq!(
            sharded
                .mutate_sql("UPDATE events SET nope = 1 WHERE g > 3")
                .unwrap_err(),
            SqlError::Plan(PlanError::UnknownColumn("nope".into()))
        );
        // The failed validation applied nothing on any shard.
        assert_eq!(sharded.data_version("events"), Some(1));
    }

    #[test]
    fn sharded_time_travel_is_rejected_with_a_typed_error() {
        let mut sharded = ShardedDatabase::new(2);
        sharded.register(events(50));
        let as_of = "SELECT g, COUNT(*) FROM events AS OF x GROUP BY g";
        assert_eq!(
            sharded.run_sql(as_of).unwrap_err(),
            SqlError::ShardedTimeTravel
        );
        assert_eq!(
            sharded
                .explain_sql(&format!("EXPLAIN {as_of}"))
                .unwrap_err(),
            SqlError::ShardedTimeTravel
        );
        assert_eq!(
            sharded.mutate_sql("CREATE SNAPSHOT x").unwrap_err(),
            SqlError::ShardedTimeTravel
        );
        let snap = sharded.snapshot();
        assert_eq!(
            sharded.run_sql_at(&snap, as_of).unwrap_err(),
            SqlError::ShardedTimeTravel
        );
    }

    #[test]
    fn durable_sharded_open_reopen_round_trip() {
        let dir = crate::tempdir::TempDir::new("shard-reopen");
        let sql = "SELECT g, COUNT(*), SUM(v) FROM events GROUP BY g";
        let before = {
            let mut db = ShardedDatabase::open(dir.path(), 3).unwrap();
            assert!(db.is_durable());
            db.register(events(200));
            db.insert_sql("INSERT INTO events (g, v) VALUES (50, 1), (50, 2)")
                .unwrap();
            db.mutate_sql("DELETE FROM events WHERE v > 90").unwrap();
            db.mutate_sql("UPDATE events SET v = 9 WHERE g > 20")
                .unwrap();
            (db.run_sql(sql).unwrap().rows, db.data_versions("events"))
        };
        // Reopen asks for 8 shards, but the 3 partitions on disk win.
        let mut db = ShardedDatabase::open(dir.path(), 8).unwrap();
        assert_eq!(db.shard_count(), 3);
        assert_eq!(db.run_sql(sql).unwrap().rows, before.0);
        assert_eq!(db.data_versions("events"), before.1);
        // The reopened database keeps logging.
        db.insert_sql("INSERT INTO events (g, v) VALUES (51, 3)")
            .unwrap();
        let after = db.run_sql(sql).unwrap().rows;
        drop(db);
        let mut db = ShardedDatabase::open(dir.path(), 3).unwrap();
        assert_eq!(db.run_sql(sql).unwrap().rows, after);
    }

    #[test]
    fn cross_shard_mutation_without_coordinator_commit_rolls_back() {
        let dir = crate::tempdir::TempDir::new("shard-torn");
        let sql = "SELECT g, COUNT(*), SUM(v) FROM events GROUP BY g";
        let coord = dir.path().join("coordinator.log");
        let (before, registered_len) = {
            let mut db = ShardedDatabase::open(dir.path(), 2).unwrap();
            db.set_compaction_policy(CompactionPolicy::never());
            db.register(events(100));
            let keep = db.run_sql(sql).unwrap().rows;
            let len = std::fs::metadata(&coord).unwrap().len();
            db.mutate_sql("DELETE FROM events WHERE v > 50").unwrap();
            (keep, len)
        };
        // Erase the delete's coordinator commit record: the crash
        // happened after the shard logs flushed but before the global
        // commit. (The register's earlier commit record stays.)
        assert!(std::fs::metadata(&coord).unwrap().len() > registered_len);
        crate::wal::truncate(&coord, registered_len).unwrap();
        let mut db = ShardedDatabase::open(dir.path(), 2).unwrap();
        assert_eq!(
            db.run_sql(sql).unwrap().rows,
            before,
            "the delete rolls back on every shard at once"
        );
    }
}
