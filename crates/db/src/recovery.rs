//! Crash recovery: replaying a validated write-ahead log into an empty
//! [`SharedCatalogue`].
//!
//! Replay mirrors the live write paths exactly — autocommit batches go
//! through [`SharedCatalogue::append`] (incremental statistics), every
//! DELETE/UPDATE and every committed transaction goes through
//! [`SharedCatalogue::apply_ops`] — so version counters and statistics
//! come out identical to the pre-crash state, not merely equivalent.
//!
//! Two passes:
//!
//! 1. Collect the **committed set**: transaction ids with a commit
//!    record in this log, plus any ids the caller vouches for (the
//!    sharded coordinator's commit records live in a separate log).
//! 2. Apply records in LSN order. Records of uncommitted transactions
//!    are skipped — an open transaction at crash time rolls back by
//!    omission. Records of one committed transaction form a contiguous
//!    run (the writer holds `&mut self` across a transaction), applied
//!    as a single atomic [`SharedCatalogue::apply_ops`] batch at the
//!    run's log position.
//!
//! The caller ([`crate::Database::open`]) disables compaction for the
//! duration: every compaction that happened live rewrote the log, so
//! no surviving record should re-trip one during replay.

use crate::catalogue::{CatOp, NamedTables, SharedCatalogue};
use crate::database::SqlError;
use crate::ingest::RowBatch;
use crate::table::Table;
use crate::wal::WalRecord;
use std::collections::BTreeSet;

/// Rebuilds `columns` into a [`Table`] named `name`.
fn table_from(name: &str, columns: &[(String, Vec<u32>)]) -> Table {
    let mut t = Table::new(name);
    for (column, values) in columns {
        t = t.with_column(column, values.clone());
    }
    t
}

/// Rebuilds `columns` into a [`RowBatch`].
fn batch_from(columns: &[(String, Vec<u32>)]) -> RowBatch {
    let mut b = RowBatch::new();
    for (column, values) in columns {
        b = b.with_column(column, values.clone());
    }
    b
}

/// The transaction ids this log commits: autocommit (0), every id with
/// a [`WalRecord::Commit`] record, and the caller-supplied extras (the
/// sharded coordinator's cross-shard commit set).
pub(crate) fn committed_set(
    records: &[(u64, WalRecord)],
    extra_committed: &BTreeSet<u64>,
) -> BTreeSet<u64> {
    let mut committed: BTreeSet<u64> = extra_committed.clone();
    committed.insert(crate::wal::AUTOCOMMIT);
    for (_, record) in records {
        if let WalRecord::Commit { txn } = record {
            committed.insert(*txn);
        }
    }
    committed
}

/// Replays a validated log into `catalogue` (normally empty — a
/// freshly opened database). See the [module docs](self) for the
/// ordering and atomicity rules.
pub(crate) fn replay(
    catalogue: &SharedCatalogue,
    records: &[(u64, WalRecord)],
    extra_committed: &BTreeSet<u64>,
) -> Result<(), SqlError> {
    let committed = committed_set(records, extra_committed);
    // Ops of the committed transaction run currently being collected;
    // flushed through one `apply_ops` when the run ends.
    let mut run: Vec<CatOp> = Vec::new();
    let mut run_txn = crate::wal::AUTOCOMMIT;
    macro_rules! flush_run {
        () => {
            if !run.is_empty() {
                catalogue.apply_ops(&run)?;
                run.clear();
            }
        };
    }
    for (_, record) in records {
        let txn = record.txn();
        if txn != run_txn {
            flush_run!();
            run_txn = txn;
        }
        if !committed.contains(&txn) {
            continue; // Uncommitted at crash time: rolled back by omission.
        }
        match record {
            WalRecord::Commit { .. } => {}
            WalRecord::CreateSnapshot { name } => {
                flush_run!();
                catalogue.create_named(name)?;
            }
            WalRecord::SnapshotImage { name, tables } => {
                flush_run!();
                let mut frozen = NamedTables::new();
                for (table, data_version, columns) in tables {
                    frozen.insert(table.clone(), (*data_version, table_from(table, columns)));
                }
                catalogue.install_named(name.clone(), frozen);
            }
            WalRecord::Register {
                table,
                schema_version,
                data_version,
                columns,
                ..
            } => {
                // Registration is not a CatOp: apply the pending run
                // first so in-transaction ordering is preserved.
                flush_run!();
                catalogue.register_at(table_from(table, columns), *schema_version, *data_version);
            }
            WalRecord::Batch { table, columns, .. } => {
                if txn == crate::wal::AUTOCOMMIT {
                    // The live autocommit INSERT path: incremental
                    // statistics via `observe`, same as when logged.
                    catalogue.append(table, batch_from(columns))?;
                } else {
                    run.push(CatOp::Append {
                        table: table.clone(),
                        batch: batch_from(columns),
                    });
                }
            }
            WalRecord::Delete { table, rows, .. } => {
                let op = CatOp::Delete {
                    table: table.clone(),
                    rows: rows.clone(),
                };
                if txn == crate::wal::AUTOCOMMIT {
                    catalogue.apply_ops(&[op])?;
                } else {
                    run.push(op);
                }
            }
            WalRecord::Update {
                table, rows, sets, ..
            } => {
                let op = CatOp::Update {
                    table: table.clone(),
                    rows: rows.clone(),
                    sets: sets.clone(),
                };
                if txn == crate::wal::AUTOCOMMIT {
                    catalogue.apply_ops(&[op])?;
                } else {
                    run.push(op);
                }
            }
        }
    }
    flush_run!();
    Ok(())
}
