//! The unified metrics registry — one place every subsystem reports to.
//!
//! The engine's stats were historically scattered (`CacheStats`,
//! `ExecutorStats`, `SnapshotStats`, ingest receipts, WAL internals).
//! [`MetricsRegistry`] is the cheap, lock-light sink they all fold into:
//! plain relaxed [`AtomicU64`] counters plus a log₂ histogram of query
//! cycles, with the only lock a small [`Mutex`] around the slow-query
//! ring that is taken *only* when a query crosses the configured
//! threshold. One registry lives in each [`crate::SharedCatalogue`], so
//! every session, executor worker and recovery path connected to a
//! catalogue reports to the same place.
//!
//! [`Database::metrics`](crate::Database::metrics) snapshots the
//! registry and folds in the point-in-time stats (plan cache, snapshots,
//! WAL writer, executor) as a [`MetricsSnapshot`], which renders to a
//! Prometheus-style text format ([`MetricsSnapshot::to_text`]) or JSON
//! ([`MetricsSnapshot::to_json`]).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;

/// Buckets in the log₂ query-cycle histogram: bucket `b` counts queries
/// whose simulated cycle cost was in `[2^(b-1), 2^b)` (bucket 0 counts
/// zero-cycle queries; the last bucket absorbs everything larger).
pub const CYCLE_HISTOGRAM_BUCKETS: usize = 24;

/// Default capacity of the slow-query ring.
const SLOW_LOG_CAPACITY: usize = 16;

/// One retained slow query: the shape that ran, what it cost, and how
/// many plan steps it executed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowQuery {
    /// The query's rendered SQL shape (constants included, binds as
    /// written).
    pub sql: String,
    /// Simulated cycles the query cost.
    pub cycles: u64,
    /// Result rows it returned.
    pub rows: u64,
    /// Plan steps it executed.
    pub steps: usize,
}

#[derive(Debug)]
struct SlowLog {
    /// Queries at or above this many cycles are retained.
    threshold: u64,
    /// Worst-N ring bound.
    capacity: usize,
    /// Kept sorted by descending cycles, truncated to `capacity`.
    worst: Vec<SlowQuery>,
}

impl Default for SlowLog {
    fn default() -> Self {
        Self {
            threshold: 0,
            capacity: SLOW_LOG_CAPACITY,
            worst: Vec::new(),
        }
    }
}

/// The catalogue-owned sink of engine counters. All methods take `&self`
/// and are safe to call from any worker; see the module docs for the
/// cost model.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    queries: AtomicU64,
    query_rows: AtomicU64,
    query_cycles: AtomicU64,
    queries_cancelled: AtomicU64,
    traced_queries: AtomicU64,
    ingest_batches: AtomicU64,
    ingest_rows: AtomicU64,
    compactions: AtomicU64,
    wal_replayed_records: AtomicU64,
    morsels_pruned: AtomicU64,
    rows_pruned: AtomicU64,
    cycle_histogram: [AtomicU64; CYCLE_HISTOGRAM_BUCKETS],
    slow: Mutex<SlowLog>,
}

impl MetricsRegistry {
    /// A fresh registry with every counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one executed query: bumps the counters, buckets the cycle
    /// cost, and retains the query in the slow ring if it crossed the
    /// threshold.
    pub(crate) fn record_query(&self, sql: &str, cycles: u64, rows: u64, steps: usize) {
        self.queries.fetch_add(1, Relaxed);
        self.query_rows.fetch_add(rows, Relaxed);
        self.query_cycles.fetch_add(cycles, Relaxed);
        let bucket = (64 - cycles.leading_zeros() as usize).min(CYCLE_HISTOGRAM_BUCKETS - 1);
        self.cycle_histogram[bucket].fetch_add(1, Relaxed);

        let mut slow = self.slow.lock().expect("slow-query log poisoned");
        if cycles >= slow.threshold {
            let cap = slow.capacity;
            if slow.worst.len() == cap && slow.worst.last().is_some_and(|w| w.cycles >= cycles) {
                return;
            }
            let at = slow.worst.partition_point(|w| w.cycles >= cycles);
            slow.worst.insert(
                at,
                SlowQuery {
                    sql: sql.to_string(),
                    cycles,
                    rows,
                    steps,
                },
            );
            slow.worst.truncate(cap);
        }
    }

    /// Records one traced (`EXPLAIN ANALYZE`) execution.
    pub(crate) fn record_traced_query(&self) {
        self.traced_queries.fetch_add(1, Relaxed);
    }

    /// Records one query that surfaced
    /// [`SqlError::Cancelled`](crate::SqlError::Cancelled) — explicit
    /// cancel, timeout, or morsel-budget trip alike.
    pub(crate) fn record_cancelled(&self) {
        self.queries_cancelled.fetch_add(1, Relaxed);
    }

    /// Records one ingested batch.
    pub(crate) fn record_ingest(&self, rows: u64) {
        self.ingest_batches.fetch_add(1, Relaxed);
        self.ingest_rows.fetch_add(rows, Relaxed);
    }

    /// Records one installed delta compaction.
    pub(crate) fn record_compaction(&self) {
        self.compactions.fetch_add(1, Relaxed);
    }

    /// Records morsels (and the rows they covered) a query skipped
    /// because their zone maps proved the WHERE predicate matches no
    /// row in their range.
    pub(crate) fn record_pruned(&self, morsels: u64, rows: u64) {
        self.morsels_pruned.fetch_add(morsels, Relaxed);
        self.rows_pruned.fetch_add(rows, Relaxed);
    }

    /// Records WAL records replayed during crash recovery.
    pub(crate) fn record_replay(&self, records: u64) {
        self.wal_replayed_records.fetch_add(records, Relaxed);
    }

    /// Sets the slow-query retention threshold in simulated cycles
    /// (default 0: every query competes for the worst-N ring).
    pub fn set_slow_query_threshold(&self, cycles: u64) {
        self.slow.lock().expect("slow-query log poisoned").threshold = cycles;
    }

    /// The retained worst queries, most expensive first.
    pub fn slow_queries(&self) -> Vec<SlowQuery> {
        self.slow
            .lock()
            .expect("slow-query log poisoned")
            .worst
            .clone()
    }

    /// A point-in-time snapshot of the registry's own counters. The
    /// owning `Database`/`ShardedDatabase` folds the other subsystems'
    /// stats in on top (see [`crate::Database::metrics`]).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot {
            counters: BTreeMap::new(),
            cycle_histogram: self
                .cycle_histogram
                .iter()
                .map(|b| b.load(Relaxed))
                .collect(),
            slow: self.slow_queries(),
        };
        snap.add("queries", self.queries.load(Relaxed));
        snap.add("query_rows", self.query_rows.load(Relaxed));
        snap.add("query_cycles", self.query_cycles.load(Relaxed));
        snap.add("queries_cancelled", self.queries_cancelled.load(Relaxed));
        snap.add("traced_queries", self.traced_queries.load(Relaxed));
        snap.add("ingest_batches", self.ingest_batches.load(Relaxed));
        snap.add("ingest_rows", self.ingest_rows.load(Relaxed));
        snap.add("compactions", self.compactions.load(Relaxed));
        snap.add("morsels_pruned", self.morsels_pruned.load(Relaxed));
        snap.add("rows_pruned", self.rows_pruned.load(Relaxed));
        snap.add(
            "wal_replayed_records",
            self.wal_replayed_records.load(Relaxed),
        );
        snap
    }
}

/// A point-in-time fold of every engine counter: the registry's own
/// atomics plus the plan-cache, snapshot, WAL and executor stats the
/// owning database merged in.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    counters: BTreeMap<String, u64>,
    cycle_histogram: Vec<u64>,
    slow: Vec<SlowQuery>,
}

impl MetricsSnapshot {
    /// Adds `value` to the named counter (creating it at zero) — how
    /// the owning database (and the serving layer on top of it) folds
    /// subsystem stats into one exposition.
    pub fn add(&mut self, name: &str, value: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += value;
    }

    /// The named counter, if any subsystem reported it.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Every counter, name-sorted.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// The log₂ query-cycle histogram (see [`CYCLE_HISTOGRAM_BUCKETS`]).
    pub fn cycle_histogram(&self) -> &[u64] {
        &self.cycle_histogram
    }

    /// The quantile `q` (in `0.0..=1.0`) of the query-cycle
    /// distribution, resolved to its histogram bucket's upper bound —
    /// the same `le` bound [`MetricsSnapshot::to_text`] renders, so
    /// p50/p99 read off this are consistent with the exposition. The
    /// overflow bucket reports `u64::MAX`. `None` when no query has
    /// been recorded.
    pub fn cycle_quantile(&self, q: f64) -> Option<u64> {
        let total: u64 = self.cycle_histogram.iter().sum();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (b, &v) in self.cycle_histogram.iter().enumerate() {
            cumulative += v;
            if cumulative >= rank {
                return Some(if b + 1 == self.cycle_histogram.len() {
                    u64::MAX
                } else {
                    1u64 << b
                });
            }
        }
        None
    }

    /// The retained worst queries, most expensive first.
    pub fn slow_queries(&self) -> &[SlowQuery] {
        &self.slow
    }

    /// Folds another snapshot in: counters and histogram buckets sum,
    /// slow queries keep the overall worst ring.
    pub(crate) fn merge(&mut self, other: MetricsSnapshot) {
        for (name, value) in other.counters {
            *self.counters.entry(name).or_insert(0) += value;
        }
        if self.cycle_histogram.len() < other.cycle_histogram.len() {
            self.cycle_histogram.resize(other.cycle_histogram.len(), 0);
        }
        for (b, v) in other.cycle_histogram.into_iter().enumerate() {
            self.cycle_histogram[b] += v;
        }
        self.slow.extend(other.slow);
        self.slow.sort_by_key(|s| std::cmp::Reverse(s.cycles));
        self.slow.truncate(SLOW_LOG_CAPACITY);
    }

    /// Prometheus-style text exposition: one `vagg_<name> <value>` line
    /// per counter, the cycle histogram as cumulative `_bucket` lines,
    /// then the slow-query ring as `vagg_slow_query_cycles` lines whose
    /// `sql` label is sanitised (escaped quotes/backslashes/newlines,
    /// control characters stripped, long text truncated on a character
    /// boundary) — so the exposition stays parseable whatever SQL text
    /// a client sent.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, value) in &self.counters {
            let _ = writeln!(out, "vagg_{name} {value}");
        }
        let mut cumulative = 0u64;
        for (b, &v) in self.cycle_histogram.iter().enumerate() {
            cumulative += v;
            let le = if b + 1 == self.cycle_histogram.len() {
                "+Inf".to_string()
            } else {
                (1u64 << b).to_string()
            };
            let _ = writeln!(out, "vagg_query_cycles_bucket{{le=\"{le}\"}} {cumulative}");
        }
        for q in &self.slow {
            let _ = writeln!(
                out,
                "vagg_slow_query_cycles{{sql=\"{}\"}} {}",
                escape_label(&truncate_chars(&q.sql, SLOW_SQL_MAX_CHARS)),
                q.cycles
            );
        }
        out
    }

    /// JSON exposition: `{"counters": {...}, "cycle_histogram": [...],
    /// "slow_queries": [...]}`.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{name}\": {value}");
        }
        out.push_str("\n  },\n  \"cycle_histogram\": [");
        for (b, v) in self.cycle_histogram.iter().enumerate() {
            let sep = if b == 0 { "" } else { ", " };
            let _ = write!(out, "{sep}{v}");
        }
        out.push_str("],\n  \"slow_queries\": [");
        for (i, q) in self.slow.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{\"sql\": \"{}\", \"cycles\": {}, \"rows\": {}, \"steps\": {}}}",
                escape_json(&truncate_chars(&q.sql, SLOW_SQL_MAX_CHARS)),
                q.cycles,
                q.rows,
                q.steps
            );
        }
        if !self.slow.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}");
        out
    }
}

/// The longest SQL text retained in an exposition line. Truncation
/// walks characters, never bytes, so a multi-byte character is kept or
/// dropped whole — the output is always valid UTF-8.
const SLOW_SQL_MAX_CHARS: usize = 160;

/// The first `max` characters of `s`, with a `…` marker when anything
/// was dropped. Character-based, so the cut never splits a multi-byte
/// sequence.
fn truncate_chars(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        return s.to_string();
    }
    let mut out: String = s.chars().take(max).collect();
    out.push('…');
    out
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Prometheus label-value escaping: backslash, double quote and
/// newline get backslash escapes (the three the text format defines);
/// any other control character is replaced by a space so no line or
/// quote structure can be forged through the label.
fn escape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push(' '),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2() {
        let r = MetricsRegistry::new();
        r.record_query("q", 0, 0, 1); // bucket 0
        r.record_query("q", 1, 0, 1); // bucket 1: [1, 2)
        r.record_query("q", 2, 0, 1); // bucket 2: [2, 4)
        r.record_query("q", 3, 0, 1); // bucket 2
        r.record_query("q", 1024, 0, 1); // bucket 11
        let snap = r.snapshot();
        let h = snap.cycle_histogram();
        assert_eq!(h[0], 1);
        assert_eq!(h[1], 1);
        assert_eq!(h[2], 2);
        assert_eq!(h[11], 1);
        assert_eq!(snap.get("queries"), Some(5));
        assert_eq!(snap.get("query_cycles"), Some(1030));
    }

    #[test]
    fn slow_ring_keeps_the_worst_n_sorted() {
        let r = MetricsRegistry::new();
        for c in 0..100u64 {
            r.record_query(&format!("q{c}"), c, 1, 2);
        }
        let slow = r.slow_queries();
        assert_eq!(slow.len(), SLOW_LOG_CAPACITY);
        assert_eq!(slow[0].cycles, 99);
        assert_eq!(
            slow.last().unwrap().cycles,
            99 - SLOW_LOG_CAPACITY as u64 + 1
        );
        assert!(slow.windows(2).all(|w| w[0].cycles >= w[1].cycles));
    }

    #[test]
    fn slow_threshold_filters_cheap_queries() {
        let r = MetricsRegistry::new();
        r.set_slow_query_threshold(50);
        r.record_query("cheap", 10, 1, 1);
        r.record_query("dear", 90, 1, 1);
        let slow = r.slow_queries();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].sql, "dear");
    }

    #[test]
    fn snapshots_merge_by_summing() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        a.record_query("qa", 8, 2, 1);
        b.record_query("qb", 8, 3, 1);
        b.record_ingest(100);
        b.record_compaction();
        let mut snap = a.snapshot();
        snap.merge(b.snapshot());
        assert_eq!(snap.get("queries"), Some(2));
        assert_eq!(snap.get("query_rows"), Some(5));
        assert_eq!(snap.get("ingest_rows"), Some(100));
        assert_eq!(snap.get("compactions"), Some(1));
        assert_eq!(snap.cycle_histogram()[4], 2);
        assert_eq!(snap.slow_queries().len(), 2);
    }

    #[test]
    fn expositions_render_counters_and_escapes() {
        let r = MetricsRegistry::new();
        r.record_query("SELECT \"x\"", 5, 1, 1);
        let snap = r.snapshot();
        let text = snap.to_text();
        assert!(text.contains("vagg_queries 1"));
        assert!(text.contains("vagg_query_cycles_bucket{le=\"+Inf\"} 1"));
        let json = snap.to_json();
        assert!(json.contains("\"queries\": 1"));
        assert!(json.contains("SELECT \\\"x\\\""));
    }

    #[test]
    fn hostile_query_text_cannot_break_the_expositions() {
        let r = MetricsRegistry::new();
        // Quotes, backslashes, newlines, control chars and a long
        // multi-byte tail, all at once.
        let hostile = format!(
            "SELECT \"g\\h\"\nFROM r\r\x07 -- {}",
            "é".repeat(SLOW_SQL_MAX_CHARS)
        );
        r.record_query(&hostile, 42, 1, 3);
        let text = r.snapshot().to_text();
        let line = text
            .lines()
            .find(|l| l.starts_with("vagg_slow_query_cycles"))
            .expect("slow query rendered");
        // One line (the newline was escaped), balanced quotes, control
        // chars gone, truncated with a marker.
        assert!(line.contains("\\n"), "newline escaped: {line}");
        assert!(line.contains("\\\""), "quote escaped: {line}");
        assert!(!line.contains('\x07'), "control char stripped");
        assert!(line.contains('…'), "long text truncated");
        assert!(line.ends_with(" 42"));
        let json = r.snapshot().to_json();
        assert!(json.contains("\\u0007"), "control char JSON-escaped");
        assert!(!json.contains('\x07'));
    }

    #[test]
    fn truncation_respects_char_boundaries() {
        let s = "é".repeat(200);
        let t = truncate_chars(&s, 160);
        assert_eq!(t.chars().count(), 161); // 160 kept + marker
        assert!(t.ends_with('…'));
        assert_eq!(truncate_chars("short", 160), "short");
    }

    #[test]
    fn cancelled_queries_are_counted() {
        let r = MetricsRegistry::new();
        r.record_cancelled();
        r.record_cancelled();
        assert_eq!(r.snapshot().get("queries_cancelled"), Some(2));
    }

    #[test]
    fn quantiles_read_off_the_histogram() {
        let r = MetricsRegistry::new();
        assert_eq!(r.snapshot().cycle_quantile(0.5), None);
        for _ in 0..99 {
            r.record_query("q", 100, 1, 1); // bucket 7: [64, 128)
        }
        r.record_query("q", 1_000_000, 1, 1); // bucket 20
        let snap = r.snapshot();
        assert_eq!(snap.cycle_quantile(0.5), Some(128));
        assert_eq!(snap.cycle_quantile(0.99), Some(128));
        assert_eq!(snap.cycle_quantile(1.0), Some(1 << 20));
    }
}
