//! A tiny scratch-directory helper for tests, examples, and benches.
//!
//! The container has no `tempfile` crate, and the deterministic test
//! harness bans wall-clock and RNG calls, so uniqueness comes from the
//! process id plus a process-wide counter.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::{env, fs, process};

static NEXT: AtomicUsize = AtomicUsize::new(0);

/// A uniquely named directory under the system temp root, removed
/// (best-effort) on drop.
///
/// ```
/// let dir = vagg_db::TempDir::new("doc");
/// std::fs::write(dir.path().join("x"), b"hi").unwrap();
/// ```
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates `$TMPDIR/vagg-<label>-<pid>-<n>`; panics if the
    /// directory cannot be created (tests want the loud failure).
    pub fn new(label: &str) -> Self {
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let path = env::temp_dir().join(format!("vagg-{label}-{}-{n}", process::id()));
        // A stale directory from a killed run with the same pid is
        // possible; clear it so every TempDir starts empty.
        let _ = fs::remove_dir_all(&path);
        fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.path);
    }
}
