//! The five group-key distributions of the paper (§III-A).
//!
//! Each generator produces the group column `g` of the input relation. The
//! paper's definitions:
//!
//! 1. **uniform** — pseudo-random in `[0, c)` with equal probability.
//! 2. **sorted** — a presorted uniform distribution.
//! 3. **sequential** — the repeating sequence `{0, 1, ..., c-1, 0, 1, ...}`.
//! 4. **hhitter** — like uniform, but 50% of the rows are one heavy-hitting
//!    value.
//! 5. **zipf** — pseudo-random in `[0, c)` with Zipfian probability.
//!
//! `c` is a *maximum possible* cardinality, not a guaranteed one (only
//! `sequential` guarantees it, provided `n >= c`).

use crate::rng::Xoshiro256StarStar;
use crate::zipf::Zipf;

/// Identifies a group-key distribution.
///
/// The first five are the paper's (§III-A). [`Distribution::MovingCluster`]
/// and [`Distribution::SelfSimilar`] are the remaining two distributions of
/// the Cieslewicz & Ross suite the paper derives its five from (VLDB 2007);
/// they extend the evaluation beyond the published grid and are excluded
/// from [`Distribution::ALL`] (the paper grid) but included in
/// [`Distribution::EXTENDED`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Distribution {
    /// 50% heavy-hitter, remainder uniform.
    HeavyHitter,
    /// Repeating `0..c` sequence.
    Sequential,
    /// Presorted uniform.
    Sorted,
    /// Uniform in `[0, c)`.
    Uniform,
    /// Zipfian in `[0, c)` with exponent 1.
    Zipf,
    /// Uniform within a window of the key domain that slides linearly
    /// across `[0, c)` as the input is generated (Cieslewicz & Ross):
    /// strong *temporal* locality without global order.
    MovingCluster,
    /// Self-similar "80–20 rule" (Gray et al.): 80% of the rows fall in
    /// the first 20% of the key domain, recursively.
    SelfSimilar,
}

impl Distribution {
    /// The paper's five distributions, in the paper's (alphabetical) plot
    /// order. This is the published evaluation grid.
    pub const ALL: [Distribution; 5] = [
        Distribution::HeavyHitter,
        Distribution::Sequential,
        Distribution::Sorted,
        Distribution::Uniform,
        Distribution::Zipf,
    ];

    /// The paper's five plus the two remaining Cieslewicz & Ross
    /// distributions — the grid used by the extension experiments.
    pub const EXTENDED: [Distribution; 7] = [
        Distribution::HeavyHitter,
        Distribution::Sequential,
        Distribution::Sorted,
        Distribution::Uniform,
        Distribution::Zipf,
        Distribution::MovingCluster,
        Distribution::SelfSimilar,
    ];

    /// The name used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Distribution::HeavyHitter => "hhitter",
            Distribution::Sequential => "sequential",
            Distribution::Sorted => "sorted",
            Distribution::Uniform => "uniform",
            Distribution::Zipf => "zipf",
            Distribution::MovingCluster => "mcluster",
            Distribution::SelfSimilar => "selfsim",
        }
    }

    /// Parses a figure-style name (as printed by [`Distribution::name`]).
    pub fn parse(s: &str) -> Option<Distribution> {
        Self::EXTENDED.iter().copied().find(|d| d.name() == s)
    }

    /// Whether the application is assumed to know the data is presorted
    /// (§III-A: sorted datasets skip any sorting phase).
    pub fn is_presorted(self) -> bool {
        matches!(self, Distribution::Sorted)
    }

    /// Generates the group column: `n` keys drawn per the distribution with
    /// maximum cardinality `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c == 0` or `n == 0`.
    pub fn generate(self, n: usize, c: u64, seed: u64) -> Vec<u32> {
        assert!(c > 0, "cardinality must be positive");
        assert!(n > 0, "row count must be positive");
        assert!(c <= u32::MAX as u64 + 1, "keys are 32-bit in the paper");
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        match self {
            Distribution::Uniform => (0..n).map(|_| rng.next_below(c) as u32).collect(),
            Distribution::Sorted => {
                let mut g: Vec<u32> = (0..n).map(|_| rng.next_below(c) as u32).collect();
                g.sort_unstable();
                g
            }
            Distribution::Sequential => (0..n).map(|i| (i as u64 % c) as u32).collect(),
            Distribution::HeavyHitter => {
                let heavy = rng.next_below(c) as u32;
                (0..n)
                    .map(|_| {
                        if rng.next_below(2) == 0 {
                            heavy
                        } else {
                            rng.next_below(c) as u32
                        }
                    })
                    .collect()
            }
            Distribution::Zipf => {
                let z = Zipf::new(c, 1.0);
                // Scatter ranks over the key domain so the hot key is not
                // always 0: apply a fixed affine permutation of [0, c).
                let mult = pick_coprime(c);
                (0..n)
                    .map(|_| {
                        let rank = z.sample(&mut rng);
                        ((rank.wrapping_mul(mult)) % c) as u32
                    })
                    .collect()
            }
            Distribution::MovingCluster => {
                // Keys are uniform within a window of `W` values that
                // slides linearly across the domain as the input is
                // generated (Cieslewicz & Ross use W = 1024).
                let w = c.min(MOVING_CLUSTER_WINDOW);
                let span = c - w; // window start range [0, span]
                (0..n)
                    .map(|i| {
                        let start = if n > 1 {
                            // Linear slide; u128 avoids overflow at
                            // c = 2^32, n = 10M.
                            (span as u128 * i as u128 / (n - 1) as u128) as u64
                        } else {
                            0
                        };
                        (start + rng.next_below(w)) as u32
                    })
                    .collect()
            }
            Distribution::SelfSimilar => {
                // Gray et al.: floor(c * u^(log h / log(1-h))), h = 0.2
                // puts 80% of rows in the first 20% of the domain,
                // recursively at every scale.
                let exp = SELF_SIMILAR_H.ln() / (1.0 - SELF_SIMILAR_H).ln();
                (0..n)
                    .map(|_| {
                        // next_f64 is in [0, 1); map to (0, 1] so powf
                        // never sees 0 (0^exp = 0 is fine, but 1-u keeps
                        // the classic Gray formulation).
                        let u = 1.0 - rng.next_f64();
                        let k = (c as f64 * u.powf(exp)) as u64;
                        k.min(c - 1) as u32
                    })
                    .collect()
            }
        }
    }
}

/// Window width for [`Distribution::MovingCluster`] (Cieslewicz & Ross).
pub const MOVING_CLUSTER_WINDOW: u64 = 1024;

/// Skew parameter for [`Distribution::SelfSimilar`]: h = 0.2 is the
/// "80–20 rule" of Gray et al.
pub const SELF_SIMILAR_H: f64 = 0.2;

/// Picks a multiplier coprime with `c` for the Zipf rank→key permutation.
fn pick_coprime(c: u64) -> u64 {
    if c <= 2 {
        return 1;
    }
    let mut m = (c / 2) | 1; // odd, near the middle of the domain
    while gcd(m, c) != 1 {
        m += 2;
    }
    m % c
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Generates the value column: uniform in `[0, 9]` (§III-A), independent of
/// the group column.
pub fn generate_values(n: usize, seed: u64) -> Vec<u32> {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed ^ VALUE_SEED_MIX);
    (0..n).map(|_| rng.next_below(10) as u32).collect()
}

/// Mixed into the seed so the value column stream is independent of the
/// group column stream even when both use the same base seed.
const VALUE_SEED_MIX: u64 = 0xA5A5_5A5A_0F0F_F0F0;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn cardinality(g: &[u32]) -> usize {
        g.iter().copied().collect::<HashSet<_>>().len()
    }

    #[test]
    fn uniform_respects_domain() {
        let g = Distribution::Uniform.generate(10_000, 100, 1);
        assert!(g.iter().all(|&k| (k as u64) < 100));
        assert!(cardinality(&g) > 90);
    }

    #[test]
    fn sorted_is_sorted_and_uniformish() {
        let g = Distribution::Sorted.generate(10_000, 100, 2);
        assert!(g.windows(2).all(|w| w[0] <= w[1]));
        assert!(cardinality(&g) > 90);
    }

    #[test]
    fn sequential_is_exact() {
        let g = Distribution::Sequential.generate(10, 4, 3);
        assert_eq!(g, vec![0, 1, 2, 3, 0, 1, 2, 3, 0, 1]);
        assert_eq!(cardinality(&g), 4);
    }

    #[test]
    fn sequential_guarantees_cardinality() {
        let g = Distribution::Sequential.generate(10_000, 152, 4);
        assert_eq!(cardinality(&g), 152);
    }

    #[test]
    fn hhitter_has_a_heavy_value() {
        let g = Distribution::HeavyHitter.generate(10_000, 1000, 5);
        let mut counts = std::collections::HashMap::new();
        for &k in &g {
            *counts.entry(k).or_insert(0usize) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        // ~50% of rows are the heavy hitter.
        assert!(
            (4_000..6_000).contains(&max),
            "heavy hitter frequency {max} outside expected band"
        );
    }

    #[test]
    fn zipf_is_skewed_and_in_domain() {
        let g = Distribution::Zipf.generate(20_000, 1000, 6);
        assert!(g.iter().all(|&k| (k as u64) < 1000));
        let mut counts = std::collections::HashMap::new();
        for &k in &g {
            *counts.entry(k).or_insert(0usize) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        // Rank-0 probability with s=1, c=1000 is 1/H(1000) ≈ 13%.
        assert!(max > 1_500, "zipf not skewed enough: max count {max}");
    }

    #[test]
    fn moving_cluster_slides_a_window() {
        let n = 10_000;
        let c = 100_000;
        let g = Distribution::MovingCluster.generate(n, c, 11);
        assert!(g.iter().all(|&k| (k as u64) < c));
        // Every key lies inside the analytic window for its position.
        let w = MOVING_CLUSTER_WINDOW;
        let span = c - w;
        for (i, &k) in g.iter().enumerate() {
            let start = span as u128 * i as u128 / (n - 1) as u128;
            let start = start as u64;
            assert!(
                (start..start + w).contains(&(k as u64)),
                "row {i}: key {k} outside window [{start}, {})",
                start + w
            );
        }
        // The window actually moves: early and late keys are far apart.
        assert!(g[n - 1] as u64 > c / 2, "window never reached the top");
        assert!((g[0] as u64) < w, "window did not start at the bottom");
    }

    #[test]
    fn moving_cluster_degenerates_to_uniform_for_small_domains() {
        // c <= window: the window covers the whole domain.
        let g = Distribution::MovingCluster.generate(5_000, 64, 12);
        assert!(g.iter().all(|&k| k < 64));
        assert_eq!(cardinality(&g), 64);
    }

    #[test]
    fn self_similar_obeys_the_80_20_rule() {
        let n = 50_000;
        let c = 100_000u64;
        let g = Distribution::SelfSimilar.generate(n, c, 13);
        assert!(g.iter().all(|&k| (k as u64) < c));
        let in_first_fifth = g.iter().filter(|&&k| (k as u64) < c / 5).count();
        let frac = in_first_fifth as f64 / n as f64;
        assert!(
            (0.75..0.85).contains(&frac),
            "first 20% of domain holds {frac:.3} of rows, expected ~0.8"
        );
        // Recursive: first 4% holds ~64%.
        let in_first_25th = g.iter().filter(|&&k| (k as u64) < c / 25).count();
        let frac2 = in_first_25th as f64 / n as f64;
        assert!(
            (0.58..0.70).contains(&frac2),
            "first 4% of domain holds {frac2:.3} of rows, expected ~0.64"
        );
    }

    #[test]
    fn extended_distributions_are_deterministic_and_seeded() {
        for d in [Distribution::MovingCluster, Distribution::SelfSimilar] {
            let a = d.generate(5_000, 10_000, 21);
            let b = d.generate(5_000, 10_000, 21);
            assert_eq!(a, b, "{} not deterministic", d.name());
            let c = d.generate(5_000, 10_000, 22);
            assert_ne!(a, c, "{} ignored the seed", d.name());
        }
    }

    #[test]
    fn extended_contains_all() {
        for d in Distribution::ALL {
            assert!(Distribution::EXTENDED.contains(&d));
        }
        assert_eq!(Distribution::EXTENDED.len(), 7);
        assert!(!Distribution::ALL.contains(&Distribution::MovingCluster));
    }

    #[test]
    fn generation_is_deterministic() {
        for d in Distribution::ALL {
            let a = d.generate(5_000, 77, 42);
            let b = d.generate(5_000, 77, 42);
            assert_eq!(a, b, "{} not deterministic", d.name());
        }
    }

    #[test]
    fn seeds_change_random_distributions() {
        for d in [
            Distribution::Uniform,
            Distribution::Sorted,
            Distribution::HeavyHitter,
            Distribution::Zipf,
        ] {
            let a = d.generate(5_000, 1000, 1);
            let b = d.generate(5_000, 1000, 2);
            assert_ne!(a, b, "{} ignored the seed", d.name());
        }
    }

    #[test]
    fn values_are_digits() {
        let v = generate_values(10_000, 9);
        assert!(v.iter().all(|&x| x < 10));
        // All ten values occur.
        assert_eq!(cardinality(&v), 10);
    }

    #[test]
    fn name_parse_roundtrip() {
        for d in Distribution::EXTENDED {
            assert_eq!(Distribution::parse(d.name()), Some(d));
        }
        assert_eq!(Distribution::parse("nope"), None);
    }

    #[test]
    fn cardinality_one_is_supported() {
        for d in Distribution::EXTENDED {
            let g = d.generate(100, 1, 8);
            assert!(g.iter().all(|&k| k == 0), "{} broke c=1", d.name());
        }
    }
}
