//! Zipfian sampling.
//!
//! The paper's `zipf` dataset draws group keys from `[0, c)` with Zipfian
//! probability (rank `k` has probability proportional to `1 / (k+1)^s`). We
//! use the classic skew `s = 1.0` (as in Cieslewicz & Ross, VLDB 2007, whose
//! datasets the paper mirrors).
//!
//! Sampling uses rejection-inversion (Hörmann & Derflinger, "Rejection-
//! inversion to generate variates from monotone discrete distributions",
//! TOMACS 1996) — O(1) per sample for any domain size, which matters because
//! the paper's largest domain is 10,000,000 values.

use crate::rng::Xoshiro256StarStar;

/// A Zipf distribution over `{0, 1, ..., n-1}` with exponent `s > 0`.
///
/// Rank 0 is the most probable value.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    s: f64,
    // Precomputed constants for rejection-inversion.
    h_x1: f64,
    h_n: f64,
    s_const: f64,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` values with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s <= 0` or `s` is not finite.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "Zipf domain must be non-empty");
        assert!(s > 0.0 && s.is_finite(), "Zipf exponent must be positive");
        let h_x1 = Self::h_static(1.5, s) - 1.0;
        let h_n = Self::h_static(n as f64 + 0.5, s);
        let s_const = 2.0 - Self::h_inv_static(Self::h_static(2.5, s) - (2.0f64).powf(-s), s);
        Self {
            n,
            s,
            h_x1,
            h_n,
            s_const,
        }
    }

    /// Number of values in the domain.
    pub fn domain(&self) -> u64 {
        self.n
    }

    /// Exponent `s`.
    pub fn exponent(&self) -> f64 {
        self.s
    }

    // H(x) = integral of 1/x^s: (x^(1-s) - 1)/(1-s), with the s == 1 limit
    // ln(x). Using the shifted form keeps precision for s close to 1.
    fn h_static(x: f64, s: f64) -> f64 {
        if (s - 1.0).abs() < 1e-9 {
            x.ln()
        } else {
            (x.powf(1.0 - s) - 1.0) / (1.0 - s)
        }
    }

    fn h(&self, x: f64) -> f64 {
        Self::h_static(x, self.s)
    }

    fn h_inv_static(x: f64, s: f64) -> f64 {
        if (s - 1.0).abs() < 1e-9 {
            x.exp()
        } else {
            (1.0 + x * (1.0 - s)).powf(1.0 / (1.0 - s))
        }
    }

    fn h_inv(&self, x: f64) -> f64 {
        Self::h_inv_static(x, self.s)
    }

    /// Draws one sample; the result is in `[0, n)` and rank 0 is the most
    /// frequent.
    pub fn sample(&self, rng: &mut Xoshiro256StarStar) -> u64 {
        loop {
            let u = self.h_n + rng.next_f64() * (self.h_x1 - self.h_n);
            let x = self.h_inv(u);
            let k = x.round().clamp(1.0, self.n as f64);
            // Accept if k is close enough to x, or by the exact test.
            if k - x <= self.s_const || u >= self.h(k + 0.5) - k.powf(-self.s) {
                return k as u64 - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn histogram(n: u64, s: f64, samples: usize, seed: u64) -> Vec<usize> {
        let z = Zipf::new(n, s);
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let mut h = vec![0usize; n as usize];
        for _ in 0..samples {
            h[z.sample(&mut rng) as usize] += 1;
        }
        h
    }

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(100, 1.0);
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn rank_zero_is_most_frequent() {
        let h = histogram(1000, 1.0, 100_000, 5);
        let max = h.iter().copied().max().unwrap();
        assert_eq!(h[0], max);
    }

    #[test]
    fn frequencies_roughly_harmonic() {
        // With s=1, p(k) ∝ 1/(k+1); check ratio of rank 0 to rank 9 ≈ 10.
        let h = histogram(10_000, 1.0, 400_000, 7);
        let ratio = h[0] as f64 / h[9] as f64;
        assert!(
            (5.0..20.0).contains(&ratio),
            "expected ~10x ratio, got {ratio}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = histogram(50, 1.0, 10_000, 11);
        let b = histogram(50, 1.0, 10_000, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn tiny_domain_works() {
        let h = histogram(1, 1.0, 100, 13);
        assert_eq!(h[0], 100);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_domain_panics() {
        Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_exponent_panics() {
        Zipf::new(10, 0.0);
    }

    #[test]
    fn non_unit_exponent() {
        let h = histogram(100, 1.5, 100_000, 17);
        assert!(h[0] > h[10]);
        assert!(h[0] > h[50]);
    }
}
