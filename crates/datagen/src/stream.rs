//! Streaming batch generation — the ingest workload synthesiser.
//!
//! The paper's grid datasets are one-shot relations; a write path wants
//! *streams*: an unbounded, deterministic sequence of row batches whose
//! statistics may drift over time (the scenario that exercises
//! stats-driven re-planning). [`DatasetSpec::stream`] turns a spec into
//! a [`BatchStream`] — an infinite iterator of columnar [`Batch`]es,
//! each generated from a per-batch seed derived from the spec's seed,
//! so any prefix of the stream is exactly reproducible.
//!
//! [`BatchStream::with_cardinality_drift`] ramps the maximum
//! cardinality linearly from the spec's value to a target across a
//! batch window: an ingest source that starts low-cardinality (the
//! §V-D policy picks monotable) and drifts high (the policy flips to
//! partially sorted monotable) without any change on the consumer side.
//!
//! ```
//! use vagg_datagen::{DatasetSpec, Distribution};
//!
//! let mut stream = DatasetSpec::paper(Distribution::Uniform, 50)
//!     .with_rows(0) // streams ignore the one-shot row count
//!     .stream(256)
//!     .with_cardinality_drift(20_000, 8);
//! let first = stream.next().unwrap();
//! assert_eq!(first.g.len(), 256);
//! assert!(first.cardinality < 20_000);
//! let eighth = stream.nth(6).unwrap();
//! assert_eq!(eighth.cardinality, 20_000);
//! ```

use crate::spec::DatasetSpec;

/// One generated batch of the stream: a group-key column, a value
/// column, and the maximum cardinality the batch was drawn with.
#[derive(Debug, Clone)]
pub struct Batch {
    /// 0-based position in the stream.
    pub index: usize,
    /// The group-key column (distribution per the spec).
    pub g: Vec<u32>,
    /// The value column (uniform `[0, 9]`, as the paper's grid).
    pub v: Vec<u32>,
    /// The maximum cardinality this batch was generated with (constant,
    /// or ramping under [`BatchStream::with_cardinality_drift`]).
    pub cardinality: u64,
}

/// An infinite, deterministic iterator of [`Batch`]es. Built by
/// [`DatasetSpec::stream`]; see the [module docs](self).
#[derive(Debug, Clone)]
pub struct BatchStream {
    spec: DatasetSpec,
    batch_rows: usize,
    next: usize,
    /// `(target_cardinality, over_batches)`: ramp linearly from the
    /// spec's cardinality to the target across the first `over_batches`
    /// batches, then hold the target.
    drift: Option<(u64, usize)>,
}

impl DatasetSpec {
    /// An infinite stream of `batch_rows`-row batches drawn from this
    /// spec (the one-shot `rows` field is ignored; each batch derives
    /// its own seed from the spec's, so prefixes are reproducible).
    pub fn stream(self, batch_rows: usize) -> BatchStream {
        BatchStream {
            spec: self,
            batch_rows: batch_rows.max(1),
            next: 0,
            drift: None,
        }
    }
}

impl BatchStream {
    /// Ramps the maximum cardinality linearly from the spec's value to
    /// `target` across the first `over_batches` batches (`target` from
    /// batch `over_batches - 1` on). With `over_batches <= 1` the very
    /// first batch already draws from the target.
    pub fn with_cardinality_drift(mut self, target: u64, over_batches: usize) -> Self {
        self.drift = Some((target, over_batches));
        self
    }

    /// The cardinality batch `index` draws from.
    pub fn cardinality_at(&self, index: usize) -> u64 {
        let start = self.spec.max_cardinality;
        match self.drift {
            None => start,
            Some((target, over)) => {
                if over <= 1 || index + 1 >= over {
                    target
                } else {
                    // Linear interpolation on the closed ramp
                    // [start @ 0, target @ over-1].
                    let steps = (over - 1) as i128;
                    let delta = target as i128 - start as i128;
                    (start as i128 + delta * index as i128 / steps) as u64
                }
            }
        }
    }

    /// Rows per generated batch.
    pub fn batch_rows(&self) -> usize {
        self.batch_rows
    }
}

impl Iterator for BatchStream {
    type Item = Batch;

    fn next(&mut self) -> Option<Batch> {
        let index = self.next;
        self.next += 1;
        let cardinality = self.cardinality_at(index);
        // Per-batch cell spec: same distribution, the ramped
        // cardinality, and a seed folded with the batch index so every
        // batch draws fresh (but reproducible) rows.
        let cell = self.spec.with_rows(self.batch_rows).with_seed(
            self.spec
                .seed
                .wrapping_mul(0x2545_F491_4F6C_DD1D)
                .wrapping_add(index as u64 + 1),
        );
        let ds = DatasetSpec {
            max_cardinality: cardinality,
            ..cell
        }
        .generate();
        Some(Batch {
            index,
            g: ds.g,
            v: ds.v,
            cardinality,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Distribution;

    fn spec() -> DatasetSpec {
        DatasetSpec::paper(Distribution::Uniform, 100)
    }

    #[test]
    fn streams_are_deterministic_and_batched() {
        let a: Vec<Batch> = spec().stream(64).take(5).collect();
        let b: Vec<Batch> = spec().stream(64).take(5).collect();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.index, y.index);
            assert_eq!(x.g, y.g);
            assert_eq!(x.v, y.v);
        }
        assert!(a.iter().all(|b| b.g.len() == 64 && b.v.len() == 64));
        // Distinct batches draw distinct rows.
        assert_ne!(a[0].g, a[1].g);
    }

    #[test]
    fn without_drift_cardinality_is_constant_and_bounded() {
        let batches: Vec<Batch> = spec().stream(128).take(4).collect();
        for b in &batches {
            assert_eq!(b.cardinality, 100);
            assert!(b.g.iter().all(|&k| (k as u64) < 100));
        }
    }

    #[test]
    fn drift_ramps_linearly_and_holds_the_target() {
        let s = spec().stream(32).with_cardinality_drift(10_100, 11);
        assert_eq!(s.cardinality_at(0), 100);
        assert_eq!(s.cardinality_at(5), 5_100, "midpoint of the ramp");
        assert_eq!(s.cardinality_at(10), 10_100);
        assert_eq!(s.cardinality_at(999), 10_100, "held after the ramp");
        // Monotone along the ramp.
        let cs: Vec<u64> = (0..11).map(|i| s.cardinality_at(i)).collect();
        assert!(cs.windows(2).all(|w| w[0] <= w[1]));
        // Downward drift works too.
        let down = spec().stream(32).with_cardinality_drift(10, 3);
        assert_eq!(down.cardinality_at(0), 100);
        assert_eq!(down.cardinality_at(1), 55);
        assert_eq!(down.cardinality_at(2), 10);
    }

    #[test]
    fn immediate_drift_and_zero_rows_are_clamped() {
        let s = spec().stream(0).with_cardinality_drift(9, 0);
        assert_eq!(s.batch_rows(), 1, "zero-row batches are clamped");
        assert_eq!(s.cardinality_at(0), 9, "over_batches 0 = immediate");
        let s1 = spec().stream(8).with_cardinality_drift(9, 1);
        assert_eq!(s1.cardinality_at(0), 9);
    }

    #[test]
    fn every_distribution_streams() {
        for dist in Distribution::EXTENDED {
            let b = DatasetSpec::paper(dist, 50).stream(40).next().unwrap();
            assert_eq!(b.g.len(), 40, "{}", dist.name());
        }
    }
}
