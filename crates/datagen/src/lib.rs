//! # vagg-datagen
//!
//! Workload synthesis for the ISCA 2016 paper *"Future Vector Microprocessor
//! Extensions for Data Aggregations"* (Hayes et al.).
//!
//! The paper evaluates `SELECT g, COUNT(*), SUM(v) FROM r GROUP BY g` over a
//! two-column relation stored column-wise. This crate generates the 110
//! input datasets of the experimental grid: five group-key distributions
//! ([`Distribution`]) crossed with twenty-two maximum cardinalities
//! ([`CARDINALITIES`]), with a uniform `[0, 9]` value column.
//!
//! All generation is deterministic given a seed ([`rng`] implements
//! xoshiro256** seeded via SplitMix64), so simulated cycle counts are exactly
//! reproducible.
//!
//! ```
//! use vagg_datagen::{DatasetSpec, Distribution};
//!
//! let ds = DatasetSpec::paper(Distribution::Zipf, 1_220)
//!     .with_rows(10_000)
//!     .generate();
//! assert_eq!(ds.len(), 10_000);
//! assert!(ds.actual_cardinality() <= 1_220);
//! ```

#![warn(missing_docs)]

pub mod dist;
pub mod rng;
pub mod spec;
pub mod stream;
pub mod zipf;

pub use dist::{generate_values, Distribution, MOVING_CLUSTER_WINDOW, SELF_SIMILAR_H};
pub use spec::{Dataset, DatasetSpec, Division, CARDINALITIES, PAPER_ROWS};
pub use stream::{Batch, BatchStream};
