//! Deterministic pseudo-random number generation.
//!
//! The 110 datasets of the paper (5 distributions × 22 cardinalities) must be
//! bit-identical across runs and platforms so that simulated cycle counts are
//! reproducible. We therefore implement our own small PRNGs instead of
//! depending on an external crate whose stream might change between versions:
//!
//! * [`SplitMix64`] — used for seeding (Steele et al., "Fast splittable
//!   pseudorandom number generators", OOPSLA 2014).
//! * [`Xoshiro256StarStar`] — the main generator (Blackman & Vigna,
//!   "Scrambled linear pseudorandom number generators", 2018). Passes BigCrush
//!   and is more than adequate for workload synthesis.

/// SplitMix64 generator, primarily used to expand a single `u64` seed into
/// the 256-bit state required by [`Xoshiro256StarStar`].
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a raw seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256** 1.0 — the workhorse generator for all dataset synthesis.
#[derive(Debug, Clone)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Creates a generator by expanding `seed` with [`SplitMix64`].
    ///
    /// A zero seed is valid: SplitMix64 never yields the all-zero state.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a `f64` uniformly distributed in `[0, 1)` with 53 bits of
    /// precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniformly distributed integer in `[0, bound)` using
    /// Lemire's multiply-shift rejection method (unbiased).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below requires a non-zero bound");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            // threshold = 2^64 mod bound
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vectors() {
        // Reference outputs for seed 1234567 from the public-domain C code.
        let mut sm = SplitMix64::new(1234567);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, b);
        // Determinism: same seed, same stream.
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(a, sm2.next_u64());
        assert_eq!(b, sm2.next_u64());
    }

    #[test]
    fn xoshiro_is_deterministic_across_instances() {
        let mut r1 = Xoshiro256StarStar::seed_from_u64(42);
        let mut r2 = Xoshiro256StarStar::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(r1.next_u64(), r2.next_u64());
        }
    }

    #[test]
    fn xoshiro_different_seeds_diverge() {
        let mut r1 = Xoshiro256StarStar::seed_from_u64(1);
        let mut r2 = Xoshiro256StarStar::seed_from_u64(2);
        let same = (0..64).filter(|_| r1.next_u64() == r2.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_below_is_in_range() {
        let mut r = Xoshiro256StarStar::seed_from_u64(7);
        for bound in [1u64, 2, 3, 10, 1000, u32::MAX as u64] {
            for _ in 0..200 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_covers_all_small_values() {
        let mut r = Xoshiro256StarStar::seed_from_u64(9);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[r.next_below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = Xoshiro256StarStar::seed_from_u64(11);
        for _ in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    #[should_panic(expected = "non-zero bound")]
    fn next_below_zero_panics() {
        Xoshiro256StarStar::seed_from_u64(0).next_below(0);
    }
}
