//! Dataset specifications: the paper's 22 cardinalities, four cardinality
//! divisions, and the 110-dataset experimental grid (§III-A).

use crate::dist::{generate_values, Distribution};

/// The paper's 22 maximum cardinalities, ascending: 4, 9, 19, ..., 10,000,000
/// (each ~half the next, i.e. 10,000,000 / 2^k rounded down, plus the 4).
pub const CARDINALITIES: [u64; 22] = [
    4, 9, 19, 38, 76, 152, 305, 610, 1_220, 2_441, 4_882, 9_765, 19_531, 39_062, 78_125, 156_250,
    312_500, 625_000, 1_250_000, 2_500_000, 5_000_000, 10_000_000,
];

/// The paper's row count (n = 10,000,000).
pub const PAPER_ROWS: usize = 10_000_000;

/// The paper's four cardinality divisions (§III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Division {
    /// `[4, 152]` — e.g. gender of a person.
    Low,
    /// `[305, 9,765]` — e.g. date of birth of a client.
    LowNormal,
    /// `[19,531, 312,500]` — e.g. a zip or postal code.
    HighNormal,
    /// `[625,000, 10,000,000]` — e.g. a passport number.
    High,
}

impl Division {
    /// All four divisions in ascending cardinality order.
    pub const ALL: [Division; 4] = [
        Division::Low,
        Division::LowNormal,
        Division::HighNormal,
        Division::High,
    ];

    /// The division a maximum cardinality belongs to.
    pub fn of_cardinality(c: u64) -> Division {
        match c {
            0..=152 => Division::Low,
            153..=9_765 => Division::LowNormal,
            9_766..=312_500 => Division::HighNormal,
            _ => Division::High,
        }
    }

    /// The name used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Division::Low => "low",
            Division::LowNormal => "low-normal",
            Division::HighNormal => "high-normal",
            Division::High => "high",
        }
    }

    /// The cardinalities of the experimental grid falling in this division.
    pub fn cardinalities(self) -> impl Iterator<Item = u64> {
        CARDINALITIES
            .into_iter()
            .filter(move |&c| Division::of_cardinality(c) == self)
    }
}

/// Identifies one dataset of the experimental grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DatasetSpec {
    /// Group-key distribution.
    pub distribution: Distribution,
    /// Maximum cardinality `c` (upper bound of the key domain).
    pub max_cardinality: u64,
    /// Number of rows `n`.
    pub rows: usize,
    /// Base seed; the grid uses a per-cell seed derived from this.
    pub seed: u64,
}

impl DatasetSpec {
    /// Creates a spec with the paper's row count.
    pub fn paper(distribution: Distribution, max_cardinality: u64) -> Self {
        Self {
            distribution,
            max_cardinality,
            rows: PAPER_ROWS,
            seed: 0,
        }
    }

    /// Returns a copy with a different row count (for scaled-down runs).
    pub fn with_rows(mut self, rows: usize) -> Self {
        self.rows = rows;
        self
    }

    /// Returns a copy with a different base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The cardinality division this dataset belongs to.
    pub fn division(&self) -> Division {
        Division::of_cardinality(self.max_cardinality)
    }

    /// Generates the dataset (group column + value column).
    pub fn generate(&self) -> Dataset {
        let cell_seed = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(self.max_cardinality)
            .wrapping_add((self.distribution as u64) << 32);
        let g = self
            .distribution
            .generate(self.rows, self.max_cardinality, cell_seed);
        let v = generate_values(self.rows, cell_seed);
        Dataset { spec: *self, g, v }
    }

    /// The full 110-dataset grid (5 distributions × 22 cardinalities) at a
    /// given row count.
    pub fn grid(rows: usize, seed: u64) -> Vec<DatasetSpec> {
        let mut out = Vec::with_capacity(110);
        for d in Distribution::ALL {
            for c in CARDINALITIES {
                out.push(DatasetSpec::paper(d, c).with_rows(rows).with_seed(seed));
            }
        }
        out
    }
}

/// A generated dataset: the two input columns of the relation `r`.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The spec that generated this data.
    pub spec: DatasetSpec,
    /// Group-key column (32-bit as in the paper).
    pub g: Vec<u32>,
    /// Value column, uniform in `[0, 9]`.
    pub v: Vec<u32>,
}

impl Dataset {
    /// The exact maximum group key present (step 1 of the scalar baseline).
    pub fn max_group_key(&self) -> u32 {
        self.g.iter().copied().max().unwrap_or(0)
    }

    /// The *actual* cardinality (distinct keys present), which for all
    /// distributions except `sequential` may be below `max_cardinality`.
    pub fn actual_cardinality(&self) -> usize {
        let maxg = self.max_group_key() as usize;
        let mut seen = vec![false; maxg + 1];
        let mut count = 0usize;
        for &k in &self.g {
            if !seen[k as usize] {
                seen[k as usize] = true;
                count += 1;
            }
        }
        count
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.g.len()
    }

    /// Whether the dataset is empty (it never is, by construction).
    pub fn is_empty(&self) -> bool {
        self.g.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_two_cardinalities_ascending() {
        assert_eq!(CARDINALITIES.len(), 22);
        assert!(CARDINALITIES.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(CARDINALITIES[0], 4);
        assert_eq!(CARDINALITIES[21], 10_000_000);
    }

    #[test]
    fn cardinalities_follow_halving_ladder() {
        // Each entry (from the top) is floor(previous / 2) except the lowest.
        for w in CARDINALITIES.windows(2).skip(1) {
            let ratio = w[1] as f64 / w[0] as f64;
            assert!(
                (1.9..2.2).contains(&ratio),
                "ratio {ratio} between {} and {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn divisions_match_paper_boundaries() {
        assert_eq!(Division::of_cardinality(4), Division::Low);
        assert_eq!(Division::of_cardinality(152), Division::Low);
        assert_eq!(Division::of_cardinality(305), Division::LowNormal);
        assert_eq!(Division::of_cardinality(9_765), Division::LowNormal);
        assert_eq!(Division::of_cardinality(19_531), Division::HighNormal);
        assert_eq!(Division::of_cardinality(312_500), Division::HighNormal);
        assert_eq!(Division::of_cardinality(625_000), Division::High);
        assert_eq!(Division::of_cardinality(10_000_000), Division::High);
    }

    #[test]
    fn division_partition_covers_grid() {
        let total: usize = Division::ALL
            .iter()
            .map(|d| d.cardinalities().count())
            .sum();
        assert_eq!(total, 22);
        // Per the paper: low has 6 (4..152), low-normal 6, high-normal 5,
        // high 5.
        assert_eq!(Division::Low.cardinalities().count(), 6);
        assert_eq!(Division::LowNormal.cardinalities().count(), 6);
        assert_eq!(Division::HighNormal.cardinalities().count(), 5);
        assert_eq!(Division::High.cardinalities().count(), 5);
    }

    #[test]
    fn grid_is_110_datasets() {
        let grid = DatasetSpec::grid(1000, 0);
        assert_eq!(grid.len(), 110);
    }

    #[test]
    fn generate_matches_spec() {
        let spec = DatasetSpec::paper(Distribution::Uniform, 76)
            .with_rows(5_000)
            .with_seed(1);
        let ds = spec.generate();
        assert_eq!(ds.len(), 5_000);
        assert!(ds.g.iter().all(|&k| (k as u64) < 76));
        assert!(ds.v.iter().all(|&x| x < 10));
    }

    #[test]
    fn sequential_actual_cardinality_is_exact() {
        let ds = DatasetSpec::paper(Distribution::Sequential, 152)
            .with_rows(10_000)
            .generate();
        assert_eq!(ds.actual_cardinality(), 152);
    }

    #[test]
    fn zipf_actual_cardinality_below_max() {
        // With a strongly skewed draw over a huge domain and few rows, many
        // keys never occur.
        let ds = DatasetSpec::paper(Distribution::Zipf, 1_000_000)
            .with_rows(10_000)
            .generate();
        assert!(ds.actual_cardinality() < 10_000);
    }

    #[test]
    fn max_group_key_is_max() {
        let ds = DatasetSpec::paper(Distribution::Uniform, 1000)
            .with_rows(5_000)
            .with_seed(3)
            .generate();
        assert_eq!(ds.max_group_key(), ds.g.iter().copied().max().unwrap());
    }

    #[test]
    fn different_cells_get_different_data() {
        let a = DatasetSpec::paper(Distribution::Uniform, 76)
            .with_rows(1000)
            .generate();
        let b = DatasetSpec::paper(Distribution::Uniform, 152)
            .with_rows(1000)
            .generate();
        assert_ne!(a.g, b.g);
    }
}
