//! The simulated flat address space.
//!
//! Algorithms running on the [`crate::machine::Machine`] address memory by
//! simulated byte address, exactly as the paper's kernels address their
//! column arrays and bookkeeping tables. Storage is paged and allocated on
//! demand, so multi-gigabyte layouts (e.g. polytable's MVL-replicated tables
//! at high cardinality) only consume host memory for pages actually touched.

use std::collections::HashMap;

// 256-byte pages: fine-grained enough that sparse gather/scatter traffic
// into gigabyte-scale replicated tables stays cheap on the host.
const PAGE_SHIFT: u32 = 8;
const PAGE_BYTES: usize = 1 << PAGE_SHIFT;

/// Sparse, zero-initialised byte-addressable memory with a bump allocator.
#[derive(Debug, Default)]
pub struct AddressSpace {
    pages: HashMap<u64, Box<[u8; PAGE_BYTES]>>,
    /// Next free address for [`AddressSpace::alloc`].
    brk: u64,
}

impl AddressSpace {
    /// An empty space; allocations start above the null page.
    pub fn new() -> Self {
        Self {
            pages: HashMap::new(),
            brk: PAGE_BYTES as u64,
        }
    }

    /// Reserves `bytes` of fresh zeroed memory aligned to `align` (which
    /// must be a power of two). Returns the base address.
    pub fn alloc(&mut self, bytes: u64, align: u64) -> u64 {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let base = (self.brk + align - 1) & !(align - 1);
        self.brk = base + bytes.max(1);
        base
    }

    /// Releases every allocation and drops the materialised pages,
    /// returning the space to its freshly-constructed state. Long-lived
    /// owners (e.g. a query session reusing one machine) call this
    /// between units of work so host memory stays bounded.
    pub fn reset(&mut self) {
        self.pages.clear();
        self.brk = PAGE_BYTES as u64;
    }

    /// Number of host pages materialised (test/diagnostic hook).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    fn page_mut(&mut self, addr: u64) -> &mut [u8; PAGE_BYTES] {
        self.pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0; PAGE_BYTES]))
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        self.pages
            .get(&(addr >> PAGE_SHIFT))
            .map_or(0, |p| p[(addr as usize) & (PAGE_BYTES - 1)])
    }

    /// Writes one byte.
    ///
    /// Writing zero to a page that was never materialised is a no-op:
    /// absent pages already read as zero. This keeps table-clearing phases
    /// (e.g. polytable zeroing gigabytes of replicated cells) from
    /// consuming host memory — the *timing* of those stores is charged by
    /// the hierarchy model regardless.
    pub fn write_u8(&mut self, addr: u64, val: u8) {
        if val == 0 && !self.pages.contains_key(&(addr >> PAGE_SHIFT)) {
            return;
        }
        self.page_mut(addr)[(addr as usize) & (PAGE_BYTES - 1)] = val;
    }

    /// Reads a little-endian `u32` (may straddle pages).
    pub fn read_u32(&self, addr: u64) -> u32 {
        let off = (addr as usize) & (PAGE_BYTES - 1);
        if off + 4 <= PAGE_BYTES {
            // Fast path: one page lookup.
            match self.pages.get(&(addr >> PAGE_SHIFT)) {
                Some(p) => u32::from_le_bytes(p[off..off + 4].try_into().expect("4 bytes")),
                None => 0,
            }
        } else {
            let mut b = [0u8; 4];
            for (i, x) in b.iter_mut().enumerate() {
                *x = self.read_u8(addr + i as u64);
            }
            u32::from_le_bytes(b)
        }
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: u64, val: u32) {
        let off = (addr as usize) & (PAGE_BYTES - 1);
        if off + 4 <= PAGE_BYTES {
            if val == 0 && !self.pages.contains_key(&(addr >> PAGE_SHIFT)) {
                return; // zero to an unmaterialised page: no-op
            }
            let p = self.page_mut(addr);
            p[off..off + 4].copy_from_slice(&val.to_le_bytes());
        } else {
            for (i, b) in val.to_le_bytes().into_iter().enumerate() {
                self.write_u8(addr + i as u64, b);
            }
        }
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&self, addr: u64) -> u64 {
        let off = (addr as usize) & (PAGE_BYTES - 1);
        if off + 8 <= PAGE_BYTES {
            match self.pages.get(&(addr >> PAGE_SHIFT)) {
                Some(p) => u64::from_le_bytes(p[off..off + 8].try_into().expect("8 bytes")),
                None => 0,
            }
        } else {
            let mut b = [0u8; 8];
            for (i, x) in b.iter_mut().enumerate() {
                *x = self.read_u8(addr + i as u64);
            }
            u64::from_le_bytes(b)
        }
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: u64, val: u64) {
        let off = (addr as usize) & (PAGE_BYTES - 1);
        if off + 8 <= PAGE_BYTES {
            if val == 0 && !self.pages.contains_key(&(addr >> PAGE_SHIFT)) {
                return;
            }
            let p = self.page_mut(addr);
            p[off..off + 8].copy_from_slice(&val.to_le_bytes());
        } else {
            for (i, b) in val.to_le_bytes().into_iter().enumerate() {
                self.write_u8(addr + i as u64, b);
            }
        }
    }

    /// Reads an element of `width` ∈ {1, 4, 8} bytes zero-extended to
    /// `u64`.
    pub fn read_elem(&self, addr: u64, width: u64) -> u64 {
        match width {
            1 => self.read_u8(addr) as u64,
            4 => self.read_u32(addr) as u64,
            8 => self.read_u64(addr),
            w => panic!("unsupported element width {w}"),
        }
    }

    /// Writes the low `width` ∈ {1, 4, 8} bytes of `val`.
    pub fn write_elem(&mut self, addr: u64, width: u64, val: u64) {
        match width {
            1 => self.write_u8(addr, val as u8),
            4 => self.write_u32(addr, val as u32),
            8 => self.write_u64(addr, val),
            w => panic!("unsupported element width {w}"),
        }
    }

    /// Host-side bulk upload of a `u32` slice (dataset staging; untimed).
    pub fn write_slice_u32(&mut self, base: u64, data: &[u32]) {
        for (i, &v) in data.iter().enumerate() {
            self.write_u32(base + 4 * i as u64, v);
        }
    }

    /// Host-side bulk download of `len` `u32`s (result checking; untimed).
    pub fn read_slice_u32(&self, base: u64, len: usize) -> Vec<u32> {
        (0..len)
            .map(|i| self.read_u32(base + 4 * i as u64))
            .collect()
    }

    /// Allocates and uploads a `u32` column, returning its base address.
    pub fn alloc_slice_u32(&mut self, data: &[u32]) -> u64 {
        let base = self.alloc(4 * data.len() as u64, 64);
        self.write_slice_u32(base, data);
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_memory_reads_zero() {
        let s = AddressSpace::new();
        assert_eq!(s.read_u32(0x1234), 0);
        assert_eq!(s.read_u64(0xFFFF_FFFF), 0);
    }

    #[test]
    fn read_back_what_was_written() {
        let mut s = AddressSpace::new();
        s.write_u32(0x1000, 0xDEAD_BEEF);
        assert_eq!(s.read_u32(0x1000), 0xDEAD_BEEF);
        s.write_u64(0x2000, 0x0102_0304_0506_0708);
        assert_eq!(s.read_u64(0x2000), 0x0102_0304_0506_0708);
    }

    #[test]
    fn values_straddle_page_boundaries() {
        let mut s = AddressSpace::new();
        let addr = (1 << PAGE_SHIFT) - 2; // 2 bytes in page 0, 2 in page 1
        s.write_u32(addr, 0xAABB_CCDD);
        assert_eq!(s.read_u32(addr), 0xAABB_CCDD);
        assert!(s.resident_pages() >= 2);
    }

    #[test]
    fn alloc_respects_alignment_and_is_disjoint() {
        let mut s = AddressSpace::new();
        let a = s.alloc(100, 64);
        let b = s.alloc(100, 64);
        assert_eq!(a % 64, 0);
        assert_eq!(b % 64, 0);
        assert!(b >= a + 100);
        assert_ne!(a, 0, "null page must stay unallocated");
    }

    #[test]
    fn elem_widths() {
        let mut s = AddressSpace::new();
        s.write_elem(0x10, 1, 0x1FF);
        assert_eq!(s.read_elem(0x10, 1), 0xFF);
        s.write_elem(0x20, 4, u64::MAX);
        assert_eq!(s.read_elem(0x20, 4), u32::MAX as u64);
        s.write_elem(0x30, 8, 42);
        assert_eq!(s.read_elem(0x30, 8), 42);
    }

    #[test]
    #[should_panic(expected = "unsupported element width")]
    fn bad_width_panics() {
        AddressSpace::new().read_elem(0, 3);
    }

    #[test]
    fn slice_roundtrip() {
        let mut s = AddressSpace::new();
        let data: Vec<u32> = (0..1000).collect();
        let base = s.alloc_slice_u32(&data);
        assert_eq!(s.read_slice_u32(base, 1000), data);
    }

    #[test]
    fn sparse_allocation_is_lazy() {
        let mut s = AddressSpace::new();
        // Reserve 1 GB but touch only one word.
        let base = s.alloc(1 << 30, 64);
        s.write_u32(base + (1 << 29), 7);
        assert!(s.resident_pages() <= 2);
    }
}
