//! Top-level simulator configuration.

use vagg_cpu::CpuParams;
use vagg_mem::HierarchyParams;

/// Everything needed to instantiate a [`crate::machine::Machine`].
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Maximum vector length (elements per vector register).
    pub mvl: usize,
    /// Lockstepped vector lanes.
    pub lanes: usize,
    /// CAM ports for VPI/VLU/VGAx.
    pub cam_ports: usize,
    /// Core parameters (Table I).
    pub cpu: CpuParams,
    /// Memory system parameters (Tables I and II).
    pub mem: HierarchyParams,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::paper()
    }
}

impl SimConfig {
    /// The paper's evaluation configuration: `MVL = 64`, `lanes = 4`,
    /// Westmere-like core, DDR3-1333 memory (§III-A).
    pub fn paper() -> Self {
        let cpu = CpuParams::westmere();
        Self {
            mvl: 64,
            lanes: cpu.lanes,
            cam_ports: cpu.cam_ports,
            cpu,
            mem: HierarchyParams::westmere(),
        }
    }

    /// Returns a copy with a different MVL (for the MVL ablation sweeps).
    pub fn with_mvl(mut self, mvl: usize) -> Self {
        assert!(mvl > 0);
        self.mvl = mvl;
        self
    }

    /// Returns a copy with a different lane count.
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        assert!(lanes > 0 && lanes.is_power_of_two());
        self.lanes = lanes;
        self.cpu.lanes = lanes;
        self
    }

    /// Returns a copy with a different CAM port count.
    pub fn with_cam_ports(mut self, ports: usize) -> Self {
        assert!(ports > 0);
        self.cam_ports = ports;
        self.cpu.cam_ports = ports;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_mvl64_lanes4() {
        let c = SimConfig::paper();
        assert_eq!(c.mvl, 64);
        assert_eq!(c.lanes, 4);
        assert_eq!(c.cam_ports, 4);
        assert_eq!(c.mem.l2_size, 256 * 1024);
    }

    #[test]
    fn builders_adjust_fields() {
        let c = SimConfig::paper()
            .with_mvl(128)
            .with_lanes(8)
            .with_cam_ports(2);
        assert_eq!(c.mvl, 128);
        assert_eq!(c.lanes, 8);
        assert_eq!(c.cpu.lanes, 8);
        assert_eq!(c.cam_ports, 2);
    }

    #[test]
    #[should_panic]
    fn lanes_must_be_power_of_two() {
        SimConfig::paper().with_lanes(3);
    }
}
