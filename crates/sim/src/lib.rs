//! # vagg-sim
//!
//! The simulation machine for the ISCA 2016 aggregation-vectorisation
//! paper: a functional vector ISA emulator ([`vagg_isa`]) fused with an
//! out-of-order pipeline model ([`vagg_cpu`]) and a cache/DRAM hierarchy
//! ([`vagg_mem`]), addressed through a sparse simulated address space.
//!
//! Kernels call instruction-shaped methods on [`Machine`]
//! (`vload_unit`, `vgather`, `vga`, `vred`, ...); each call executes the
//! operation functionally *and* charges cycles per the paper's model, so
//! `Machine::cycles() / n` is directly the paper's cycles-per-tuple metric.
//!
//! ```
//! use vagg_sim::{Machine, Tok};
//! use vagg_isa::{Vreg, RedOp};
//!
//! let mut m = Machine::paper();
//! let data: Vec<u32> = (1..=64).collect();
//! let base = m.space_mut().alloc_slice_u32(&data);
//! m.set_vl(64);
//! m.vload_unit(Vreg(0), base, 4, 0);
//! let (sum, _tok): (u64, Tok) = m.vred(RedOp::Sum, Vreg(0), None);
//! assert_eq!(sum, (1..=64).sum::<u64>());
//! assert!(m.cycles() > 0);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod machine;
pub mod memory;
pub mod trace;

pub use config::SimConfig;
pub use machine::{Machine, OpMix, SimStats, Tok};
pub use memory::AddressSpace;
pub use trace::{Trace, TraceClass, TraceEvent};
