//! The simulated machine: functional vector execution fused with the
//! paper's cycle accounting.
//!
//! A [`Machine`] owns the simulated address space, the memory hierarchy, the
//! out-of-order pipeline model and the architectural vector state. Kernels
//! (the aggregation algorithms, the sorts) are written against its
//! instruction-shaped API; every call performs the functional semantics
//! *and* dispatches a micro-op into the timing model, so
//! [`Machine::cycles`] reflects the paper's performance model:
//!
//! * scalar memory ops walk L1 → L2 → DRAM, vector memory ops bypass the L1;
//! * unit-stride/strided address generation costs one cycle per cache line,
//!   indexed (gather/scatter) costs `VL/lanes` cycles;
//! * elementwise vector ops occupy a vector FU for `VL/lanes` cycles,
//!   reductions add `log2(lanes)` interlane cycles;
//! * VPI/VLU/VGAx occupy the CAM for 2 cycles per conflict-free slice of
//!   `p` adjacent elements.
//!
//! Data dependencies are expressed with [`Tok`] tokens (the cycle a value is
//! ready). Vector/mask register dependencies are tracked automatically; the
//! tokens returned by scalar operations let kernels express scalar
//! dataflow (e.g. a loaded group key feeding an address).

use crate::config::SimConfig;
use crate::memory::AddressSpace;
use crate::trace::{Trace, TraceClass};
use vagg_cpu::{FuKind, Pipeline};
use vagg_isa::conflict::MaskLogic;
use vagg_isa::exec::{self, BinOp, CmpOp, RedOp};
use vagg_isa::inst::{MemPattern, VecOpTiming};
use vagg_isa::irregular;
use vagg_isa::reg::{Mreg, VectorFile, Vreg, NUM_MASKS, NUM_VREGS};
use vagg_mem::{HierarchyStats, MemoryHierarchy};

/// A readiness token: the simulated cycle at which a value is available.
/// `0` means "ready from the start".
pub type Tok = u64;

/// Aggregate statistics for one simulation.
#[derive(Debug, Clone, Copy)]
pub struct SimStats {
    /// Total simulated cycles (last commit).
    pub cycles: u64,
    /// Micro-ops dispatched.
    pub ops: u64,
    /// Memory hierarchy counters.
    pub mem: HierarchyStats,
    /// Dynamic instruction mix.
    pub mix: OpMix,
}

/// Dynamic instruction-mix counters — which instructions an algorithm
/// actually executed, the analysis behind the paper's §IV/§V discussion
/// of where each technique spends its work (e.g. "the average vector
/// length is reduced to values below the MVL in `high`", §V-A).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpMix {
    /// Scalar ALU micro-ops.
    pub scalar_arith: u64,
    /// Scalar loads.
    pub scalar_loads: u64,
    /// Scalar stores.
    pub scalar_stores: u64,
    /// Element-wise vector instructions (arithmetic, logic, comparisons,
    /// initialisation, compress/expand).
    pub v_elementwise: u64,
    /// Vector reductions.
    pub v_reductions: u64,
    /// Mask instructions (popcount, logic, moves).
    pub v_mask_ops: u64,
    /// Vector↔scalar element transfers (`vgetelem`/`vsetelem`).
    pub v_scalar_xfer: u64,
    /// CAM-backed irregular-DLP instructions (VPI, VLU, VGAx).
    pub v_cam: u64,
    /// Unit-stride vector loads.
    pub v_unit_loads: u64,
    /// Strided vector loads.
    pub v_strided_loads: u64,
    /// Indexed vector loads (gathers).
    pub v_gathers: u64,
    /// Unit-stride vector stores.
    pub v_unit_stores: u64,
    /// Strided vector stores.
    pub v_strided_stores: u64,
    /// Indexed vector stores (scatters).
    pub v_scatters: u64,
    /// Memory-side scatter-add instructions (§VI-B comparator).
    pub v_scatter_adds: u64,
    /// Vector prefetches (any access pattern).
    pub v_prefetches: u64,
    /// Total elements processed by vector instructions (sum of VL), the
    /// numerator of [`OpMix::avg_vl`].
    pub v_elements: u64,
}

impl OpMix {
    /// Vector instructions of every class (memory + compute + CAM),
    /// excluding mask bookkeeping and element transfers.
    pub fn vector_ops(&self) -> u64 {
        self.v_elementwise
            + self.v_reductions
            + self.v_cam
            + self.v_unit_loads
            + self.v_strided_loads
            + self.v_gathers
            + self.v_unit_stores
            + self.v_strided_stores
            + self.v_scatters
            + self.v_scatter_adds
            + self.v_prefetches
    }

    /// Scalar micro-ops of every class.
    pub fn scalar_ops(&self) -> u64 {
        self.scalar_arith + self.scalar_loads + self.scalar_stores
    }

    /// Average vector length across all counted vector instructions —
    /// the utilisation measure behind the paper's `high`-division
    /// serialisation effects.
    pub fn avg_vl(&self) -> f64 {
        let n = self.vector_ops();
        if n == 0 {
            0.0
        } else {
            self.v_elements as f64 / n as f64
        }
    }
}

/// The simulated machine (see module docs).
pub struct Machine {
    cfg: SimConfig,
    space: AddressSpace,
    hier: MemoryHierarchy,
    pipe: Pipeline,
    vf: VectorFile,
    vreg_ready: [Tok; NUM_VREGS],
    mask_ready: [Tok; NUM_MASKS],
    vl_ready: Tok,
    /// Conservative memory disambiguation (as in PTLsim): a scalar load
    /// may not issue until every older scalar store's address is known.
    last_store_agu: Tok,
    mix: OpMix,
    trace: Option<Trace>,
}

impl Machine {
    /// Builds a machine from a configuration.
    pub fn new(cfg: SimConfig) -> Self {
        Self {
            vf: VectorFile::new(cfg.mvl),
            hier: MemoryHierarchy::new(cfg.mem.clone()),
            pipe: Pipeline::new(cfg.cpu.clone()),
            space: AddressSpace::new(),
            vreg_ready: [0; NUM_VREGS],
            mask_ready: [0; NUM_MASKS],
            vl_ready: 0,
            last_store_agu: 0,
            mix: OpMix::default(),
            trace: None,
            cfg,
        }
    }

    /// The paper's configuration (MVL 64, 4 lanes).
    pub fn paper() -> Self {
        Self::new(SimConfig::paper())
    }

    /// The active configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Maximum vector length.
    pub fn mvl(&self) -> usize {
        self.cfg.mvl
    }

    /// Current vector length.
    pub fn vl(&self) -> usize {
        self.vf.vl()
    }

    /// Total simulated cycles so far.
    pub fn cycles(&self) -> u64 {
        self.pipe.cycles()
    }

    /// Simulation counters.
    pub fn stats(&self) -> SimStats {
        SimStats {
            cycles: self.pipe.cycles(),
            ops: self.pipe.ops(),
            mem: self.hier.stats(),
            mix: self.mix,
        }
    }

    /// The dynamic instruction mix so far.
    pub fn mix(&self) -> OpMix {
        self.mix
    }

    /// Starts recording an instruction trace, keeping the first
    /// `capacity` events (see [`Trace`]). Replaces any active trace.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(Trace::new(capacity));
    }

    /// Stops tracing and returns the recorded trace, if any.
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.trace.take()
    }

    /// The active trace, if tracing is enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Functional-unit utilisation per cluster family: `(name, busy
    /// fraction)` over the elapsed cycles — which execution resource an
    /// algorithm actually saturates (e.g. the §V-A average-vector-length
    /// collapse shows up as vec-exec utilisation falling with
    /// cardinality).
    pub fn fu_utilization(&self) -> [(&'static str, f64); 6] {
        let mut out = [("", 0.0); 6];
        for (slot, &kind) in out.iter_mut().zip(FuKind::ALL.iter()) {
            *slot = (kind.name(), self.pipe.utilization_of_kind(kind));
        }
        out
    }

    #[inline]
    fn emit(
        &mut self,
        mnemonic: &'static str,
        class: TraceClass,
        vl: usize,
        done: Tok,
        addr: Option<u64>,
        lines: Option<usize>,
    ) {
        if let Some(t) = self.trace.as_mut() {
            t.record(mnemonic, class, vl, done, addr, lines);
        }
    }

    /// Host-side (untimed) access to the simulated memory, for staging
    /// inputs and reading back results.
    pub fn space(&self) -> &AddressSpace {
        &self.space
    }

    /// Host-side mutable access to the simulated memory.
    pub fn space_mut(&mut self) -> &mut AddressSpace {
        &mut self.space
    }

    // ------------------------------------------------------------------
    // internals
    // ------------------------------------------------------------------

    fn line_bytes(&self) -> u64 {
        self.hier.line_bytes()
    }

    fn mask_slice(&self, m: Option<Mreg>) -> Option<Vec<bool>> {
        m.map(|m| self.vf.mask(m).as_slice().to_vec())
    }

    fn mask_dep(&self, m: Option<Mreg>) -> Tok {
        m.map_or(0, |m| self.mask_ready[m.0 as usize])
    }

    // Dispatch a non-memory vector op and account its completion.
    fn vec_op(
        &mut self,
        name: &'static str,
        timing: VecOpTiming,
        cam_cycles: u64,
        deps: Tok,
    ) -> (Tok, Tok) {
        match timing {
            VecOpTiming::Elementwise => {
                self.mix.v_elementwise += 1;
                self.mix.v_elements += self.vf.vl() as u64;
            }
            VecOpTiming::Reduction => {
                self.mix.v_reductions += 1;
                self.mix.v_elements += self.vf.vl() as u64;
            }
            VecOpTiming::Cam => {
                self.mix.v_cam += 1;
                self.mix.v_elements += self.vf.vl() as u64;
            }
            VecOpTiming::MaskOp => self.mix.v_mask_ops += 1,
            VecOpTiming::Scalar => self.mix.v_scalar_xfer += 1,
        }
        let occ = timing.occupancy(self.vf.vl(), self.cfg.lanes, cam_cycles);
        let start = self.pipe.dispatch(FuKind::VecArith, occ, deps);
        let done = start + occ;
        self.pipe.retire(done);
        let class = match timing {
            VecOpTiming::Elementwise => TraceClass::VecCompute,
            VecOpTiming::Reduction => TraceClass::VecReduction,
            VecOpTiming::Cam => TraceClass::Cam,
            VecOpTiming::MaskOp => TraceClass::MaskOp,
            VecOpTiming::Scalar => TraceClass::Xfer,
        };
        self.emit(name, class, self.vf.vl(), done, None, None);
        (start, done)
    }

    fn deps2(a: Tok, b: Tok) -> Tok {
        a.max(b)
    }

    fn deps3(a: Tok, b: Tok, c: Tok) -> Tok {
        a.max(b).max(c)
    }

    // Issue the memory phase of a vector memory instruction: the distinct
    // cache lines of `pattern` are requested one per cycle starting when
    // the AGU produces them; returns the last completion.
    fn vector_mem_phase(
        &mut self,
        pattern: &MemPattern,
        vl: usize,
        write: bool,
        agu_done: Tok,
        queue_free: Tok,
    ) -> Tok {
        let line = self.line_bytes();
        let lines = pattern.lines_touched(vl, line);
        let start = agu_done.max(queue_free);
        // The interleaved L2 (XOR set placement across banks, §II-A) can
        // accept one line request per bank per cycle; the vector interface
        // issues up to `lanes` per cycle. Without the paper's L1 bypass the
        // vector stream funnels through the single-ported L1-d instead —
        // the bandwidth cost §II-A's bypass exists to avoid.
        let ports = if self.cfg.mem.l1_bypass_vector {
            self.cfg.lanes.max(1) as u64
        } else {
            1
        };
        let mut done = start;
        for (i, l) in lines.iter().enumerate() {
            let t = self
                .hier
                .vector_access(l * line, write, start + i as u64 / ports);
            done = done.max(t);
        }
        done
    }

    // ------------------------------------------------------------------
    // scalar instructions
    // ------------------------------------------------------------------

    /// One single-cycle scalar ALU op (add, compare, branch...). Returns
    /// the token of its result.
    pub fn s_op(&mut self, deps: Tok) -> Tok {
        self.mix.scalar_arith += 1;
        let start = self.pipe.dispatch(FuKind::ScalarArith, 1, deps);
        let done = start + 1;
        self.pipe.retire(done);
        self.emit("alu", TraceClass::ScalarAlu, 1, done, None, None);
        done
    }

    /// A scalar 32-bit load. `dep` covers the address computation.
    ///
    /// Conservative disambiguation: the load also waits for all older
    /// scalar stores' address generation, so it cannot bypass a store to
    /// an unresolved address.
    pub fn s_load_u32(&mut self, addr: u64, dep: Tok) -> (u32, Tok) {
        self.mix.scalar_loads += 1;
        let slot = self.pipe.reserve_load_slot();
        let dep = dep.max(self.last_store_agu);
        let start = self.pipe.dispatch(FuKind::LoadAgu, 1, dep.max(slot));
        let done = self.hier.scalar_access(addr, false, start + 1);
        self.pipe.complete_load(done);
        self.pipe.retire(done);
        self.emit("load", TraceClass::ScalarLoad, 1, done, Some(addr), None);
        (self.space.read_u32(addr), done)
    }

    /// A scalar 32-bit store. `addr_dep` gates address generation (which
    /// is what younger loads disambiguate against); `data_dep` gates the
    /// store-data micro-op. Returns the AGU completion token.
    pub fn s_store_u32_split(&mut self, addr: u64, val: u32, addr_dep: Tok, data_dep: Tok) -> Tok {
        self.mix.scalar_stores += 1;
        let slot = self.pipe.reserve_store_slot();
        let start = self.pipe.dispatch(FuKind::StoreAgu, 1, addr_dep.max(slot));
        let _data = self.pipe.dispatch(FuKind::StoreData, 1, data_dep);
        let done = self.hier.scalar_access(addr, true, start + 1);
        self.pipe.complete_store(done);
        self.pipe.retire(start + 1);
        self.space.write_u32(addr, val);
        self.last_store_agu = self.last_store_agu.max(start + 1);
        self.emit(
            "store",
            TraceClass::ScalarStore,
            1,
            start + 1,
            Some(addr),
            None,
        );
        start + 1
    }

    /// A scalar 32-bit store whose address and data become ready together.
    pub fn s_store_u32(&mut self, addr: u64, val: u32, dep: Tok) -> Tok {
        self.s_store_u32_split(addr, val, dep, dep)
    }

    // ------------------------------------------------------------------
    // vector control
    // ------------------------------------------------------------------

    /// `setvl`: sets the vector length (clamped to MVL), charging one
    /// cycle.
    pub fn set_vl(&mut self, vl: usize) -> Tok {
        let start = self.pipe.dispatch(FuKind::ScalarArith, 1, self.vl_ready);
        let done = start + 1;
        self.pipe.retire(done);
        self.vf.set_vl(vl);
        self.vl_ready = done;
        self.emit("setvl", TraceClass::Control, self.vf.vl(), done, None, None);
        done
    }

    // ------------------------------------------------------------------
    // vector arithmetic / logic (Table III)
    // ------------------------------------------------------------------

    /// Element-wise vector-vector operation.
    pub fn vbinop_vv(&mut self, op: BinOp, vd: Vreg, va: Vreg, vb: Vreg, m: Option<Mreg>) {
        // Merge masking reads the old destination; unmasked ops fully
        // overwrite it, so renaming removes the WAW dependency.
        let dst_dep = if m.is_some() {
            self.vreg_ready[vd.0 as usize]
        } else {
            0
        };
        let deps = Self::deps3(
            self.vreg_ready[va.0 as usize],
            self.vreg_ready[vb.0 as usize],
            self.mask_dep(m).max(dst_dep),
        );
        let (_, done) = self.vec_op(op.mnemonic(), VecOpTiming::Elementwise, 0, deps);
        let vl = self.vf.vl();
        let mask = self.mask_slice(m);
        let a = self.vf.vreg(va).as_slice().to_vec();
        let b = self.vf.vreg(vb).as_slice().to_vec();
        exec::binop_vv(
            op,
            self.vf.vreg_mut(vd).as_mut_slice(),
            &a,
            &b,
            vl,
            mask.as_deref(),
        );
        self.vreg_ready[vd.0 as usize] = done;
    }

    /// Element-wise vector-scalar operation.
    pub fn vbinop_vs(&mut self, op: BinOp, vd: Vreg, va: Vreg, s: u64, m: Option<Mreg>) {
        let dst_dep = if m.is_some() {
            self.vreg_ready[vd.0 as usize]
        } else {
            0
        };
        let deps = Self::deps3(self.vreg_ready[va.0 as usize], self.mask_dep(m), dst_dep);
        let (_, done) = self.vec_op(op.mnemonic(), VecOpTiming::Elementwise, 0, deps);
        let vl = self.vf.vl();
        let mask = self.mask_slice(m);
        let a = self.vf.vreg(va).as_slice().to_vec();
        exec::binop_vs(
            op,
            self.vf.vreg_mut(vd).as_mut_slice(),
            &a,
            s,
            vl,
            mask.as_deref(),
        );
        self.vreg_ready[vd.0 as usize] = done;
    }

    /// `vset`: broadcast a scalar.
    pub fn vset(&mut self, vd: Vreg, value: u64, m: Option<Mreg>) {
        let dst_dep = if m.is_some() {
            self.vreg_ready[vd.0 as usize]
        } else {
            0
        };
        let deps = self.mask_dep(m).max(dst_dep);
        let (_, done) = self.vec_op("vset", VecOpTiming::Elementwise, 0, deps);
        let vl = self.vf.vl();
        let mask = self.mask_slice(m);
        exec::set_all(
            self.vf.vreg_mut(vd).as_mut_slice(),
            value,
            vl,
            mask.as_deref(),
        );
        self.vreg_ready[vd.0 as usize] = done;
    }

    /// `vclear`: zero the register.
    pub fn vclear(&mut self, vd: Vreg, m: Option<Mreg>) {
        self.vset(vd, 0, m);
    }

    /// `viota`: element indices `0, 1, 2, ...`.
    pub fn viota(&mut self, vd: Vreg, m: Option<Mreg>) {
        let dst_dep = if m.is_some() {
            self.vreg_ready[vd.0 as usize]
        } else {
            0
        };
        let deps = self.mask_dep(m).max(dst_dep);
        let (_, done) = self.vec_op("viota", VecOpTiming::Elementwise, 0, deps);
        let vl = self.vf.vl();
        let mask = self.mask_slice(m);
        exec::iota(self.vf.vreg_mut(vd).as_mut_slice(), vl, mask.as_deref());
        self.vreg_ready[vd.0 as usize] = done;
    }

    /// Vector-vector comparison into a mask register.
    pub fn vcmp_vv(&mut self, op: CmpOp, md: Mreg, va: Vreg, vb: Vreg, m: Option<Mreg>) {
        let deps = Self::deps3(
            self.vreg_ready[va.0 as usize],
            self.vreg_ready[vb.0 as usize],
            self.mask_dep(m),
        );
        let (_, done) = self.vec_op(op.mnemonic(), VecOpTiming::Elementwise, 0, deps);
        let vl = self.vf.vl();
        let mask = self.mask_slice(m);
        let a = self.vf.vreg(va).as_slice().to_vec();
        let b = self.vf.vreg(vb).as_slice().to_vec();
        exec::compare_vv(
            op,
            self.vf.mask_mut(md).as_mut_slice(),
            &a,
            &b,
            vl,
            mask.as_deref(),
        );
        self.mask_ready[md.0 as usize] = done;
    }

    /// Vector-scalar comparison into a mask register.
    pub fn vcmp_vs(&mut self, op: CmpOp, md: Mreg, va: Vreg, s: u64, m: Option<Mreg>) {
        let deps = Self::deps2(self.vreg_ready[va.0 as usize], self.mask_dep(m));
        let (_, done) = self.vec_op(op.mnemonic(), VecOpTiming::Elementwise, 0, deps);
        let vl = self.vf.vl();
        let mask = self.mask_slice(m);
        let a = self.vf.vreg(va).as_slice().to_vec();
        exec::compare_vs(
            op,
            self.vf.mask_mut(md).as_mut_slice(),
            &a,
            s,
            vl,
            mask.as_deref(),
        );
        self.mask_ready[md.0 as usize] = done;
    }

    /// Reduction to scalar.
    pub fn vred(&mut self, op: RedOp, va: Vreg, m: Option<Mreg>) -> (u64, Tok) {
        let deps = Self::deps2(self.vreg_ready[va.0 as usize], self.mask_dep(m));
        let (_, done) = self.vec_op(op.mnemonic(), VecOpTiming::Reduction, 0, deps);
        let vl = self.vf.vl();
        let mask = self.mask_slice(m);
        let v = exec::reduce(op, self.vf.vreg(va).as_slice(), vl, mask.as_deref());
        (v, done)
    }

    /// Mask popcount.
    pub fn mpopcnt(&mut self, m: Mreg) -> (usize, Tok) {
        let deps = self.mask_ready[m.0 as usize];
        let (_, done) = self.vec_op("mpopcnt", VecOpTiming::MaskOp, 0, deps);
        let vl = self.vf.vl();
        (self.vf.mask(m).popcount(vl), done)
    }

    /// `vcompress` (mask-controlled, like all permutative instructions).
    /// Returns the packed element count.
    pub fn vcompress(&mut self, vd: Vreg, va: Vreg, m: Mreg) -> (usize, Tok) {
        let deps = Self::deps3(
            self.vreg_ready[va.0 as usize],
            self.mask_ready[m.0 as usize],
            self.vreg_ready[vd.0 as usize],
        );
        let (_, done) = self.vec_op("vcompress", VecOpTiming::Elementwise, 0, deps);
        let vl = self.vf.vl();
        let mask = self.vf.mask(m).as_slice().to_vec();
        let a = self.vf.vreg(va).as_slice().to_vec();
        let k = exec::compress(self.vf.vreg_mut(vd).as_mut_slice(), &a, &mask, vl);
        self.vreg_ready[vd.0 as usize] = done;
        (k, done)
    }

    /// `vexpand`, inverse of [`Machine::vcompress`].
    pub fn vexpand(&mut self, vd: Vreg, va: Vreg, m: Mreg) -> Tok {
        let deps = Self::deps3(
            self.vreg_ready[va.0 as usize],
            self.mask_ready[m.0 as usize],
            self.vreg_ready[vd.0 as usize],
        );
        let (_, done) = self.vec_op("vexpand", VecOpTiming::Elementwise, 0, deps);
        let vl = self.vf.vl();
        let mask = self.vf.mask(m).as_slice().to_vec();
        let a = self.vf.vreg(va).as_slice().to_vec();
        exec::expand(self.vf.vreg_mut(vd).as_mut_slice(), &a, &mask, vl);
        self.vreg_ready[vd.0 as usize] = done;
        done
    }

    /// `vgetelem`: reads element `i` into scalar dataflow.
    pub fn vget(&mut self, va: Vreg, i: usize) -> (u64, Tok) {
        let deps = self.vreg_ready[va.0 as usize];
        let (_, done) = self.vec_op("vgetelem", VecOpTiming::Scalar, 0, deps);
        (self.vf.vreg(va).as_slice()[i], done)
    }

    /// `vsetelem`: writes element `i` from scalar dataflow.
    pub fn vset_elem(&mut self, vd: Vreg, i: usize, val: u64, dep: Tok) -> Tok {
        let deps = dep.max(self.vreg_ready[vd.0 as usize]);
        let (_, done) = self.vec_op("vsetelem", VecOpTiming::Scalar, 0, deps);
        self.vf.vreg_mut(vd).as_mut_slice()[i] = val;
        self.vreg_ready[vd.0 as usize] = done;
        done
    }

    /// Copies a whole mask register (helper; costs one mask op).
    pub fn mmove(&mut self, md: Mreg, ma: Mreg) {
        let deps = self.mask_ready[ma.0 as usize];
        let (_, done) = self.vec_op("mmove", VecOpTiming::MaskOp, 0, deps);
        let src = self.vf.mask(ma).as_slice().to_vec();
        self.vf.mask_mut(md).as_mut_slice().copy_from_slice(&src);
        self.mask_ready[md.0 as usize] = done;
    }

    /// Sets the first `vl` bits of a mask (helper for all-active masks).
    pub fn mset_all(&mut self, md: Mreg) {
        let (_, done) = self.vec_op("msetall", VecOpTiming::MaskOp, 0, 0);
        let vl = self.vf.vl();
        let mvl = self.cfg.mvl;
        let m = self.vf.mask_mut(md).as_mut_slice();
        for (i, b) in m.iter_mut().enumerate().take(mvl) {
            *b = i < vl;
        }
        self.mask_ready[md.0 as usize] = done;
    }

    // ------------------------------------------------------------------
    // irregular-DLP instructions (VPI / VLU / VGAx)
    // ------------------------------------------------------------------

    /// `vpi` — Vector Prior Instances.
    pub fn vpi(&mut self, vd: Vreg, va: Vreg) {
        let vl = self.vf.vl();
        let keys = self.vf.vreg(va).as_slice().to_vec();
        let r = irregular::vpi(&keys, vl, self.cfg.cam_ports);
        let deps = self.vreg_ready[va.0 as usize];
        let (_, done) = self.vec_op("vpi", VecOpTiming::Cam, r.cycles, deps);
        self.vf.vreg_mut(vd).as_mut_slice()[..r.value.len()].copy_from_slice(&r.value);
        self.vreg_ready[vd.0 as usize] = done;
    }

    /// `vlu` — Vector Last Unique.
    pub fn vlu(&mut self, md: Mreg, va: Vreg) {
        let vl = self.vf.vl();
        let keys = self.vf.vreg(va).as_slice().to_vec();
        let r = irregular::vlu(&keys, vl, self.cfg.cam_ports);
        let deps = self.vreg_ready[va.0 as usize];
        let (_, done) = self.vec_op("vlu", VecOpTiming::Cam, r.cycles, deps);
        self.vf
            .mask_mut(md)
            .as_mut_slice()
            .copy_from_slice(&r.value);
        self.mask_ready[md.0 as usize] = done;
    }

    /// `vgasum`/`vgamin`/`vgamax` — Vector Group Aggregate.
    pub fn vga(&mut self, op: RedOp, vd: Vreg, vkeys: Vreg, vvals: Vreg) {
        let vl = self.vf.vl();
        let keys = self.vf.vreg(vkeys).as_slice().to_vec();
        let vals = self.vf.vreg(vvals).as_slice().to_vec();
        let r = irregular::vga(op, &keys, &vals, vl, self.cfg.cam_ports);
        let deps = Self::deps2(
            self.vreg_ready[vkeys.0 as usize],
            self.vreg_ready[vvals.0 as usize],
        );
        let (_, done) = self.vec_op(op.vga_mnemonic(), VecOpTiming::Cam, r.cycles, deps);
        self.vf.vreg_mut(vd).as_mut_slice()[..r.value.len()].copy_from_slice(&r.value);
        self.vreg_ready[vd.0 as usize] = done;
    }

    // ------------------------------------------------------------------
    // related-work extension instructions (§VI-B comparators)
    // ------------------------------------------------------------------

    /// `vconflict` — AVX-512-CDI-style conflict detection: `vd[i]` holds a
    /// bitmask of the earlier elements of `va` with the same value.
    ///
    /// Charged as an ordinary element-wise vector instruction, which is
    /// generous to the CDI baseline (see [`vagg_isa::conflict`]).
    ///
    /// # Panics
    ///
    /// Panics if the current VL exceeds 64 (the bitmask width limit).
    pub fn vconflict(&mut self, vd: Vreg, va: Vreg) {
        let vl = self.vf.vl();
        let keys = self.vf.vreg(va).as_slice().to_vec();
        let out = vagg_isa::conflict::vconflict(&keys, vl);
        let deps = self.vreg_ready[va.0 as usize];
        let (_, done) = self.vec_op("vconflict", VecOpTiming::Elementwise, 0, deps);
        self.vf.vreg_mut(vd).as_mut_slice()[..out.len()].copy_from_slice(&out);
        self.vreg_ready[vd.0 as usize] = done;
    }

    /// `vtestnm` — mask bit `i` set iff `va[i] & s == 0`. The scalar
    /// operand's readiness is conveyed through `dep` (it typically comes
    /// from a [`Machine::kmov`]).
    pub fn vtestnm_vs(&mut self, md: Mreg, va: Vreg, s: u64, dep: Tok) {
        let vl = self.vf.vl();
        let a = self.vf.vreg(va).as_slice().to_vec();
        let out = vagg_isa::conflict::vtestnm_vs(&a, s, vl);
        let deps = Self::deps2(self.vreg_ready[va.0 as usize], dep);
        let (_, done) = self.vec_op("vtestnm", VecOpTiming::Elementwise, 0, deps);
        self.vf.mask_mut(md).as_mut_slice()[..out.len()].copy_from_slice(&out);
        self.mask_ready[md.0 as usize] = done;
    }

    /// Two-operand mask logic (`kand`/`kandn`/`kor`/`kxor`); one cycle.
    pub fn mlogic(&mut self, op: MaskLogic, md: Mreg, ma: Mreg, mb: Mreg) {
        let deps = Self::deps2(
            self.mask_ready[ma.0 as usize],
            self.mask_ready[mb.0 as usize],
        );
        let (_, done) = self.vec_op(op.mnemonic(), VecOpTiming::MaskOp, 0, deps);
        let vl = self.vf.vl();
        let a = self.vf.mask(ma).as_slice().to_vec();
        let b = self.vf.mask(mb).as_slice().to_vec();
        let out = vagg_isa::conflict::mask_logic(op, &a, &b, vl);
        self.vf.mask_mut(md).as_mut_slice()[..out.len()].copy_from_slice(&out);
        self.mask_ready[md.0 as usize] = done;
    }

    /// `kmov` — packs the first VL mask bits into scalar dataflow.
    ///
    /// # Panics
    ///
    /// Panics if the current VL exceeds 64.
    pub fn kmov(&mut self, ma: Mreg) -> (u64, Tok) {
        let deps = self.mask_ready[ma.0 as usize];
        let (_, done) = self.vec_op("kmov", VecOpTiming::MaskOp, 0, deps);
        let vl = self.vf.vl();
        let bits = vagg_isa::conflict::mask_to_bits(self.vf.mask(ma).as_slice(), vl);
        (bits, done)
    }

    /// `vscatadd` — memory-side scatter-add (Ahn et al., HPCA 2005):
    /// `mem[base + idx[i] * elem_bytes] += vs[i]` for every active
    /// element, with conflicting indices accumulated (never lost) by an
    /// adder at the memory interface.
    ///
    /// Unlike [`Machine::vscatter`], duplicate indices are **defined**
    /// behaviour — that is the instruction's whole purpose. The cost model
    /// fetches every distinct line, then writes it back (a read phase and
    /// a write phase), so a scatter-add is roughly a gather plus a
    /// scatter fused into one instruction with no conflict-resolution
    /// overhead. There is **no return path**: the old values never reach a
    /// register, which is exactly the limitation §VI-B raises (it cannot
    /// implement VSR sort or any partial-sorting step).
    pub fn vscatter_add(
        &mut self,
        vs: Vreg,
        base: u64,
        vidx: Vreg,
        elem_bytes: u64,
        m: Option<Mreg>,
        dep: Tok,
    ) -> Tok {
        let vl = self.vf.vl();
        self.mix.v_scatter_adds += 1;
        self.mix.v_elements += vl as u64;
        let lanes = self.cfg.lanes;
        let line = self.line_bytes();
        let mask = self.mask_slice(m);
        let offsets: Vec<u64> = self.vf.vreg(vidx).as_slice()[..vl]
            .iter()
            .map(|&x| x * elem_bytes)
            .collect();
        let pattern = MemPattern::Indexed {
            base,
            offsets,
            elem_bytes,
        };
        let deps = Self::deps3(
            dep.max(self.vreg_ready[vidx.0 as usize]),
            self.mask_dep(m),
            self.vreg_ready[vs.0 as usize],
        );

        let occ = pattern.agen_cycles(vl, lanes, line);
        let slot = self.pipe.reserve_store_slot();
        let start = self.pipe.dispatch(FuKind::StoreAgu, occ, deps.max(slot));
        let _data = self.pipe.dispatch(FuKind::StoreData, occ, deps);
        let agu_done = start + occ;
        // Read-modify-write: fetch each distinct line, then write it back.
        let read_done = self.vector_mem_phase(&pattern, vl, false, agu_done, 0);
        let done = self.vector_mem_phase(&pattern, vl, true, read_done, 0);
        self.pipe.complete_store(done);
        self.pipe.retire(agu_done);
        if self.trace.is_some() {
            let lines = pattern.lines_touched(vl, line).len();
            self.emit(
                "vscatadd",
                TraceClass::ScatterAdd,
                vl,
                done,
                Some(pattern.address(0)),
                Some(lines),
            );
        }

        for i in 0..vl {
            if mask.as_ref().is_none_or(|mk| mk[i]) {
                let addr = pattern.address(i);
                let old = self.space.read_elem(addr, elem_bytes);
                let add = self.vf.vreg(vs).as_slice()[i];
                self.space
                    .write_elem(addr, elem_bytes, old.wrapping_add(add));
            }
        }
        agu_done
    }

    // ------------------------------------------------------------------
    // vector memory
    // ------------------------------------------------------------------

    /// Unit-stride vector load of `vl` elements of `elem_bytes` each.
    pub fn vload_unit(&mut self, vd: Vreg, base: u64, elem_bytes: u64, dep: Tok) -> Tok {
        let pattern = MemPattern::UnitStride { base, elem_bytes };
        self.vload_pattern(vd, pattern, None, dep)
    }

    /// Strided vector load (`stride_bytes` between consecutive elements).
    pub fn vload_strided(
        &mut self,
        vd: Vreg,
        base: u64,
        stride_bytes: i64,
        elem_bytes: u64,
        dep: Tok,
    ) -> Tok {
        let pattern = MemPattern::Strided {
            base,
            stride: stride_bytes,
            elem_bytes,
        };
        self.vload_pattern(vd, pattern, None, dep)
    }

    /// Indexed vector load (gather): element `i` comes from
    /// `base + idx[i] * elem_bytes`.
    pub fn vgather(
        &mut self,
        vd: Vreg,
        base: u64,
        vidx: Vreg,
        elem_bytes: u64,
        m: Option<Mreg>,
        dep: Tok,
    ) -> Tok {
        let vl = self.vf.vl();
        let offsets: Vec<u64> = self.vf.vreg(vidx).as_slice()[..vl]
            .iter()
            .map(|&x| x * elem_bytes)
            .collect();
        let pattern = MemPattern::Indexed {
            base,
            offsets,
            elem_bytes,
        };
        let dep = dep.max(self.vreg_ready[vidx.0 as usize]);
        self.vload_pattern(vd, pattern, m, dep)
    }

    fn vload_pattern(&mut self, vd: Vreg, pattern: MemPattern, m: Option<Mreg>, dep: Tok) -> Tok {
        let vl = self.vf.vl();
        match pattern {
            MemPattern::UnitStride { .. } => self.mix.v_unit_loads += 1,
            MemPattern::Strided { .. } => self.mix.v_strided_loads += 1,
            MemPattern::Indexed { .. } => self.mix.v_gathers += 1,
        }
        self.mix.v_elements += vl as u64;
        let lanes = self.cfg.lanes;
        let line = self.line_bytes();
        let mask = self.mask_slice(m);
        let dst_dep = if m.is_some() {
            self.vreg_ready[vd.0 as usize]
        } else {
            0
        };
        let deps = Self::deps3(dep, self.mask_dep(m), dst_dep);

        let occ = pattern.agen_cycles(vl, lanes, line);
        let slot = self.pipe.reserve_load_slot();
        let start = self.pipe.dispatch(FuKind::VecMemAgu, occ, deps.max(slot));
        let agu_done = start + occ;
        let done = self.vector_mem_phase(&pattern, vl, false, agu_done, 0);
        self.pipe.complete_load(done);
        self.pipe.retire(done);
        if self.trace.is_some() {
            let (name, lines) = (
                match pattern {
                    MemPattern::UnitStride { .. } => "vld.u",
                    MemPattern::Strided { .. } => "vld.s",
                    MemPattern::Indexed { .. } => "vgather",
                },
                pattern.lines_touched(vl, line).len(),
            );
            self.emit(
                name,
                TraceClass::VecLoad,
                vl,
                done,
                Some(pattern.address(0)),
                Some(lines),
            );
        }

        // Functional transfer (merge masking).
        for i in 0..vl {
            if mask.as_ref().is_none_or(|mk| mk[i]) {
                let v = self
                    .space
                    .read_elem(pattern.address(i), pattern.elem_bytes());
                self.vf.vreg_mut(vd).as_mut_slice()[i] = v;
            }
        }
        self.vreg_ready[vd.0 as usize] = done;
        done
    }

    /// Unit-stride vector prefetch: warms the L2 with the lines a
    /// subsequent [`Machine::vload_unit`] of the same span would touch.
    ///
    /// §II-A: "Each class corresponds to an access pattern and supports
    /// load, store and prefetch instructions." Prefetches occupy the
    /// vector-memory AGU like a load but write no register, never stall a
    /// consumer (no result token) and are dropped rather than queued when
    /// the load queue is full.
    pub fn vprefetch_unit(&mut self, base: u64, elem_bytes: u64, dep: Tok) {
        let pattern = MemPattern::UnitStride { base, elem_bytes };
        self.vprefetch_pattern(pattern, dep);
    }

    /// Strided vector prefetch (see [`Machine::vprefetch_unit`]).
    pub fn vprefetch_strided(&mut self, base: u64, stride_bytes: i64, elem_bytes: u64, dep: Tok) {
        let pattern = MemPattern::Strided {
            base,
            stride: stride_bytes,
            elem_bytes,
        };
        self.vprefetch_pattern(pattern, dep);
    }

    /// Indexed vector prefetch (gather-shaped; see
    /// [`Machine::vprefetch_unit`]).
    pub fn vprefetch_indexed(&mut self, base: u64, vidx: Vreg, elem_bytes: u64, dep: Tok) {
        let vl = self.vf.vl();
        let offsets: Vec<u64> = self.vf.vreg(vidx).as_slice()[..vl]
            .iter()
            .map(|&x| x * elem_bytes)
            .collect();
        let pattern = MemPattern::Indexed {
            base,
            offsets,
            elem_bytes,
        };
        let dep = dep.max(self.vreg_ready[vidx.0 as usize]);
        self.vprefetch_pattern(pattern, dep);
    }

    fn vprefetch_pattern(&mut self, pattern: MemPattern, dep: Tok) {
        let vl = self.vf.vl();
        self.mix.v_prefetches += 1;
        self.mix.v_elements += vl as u64;
        let lanes = self.cfg.lanes;
        let line = self.line_bytes();
        let occ = pattern.agen_cycles(vl, lanes, line);
        let slot = self.pipe.reserve_load_slot();
        let start = self.pipe.dispatch(FuKind::VecMemAgu, occ, dep.max(slot));
        let agu_done = start + occ;
        let done = self.vector_mem_phase(&pattern, vl, false, agu_done, 0);
        self.pipe.complete_load(done);
        // A prefetch retires as soon as its AGU work is done — it has no
        // architectural result for anything to wait on.
        self.pipe.retire(agu_done);
        if self.trace.is_some() {
            let (name, lines) = (
                match pattern {
                    MemPattern::UnitStride { .. } => "vpf.u",
                    MemPattern::Strided { .. } => "vpf.s",
                    MemPattern::Indexed { .. } => "vpf.x",
                },
                pattern.lines_touched(vl, line).len(),
            );
            self.emit(
                name,
                TraceClass::Prefetch,
                vl,
                done,
                Some(pattern.address(0)),
                Some(lines),
            );
        }
    }

    /// Unit-stride vector store.
    pub fn vstore_unit(&mut self, vs: Vreg, base: u64, elem_bytes: u64, dep: Tok) -> Tok {
        let pattern = MemPattern::UnitStride { base, elem_bytes };
        self.vstore_pattern(vs, pattern, None, dep)
    }

    /// Strided vector store.
    pub fn vstore_strided(
        &mut self,
        vs: Vreg,
        base: u64,
        stride_bytes: i64,
        elem_bytes: u64,
        dep: Tok,
    ) -> Tok {
        let pattern = MemPattern::Strided {
            base,
            stride: stride_bytes,
            elem_bytes,
        };
        self.vstore_pattern(vs, pattern, None, dep)
    }

    /// Indexed vector store (scatter): element `i` goes to
    /// `base + idx[i] * elem_bytes`.
    ///
    /// If the active indices are not unique the architectural behaviour is
    /// undefined (the GMS hazard of §III-C); the model applies them in
    /// element order, so the highest-numbered active element wins — and
    /// debug builds assert uniqueness to surface algorithm bugs.
    pub fn vscatter(
        &mut self,
        vs: Vreg,
        base: u64,
        vidx: Vreg,
        elem_bytes: u64,
        m: Option<Mreg>,
        dep: Tok,
    ) -> Tok {
        let vl = self.vf.vl();
        let mask = self.mask_slice(m);
        let offsets: Vec<u64> = self.vf.vreg(vidx).as_slice()[..vl]
            .iter()
            .map(|&x| x * elem_bytes)
            .collect();
        #[cfg(debug_assertions)]
        {
            let mut active: Vec<u64> = offsets
                .iter()
                .enumerate()
                .filter(|(i, _)| mask.as_ref().is_none_or(|mk| mk[*i]))
                .map(|(_, &o)| o)
                .collect();
            active.sort_unstable();
            let len_before = active.len();
            active.dedup();
            debug_assert_eq!(
                len_before,
                active.len(),
                "GMS conflict: duplicate scatter indices"
            );
        }
        let pattern = MemPattern::Indexed {
            base,
            offsets,
            elem_bytes,
        };
        let dep = dep.max(self.vreg_ready[vidx.0 as usize]);
        self.vstore_pattern_masked(vs, pattern, mask, m, dep)
    }

    fn vstore_pattern(&mut self, vs: Vreg, pattern: MemPattern, m: Option<Mreg>, dep: Tok) -> Tok {
        let mask = self.mask_slice(m);
        self.vstore_pattern_masked(vs, pattern, mask, m, dep)
    }

    fn vstore_pattern_masked(
        &mut self,
        vs: Vreg,
        pattern: MemPattern,
        mask: Option<Vec<bool>>,
        m: Option<Mreg>,
        dep: Tok,
    ) -> Tok {
        let vl = self.vf.vl();
        match pattern {
            MemPattern::UnitStride { .. } => self.mix.v_unit_stores += 1,
            MemPattern::Strided { .. } => self.mix.v_strided_stores += 1,
            MemPattern::Indexed { .. } => self.mix.v_scatters += 1,
        }
        self.mix.v_elements += vl as u64;
        let lanes = self.cfg.lanes;
        let line = self.line_bytes();
        let deps = Self::deps3(dep, self.mask_dep(m), self.vreg_ready[vs.0 as usize]);

        let occ = pattern.agen_cycles(vl, lanes, line);
        let slot = self.pipe.reserve_store_slot();
        let start = self.pipe.dispatch(FuKind::StoreAgu, occ, deps.max(slot));
        let _data = self.pipe.dispatch(FuKind::StoreData, occ, deps);
        let agu_done = start + occ;
        let done = self.vector_mem_phase(&pattern, vl, true, agu_done, 0);
        self.pipe.complete_store(done);
        self.pipe.retire(agu_done);
        if self.trace.is_some() {
            let (name, lines) = (
                match pattern {
                    MemPattern::UnitStride { .. } => "vst.u",
                    MemPattern::Strided { .. } => "vst.s",
                    MemPattern::Indexed { .. } => "vscatter",
                },
                pattern.lines_touched(vl, line).len(),
            );
            self.emit(
                name,
                TraceClass::VecStore,
                vl,
                done,
                Some(pattern.address(0)),
                Some(lines),
            );
        }

        for i in 0..vl {
            if mask.as_ref().is_none_or(|mk| mk[i]) {
                let v = self.vf.vreg(vs).as_slice()[i];
                self.space
                    .write_elem(pattern.address(i), pattern.elem_bytes(), v);
            }
        }
        agu_done
    }

    // ------------------------------------------------------------------
    // test/diagnostic hooks
    // ------------------------------------------------------------------

    /// True if the byte's line currently resides in the simulated L2
    /// (diagnostic hook, e.g. for prefetch-coverage tests).
    pub fn hier_l2_contains(&self, byte_addr: u64) -> bool {
        self.hier.l2_contains(byte_addr)
    }

    /// Readiness token of a vector register (diagnostic hook).
    pub fn vreg_ready_of(&self, v: Vreg) -> Tok {
        self.vreg_ready[v.0 as usize]
    }

    /// Readiness token of a mask register (diagnostic hook).
    pub fn mask_ready_of(&self, m: Mreg) -> Tok {
        self.mask_ready[m.0 as usize]
    }

    /// Reads a vector register's first `vl` elements (host-side).
    pub fn vreg_snapshot(&self, v: Vreg) -> Vec<u64> {
        self.vf.vreg(v).as_slice()[..self.vf.vl()].to_vec()
    }

    /// Reads a mask register's first `vl` bits (host-side).
    pub fn mask_snapshot(&self, m: Mreg) -> Vec<bool> {
        self.vf.mask(m).as_slice()[..self.vf.vl()].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const V0: Vreg = Vreg(0);
    const V1: Vreg = Vreg(1);
    const V2: Vreg = Vreg(2);
    const M0: Mreg = Mreg(0);

    fn machine() -> Machine {
        Machine::paper()
    }

    #[test]
    fn mix_counts_every_op_class() {
        let mut m = machine();
        let data: Vec<u32> = (0..64).collect();
        let base = m.space_mut().alloc_slice_u32(&data);
        m.set_vl(16);

        m.vload_unit(V0, base, 4, 0);
        m.vload_strided(V1, base, 8, 4, 0);
        m.viota(V2, None);
        m.vgather(V1, base, V2, 4, None, 0);
        m.vbinop_vv(BinOp::Add, V0, V0, V1, None);
        m.vcmp_vs(CmpOp::Ne, M0, V0, 0, None);
        m.vred(RedOp::Sum, V0, None);
        m.mpopcnt(M0);
        m.vpi(V1, V0);
        m.vlu(M0, V0);
        m.vga(RedOp::Sum, V1, V0, V2);
        m.vget(V0, 3);
        m.vstore_unit(V0, base, 4, 0);
        m.vstore_strided(V0, base, 8, 4, 0);
        m.viota(V2, None);
        m.vscatter(V0, base, V2, 4, None, 0);
        m.vscatter_add(V0, base, V2, 4, None, 0);
        m.s_op(0);
        m.s_load_u32(base, 0);
        m.s_store_u32(base, 7, 0);

        let mix = m.mix();
        assert_eq!(mix.v_unit_loads, 1);
        assert_eq!(mix.v_strided_loads, 1);
        assert_eq!(mix.v_gathers, 1);
        assert_eq!(mix.v_unit_stores, 1);
        assert_eq!(mix.v_strided_stores, 1);
        assert_eq!(mix.v_scatters, 1);
        assert_eq!(mix.v_scatter_adds, 1);
        assert_eq!(mix.v_reductions, 1);
        assert_eq!(mix.v_cam, 3, "vpi + vlu + vga");
        assert_eq!(mix.v_mask_ops, 1, "mpopcnt");
        assert_eq!(mix.v_scalar_xfer, 1, "vget");
        // viota ×2 + vbinop + vcmp = 4 element-wise ops.
        assert_eq!(mix.v_elementwise, 4);
        assert_eq!(mix.scalar_arith, 1);
        assert_eq!(mix.scalar_loads, 1);
        assert_eq!(mix.scalar_stores, 1);
        // Every counted vector op ran at VL = 16.
        assert_eq!(mix.v_elements, 16 * mix.vector_ops());
        assert!((mix.avg_vl() - 16.0).abs() < 1e-9);
        assert_eq!(m.stats().mix, mix);
    }

    #[test]
    fn avg_vl_handles_empty_mix() {
        assert_eq!(OpMix::default().avg_vl(), 0.0);
        assert_eq!(OpMix::default().vector_ops(), 0);
    }

    #[test]
    fn prefetch_warms_the_l2_without_writing_registers() {
        let mut m = machine();
        let data: Vec<u32> = (0..64).collect();
        let base = m.space_mut().alloc_slice_u32(&data);
        m.set_vl(64);
        let before = m.vreg_snapshot(V0);

        m.vprefetch_unit(base, 4, 0);
        assert!(m.hier_l2_contains(base), "prefetch must install the line");
        assert_eq!(m.vreg_snapshot(V0), before, "no architectural result");
        assert_eq!(m.mix().v_prefetches, 1);

        // A load after the prefetch hits the L2 rather than DRAM.
        let dram_before = m.stats().mem.dram.requests;
        m.vload_unit(V0, base, 4, 0);
        assert_eq!(m.stats().mem.dram.requests, dram_before);
    }

    #[test]
    fn indexed_prefetch_covers_gather_lines() {
        let mut m = machine();
        let table: Vec<u32> = (0..4096).collect();
        let base = m.space_mut().alloc_slice_u32(&table);
        m.set_vl(8);
        // Scattered indices across distinct lines.
        for (i, idx) in [0u64, 512, 1024, 1536, 2048, 2560, 3072, 3584]
            .into_iter()
            .enumerate()
        {
            m.vset_elem(V1, i, idx, 0);
        }
        m.vprefetch_indexed(base, V1, 4, 0);
        for idx in [0u64, 512, 3584] {
            assert!(m.hier_l2_contains(base + idx * 4), "idx {idx}");
        }
    }

    #[test]
    fn vload_unit_reads_staged_data() {
        let mut m = machine();
        let data: Vec<u32> = (0..64).map(|i| i * 3).collect();
        let base = m.space_mut().alloc_slice_u32(&data);
        m.set_vl(64);
        m.vload_unit(V0, base, 4, 0);
        let snap = m.vreg_snapshot(V0);
        assert_eq!(snap, (0..64).map(|i| i as u64 * 3).collect::<Vec<_>>());
    }

    #[test]
    fn vstore_unit_writes_back() {
        let mut m = machine();
        let base = m.space_mut().alloc(256, 64);
        m.set_vl(8);
        m.viota(V0, None);
        m.vstore_unit(V0, base, 4, 0);
        assert_eq!(
            m.space().read_slice_u32(base, 8),
            vec![0, 1, 2, 3, 4, 5, 6, 7]
        );
    }

    #[test]
    fn strided_load_picks_every_other() {
        let mut m = machine();
        let data: Vec<u32> = (0..32).collect();
        let base = m.space_mut().alloc_slice_u32(&data);
        m.set_vl(16);
        m.vload_strided(V0, base, 8, 4, 0);
        assert_eq!(
            m.vreg_snapshot(V0),
            (0u64..32).step_by(2).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let mut m = machine();
        let data: Vec<u32> = (100..164).collect();
        let src = m.space_mut().alloc_slice_u32(&data);
        let dst = m.space_mut().alloc(64 * 4, 64);
        m.set_vl(8);
        // Reverse permutation.
        for (i, idx) in [7u64, 6, 5, 4, 3, 2, 1, 0].iter().enumerate() {
            m.vset_elem(V1, i, *idx, 0);
        }
        m.vgather(V0, src, V1, 4, None, 0);
        assert_eq!(
            m.vreg_snapshot(V0),
            vec![107, 106, 105, 104, 103, 102, 101, 100]
        );
        m.vscatter(V0, dst, V1, 4, None, 0);
        // Scattering the reversed data through the reversed indices
        // restores the original order.
        assert_eq!(
            m.space().read_slice_u32(dst, 8),
            vec![100, 101, 102, 103, 104, 105, 106, 107]
        );
    }

    #[test]
    fn masked_gather_merges() {
        let mut m = machine();
        let data: Vec<u32> = (0..16).collect();
        let src = m.space_mut().alloc_slice_u32(&data);
        m.set_vl(4);
        m.vset(V0, 99, None);
        m.viota(V1, None);
        m.vcmp_vs(CmpOp::Ne, M0, V1, 1, None); // mask: all but element 1
        m.vgather(V0, src, V1, 4, Some(M0), 0);
        assert_eq!(m.vreg_snapshot(V0), vec![0, 99, 2, 3]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "GMS conflict")]
    fn conflicting_scatter_is_detected_in_debug() {
        let mut m = machine();
        let dst = m.space_mut().alloc(256, 64);
        m.set_vl(4);
        m.vset(V1, 0, None); // all indices equal: conflict
        m.viota(V0, None);
        m.vscatter(V0, dst, V1, 4, None, 0);
    }

    #[test]
    fn vga_plus_gather_scatter_updates_table() {
        // The Figure 15 kernel: one table update step via VGAsum + VLU.
        let mut m = machine();
        let table = m.space_mut().alloc(1024, 64);
        m.set_vl(8);
        let keys = [7u64, 5, 5, 5, 11, 9, 9, 11];
        let vals = [6u64, 3, 4, 9, 15, 2, 3, 4];
        for i in 0..8 {
            m.vset_elem(V0, i, keys[i], 0);
            m.vset_elem(V1, i, vals[i], 0);
        }
        m.vga(RedOp::Sum, V2, V0, V1); // v2 = running group sums
        m.vlu(M0, V0); // last instance per group
        let v3 = Vreg(3);
        m.vgather(v3, table, V0, 4, Some(M0), 0);
        m.vbinop_vv(BinOp::Add, v3, v3, V2, Some(M0));
        m.vscatter(v3, table, V0, 4, Some(M0), 0);
        // Table now holds group sums: 7→6, 5→16, 11→19, 9→5.
        assert_eq!(m.space().read_u32(table + 4 * 7), 6);
        assert_eq!(m.space().read_u32(table + 4 * 5), 16);
        assert_eq!(m.space().read_u32(table + 4 * 11), 19);
        assert_eq!(m.space().read_u32(table + 4 * 9), 5);
    }

    #[test]
    fn cycles_accumulate_monotonically() {
        let mut m = machine();
        let c0 = m.cycles();
        m.set_vl(64);
        m.viota(V0, None);
        let c1 = m.cycles();
        assert!(c1 > c0);
        m.vbinop_vs(BinOp::Add, V1, V0, 5, None);
        assert!(m.cycles() >= c1);
    }

    #[test]
    fn vector_elementwise_costs_vl_over_lanes() {
        let mut m = machine();
        m.set_vl(64);
        let before = m.cycles();
        m.viota(V0, None);
        m.vbinop_vs(BinOp::Add, V0, V0, 1, None); // depends on viota
        let elapsed = m.cycles() - before;
        // Two dependent 16-cycle ops ⇒ ~32 cycles (commit-time deltas may
        // trim one cycle at each boundary).
        assert!(elapsed >= 30, "elapsed {elapsed}");
    }

    #[test]
    fn independent_vector_ops_overlap_on_two_fus() {
        let mut a = machine();
        a.set_vl(64);
        let t0 = a.cycles();
        a.viota(V0, None);
        a.viota(V1, None);
        let dual = a.cycles() - t0;

        let mut b = machine();
        b.set_vl(64);
        let t0 = b.cycles();
        b.viota(V0, None);
        b.vbinop_vs(BinOp::Add, V0, V0, 1, None); // dependent chain
        let chained = b.cycles() - t0;
        assert!(
            dual < chained,
            "independent ops ({dual}) should beat dependent chain ({chained})"
        );
    }

    #[test]
    fn scalar_load_store_roundtrip() {
        let mut m = machine();
        let addr = m.space_mut().alloc(64, 64);
        let t = m.s_store_u32(addr, 77, 0);
        let (v, _) = m.s_load_u32(addr, t);
        assert_eq!(v, 77);
    }

    #[test]
    fn reduction_returns_value_and_costs_more_than_elementwise() {
        let mut m = machine();
        m.set_vl(64);
        m.viota(V0, None);
        let (sum, _) = m.vred(RedOp::Sum, V0, None);
        assert_eq!(sum, (0..64).sum::<u64>());
    }

    #[test]
    fn compress_expand_through_machine() {
        let mut m = machine();
        m.set_vl(8);
        m.viota(V0, None);
        m.vcmp_vs(CmpOp::Ne, M0, V0, 3, None);
        let (k, _) = m.vcompress(V1, V0, M0);
        assert_eq!(k, 7);
        assert_eq!(m.vreg_snapshot(V1)[..7], [0, 1, 2, 4, 5, 6, 7]);
    }

    #[test]
    fn popcount_through_machine() {
        let mut m = machine();
        m.set_vl(8);
        m.viota(V0, None);
        m.vcmp_vs(CmpOp::Nez, M0, V0, 0, None);
        let (n, _) = m.mpopcnt(M0);
        assert_eq!(n, 7); // elements 1..7 are non-zero
    }

    #[test]
    fn stats_expose_memory_behaviour() {
        let mut m = machine();
        let base = m.space_mut().alloc(4096, 64);
        m.set_vl(64);
        m.vload_unit(V0, base, 4, 0);
        let s = m.stats();
        assert!(s.cycles > 0);
        assert!(s.ops > 0);
        assert!(s.mem.l2.accesses >= 4); // 64×4B = 4 lines via L1 bypass
        assert_eq!(s.mem.l1.accesses, 0);
    }
}
