//! Optional instruction-level tracing.
//!
//! PTLsim — the simulator the paper builds on — offers per-µop commit logs
//! for debugging and analysis; this module provides the equivalent for the
//! reproduction. When enabled via [`crate::Machine::enable_trace`], every
//! instruction-shaped call on the machine appends a [`TraceEvent`]
//! (mnemonic, class, vector length, completion cycle, and the touched
//! address/line footprint for memory operations) to a bounded buffer.
//!
//! Tracing is off by default and costs nothing when disabled. The buffer
//! is a *head* buffer, not a ring: the first `capacity` events are kept
//! and later ones are counted but dropped — kernels are loops, so the
//! head contains every distinct instruction sequence and the listing
//! stays aligned with program order.
//!
//! ```
//! use vagg_sim::{Machine, TraceClass};
//! use vagg_isa::{BinOp, Vreg};
//!
//! let mut m = Machine::paper();
//! m.enable_trace(64);
//! m.set_vl(8);
//! m.vset(Vreg(0), 7, None);
//! m.vbinop_vs(BinOp::Add, Vreg(1), Vreg(0), 1, None);
//! let trace = m.take_trace().unwrap();
//! assert_eq!(trace.events().last().unwrap().mnemonic, "vadd");
//! println!("{}", trace.listing());
//! ```

/// Broad classification of a traced instruction, for filtering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceClass {
    /// Scalar ALU micro-op.
    ScalarAlu,
    /// Scalar load.
    ScalarLoad,
    /// Scalar store.
    ScalarStore,
    /// Vector-length / control instruction.
    Control,
    /// Element-wise vector compute (arithmetic, logic, comparison,
    /// initialisation, compress/expand).
    VecCompute,
    /// Vector reduction.
    VecReduction,
    /// CAM-backed irregular-DLP instruction (VPI/VLU/VGAx).
    Cam,
    /// Mask instruction.
    MaskOp,
    /// Vector↔scalar element transfer.
    Xfer,
    /// Vector load (any pattern).
    VecLoad,
    /// Vector store (any pattern).
    VecStore,
    /// Vector prefetch.
    Prefetch,
    /// Memory-side scatter-add (§VI-B comparator).
    ScatterAdd,
}

impl TraceClass {
    /// True for classes that touch the memory hierarchy.
    pub fn is_memory(self) -> bool {
        matches!(
            self,
            TraceClass::ScalarLoad
                | TraceClass::ScalarStore
                | TraceClass::VecLoad
                | TraceClass::VecStore
                | TraceClass::Prefetch
                | TraceClass::ScatterAdd
        )
    }

    /// True for vector-unit classes (anything that is not scalar).
    pub fn is_vector(self) -> bool {
        !matches!(
            self,
            TraceClass::ScalarAlu
                | TraceClass::ScalarLoad
                | TraceClass::ScalarStore
                | TraceClass::Control
        )
    }
}

/// One traced instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Position in dynamic program order (0-based, counts dropped events
    /// too).
    pub seq: u64,
    /// Assembly-style mnemonic (`vadd`, `vgasum`, `load`, ...).
    pub mnemonic: &'static str,
    /// Classification for filtering.
    pub class: TraceClass,
    /// Vector length of the operation (1 for scalar ops).
    pub vl: usize,
    /// Completion cycle (the readiness token of the result).
    pub done: u64,
    /// Base/effective address for memory operations.
    pub addr: Option<u64>,
    /// Distinct cache lines touched (vector memory operations).
    pub lines: Option<usize>,
}

/// A bounded head-of-execution instruction trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    capacity: usize,
    seq: u64,
}

impl Trace {
    /// Creates an empty trace that keeps the first `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Self {
            events: Vec::new(),
            capacity,
            seq: 0,
        }
    }

    /// Appends an event (or just counts it once the buffer is full).
    pub(crate) fn record(
        &mut self,
        mnemonic: &'static str,
        class: TraceClass,
        vl: usize,
        done: u64,
        addr: Option<u64>,
        lines: Option<usize>,
    ) {
        let seq = self.seq;
        self.seq += 1;
        if self.events.len() < self.capacity {
            self.events.push(TraceEvent {
                seq,
                mnemonic,
                class,
                vl,
                done,
                addr,
                lines,
            });
        }
    }

    /// The recorded events, in program order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Total instructions observed, including those beyond capacity.
    pub fn total(&self) -> u64 {
        self.seq
    }

    /// Instructions observed but not stored (buffer full).
    pub fn dropped(&self) -> u64 {
        self.seq - self.events.len() as u64
    }

    /// Events of one class, in program order.
    pub fn of_class(&self, class: TraceClass) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.class == class)
    }

    /// A human-readable disassembly-style listing.
    ///
    /// One line per event: sequence number, completion cycle, mnemonic,
    /// vector length, and the memory footprint when applicable.
    pub fn listing(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for e in &self.events {
            write!(out, "{:>8}  @{:>8}  {:<10}", e.seq, e.done, e.mnemonic).unwrap();
            if e.class.is_vector() || e.class == TraceClass::Control {
                write!(out, " vl={:<3}", e.vl).unwrap();
            } else {
                out.push_str("       ");
            }
            if let Some(a) = e.addr {
                write!(out, " [{a:#x}]").unwrap();
            }
            if let Some(l) = e.lines {
                write!(out, " lines={l}").unwrap();
            }
            out.push('\n');
        }
        if self.dropped() > 0 {
            writeln!(
                out,
                "... {} further instructions not stored",
                self.dropped()
            )
            .unwrap();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: &mut Trace, m: &'static str, class: TraceClass) {
        t.record(m, class, 4, 10, None, None);
    }

    #[test]
    fn records_up_to_capacity_and_counts_overflow() {
        let mut t = Trace::new(2);
        ev(&mut t, "a", TraceClass::ScalarAlu);
        ev(&mut t, "b", TraceClass::ScalarAlu);
        ev(&mut t, "c", TraceClass::ScalarAlu);
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.total(), 3);
        assert_eq!(t.dropped(), 1);
        assert_eq!(t.events()[0].mnemonic, "a");
        assert_eq!(t.events()[1].seq, 1);
        assert!(t.listing().contains("1 further"));
    }

    #[test]
    fn class_filter_and_predicates() {
        let mut t = Trace::new(8);
        ev(&mut t, "load", TraceClass::ScalarLoad);
        ev(&mut t, "vadd", TraceClass::VecCompute);
        ev(&mut t, "vld.u", TraceClass::VecLoad);
        assert_eq!(t.of_class(TraceClass::VecCompute).count(), 1);
        assert!(TraceClass::VecLoad.is_memory());
        assert!(TraceClass::VecLoad.is_vector());
        assert!(TraceClass::ScalarLoad.is_memory());
        assert!(!TraceClass::ScalarLoad.is_vector());
        assert!(!TraceClass::VecCompute.is_memory());
    }

    #[test]
    fn listing_formats_memory_footprint() {
        let mut t = Trace::new(4);
        t.record(
            "vgather",
            TraceClass::VecLoad,
            64,
            123,
            Some(0x1000),
            Some(9),
        );
        let l = t.listing();
        assert!(l.contains("vgather"));
        assert!(l.contains("[0x1000]"));
        assert!(l.contains("lines=9"));
        assert!(l.contains("vl=64"));
    }
}
