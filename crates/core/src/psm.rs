//! Partially sorted monotable — confrontation technique #3 (§V-C).
//!
//! Monotable's only weakness is losing table locality at high cardinality.
//! Full sorting would restore it but costs multiple VSR passes. The paper's
//! insight: repeated group keys only need to land *close enough together*
//! that nothing in between evicts their table lines — so a **single** VSR
//! pass over just the top bits of the key suffices.
//!
//! The number of sorted bits follows §V-C: none at all for `low`/
//! `low-normal` cardinalities (the Ξ cases — behaviour identical to
//! monotable), 8 bits for `high-normal`, growing to 11 for the largest
//! `high` cardinality. The rule implemented here keeps each partition's
//! table footprint within a fraction of the L2: sort `max(8, key_bits −
//! 13)` top bits once the tables outgrow the cache.

use crate::input::{vector_max_scan, OutputTable, StagedInput};
use crate::monotable::monotable_on;
use vagg_sim::Machine;
use vagg_sort::vsr_partial_pass;

/// Group-table cells (per table) that comfortably keep their locality in
/// the 256 KB L2 alongside the streamed input: 2^13 = 8,192 groups × 8 B
/// of table data = 64 KB.
const RESIDENT_BITS: u32 = 13;

/// Decides how many top bits to partially sort for a maximum group key
/// `maxg`. Returns `None` when no partial sort is needed (the paper's Ξ
/// cases).
pub fn partial_sort_bits(maxg: u32) -> Option<(u32, u32)> {
    let key_bits = 32 - maxg.leading_zeros(); // bits needed for maxg
    if key_bits <= RESIDENT_BITS + 1 {
        // Tables are (near-)cache-resident — the paper's Ξ cases: no
        // partial sort anywhere in `low`/`low-normal` (c ≤ 9,765 needs at
        // most 14 key bits).
        return None;
    }
    let to_sort = (key_bits - RESIDENT_BITS).max(8).min(key_bits);
    Some((key_bits - to_sort, key_bits))
}

/// Runs partially sorted monotable; returns the output table and row
/// count.
pub fn psm_aggregate(m: &mut Machine, input: &StagedInput) -> (OutputTable, usize) {
    let (maxg, tok) = if input.presorted {
        crate::input::presorted_max(m, input)
    } else {
        vector_max_scan(m, input)
    };

    // Presorted inputs already have perfect locality (Ξ), and
    // cache-resident tables need no help.
    let bits = if input.presorted {
        None
    } else {
        partial_sort_bits(maxg)
    };
    psm_on(m, input, maxg, tok, bits)
}

/// Runs partially sorted monotable with an explicit number of top bits to
/// sort, overriding the §V-C rule — the knob behind the partial-sort-bits
/// ablation (DESIGN.md §5).
///
/// `to_sort = 0` degenerates to plain monotable. Values larger than the
/// key width are clamped (a full sort of the key).
pub fn psm_aggregate_with_bits(
    m: &mut Machine,
    input: &StagedInput,
    to_sort: u32,
) -> (OutputTable, usize) {
    let (maxg, tok) = if input.presorted {
        crate::input::presorted_max(m, input)
    } else {
        vector_max_scan(m, input)
    };
    let key_bits = 32 - maxg.leading_zeros();
    let bits = (to_sort > 0 && key_bits > 0).then(|| (key_bits - to_sort.min(key_bits), key_bits));
    psm_on(m, input, maxg, tok, bits)
}

fn psm_on(
    m: &mut Machine,
    input: &StagedInput,
    maxg: u32,
    tok: vagg_sim::Tok,
    bits: Option<(u32, u32)>,
) -> (OutputTable, usize) {
    match bits {
        None => monotable_on(m, input.g, input.v, input.n, maxg, tok),
        Some((lo, hi)) => {
            let arrays = input.sort_arrays();
            vsr_partial_pass(m, &arrays, lo, hi, maxg);
            let (pg, pv) = arrays.result_buffers(1);
            monotable_on(m, pg, pv, input.n, maxg, tok)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::reference;

    fn run(g: Vec<u32>, v: Vec<u32>, presorted: bool) -> (crate::result::AggResult, u64) {
        let mut m = Machine::paper();
        let st = StagedInput::stage_raw(&mut m, &g, &v, presorted);
        let (out, rows) = psm_aggregate(&mut m, &st);
        let r = out.read(&m, rows);
        r.validate(g.len()).unwrap();
        assert_eq!(r, reference(&g, &v));
        (r, m.cycles())
    }

    #[test]
    fn bit_selection_follows_the_paper() {
        // Low/low-normal cardinalities: no partial sort (Ξ).
        assert_eq!(partial_sort_bits(151), None);
        assert_eq!(partial_sort_bits(8191), None); // 13 bits, resident
        assert_eq!(partial_sort_bits(9_764), None); // all of low-normal
                                                    // high-normal (~15-19 key bits): 8 top bits.
        assert_eq!(partial_sort_bits(19_530), Some((7, 15)));
        assert_eq!(partial_sort_bits(312_499), Some((11, 19)));
        // largest high cardinality (24 key bits): 11 top bits.
        assert_eq!(partial_sort_bits(9_999_999), Some((13, 24)));
        // Intermediate high: grows gradually (9, 10...).
        assert_eq!(partial_sort_bits(2_499_999), Some((13, 22)));
    }

    #[test]
    fn low_cardinality_matches_monotable_exactly() {
        // The Ξ equivalence: same cycles, same result as monotable.
        let n = 2000usize;
        let g: Vec<u32> = (0..n)
            .map(|i| ((i as u64 * 2654435761) % 100) as u32)
            .collect();
        let v: Vec<u32> = (0..n).map(|i| (i % 10) as u32).collect();

        let (_, psm_cycles) = run(g.clone(), v.clone(), false);

        let mut m = Machine::paper();
        let st = StagedInput::stage_raw(&mut m, &g, &v, false);
        crate::monotable::monotable_aggregate(&mut m, &st);
        assert_eq!(psm_cycles, m.cycles(), "Ξ case must be bit-identical");
    }

    #[test]
    fn high_cardinality_correct_with_partial_sort() {
        let n = 3000usize;
        let g: Vec<u32> = (0..n)
            .map(|i| ((i as u64 * 2654435761) % 2_000_000) as u32)
            .collect();
        let v: Vec<u32> = (0..n).map(|i| (i % 10) as u32).collect();
        run(g, v, false);
    }

    #[test]
    fn presorted_high_cardinality_skips_partial_sort() {
        let n = 2000usize;
        let mut g: Vec<u32> = (0..n)
            .map(|i| ((i as u64 * 2654435761) % 1_000_000) as u32)
            .collect();
        g.sort_unstable();
        let v: Vec<u32> = (0..n).map(|i| (i % 10) as u32).collect();

        let (_, psm_cycles) = run(g.clone(), v.clone(), true);

        let mut m = Machine::paper();
        let st = StagedInput::stage_raw(&mut m, &g, &v, true);
        crate::monotable::monotable_aggregate(&mut m, &st);
        assert_eq!(psm_cycles, m.cycles());
    }

    #[test]
    fn explicit_bits_zero_is_monotable_and_results_stay_correct() {
        let n = 3000usize;
        let g: Vec<u32> = (0..n)
            .map(|i| ((i as u64 * 2654435761) % 500_000) as u32)
            .collect();
        let v: Vec<u32> = (0..n).map(|i| (i % 10) as u32).collect();

        // to_sort = 0 must be cycle-identical to plain monotable.
        let mut m0 = Machine::paper();
        let st0 = StagedInput::stage_raw(&mut m0, &g, &v, false);
        let (out0, rows0) = psm_aggregate_with_bits(&mut m0, &st0, 0);
        assert_eq!(out0.read(&m0, rows0), reference(&g, &v));
        let mut m1 = Machine::paper();
        let st1 = StagedInput::stage_raw(&mut m1, &g, &v, false);
        crate::monotable::monotable_aggregate(&mut m1, &st1);
        assert_eq!(m0.cycles(), m1.cycles());

        // Every bit width produces correct results, including clamped
        // over-wide requests (full one-pass sort).
        for bits in [2u32, 8, 11, 14, 40] {
            let mut m = Machine::paper();
            let st = StagedInput::stage_raw(&mut m, &g, &v, false);
            let (out, rows) = psm_aggregate_with_bits(&mut m, &st, bits);
            assert_eq!(out.read(&m, rows), reference(&g, &v), "bits={bits}");
        }
    }

    #[test]
    fn partial_sort_improves_locality_at_high_cardinality() {
        // The Figure 17 effect: on a uniform high-cardinality input big
        // enough to thrash, PSM beats plain monotable. Table footprint
        // (2 × 400 KB) exceeds the 256 KB L2 while n >> c keeps the
        // mandatory table-clearing cost amortised, as in the paper.
        let n = 100_000usize;
        let c = 100_000u64;
        let g: Vec<u32> = (0..n)
            .map(|i| ((i as u64).wrapping_mul(2654435761) % c) as u32)
            .collect();
        let v: Vec<u32> = (0..n).map(|i| (i % 10) as u32).collect();

        let (_, psm_cycles) = run(g.clone(), v.clone(), false);

        let mut m = Machine::paper();
        let st = StagedInput::stage_raw(&mut m, &g, &v, false);
        crate::monotable::monotable_aggregate(&mut m, &st);
        let mono = m.cycles();
        assert!(
            psm_cycles < mono,
            "PSM ({psm_cycles}) should beat monotable ({mono}) at c=100k"
        );
    }
}
