//! The unified algorithm catalogue and single-run driver.

use crate::input::StagedInput;
use crate::result::AggResult;
use crate::sorted_reduce::SortKind;
use vagg_datagen::Dataset;
use vagg_sim::{Machine, SimConfig};

/// The six implementations the paper evaluates, plus the two related-work
/// comparators of §VI-B (measured here rather than argued).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// The scalar baseline (§III-B).
    Scalar,
    /// Standard sorted reduce — radix sort + segmented reductions (§IV-A).
    StandardSortedReduce,
    /// Polytable — MVL-replicated tables (§IV-B).
    Polytable,
    /// Advanced sorted reduce — VSR sort + segmented reductions (§V-A).
    AdvancedSortedReduce,
    /// Monotable — single table via VGAsum/VLU (§V-B).
    Monotable,
    /// Partially sorted monotable (§V-C).
    PartiallySortedMonotable,
    /// AVX-512-CDI-style best-effort retry loop (related work, §VI-B).
    CdiMonotable,
    /// Memory-side scatter-add (Ahn et al., HPCA 2005; related work).
    ScatterAddMonotable,
}

impl Algorithm {
    /// All algorithms: the paper's six in presentation order, then the
    /// two related-work comparators.
    pub const ALL: [Algorithm; 8] = [
        Algorithm::Scalar,
        Algorithm::StandardSortedReduce,
        Algorithm::Polytable,
        Algorithm::AdvancedSortedReduce,
        Algorithm::Monotable,
        Algorithm::PartiallySortedMonotable,
        Algorithm::CdiMonotable,
        Algorithm::ScatterAddMonotable,
    ];

    /// The algorithms the paper itself evaluates (Figures 4–17).
    pub const PAPER: [Algorithm; 6] = [
        Algorithm::Scalar,
        Algorithm::StandardSortedReduce,
        Algorithm::Polytable,
        Algorithm::AdvancedSortedReduce,
        Algorithm::Monotable,
        Algorithm::PartiallySortedMonotable,
    ];

    /// The five vectorised algorithms (everything but the baseline).
    pub const VECTORISED: [Algorithm; 5] = [
        Algorithm::StandardSortedReduce,
        Algorithm::Polytable,
        Algorithm::AdvancedSortedReduce,
        Algorithm::Monotable,
        Algorithm::PartiallySortedMonotable,
    ];

    /// Full name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Scalar => "scalar",
            Algorithm::StandardSortedReduce => "standard sorted reduce",
            Algorithm::Polytable => "polytable",
            Algorithm::AdvancedSortedReduce => "advanced sorted reduce",
            Algorithm::Monotable => "monotable",
            Algorithm::PartiallySortedMonotable => "partially sorted monotable",
            Algorithm::CdiMonotable => "cdi monotable",
            Algorithm::ScatterAddMonotable => "scatter-add monotable",
        }
    }

    /// Short name as used in the paper's Table IX.
    pub fn short_name(self) -> &'static str {
        match self {
            Algorithm::Scalar => "scalar",
            Algorithm::StandardSortedReduce => "ssr",
            Algorithm::Polytable => "poly",
            Algorithm::AdvancedSortedReduce => "asr",
            Algorithm::Monotable => "mono",
            Algorithm::PartiallySortedMonotable => "psm",
            Algorithm::CdiMonotable => "cdi",
            Algorithm::ScatterAddMonotable => "sam",
        }
    }

    /// Parses a short name.
    pub fn parse(s: &str) -> Option<Algorithm> {
        Self::ALL.iter().copied().find(|a| a.short_name() == s)
    }

    /// Executes this algorithm on a staged input in an existing machine.
    pub fn execute(self, m: &mut Machine, input: &StagedInput) -> (AggResult, usize) {
        let (out, rows) = match self {
            Algorithm::Scalar => crate::scalar::scalar_aggregate(m, input),
            Algorithm::StandardSortedReduce => {
                crate::sorted_reduce::sorted_reduce_aggregate(m, input, SortKind::Radix)
            }
            Algorithm::Polytable => crate::polytable::polytable_aggregate(m, input),
            Algorithm::AdvancedSortedReduce => {
                crate::sorted_reduce::sorted_reduce_aggregate(m, input, SortKind::Vsr)
            }
            Algorithm::Monotable => crate::monotable::monotable_aggregate(m, input),
            Algorithm::PartiallySortedMonotable => crate::psm::psm_aggregate(m, input),
            Algorithm::CdiMonotable => crate::related_work::cdi_monotable_aggregate(m, input),
            Algorithm::ScatterAddMonotable => {
                crate::related_work::scatter_add_monotable_aggregate(m, input)
            }
        };
        (out.read(m, rows), rows)
    }
}

/// One measured run: the result plus the paper's metric.
#[derive(Debug, Clone)]
pub struct AggRun {
    /// Which algorithm ran.
    pub algorithm: Algorithm,
    /// The aggregation output.
    pub result: AggResult,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Cycles per tuple — the paper's reporting metric.
    pub cpt: f64,
    /// Dynamic instruction mix of the run (which instruction classes the
    /// algorithm actually executed, and at what average vector length).
    pub mix: vagg_sim::OpMix,
}

/// Runs `algorithm` on `dataset` in a fresh machine with `cfg`.
pub fn run_algorithm(algorithm: Algorithm, cfg: &SimConfig, ds: &Dataset) -> AggRun {
    let mut m = Machine::new(cfg.clone());
    let input = StagedInput::stage(&mut m, ds);
    let (result, _rows) = algorithm.execute(&mut m, &input);
    let cycles = m.cycles();
    AggRun {
        algorithm,
        result,
        cycles,
        cpt: cycles as f64 / ds.len() as f64,
        mix: m.mix(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::reference;
    use vagg_datagen::{DatasetSpec, Distribution};

    #[test]
    fn names_roundtrip() {
        for a in Algorithm::ALL {
            assert_eq!(Algorithm::parse(a.short_name()), Some(a));
        }
        assert_eq!(Algorithm::parse("nope"), None);
    }

    #[test]
    fn every_algorithm_matches_reference_on_every_distribution() {
        let cfg = SimConfig::paper();
        for dist in Distribution::ALL {
            let ds = DatasetSpec::paper(dist, 61)
                .with_rows(600)
                .with_seed(3)
                .generate();
            let expect = reference(&ds.g, &ds.v);
            for alg in Algorithm::ALL {
                let run = run_algorithm(alg, &cfg, &ds);
                assert_eq!(
                    run.result,
                    expect,
                    "{} wrong on {}",
                    alg.name(),
                    dist.name()
                );
                assert!(run.cycles > 0);
                assert!(run.cpt > 0.0);
            }
        }
    }

    #[test]
    fn cpt_is_cycles_over_n() {
        let cfg = SimConfig::paper();
        let ds = DatasetSpec::paper(Distribution::Uniform, 10)
            .with_rows(256)
            .generate();
        let run = run_algorithm(Algorithm::Monotable, &cfg, &ds);
        assert!((run.cpt - run.cycles as f64 / 256.0).abs() < 1e-9);
    }
}
