//! Vectorised output compaction — step 4 of the table-based algorithms.
//!
//! Scans the global `count`/`sum` tables, drops groups with `count == 0`
//! (absent groups with NULL results), and emits the packed three-column
//! result. This is the step the paper says vectorises "directly using
//! typical SIMD instructions" (§IV-B): a `!= 0` comparison produces a mask,
//! `compress` packs the survivors, `popcount` advances the output cursor.

use crate::input::OutputTable;
use vagg_isa::{CmpOp, Mreg, Vreg};
use vagg_sim::Machine;

const VC: Vreg = Vreg(8); // counts
const VS: Vreg = Vreg(9); // sums
const VK: Vreg = Vreg(10); // group keys (iota + base)
const VPK: Vreg = Vreg(11); // packed
const M1: Mreg = Mreg(1);

/// Compacts `cells` table entries into `out`; returns the row count.
pub fn compact_tables(
    m: &mut Machine,
    count_tbl: u64,
    sum_tbl: u64,
    cells: usize,
    out: &OutputTable,
) -> usize {
    assert!(out.capacity >= 1);
    let mvl = m.mvl();
    let mut rows = 0usize;
    for base in (0..cells).step_by(mvl) {
        let vl = (cells - base).min(mvl);
        m.set_vl(vl);
        let t = m.s_op(0); // loop control
        m.vload_unit(VC, count_tbl + 4 * base as u64, 4, t);
        m.vcmp_vs(CmpOp::Nez, M1, VC, 0, None);
        let (k, kt) = m.mpopcnt(M1);
        m.s_op(kt); // branch on the popcount
        if k == 0 {
            continue;
        }
        // Group keys for this chunk.
        m.viota(VK, None);
        m.vbinop_vs(vagg_isa::BinOp::Add, VK, VK, base as u64, None);
        let o = 4 * rows as u64;
        m.vcompress(VPK, VK, M1);
        m.vstore_unit(VPK, out.groups + o, 4, 0);
        m.vcompress(VPK, VC, M1);
        m.vstore_unit(VPK, out.counts + o, 4, 0);
        m.vload_unit(VS, sum_tbl + 4 * base as u64, 4, t);
        m.vcompress(VPK, VS, M1);
        m.vstore_unit(VPK, out.sums + o, 4, 0);
        rows += k;
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::OutputTable;

    #[test]
    fn drops_absent_groups() {
        let mut m = Machine::paper();
        let cells = 10usize;
        let count = m.space_mut().alloc(4 * cells as u64, 64);
        let sum = m.space_mut().alloc(4 * cells as u64, 64);
        m.space_mut()
            .write_slice_u32(count, &[0, 2, 0, 0, 1, 0, 3, 0, 0, 4]);
        m.space_mut()
            .write_slice_u32(sum, &[0, 20, 0, 0, 10, 0, 30, 0, 0, 40]);
        let out = OutputTable::alloc(&mut m, cells);
        let rows = compact_tables(&mut m, count, sum, cells, &out);
        assert_eq!(rows, 4);
        let r = out.read(&m, rows);
        assert_eq!(r.groups, vec![1, 4, 6, 9]);
        assert_eq!(r.counts, vec![2, 1, 3, 4]);
        assert_eq!(r.sums, vec![20, 10, 30, 40]);
    }

    #[test]
    fn spans_multiple_chunks() {
        let mut m = Machine::paper();
        let cells = 200usize;
        let count = m.space_mut().alloc(4 * cells as u64, 64);
        let sum = m.space_mut().alloc(4 * cells as u64, 64);
        // Every third group present.
        let counts: Vec<u32> = (0..cells as u32)
            .map(|k| if k % 3 == 0 { k + 1 } else { 0 })
            .collect();
        let sums: Vec<u32> = counts.iter().map(|&c| c * 2).collect();
        m.space_mut().write_slice_u32(count, &counts);
        m.space_mut().write_slice_u32(sum, &sums);
        let out = OutputTable::alloc(&mut m, cells);
        let rows = compact_tables(&mut m, count, sum, cells, &out);
        assert_eq!(rows, cells.div_ceil(3));
        let r = out.read(&m, rows);
        assert!(r.groups.iter().all(|&g| g % 3 == 0));
        assert!(r.groups.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn all_empty_emits_nothing() {
        let mut m = Machine::paper();
        let count = m.space_mut().alloc(400, 64);
        let sum = m.space_mut().alloc(400, 64);
        let out = OutputTable::alloc(&mut m, 100);
        assert_eq!(compact_tables(&mut m, count, sum, 100, &out), 0);
    }

    #[test]
    fn all_present_keeps_everything() {
        let mut m = Machine::paper();
        let cells = 64usize;
        let count = m.space_mut().alloc(256, 64);
        let sum = m.space_mut().alloc(256, 64);
        m.space_mut().write_slice_u32(count, &vec![1u32; cells]);
        m.space_mut().write_slice_u32(sum, &vec![9u32; cells]);
        let out = OutputTable::alloc(&mut m, cells);
        let rows = compact_tables(&mut m, count, sum, cells, &out);
        assert_eq!(rows, cells);
        let r = out.read(&m, rows);
        assert_eq!(r.groups, (0..cells as u32).collect::<Vec<_>>());
    }
}
