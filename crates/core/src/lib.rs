//! # vagg-core
//!
//! The primary contribution of *"Future Vector Microprocessor Extensions
//! for Data Aggregations"* (Hayes et al., ISCA 2016): six implementations
//! of the `SELECT g, COUNT(*), SUM(v) FROM r GROUP BY g` query running on
//! the simulated vector machine, plus the adaptive selector that picks
//! among them at runtime.
//!
//! | algorithm | kind | module |
//! |---|---|---|
//! | scalar baseline | — | [`scalar`] |
//! | standard sorted reduce | evasion | [`sorted_reduce`] |
//! | polytable | evasion | [`polytable`] |
//! | advanced sorted reduce | confrontation | [`sorted_reduce`] |
//! | monotable | confrontation | [`monotable`] |
//! | partially sorted monotable | confrontation | [`psm`] |
//! | adaptive selection | — | [`adaptive`] |
//! | cdi monotable (related work) | comparator | [`related_work`] |
//! | scatter-add monotable (related work) | comparator | [`related_work`] |
//!
//! ```
//! use vagg_core::{run_algorithm, Algorithm, reference};
//! use vagg_datagen::{DatasetSpec, Distribution};
//! use vagg_sim::SimConfig;
//!
//! let ds = DatasetSpec::paper(Distribution::Zipf, 76)
//!     .with_rows(500)
//!     .generate();
//! let run = run_algorithm(Algorithm::Monotable, &SimConfig::paper(), &ds);
//! assert_eq!(run.result, reference(&ds.g, &ds.v));
//! println!("monotable: {:.2} cycles/tuple", run.cpt);
//! ```

#![warn(missing_docs)]

pub mod adaptive;
pub mod algorithm;
pub mod compact;
pub mod input;
pub mod minmax;
pub mod monotable;
pub mod multicore;
pub mod polytable;
pub mod prefix;
pub mod psm;
pub mod related_work;
pub mod result;
pub mod sampling;
pub mod scalar;
pub mod sorted_reduce;

pub use adaptive::{run_adaptive, select_algorithm, AdaptiveMode, PlannerInputs};
pub use algorithm::{run_algorithm, AggRun, Algorithm};
pub use input::{OutputTable, StagedInput};
pub use minmax::{minmax_aggregate, reference_minmax, MinMaxResult};
pub use multicore::{cores_to_match, multicore_scalar_aggregate, MulticoreRun};
pub use result::{reference, AggResult, PartialAggregate};
pub use sorted_reduce::SortKind;
