//! Sampled cardinality estimation — the §III-A alternative to the full
//! max-key scan.
//!
//! The paper locates an exact maximum group key by scanning all of `g`,
//! noting that this *"adds little overhead compared to the aggregation
//! itself, however, it could be replaced with sampling and some additional
//! checks"*. This module implements that alternative:
//!
//! * [`sampled_max_scan`] reads one full-width vector chunk out of every
//!   `stride`, so the planning scan touches `1/stride` of the input;
//! * the *additional checks* are the margin applied by
//!   [`SampledEstimate::planning_cardinality`]: a sampled maximum is a
//!   lower bound on the true maximum, and the margin keeps the planner's
//!   division classification robust to the miss.
//!
//! The sampled estimate feeds **planning only** (which algorithm to run);
//! the algorithms themselves still establish the exact maximum for table
//! sizing, exactly as the paper charges them for it.

use crate::input::StagedInput;
use vagg_datagen::Division;
use vagg_isa::{BinOp, RedOp, Vreg};
use vagg_sim::{Machine, Tok};

const VDATA: Vreg = Vreg(14);
const VACC: Vreg = Vreg(15);

/// The outcome of a sampled scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampledEstimate {
    /// The maximum key seen in the sample (a lower bound on the truth).
    pub sampled_max: u32,
    /// Rows actually read.
    pub rows_sampled: usize,
    /// The chunk stride used.
    pub stride: usize,
}

impl SampledEstimate {
    /// The cardinality the planner should act on: the sampled maximum
    /// inflated by a safety margin.
    ///
    /// For the planner, only the *division* of the cardinality matters
    /// (§V-D). Under uniform-style sampling of a fraction `1/stride`, the
    /// expected gap between the sampled and true maximum of a uniform key
    /// domain is a factor of about `(s+1)/s` in the sample size `s`; a
    /// fixed 25% inflation comfortably covers the gap at any stride this
    /// API accepts, while staying far below the 2× spacing between the
    /// paper's cardinality steps — so an inflated estimate almost never
    /// changes division.
    pub fn planning_cardinality(&self) -> u64 {
        let est = self.sampled_max as u64 + 1;
        est + est / 4
    }

    /// The division the planner would classify this estimate into.
    pub fn division(&self) -> Division {
        Division::of_cardinality(self.planning_cardinality())
    }
}

/// The `(start, vl)` chunk windows a sampled scan reads: one MVL-wide
/// chunk out of every `stride`, always including the final chunk (real
/// estimators oversample the tail because appended data skews late).
///
/// This is the single definition of the sampling rule, shared by the
/// machine scan below and by host-side mirrors (e.g. the `vagg-db`
/// planner's plan-time estimate), so the two can never diverge.
///
/// # Panics
///
/// Panics if `stride == 0`.
pub fn sampled_windows(
    n: usize,
    mvl: usize,
    stride: usize,
) -> impl Iterator<Item = (usize, usize)> {
    assert!(stride > 0, "stride must be at least 1");
    (0..n)
        .step_by(mvl)
        .enumerate()
        .filter_map(move |(chunk, start)| {
            let last = start + mvl >= n;
            (chunk.is_multiple_of(stride) || last).then(|| (start, (n - start).min(mvl)))
        })
}

/// Samples the group column over the [`sampled_windows`] chunks
/// (`stride = 1` degenerates to the exact scan). Returns the estimate
/// and the readiness token of the reduction.
///
/// # Panics
///
/// Panics if `stride == 0`.
pub fn sampled_max_scan(
    m: &mut Machine,
    input: &StagedInput,
    stride: usize,
) -> (SampledEstimate, Tok) {
    let mvl = m.mvl();
    m.set_vl(mvl);
    m.vset(VACC, 0, None);
    let mut rows_sampled = 0usize;
    for (start, vl) in sampled_windows(input.n, mvl, stride) {
        if vl != m.vl() {
            m.set_vl(vl);
        }
        let t = m.s_op(0);
        m.vload_unit(VDATA, input.g + 4 * start as u64, 4, t);
        m.vbinop_vv(BinOp::Max, VACC, VACC, VDATA, None);
        rows_sampled += vl;
    }
    m.set_vl(mvl.min(input.n.max(1)));
    let (maxg, tok) = m.vred(RedOp::Max, VACC, None);
    (
        SampledEstimate {
            sampled_max: maxg as u32,
            rows_sampled,
            stride,
        },
        tok,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::vector_max_scan;
    use vagg_datagen::{DatasetSpec, Distribution};

    fn staged(m: &mut Machine, dist: Distribution, c: u64, n: usize) -> StagedInput {
        let ds = DatasetSpec::paper(dist, c)
            .with_rows(n)
            .with_seed(11)
            .generate();
        StagedInput::stage(m, &ds)
    }

    #[test]
    fn stride_one_equals_exact_scan() {
        let mut m = Machine::paper();
        let st = staged(&mut m, Distribution::Uniform, 1_000, 5_000);
        let (est, _) = sampled_max_scan(&mut m, &st, 1);
        let mut m2 = Machine::paper();
        let st2 = staged(&mut m2, Distribution::Uniform, 1_000, 5_000);
        let (exact, _) = vector_max_scan(&mut m2, &st2);
        assert_eq!(est.sampled_max, exact);
        assert_eq!(est.rows_sampled, 5_000);
    }

    #[test]
    fn sampled_max_is_a_lower_bound() {
        let mut m = Machine::paper();
        for stride in [2usize, 4, 16] {
            let st = staged(&mut m, Distribution::Uniform, 9_765, 20_000);
            let (est, _) = sampled_max_scan(&mut m, &st, stride);
            let (exact, _) = vector_max_scan(&mut m, &st);
            assert!(est.sampled_max <= exact, "stride {stride}");
            assert!(est.rows_sampled < 20_000, "stride {stride}");
        }
    }

    #[test]
    fn sampling_is_cheaper_than_the_exact_scan() {
        let n = 64 * 512;
        let mut m1 = Machine::paper();
        let st = staged(&mut m1, Distribution::Uniform, 1_000, n);
        vector_max_scan(&mut m1, &st);
        let exact_cycles = m1.cycles();

        let mut m2 = Machine::paper();
        let st = staged(&mut m2, Distribution::Uniform, 1_000, n);
        sampled_max_scan(&mut m2, &st, 8);
        let sampled_cycles = m2.cycles();
        assert!(
            sampled_cycles * 3 < exact_cycles,
            "sampled {sampled_cycles} should be far below exact {exact_cycles}"
        );
    }

    #[test]
    fn division_classification_is_robust_on_paper_distributions() {
        // The planner only needs the division: with a 25% margin and
        // 1/8 sampling, uniform/zipf/hhitter/sequential classify into the
        // exact division on these representative cells.
        let mut m = Machine::paper();
        for dist in [
            Distribution::Uniform,
            Distribution::Zipf,
            Distribution::HeavyHitter,
            Distribution::Sequential,
        ] {
            for c in [76u64, 1_220, 78_125] {
                let st = staged(&mut m, dist, c, 30_000);
                let (exact, _) = vector_max_scan(&mut m, &st);
                let (est, _) = sampled_max_scan(&mut m, &st, 8);
                assert_eq!(
                    est.division(),
                    Division::of_cardinality(exact as u64 + 1),
                    "{} c={c}",
                    dist.name()
                );
            }
        }
    }

    #[test]
    fn final_chunk_is_always_sampled() {
        // The maximum sits in the last chunk; any stride must still see it.
        let n = 64 * 100;
        let mut g = vec![3u32; n];
        g[n - 1] = 999;
        let v = vec![0u32; n];
        let mut m = Machine::paper();
        let st = StagedInput::stage_raw(&mut m, &g, &v, false);
        let (est, _) = sampled_max_scan(&mut m, &st, 64);
        assert_eq!(est.sampled_max, 999);
    }

    #[test]
    fn tiny_inputs_work_at_any_stride() {
        let mut m = Machine::paper();
        let st = StagedInput::stage_raw(&mut m, &[5, 2, 9], &[0, 0, 0], false);
        let (est, _) = sampled_max_scan(&mut m, &st, 1_000);
        assert_eq!(est.sampled_max, 9);
        assert_eq!(est.rows_sampled, 3);
    }

    #[test]
    #[should_panic(expected = "stride must be at least 1")]
    fn zero_stride_rejected() {
        let mut m = Machine::paper();
        let st = StagedInput::stage_raw(&mut m, &[1], &[1], false);
        sampled_max_scan(&mut m, &st, 0);
    }
}
