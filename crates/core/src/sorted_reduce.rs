//! Sorted reduce — evasion technique #1 (§IV-A) and confrontation
//! technique #1 (§V-A).
//!
//! Three steps: (1) sort `g` with `v` as payload (skipped when the DBMS
//! knows the input is presorted); (2) scan for runs of repeated keys by
//! comparing `g[i]` with `g[i+1]` into masks — the distances between set
//! bits are the run lengths, i.e. the `COUNT(*)` column; (3) load and
//! reduce each run's segment of `v` with vector sum reductions, stripmining
//! runs longer than MVL.
//!
//! *Standard* sorted reduce sorts with the evasion radix sort;
//! *advanced* sorted reduce swaps in VSR sort and keeps everything else
//! equal — exactly the paper's §V-A comparison.

use crate::input::{vector_max_scan, OutputTable, StagedInput};
use vagg_isa::{BinOp, CmpOp, Mreg, RedOp, Vreg};
use vagg_sim::Machine;
use vagg_sort::{radix_sort, vsr_sort};

/// Which sorting algorithm powers step 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SortKind {
    /// Evasion radix sort (replicated histograms, strided input).
    Radix,
    /// VSR sort (VPI/VLU; single histogram, unit-stride input).
    Vsr,
}

const VK: Vreg = Vreg(8); // keys
const VN: Vreg = Vreg(9); // shifted keys (g[i+1])
const VI: Vreg = Vreg(10); // iota
const VB: Vreg = Vreg(11); // packed boundary indices
const VV: Vreg = Vreg(12); // value segments
const M1: Mreg = Mreg(1);

/// Runs sorted reduce; returns the output table and row count.
pub fn sorted_reduce_aggregate(
    m: &mut Machine,
    input: &StagedInput,
    kind: SortKind,
) -> (OutputTable, usize) {
    // Step 0/1: max key + sort (both skipped where metadata allows).
    let (sorted_g, sorted_v) = if input.presorted {
        (input.g, input.v)
    } else {
        let (maxg, _tok) = vector_max_scan(m, input);
        let arrays = input.sort_arrays();
        let passes = match kind {
            SortKind::Radix => radix_sort(m, &arrays, maxg),
            SortKind::Vsr => vsr_sort(m, &arrays, maxg),
        };
        arrays.result_buffers(passes)
    };
    reduce_sorted_runs(m, sorted_g, sorted_v, input.n)
}

/// Steps 2–3 on an already-sorted column pair.
pub fn reduce_sorted_runs(m: &mut Machine, g: u64, v: u64, n: usize) -> (OutputTable, usize) {
    let mvl = m.mvl();

    // Step 2: boundary detection. A boundary is the *last* index of a run:
    // position i < n-1 with g[i] != g[i+1], plus the final index n-1.
    let bounds = m.space_mut().alloc(4 * (n as u64 + 1), 64);
    let mut nb = 0usize;
    let cmp_len = n.saturating_sub(1);
    for start in (0..cmp_len).step_by(mvl) {
        let vl = (cmp_len - start).min(mvl);
        m.set_vl(vl);
        let lt = m.s_op(0);
        m.vload_unit(VK, g + 4 * start as u64, 4, lt);
        m.vload_unit(VN, g + 4 * (start as u64 + 1), 4, lt);
        m.vcmp_vv(CmpOp::Ne, M1, VK, VN, None);
        let (k, kt) = m.mpopcnt(M1);
        m.s_op(kt);
        if k == 0 {
            continue;
        }
        m.viota(VI, None);
        m.vbinop_vs(BinOp::Add, VI, VI, start as u64, None);
        m.vcompress(VB, VI, M1);
        m.vstore_unit(VB, bounds + 4 * nb as u64, 4, 0);
        nb += k;
    }
    // The final run always ends at n-1.
    m.s_store_u32(bounds + 4 * nb as u64, n as u32 - 1, 0);
    nb += 1;

    // Step 3: segmented reductions over `v`, one output row per run.
    let out = OutputTable::alloc(m, nb);
    let mut prev_end: i64 = -1;
    for r in 0..nb {
        let it = m.s_op(0);
        let (end, et) = m.s_load_u32(bounds + 4 * r as u64, it);
        let run_start = (prev_end + 1) as usize;
        let run_len = end as usize - run_start + 1;
        // The run's group key.
        let (key, ktok) = m.s_load_u32(g + 4 * end as u64, et);
        // Stripmined segment reduction.
        let mut total: u64 = 0;
        let mut ttok = et;
        let mut pos = run_start;
        let mut left = run_len;
        while left > 0 {
            let vl = left.min(mvl);
            m.set_vl(vl);
            // Segment loads depend only on the boundary value; the scalar
            // accumulate chains separately.
            m.vload_unit(VV, v + 4 * pos as u64, 4, et);
            let (s, st) = m.vred(RedOp::Sum, VV, None);
            ttok = m.s_op(st.max(ttok)); // scalar accumulate
            total += s;
            pos += vl;
            left -= vl;
        }
        let o = 4 * r as u64;
        m.s_store_u32(out.groups + o, key, ktok);
        m.s_store_u32(out.counts + o, run_len as u32, et);
        m.s_store_u32(out.sums + o, total as u32, ttok);
        prev_end = end as i64;
    }
    (out, nb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::reference;

    fn run(
        g: Vec<u32>,
        v: Vec<u32>,
        presorted: bool,
        kind: SortKind,
    ) -> (crate::result::AggResult, u64) {
        let mut m = Machine::paper();
        let st = StagedInput::stage_raw(&mut m, &g, &v, presorted);
        let (out, rows) = sorted_reduce_aggregate(&mut m, &st, kind);
        let r = out.read(&m, rows);
        r.validate(g.len()).unwrap();
        assert_eq!(r, reference(&g, &v));
        (r, m.cycles())
    }

    #[test]
    fn presorted_input_reduces_directly() {
        let g: Vec<u32> = (0..500).map(|i| i / 7).collect();
        let v: Vec<u32> = (0..500).map(|i| i % 10).collect();
        run(g.clone(), v.clone(), true, SortKind::Radix);
        run(g, v, true, SortKind::Vsr);
    }

    #[test]
    fn unsorted_input_sorts_first_radix() {
        let n = 1000u32;
        let g: Vec<u32> = (0..n).map(|i| (i * 7919) % 37).collect();
        let v: Vec<u32> = (0..n).map(|i| i % 10).collect();
        run(g, v, false, SortKind::Radix);
    }

    #[test]
    fn unsorted_input_sorts_first_vsr() {
        let n = 1000u32;
        let g: Vec<u32> = (0..n).map(|i| (i * 7919) % 37).collect();
        let v: Vec<u32> = (0..n).map(|i| i % 10).collect();
        run(g, v, false, SortKind::Vsr);
    }

    #[test]
    fn single_run_spanning_everything() {
        run(
            vec![4; 300],
            (0..300).map(|i| i % 10).collect(),
            true,
            SortKind::Vsr,
        );
    }

    #[test]
    fn runs_of_length_one() {
        // High cardinality: every run is a single tuple.
        let g: Vec<u32> = (0..200).collect();
        let v: Vec<u32> = (0..200).map(|i| i % 10).collect();
        run(g, v, true, SortKind::Radix);
    }

    #[test]
    fn run_longer_than_mvl_is_stripmined() {
        let mut g = vec![1u32; 150]; // run of 150 > MVL=64
        g.extend(vec![2u32; 20]);
        let v: Vec<u32> = (0..170).map(|i| i % 10).collect();
        run(g, v, true, SortKind::Vsr);
    }

    #[test]
    fn single_tuple_input() {
        run(vec![9], vec![5], true, SortKind::Radix);
        run(vec![9], vec![5], false, SortKind::Vsr);
    }

    #[test]
    fn boundary_exactly_at_chunk_edge() {
        // Run boundary at index 63/64 exercises the chunk seam.
        let mut g = vec![1u32; 64];
        g.extend(vec![2u32; 64]);
        let v = vec![1u32; 128];
        let (r, _) = run(g, v, true, SortKind::Vsr);
        assert_eq!(r.counts, vec![64, 64]);
    }

    #[test]
    fn advanced_beats_standard_on_unsorted_input() {
        // Table VI vs Table IV: VSR sort strictly improves on radix.
        let n = 2000usize;
        let g: Vec<u32> = (0..n)
            .map(|i| ((i as u64 * 2654435761) % 500) as u32)
            .collect();
        let v: Vec<u32> = (0..n).map(|i| (i % 10) as u32).collect();
        let (_, std_cycles) = run(g.clone(), v.clone(), false, SortKind::Radix);
        let (_, adv_cycles) = run(g, v, false, SortKind::Vsr);
        assert!(
            adv_cycles < std_cycles,
            "advanced ({adv_cycles}) should beat standard ({std_cycles})"
        );
    }

    #[test]
    fn presorted_skips_sorting_cost() {
        let g: Vec<u32> = (0..2000).map(|i| i / 3).collect();
        let v: Vec<u32> = (0..2000).map(|i| i % 10).collect();
        let (_, with_meta) = run(g.clone(), v.clone(), true, SortKind::Radix);
        let (_, without) = run(g, v, false, SortKind::Radix);
        assert!(with_meta < without);
    }
}
