//! Grouped prefix sums — the §VI-B observation that the VGAx instructions
//! generalise beyond aggregation: *"Since the VGAx instructions generate a
//! running cumulative for each group in a vector register, this could have
//! uses beyond aggregation, e.g. a customised prefix sum operation."*
//!
//! [`grouped_prefix_sum`] computes, for every row `i`, the running sum of
//! `v` over all rows `j ≤ i` with `g[j] == g[i]` — SQL's
//! `SUM(v) OVER (PARTITION BY g ORDER BY rownum)` window function — in a
//! single streaming pass: per MVL chunk, one `VGAsum` produces the
//! in-register running sums and a carry table holds each group's running
//! total from earlier chunks (gathered per element and added).

use crate::input::StagedInput;
use vagg_isa::{BinOp, Mreg, RedOp, Vreg};
use vagg_sim::Machine;

const VG: Vreg = Vreg(0); // group keys
const VV: Vreg = Vreg(1); // values
const VA: Vreg = Vreg(2); // in-register running sums
const VCARRY: Vreg = Vreg(3); // per-element carry-in from earlier chunks
const VOUT: Vreg = Vreg(4); // final per-row output
const VT: Vreg = Vreg(5); // carry-table update
const VZ: Vreg = Vreg(6); // zero
const M0: Mreg = Mreg(0); // VLU mask

/// Computes the grouped running sum into a fresh output column; returns
/// its simulated address. `maxg` bounds the carry table (use the max-scan
/// step of any aggregation, or dataset metadata).
pub fn grouped_prefix_sum(m: &mut Machine, input: &StagedInput, maxg: u32) -> u64 {
    let mvl = m.mvl();
    let n = input.n;
    let cells = maxg as usize + 1;
    let carry_tbl = m.space_mut().alloc(4 * cells as u64, 64);
    let out = m.space_mut().alloc(4 * n as u64, 64);

    // Clear the carry table.
    m.set_vl(mvl);
    m.vset(VZ, 0, None);
    let mut t = 0;
    for i in (0..cells).step_by(mvl) {
        let vl = (cells - i).min(mvl);
        if vl != m.vl() {
            m.set_vl(vl);
        }
        t = m.vstore_unit(VZ, carry_tbl + 4 * i as u64, 4, t);
    }

    for start in (0..n).step_by(mvl) {
        let vl = (n - start).min(mvl);
        m.set_vl(vl);
        let lt = m.s_op(0);
        m.vload_unit(VG, input.g + 4 * start as u64, 4, lt);
        m.vload_unit(VV, input.v + 4 * start as u64, 4, lt);
        // In-register running sums (inclusive) + carry-in per element.
        m.vga(RedOp::Sum, VA, VG, VV);
        m.vgather(VCARRY, carry_tbl, VG, 4, None, 0); // reads may repeat
        m.vbinop_vv(BinOp::Add, VOUT, VA, VCARRY, None);
        m.vstore_unit(VOUT, out + 4 * start as u64, 4, 0);
        // Carry out: at each group's last instance, VOUT already holds the
        // group's running total including this chunk.
        m.vlu(M0, VG);
        m.vbinop_vv(BinOp::Add, VT, VOUT, VZ, Some(M0));
        m.vscatter(VT, carry_tbl, VG, 4, Some(M0), 0);
    }
    out
}

/// Host-side oracle.
pub fn reference_prefix_sum(g: &[u32], v: &[u32]) -> Vec<u32> {
    let mut running = std::collections::HashMap::new();
    g.iter()
        .zip(v)
        .map(|(&k, &x)| {
            let e = running.entry(k).or_insert(0u32);
            *e += x;
            *e
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(g: Vec<u32>, v: Vec<u32>) {
        let mut m = Machine::paper();
        let input = StagedInput::stage_raw(&mut m, &g, &v, false);
        let maxg = g.iter().copied().max().unwrap();
        let out = grouped_prefix_sum(&mut m, &input, maxg);
        let got = m.space().read_slice_u32(out, g.len());
        assert_eq!(got, reference_prefix_sum(&g, &v));
    }

    #[test]
    fn figure13_running_sums() {
        // The Figure 13 example *is* a grouped prefix sum.
        let g = vec![7, 5, 5, 5, 11, 9, 9, 11];
        let v = vec![6, 3, 4, 9, 15, 2, 3, 4];
        let mut m = Machine::paper();
        let input = StagedInput::stage_raw(&mut m, &g, &v, false);
        let out = grouped_prefix_sum(&mut m, &input, 11);
        assert_eq!(
            m.space().read_slice_u32(out, 8),
            vec![6, 3, 7, 16, 15, 2, 5, 19]
        );
    }

    #[test]
    fn carries_across_chunks() {
        // Group 5 spans many chunks; carries must accumulate.
        let n = 500;
        let g: Vec<u32> = (0..n).map(|i| (i % 7) as u32).collect();
        let v: Vec<u32> = (0..n).map(|i| (i % 10) as u32).collect();
        run(g, v);
    }

    #[test]
    fn single_group() {
        run(vec![0; 200], (0..200).map(|i| i % 5).collect());
    }

    #[test]
    fn all_distinct_groups() {
        run((0..150).collect(), vec![3; 150]);
    }

    #[test]
    fn ragged_tail() {
        run(vec![1; 65], vec![1; 65]);
    }
}
