//! §VI-A comparator: multithreaded scalar aggregation, measured.
//!
//! The paper argues its single vector unit is more efficient than
//! multithreading: *"We achieve 7.6× speedup in some cases using a single
//! vector unit whereas to achieve this result using multithreading would
//! require — at minimum — eight cores."* This module makes that argument a
//! measurement by implementing the multicore strategy of Ye et al.
//! (DaMoN 2011) — **independent tables**: each thread aggregates a
//! contiguous partition of the input into a private count/sum table
//! (avoiding read-modify-write conflicts exactly the way polytable avoids
//! GMS conflicts), then the private tables are merged on one core.
//!
//! ## Timing model
//!
//! Each thread runs on its **own** [`Machine`] (private L1/L2 and private
//! DRAM channel). This is *optimistic* for multithreading — a real chip
//! shares the memory controller, and Hayes et al.'s own earlier work
//! \[11\] shows vector units saturate shared bandwidth — so the
//! cores-to-match numbers reported here are a **lower bound**: shared
//! bandwidth could only push them higher, strengthening the paper's
//! argument. The critical path is
//!
//! ```text
//! cycles = max over threads(partition aggregate) + serial merge + compact
//! ```
//!
//! which assumes perfect barrier synchronisation at zero cost (again
//! optimistic).

use crate::input::{OutputTable, StagedInput};
use crate::result::AggResult;
use vagg_sim::{Machine, SimConfig};

/// Outcome of one simulated multicore run.
#[derive(Debug, Clone)]
pub struct MulticoreRun {
    /// Thread (core) count used.
    pub threads: usize,
    /// Longest per-thread partition-aggregation time (the parallel phase).
    pub parallel_cycles: u64,
    /// Serial merge + compaction time on one core.
    pub merge_cycles: u64,
    /// Critical-path total (`parallel + merge`).
    pub cycles: u64,
    /// Critical-path cycles per tuple.
    pub cpt: f64,
    /// The aggregation result (identical to [`crate::reference`]).
    pub result: AggResult,
}

/// One thread's private output: host copies of its count/sum tables.
struct ThreadTables {
    counts: Vec<u32>,
    sums: Vec<u32>,
    cycles: u64,
}

/// Runs the Figure 3 loop over one partition on a private machine and
/// reads the private tables back. `presorted` lets partitions of a sorted
/// input skip the max scan, matching the metadata rule of §III-A.
fn thread_aggregate(cfg: &SimConfig, g: &[u32], v: &[u32], presorted: bool) -> ThreadTables {
    let mut m = Machine::new(cfg.clone());
    let st = StagedInput::stage_raw(&mut m, g, v, presorted);

    // Step 1: private max scan (the partition's local maximum suffices —
    // the merge walks each table at its own size).
    let (maxg, mut tok) = if presorted {
        crate::input::presorted_max(&mut m, &st)
    } else {
        crate::scalar::scalar_max_scan(&mut m, &st)
    };
    let cells = maxg as usize + 1;

    // Step 2: clear the private tables.
    let count_tbl = m.space_mut().alloc(4 * cells as u64, 64);
    let sum_tbl = m.space_mut().alloc(4 * cells as u64, 64);
    for i in 0..cells {
        let t1 = m.s_store_u32(count_tbl + 4 * i as u64, 0, tok);
        let t2 = m.s_store_u32(sum_tbl + 4 * i as u64, 0, tok);
        tok = m.s_op(t1.max(t2));
    }

    // Step 3: the Figure 3 loop over the partition.
    for i in 0..st.n {
        let it = m.s_op(0);
        let (gk, gt) = m.s_load_u32(st.g + 4 * i as u64, it);
        let (vv, vt) = m.s_load_u32(st.v + 4 * i as u64, it);
        let at = m.s_op(gt);
        let caddr = count_tbl + 4 * gk as u64;
        let (c, ct) = m.s_load_u32(caddr, at);
        let adt = m.s_op(ct);
        m.s_store_u32_split(caddr, c + 1, at, adt);
        let saddr = sum_tbl + 4 * gk as u64;
        let (s, stk) = m.s_load_u32(saddr, at);
        let sdt = m.s_op(stk.max(vt));
        m.s_store_u32_split(saddr, s + vv, at, sdt);
    }

    ThreadTables {
        counts: m.space().read_slice_u32(count_tbl, cells),
        sums: m.space().read_slice_u32(sum_tbl, cells),
        cycles: m.cycles(),
    }
}

/// Simulates a `threads`-core scalar aggregation of `(g, v)` and returns
/// the critical-path timing plus the merged result.
///
/// # Panics
///
/// Panics if `threads == 0` or the input is empty.
pub fn multicore_scalar_aggregate(
    cfg: &SimConfig,
    g: &[u32],
    v: &[u32],
    threads: usize,
    presorted: bool,
) -> MulticoreRun {
    assert!(threads > 0, "need at least one thread");
    assert!(!g.is_empty(), "empty input");
    assert_eq!(g.len(), v.len());
    let n = g.len();
    let threads = threads.min(n);

    // Parallel phase: each thread aggregates its contiguous partition on a
    // private machine. The phase ends when the slowest thread finishes.
    let mut tables = Vec::with_capacity(threads);
    for t in 0..threads {
        let lo = n * t / threads;
        let hi = n * (t + 1) / threads;
        tables.push(thread_aggregate(cfg, &g[lo..hi], &v[lo..hi], presorted));
    }
    let parallel_cycles = tables.iter().map(|t| t.cycles).max().unwrap();

    // Serial merge on one core: add every other thread's table into
    // thread 0's, skipping absent groups (count == 0) the way Ye et al.'s
    // merge does, then compress (step 4).
    let cells = tables.iter().map(|t| t.counts.len()).max().unwrap();
    let mut m = Machine::new(cfg.clone());
    let count_tbl = m
        .space_mut()
        .alloc_slice_u32(&pad(&tables[0].counts, cells));
    let sum_tbl = m.space_mut().alloc_slice_u32(&pad(&tables[0].sums, cells));
    let staged: Vec<(u64, u64, usize)> = tables[1..]
        .iter()
        .map(|t| {
            let c = m.space_mut().alloc_slice_u32(&t.counts);
            let s = m.space_mut().alloc_slice_u32(&t.sums);
            (c, s, t.counts.len())
        })
        .collect();
    for &(src_c, src_s, len) in &staged {
        for k in 0..len {
            let it = m.s_op(0);
            let (c, ct) = m.s_load_u32(src_c + 4 * k as u64, it);
            let bt = m.s_op(ct); // test + branch on absent group
            if c == 0 {
                continue;
            }
            let daddr = count_tbl + 4 * k as u64;
            let (dc, dct) = m.s_load_u32(daddr, bt);
            let t1 = m.s_op(dct);
            m.s_store_u32_split(daddr, dc + c, bt, t1);
            let (s, st2) = m.s_load_u32(src_s + 4 * k as u64, bt);
            let saddr = sum_tbl + 4 * k as u64;
            let (ds, dst) = m.s_load_u32(saddr, bt);
            let t2 = m.s_op(st2.max(dst));
            m.s_store_u32_split(saddr, ds + s, bt, t2);
        }
    }

    // Step 4: compress away absent groups.
    let out = OutputTable::alloc(&mut m, cells);
    let mut rows = 0usize;
    for k in 0..cells {
        let it = m.s_op(0);
        let (c, ct) = m.s_load_u32(count_tbl + 4 * k as u64, it);
        let bt = m.s_op(ct);
        if c != 0 {
            let (s, st2) = m.s_load_u32(sum_tbl + 4 * k as u64, bt);
            let o = 4 * rows as u64;
            m.s_store_u32(out.groups + o, k as u32, bt);
            m.s_store_u32(out.counts + o, c, ct);
            m.s_store_u32(out.sums + o, s, st2);
            rows += 1;
        }
    }
    let merge_cycles = m.cycles();
    let result = out.read(&m, rows);

    let cycles = parallel_cycles + merge_cycles;
    MulticoreRun {
        threads,
        parallel_cycles,
        merge_cycles,
        cycles,
        cpt: cycles as f64 / n as f64,
        result,
    }
}

/// Smallest power-of-two core count whose critical-path cycles beat
/// `target_cycles`, searching up to `max_threads`. Returns `None` when
/// even `max_threads` cores do not reach it (merge-bound inputs).
pub fn cores_to_match(
    cfg: &SimConfig,
    g: &[u32],
    v: &[u32],
    presorted: bool,
    target_cycles: u64,
    max_threads: usize,
) -> Option<(usize, MulticoreRun)> {
    let mut threads = 1;
    while threads <= max_threads {
        let run = multicore_scalar_aggregate(cfg, g, v, threads, presorted);
        if run.cycles <= target_cycles {
            return Some((threads, run));
        }
        threads *= 2;
    }
    None
}

fn pad(xs: &[u32], len: usize) -> Vec<u32> {
    let mut v = xs.to_vec();
    v.resize(len, 0);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::reference;
    use vagg_datagen::{DatasetSpec, Distribution};

    fn dataset(dist: Distribution, c: u64, n: usize) -> vagg_datagen::Dataset {
        DatasetSpec::paper(dist, c)
            .with_rows(n)
            .with_seed(3)
            .generate()
    }

    #[test]
    fn matches_reference_for_any_thread_count() {
        let ds = dataset(Distribution::Uniform, 500, 4_000);
        let cfg = SimConfig::paper();
        let expect = reference(&ds.g, &ds.v);
        for threads in [1, 2, 3, 4, 8] {
            let run = multicore_scalar_aggregate(&cfg, &ds.g, &ds.v, threads, false);
            assert_eq!(run.result, expect, "threads={threads}");
            assert_eq!(run.threads, threads);
            assert_eq!(run.cycles, run.parallel_cycles + run.merge_cycles);
        }
    }

    #[test]
    fn single_thread_close_to_scalar_baseline() {
        // One thread = the scalar baseline plus a trivial merge walk.
        let ds = dataset(Distribution::Uniform, 500, 4_000);
        let cfg = SimConfig::paper();
        let single = multicore_scalar_aggregate(&cfg, &ds.g, &ds.v, 1, false);
        let base = crate::run_algorithm(crate::Algorithm::Scalar, &cfg, &ds);
        let ratio = single.cycles as f64 / base.cycles as f64;
        assert!(
            (0.8..1.2).contains(&ratio),
            "1-thread run should cost ~the scalar baseline, ratio {ratio:.2}"
        );
    }

    #[test]
    fn parallel_phase_scales_down() {
        let ds = dataset(Distribution::Uniform, 500, 8_000);
        let cfg = SimConfig::paper();
        let t1 = multicore_scalar_aggregate(&cfg, &ds.g, &ds.v, 1, false);
        let t4 = multicore_scalar_aggregate(&cfg, &ds.g, &ds.v, 4, false);
        assert!(
            t4.parallel_cycles < t1.parallel_cycles / 2,
            "4 threads should at least halve the parallel phase: {} vs {}",
            t4.parallel_cycles,
            t1.parallel_cycles
        );
    }

    #[test]
    fn merge_grows_with_threads_and_cardinality() {
        let ds = dataset(Distribution::Uniform, 2_000, 8_000);
        let cfg = SimConfig::paper();
        let t2 = multicore_scalar_aggregate(&cfg, &ds.g, &ds.v, 2, false);
        let t8 = multicore_scalar_aggregate(&cfg, &ds.g, &ds.v, 8, false);
        assert!(
            t8.merge_cycles > t2.merge_cycles,
            "more private tables must cost more merge: {} vs {}",
            t8.merge_cycles,
            t2.merge_cycles
        );
    }

    #[test]
    fn presorted_partitions_stay_cheap() {
        let ds = dataset(Distribution::Sorted, 500, 4_000);
        let cfg = SimConfig::paper();
        let run = multicore_scalar_aggregate(&cfg, &ds.g, &ds.v, 4, true);
        assert_eq!(run.result, reference(&ds.g, &ds.v));
    }

    #[test]
    fn cores_to_match_finds_a_count() {
        // Low cardinality keeps the serial merge negligible; otherwise
        // Amdahl's law can make *no* core count reach the target (see
        // `merge_bound_inputs_never_match` below).
        let ds = dataset(Distribution::Uniform, 50, 8_000);
        let cfg = SimConfig::paper();
        let t1 = multicore_scalar_aggregate(&cfg, &ds.g, &ds.v, 1, false);
        // Target: half the single-core time; a few cores must reach it.
        let (threads, run) = cores_to_match(&cfg, &ds.g, &ds.v, false, t1.cycles / 2, 64)
            .expect("some core count must halve the runtime");
        assert!(threads >= 2);
        assert!(run.cycles <= t1.cycles / 2);
        // Unreachable target (0 cycles) → None.
        assert!(cores_to_match(&cfg, &ds.g, &ds.v, false, 0, 8).is_none());
    }

    #[test]
    fn merge_bound_inputs_never_match() {
        // High cardinality relative to n: the serial (threads−1)·cells
        // merge outgrows the parallel-phase savings, so aggressive
        // speedup targets are unreachable at any core count — the Amdahl
        // wall the paper's single-vector-unit argument leans on.
        let ds = dataset(Distribution::Uniform, 2_000, 4_000);
        let cfg = SimConfig::paper();
        let t1 = multicore_scalar_aggregate(&cfg, &ds.g, &ds.v, 1, false);
        assert!(cores_to_match(&cfg, &ds.g, &ds.v, false, t1.cycles / 8, 64).is_none());
    }

    #[test]
    fn thread_count_clamped_to_rows() {
        let g = vec![1u32, 2];
        let v = vec![3u32, 4];
        let run = multicore_scalar_aggregate(&SimConfig::paper(), &g, &v, 16, false);
        assert_eq!(run.threads, 2);
        assert_eq!(run.result, reference(&g, &v));
    }
}
