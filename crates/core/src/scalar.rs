//! The scalar baseline (§III-B) — no vector instructions at all.
//!
//! Four steps: (1) find the maximum group key `maxg`; (2) clear `maxg + 1`
//! cells of the `count` and `sum` tables; (3) the Figure 3 loop —
//! `count[g[i]]++; sum[g[i]] += v[i];` (4) compress the tables, dropping
//! absent groups.
//!
//! Micro-op accounting mirrors what an x86-64 compiler emits for the inner
//! loop: per tuple, two column loads, two table read-modify-writes (each an
//! address computation, load, ALU op, store) and loop control.

use crate::input::{OutputTable, StagedInput};
use vagg_sim::{Machine, Tok};

/// Runs the baseline; returns the output table and emitted row count.
pub fn scalar_aggregate(m: &mut Machine, input: &StagedInput) -> (OutputTable, usize) {
    // Step 1: scalar max scan (skippable only by presorted metadata).
    let (maxg, mut tok) = if input.presorted {
        crate::input::presorted_max(m, input)
    } else {
        scalar_max_scan(m, input)
    };
    let cells = maxg as usize + 1;

    // Step 2: clear the bookkeeping tables.
    let count_tbl = m.space_mut().alloc(4 * cells as u64, 64);
    let sum_tbl = m.space_mut().alloc(4 * cells as u64, 64);
    for i in 0..cells {
        let t1 = m.s_store_u32(count_tbl + 4 * i as u64, 0, tok);
        let t2 = m.s_store_u32(sum_tbl + 4 * i as u64, 0, tok);
        tok = m.s_op(t1.max(t2)); // induction + branch
    }

    // Step 3: the Figure 3 loop.
    for i in 0..input.n {
        let it = m.s_op(0); // induction variable
        let (g, gt) = m.s_load_u32(input.g + 4 * i as u64, it);
        let (v, vt) = m.s_load_u32(input.v + 4 * i as u64, it);
        // count[g]++ : address op, load, add, store (store address is
        // ready as soon as the lea resolves; only the data waits on the
        // add).
        let at = m.s_op(gt);
        let caddr = count_tbl + 4 * g as u64;
        let (c, ct) = m.s_load_u32(caddr, at);
        let adt = m.s_op(ct);
        m.s_store_u32_split(caddr, c + 1, at, adt);
        // sum[g] += v.
        let saddr = sum_tbl + 4 * g as u64;
        let (s, st) = m.s_load_u32(saddr, at);
        let sdt = m.s_op(st.max(vt));
        m.s_store_u32_split(saddr, s + v, at, sdt);
    }

    // Step 4: compress away absent groups.
    let out = OutputTable::alloc(m, cells);
    let mut rows = 0usize;
    for k in 0..cells {
        let it = m.s_op(0);
        let (c, ct) = m.s_load_u32(count_tbl + 4 * k as u64, it);
        let bt = m.s_op(ct); // test + branch
        if c != 0 {
            let (s, st) = m.s_load_u32(sum_tbl + 4 * k as u64, bt);
            let o = 4 * rows as u64;
            m.s_store_u32(out.groups + o, k as u32, bt);
            m.s_store_u32(out.counts + o, c, ct);
            m.s_store_u32(out.sums + o, s, st);
            rows += 1;
        }
    }
    (out, rows)
}

/// Step 1 in scalar form: a load + compare + conditional-move per element.
pub fn scalar_max_scan(m: &mut Machine, input: &StagedInput) -> (u32, Tok) {
    let mut maxg = 0u32;
    let mut tok = 0;
    for i in 0..input.n {
        let it = m.s_op(0);
        let (g, gt) = m.s_load_u32(input.g + 4 * i as u64, it);
        tok = m.s_op(gt.max(tok)); // cmp + cmov chain on the running max
        maxg = maxg.max(g);
    }
    (maxg, tok)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::reference;

    fn run(g: Vec<u32>, v: Vec<u32>) -> (crate::result::AggResult, u64) {
        let mut m = Machine::paper();
        let st = StagedInput::stage_raw(&mut m, &g, &v, false);
        let (out, rows) = scalar_aggregate(&mut m, &st);
        let r = out.read(&m, rows);
        r.validate(g.len()).unwrap();
        assert_eq!(r, reference(&g, &v));
        (r, m.cycles())
    }

    #[test]
    fn matches_reference_small() {
        run(vec![1, 3, 3, 0, 0, 5, 2, 4], vec![0, 5, 2, 4, 1, 3, 3, 0]);
    }

    #[test]
    fn matches_reference_with_gaps() {
        // Sparse keys leave NULL rows that step 4 must drop.
        run(vec![100, 7, 100, 950], vec![1, 2, 3, 4]);
    }

    #[test]
    fn matches_reference_larger() {
        let n = 3000u32;
        let g: Vec<u32> = (0..n).map(|i| (i * 7919) % 113).collect();
        let v: Vec<u32> = (0..n).map(|i| i % 10).collect();
        run(g, v);
    }

    #[test]
    fn single_group_input() {
        let (r, _) = run(vec![5; 64], vec![1; 64]);
        assert_eq!(r.groups, vec![5]);
        assert_eq!(r.counts, vec![64]);
    }

    #[test]
    fn presorted_skips_max_scan() {
        // Column larger than the L2 so the scan cannot pay for itself by
        // warming the cache for the main loop.
        let n = 150_000;
        let g: Vec<u32> = (0..n).map(|i| i / 10).collect();
        let v = vec![1u32; n as usize];
        let mut m1 = Machine::paper();
        let st = StagedInput::stage_raw(&mut m1, &g, &v, true);
        let (out, rows) = scalar_aggregate(&mut m1, &st);
        assert_eq!(out.read(&m1, rows), reference(&g, &v));

        let mut m2 = Machine::paper();
        let st = StagedInput::stage_raw(&mut m2, &g, &v, false);
        scalar_aggregate(&mut m2, &st);
        assert!(m1.cycles() < m2.cycles(), "metadata should save the scan");
    }

    #[test]
    fn scalar_max_scan_is_correct() {
        let mut m = Machine::paper();
        let g = vec![4u32, 99, 12, 0];
        let st = StagedInput::stage_raw(&mut m, &g, &[0, 0, 0, 0], false);
        let (maxg, _) = scalar_max_scan(&mut m, &st);
        assert_eq!(maxg, 99);
    }

    #[test]
    fn cpt_grows_when_tables_exceed_cache() {
        // The Figure 4 shape: uniform CPT jumps once tables spill the L1.
        let n = 20_000usize;
        let v: Vec<u32> = vec![1; n];
        let small: Vec<u32> = (0..n)
            .map(|i| ((i as u64 * 2654435761) % 64) as u32)
            .collect();
        let large: Vec<u32> = (0..n)
            .map(|i| ((i as u64 * 2654435761) % 100_000) as u32)
            .collect();

        let mut m1 = Machine::paper();
        let st1 = StagedInput::stage_raw(&mut m1, &small, &v, false);
        scalar_aggregate(&mut m1, &st1);
        let cpt_small = m1.cycles() as f64 / n as f64;

        let mut m2 = Machine::paper();
        let st2 = StagedInput::stage_raw(&mut m2, &large, &v, false);
        scalar_aggregate(&mut m2, &st2);
        let cpt_large = m2.cycles() as f64 / n as f64;

        assert!(
            cpt_large > cpt_small * 1.5,
            "expected cache cliff: {cpt_small:.1} vs {cpt_large:.1}"
        );
    }
}
