//! Query result representation and the reference oracle.
//!
//! The paper's query is `SELECT g, COUNT(*), SUM(v) FROM r GROUP BY g`
//! (Figure 2): a three-column output table. All simulated algorithms emit
//! their output ordered by group key, so results compare directly.

use std::collections::HashMap;

/// The aggregation output: parallel columns ordered by group key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggResult {
    /// Group keys present in the input, ascending.
    pub groups: Vec<u32>,
    /// `COUNT(*)` per group.
    pub counts: Vec<u32>,
    /// `SUM(v)` per group.
    pub sums: Vec<u32>,
}

impl AggResult {
    /// Number of output rows (distinct groups).
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether the result is empty.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Internal consistency: columns equal length, groups strictly
    /// ascending, counts positive, total count = `n`.
    pub fn validate(&self, n: usize) -> Result<(), String> {
        if self.counts.len() != self.groups.len() || self.sums.len() != self.groups.len() {
            return Err("column length mismatch".into());
        }
        if self.groups.windows(2).any(|w| w[0] >= w[1]) {
            return Err("groups not strictly ascending".into());
        }
        if self.counts.contains(&0) {
            return Err("zero count for an emitted group".into());
        }
        let total: u64 = self.counts.iter().map(|&c| c as u64).sum();
        if total != n as u64 {
            return Err(format!("counts total {total}, expected {n}"));
        }
        Ok(())
    }
}

/// Host-side oracle: hash aggregation, then order by group.
pub fn reference(g: &[u32], v: &[u32]) -> AggResult {
    assert_eq!(g.len(), v.len());
    let mut map: HashMap<u32, (u32, u32)> = HashMap::new();
    for (&k, &x) in g.iter().zip(v) {
        let e = map.entry(k).or_insert((0, 0));
        e.0 += 1;
        e.1 += x;
    }
    let mut rows: Vec<(u32, u32, u32)> = map.into_iter().map(|(k, (c, s))| (k, c, s)).collect();
    rows.sort_unstable_by_key(|r| r.0);
    AggResult {
        groups: rows.iter().map(|r| r.0).collect(),
        counts: rows.iter().map(|r| r.1).collect(),
        sums: rows.iter().map(|r| r.2).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_figure2_style() {
        let g = [1u32, 3, 3, 0, 0, 5, 2, 4];
        let v = [0u32, 5, 2, 4, 1, 3, 3, 0];
        let r = reference(&g, &v);
        assert_eq!(r.groups, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(r.counts, vec![2, 1, 1, 2, 1, 1]);
        assert_eq!(r.sums, vec![5, 0, 3, 7, 0, 3]);
        r.validate(8).unwrap();
    }

    #[test]
    fn validate_catches_bad_shapes() {
        let mut r = reference(&[1, 2], &[1, 1]);
        r.counts[0] = 0;
        assert!(r.validate(2).is_err());

        let mut r = reference(&[1, 2], &[1, 1]);
        r.groups = vec![2, 1];
        assert!(r.validate(2).is_err());

        let r = reference(&[1, 2], &[1, 1]);
        assert!(r.validate(3).is_err());
        assert!(r.validate(2).is_ok());
    }

    #[test]
    fn single_group() {
        let r = reference(&[7; 100], &[2; 100]);
        assert_eq!(r.groups, vec![7]);
        assert_eq!(r.counts, vec![100]);
        assert_eq!(r.sums, vec![200]);
    }
}
