//! Query result representation and the reference oracle.
//!
//! The paper's query is `SELECT g, COUNT(*), SUM(v) FROM r GROUP BY g`
//! (Figure 2): a three-column output table. All simulated algorithms emit
//! their output ordered by group key, so results compare directly.

use std::collections::HashMap;

/// The aggregation output: parallel columns ordered by group key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggResult {
    /// Group keys present in the input, ascending.
    pub groups: Vec<u32>,
    /// `COUNT(*)` per group.
    pub counts: Vec<u32>,
    /// `SUM(v)` per group.
    pub sums: Vec<u32>,
}

impl AggResult {
    /// Number of output rows (distinct groups).
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether the result is empty.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Internal consistency: columns equal length, groups strictly
    /// ascending, counts positive, total count = `n`.
    pub fn validate(&self, n: usize) -> Result<(), String> {
        if self.counts.len() != self.groups.len() || self.sums.len() != self.groups.len() {
            return Err("column length mismatch".into());
        }
        if self.groups.windows(2).any(|w| w[0] >= w[1]) {
            return Err("groups not strictly ascending".into());
        }
        if self.counts.contains(&0) {
            return Err("zero count for an emitted group".into());
        }
        let total: u64 = self.counts.iter().map(|&c| c as u64).sum();
        if total != n as u64 {
            return Err(format!("counts total {total}, expected {n}"));
        }
        Ok(())
    }
}

/// One worker's mergeable aggregate over its partition of the input:
/// the COUNT/SUM columns plus the optional MIN/MAX columns of the
/// extended kernel, all ordered by group key.
///
/// COUNT, SUM, MIN and MAX are distributive, so partials computed over
/// disjoint row partitions combine into the whole-input answer with
/// [`PartialAggregate::merge`] (and AVG = SUM/COUNT falls out on
/// readback). This is the contract a sharded front end relies on: run
/// the same plan on every shard, merge the partials, finalise once.
///
/// ```
/// use vagg_core::{reference, PartialAggregate};
///
/// let (g, v) = ([1u32, 2, 1, 2], [10u32, 20, 30, 40]);
/// let left = PartialAggregate::new(reference(&g[..2], &v[..2]), None);
/// let right = PartialAggregate::new(reference(&g[2..], &v[2..]), None);
/// assert_eq!(left.merge(right).base, reference(&g, &v));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartialAggregate {
    /// The COUNT/SUM columns, ordered by group key.
    pub base: AggResult,
    /// `(MIN(v), MAX(v))` per group when the query ran the extended
    /// VGAmin/VGAmax kernel; `None` for COUNT/SUM-only queries.
    pub minmax: Option<(Vec<u32>, Vec<u32>)>,
}

impl PartialAggregate {
    /// Wraps one worker's readback columns.
    pub fn new(base: AggResult, minmax: Option<(Vec<u32>, Vec<u32>)>) -> Self {
        Self { base, minmax }
    }

    /// An empty partial (what a shard with no surviving rows reports).
    /// `minmax` says whether the query family carries MIN/MAX columns.
    pub fn empty(minmax: bool) -> Self {
        Self {
            base: AggResult {
                groups: Vec::new(),
                counts: Vec::new(),
                sums: Vec::new(),
            },
            minmax: minmax.then(|| (Vec::new(), Vec::new())),
        }
    }

    /// Number of groups in this partial.
    pub fn len(&self) -> usize {
        self.base.len()
    }

    /// Whether this partial holds no groups at all.
    pub fn is_empty(&self) -> bool {
        self.base.is_empty()
    }

    /// Merges two partials computed over disjoint row partitions:
    /// a merge-join on the (sorted) group keys, adding counts and sums
    /// and combining minima/maxima elementwise.
    ///
    /// # Panics
    ///
    /// Both sides must come from the same query shape: they either both
    /// carry MIN/MAX columns or neither does. Mixing them would have to
    /// silently drop one side's MIN/MAX data, so it panics instead.
    pub fn merge(self, other: Self) -> Self {
        assert_eq!(
            self.minmax.is_some(),
            other.minmax.is_some(),
            "partials of one query agree on carrying MIN/MAX"
        );
        let with_minmax = self.minmax.is_some() && other.minmax.is_some();
        let n = self.len() + other.len();
        let mut out = Self {
            base: AggResult {
                groups: Vec::with_capacity(n),
                counts: Vec::with_capacity(n),
                sums: Vec::with_capacity(n),
            },
            minmax: with_minmax.then(|| (Vec::with_capacity(n), Vec::with_capacity(n))),
        };
        let (mut i, mut j) = (0usize, 0usize);
        let (a, b) = (&self, &other);
        while i < a.len() || j < b.len() {
            // Which side supplies the next (smallest) group key?
            let take_a = j == b.len() || (i < a.len() && a.base.groups[i] <= b.base.groups[j]);
            let take_b = i == a.len() || (j < b.len() && b.base.groups[j] <= a.base.groups[i]);
            let key = if take_a {
                a.base.groups[i]
            } else {
                b.base.groups[j]
            };
            let (mut count, mut sum) = (0u32, 0u32);
            let (mut min, mut max) = (u32::MAX, 0u32);
            if take_a {
                count += a.base.counts[i];
                sum += a.base.sums[i];
                if let Some((mins, maxs)) = &a.minmax {
                    min = min.min(mins[i]);
                    max = max.max(maxs[i]);
                }
                i += 1;
            }
            if take_b {
                count += b.base.counts[j];
                sum += b.base.sums[j];
                if let Some((mins, maxs)) = &b.minmax {
                    min = min.min(mins[j]);
                    max = max.max(maxs[j]);
                }
                j += 1;
            }
            out.base.groups.push(key);
            out.base.counts.push(count);
            out.base.sums.push(sum);
            if let Some((mins, maxs)) = &mut out.minmax {
                mins.push(min);
                maxs.push(max);
            }
        }
        out
    }

    /// Folds any number of partials into one (identity: an empty
    /// partial of the same query family).
    pub fn merge_all(parts: impl IntoIterator<Item = Self>) -> Option<Self> {
        parts.into_iter().reduce(Self::merge)
    }
}

/// Host-side oracle: hash aggregation, then order by group.
pub fn reference(g: &[u32], v: &[u32]) -> AggResult {
    assert_eq!(g.len(), v.len());
    let mut map: HashMap<u32, (u32, u32)> = HashMap::new();
    for (&k, &x) in g.iter().zip(v) {
        let e = map.entry(k).or_insert((0, 0));
        e.0 += 1;
        e.1 += x;
    }
    let mut rows: Vec<(u32, u32, u32)> = map.into_iter().map(|(k, (c, s))| (k, c, s)).collect();
    rows.sort_unstable_by_key(|r| r.0);
    AggResult {
        groups: rows.iter().map(|r| r.0).collect(),
        counts: rows.iter().map(|r| r.1).collect(),
        sums: rows.iter().map(|r| r.2).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_figure2_style() {
        let g = [1u32, 3, 3, 0, 0, 5, 2, 4];
        let v = [0u32, 5, 2, 4, 1, 3, 3, 0];
        let r = reference(&g, &v);
        assert_eq!(r.groups, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(r.counts, vec![2, 1, 1, 2, 1, 1]);
        assert_eq!(r.sums, vec![5, 0, 3, 7, 0, 3]);
        r.validate(8).unwrap();
    }

    #[test]
    fn validate_catches_bad_shapes() {
        let mut r = reference(&[1, 2], &[1, 1]);
        r.counts[0] = 0;
        assert!(r.validate(2).is_err());

        let mut r = reference(&[1, 2], &[1, 1]);
        r.groups = vec![2, 1];
        assert!(r.validate(2).is_err());

        let r = reference(&[1, 2], &[1, 1]);
        assert!(r.validate(3).is_err());
        assert!(r.validate(2).is_ok());
    }

    #[test]
    fn merge_matches_whole_input_reference() {
        let g = [1u32, 3, 3, 0, 0, 5, 2, 4, 3, 1];
        let v = [0u32, 5, 2, 4, 1, 3, 3, 0, 9, 7];
        for split in 0..=g.len() {
            let left = PartialAggregate::new(reference(&g[..split], &v[..split]), None);
            let right = PartialAggregate::new(reference(&g[split..], &v[split..]), None);
            let merged = left.merge(right);
            assert_eq!(merged.base, reference(&g, &v), "split at {split}");
            merged.base.validate(g.len()).unwrap();
        }
    }

    #[test]
    fn merge_combines_minmax_columns() {
        let minmax_ref = |g: &[u32], v: &[u32]| {
            let r = crate::minmax::reference_minmax(g, v);
            PartialAggregate::new(r.base, Some((r.mins, r.maxs)))
        };
        let g = [2u32, 0, 2, 1, 0, 2];
        let v = [7u32, 3, 1, 9, 8, 4];
        let merged = minmax_ref(&g[..3], &v[..3]).merge(minmax_ref(&g[3..], &v[3..]));
        assert_eq!(merged, minmax_ref(&g, &v));
    }

    #[test]
    #[should_panic(expected = "carrying MIN/MAX")]
    fn merging_mismatched_families_panics() {
        let with = PartialAggregate::empty(true);
        let without = PartialAggregate::new(reference(&[1], &[2]), None);
        let _ = with.merge(without);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let p = PartialAggregate::new(reference(&[4, 2, 4], &[1, 2, 3]), None);
        assert_eq!(p.clone().merge(PartialAggregate::empty(false)), p);
        assert_eq!(PartialAggregate::empty(false).merge(p.clone()), p);
        assert!(PartialAggregate::empty(true).is_empty());
    }

    #[test]
    fn merge_all_folds_many_shards() {
        let g: Vec<u32> = (0..97u32).map(|i| i % 13).collect();
        let v: Vec<u32> = (0..97u32).map(|i| i * 3 % 17).collect();
        let parts = (0..5).map(|s| {
            let lo = s * 20;
            let hi = (lo + 20).min(g.len());
            PartialAggregate::new(reference(&g[lo..hi], &v[lo..hi]), None)
        });
        let merged = PartialAggregate::merge_all(parts).unwrap();
        assert_eq!(merged.base, reference(&g, &v));
        assert_eq!(merged.len(), 13);
        assert!(PartialAggregate::merge_all(std::iter::empty()).is_none());
    }

    #[test]
    fn single_group() {
        let r = reference(&[7; 100], &[2; 100]);
        assert_eq!(r.groups, vec![7]);
        assert_eq!(r.counts, vec![100]);
        assert_eq!(r.sums, vec![200]);
    }
}
