//! Polytable — evasion technique #2 (§IV-B).
//!
//! A direct vectorised translation of the scalar baseline, with the one
//! transformation a typical vector ISA forces: to avoid gather-modify-
//! scatter conflicts, the `count` and `sum` tables are **replicated MVL
//! times** — element `j` of a vector register updates its private copy
//! `table[group * MVL + j]` (Figure 7). After the input is consumed, the
//! MVL copies of each group are summed with a vector reduction (Figure 8),
//! and the result is compacted.
//!
//! Replication destroys the scalar algorithm's cache locality MVL times
//! sooner: the paper observes the CPT cliff moving from c ≈ 9,765 to
//! c ≈ 152 — exactly 64× earlier.

use crate::compact::compact_tables;
use crate::input::{vector_max_scan, OutputTable, StagedInput};
use vagg_isa::{BinOp, RedOp, Vreg};
use vagg_sim::Machine;

const VG: Vreg = Vreg(0); // group keys
const VV: Vreg = Vreg(1); // values
const VI: Vreg = Vreg(2); // iota (copy index)
const VX: Vreg = Vreg(3); // replicated table index
const VT: Vreg = Vreg(4); // table values
const VZ: Vreg = Vreg(6); // zero

/// Runs polytable; returns the output table and emitted row count.
pub fn polytable_aggregate(m: &mut Machine, input: &StagedInput) -> (OutputTable, usize) {
    let mvl = m.mvl();

    // Step 1: maximum group key (vectorised scan, or metadata if sorted).
    let (maxg, tok) = if input.presorted {
        crate::input::presorted_max(m, input)
    } else {
        vector_max_scan(m, input)
    };
    let cells = maxg as usize + 1;

    // Step 2: clear the MVL-replicated tables.
    let repl = cells as u64 * mvl as u64;
    let count_poly = m.space_mut().alloc(4 * repl, 64);
    let sum_poly = m.space_mut().alloc(4 * repl, 64);
    m.set_vl(mvl);
    m.vset(VZ, 0, None);
    let mut t = tok;
    for i in (0..repl).step_by(mvl) {
        let vl = ((repl - i) as usize).min(mvl);
        if vl != m.vl() {
            m.set_vl(vl);
        }
        t = m.vstore_unit(VZ, count_poly + 4 * i, 4, t);
        m.vstore_unit(VZ, sum_poly + 4 * i, 4, t);
    }

    // Copy-index vector, hoisted out of the main loop.
    m.set_vl(mvl);
    m.viota(VI, None);

    // Step 3: the replicated-table update loop (Figure 7).
    for start in (0..input.n).step_by(mvl) {
        let vl = (input.n - start).min(mvl);
        m.set_vl(vl);
        let lt = m.s_op(0);
        m.vload_unit(VG, input.g + 4 * start as u64, 4, lt);
        m.vload_unit(VV, input.v + 4 * start as u64, 4, lt);
        // index = g * MVL + j  — private copy per element, conflict-free.
        m.vbinop_vs(BinOp::Mul, VX, VG, mvl as u64, None);
        m.vbinop_vv(BinOp::Add, VX, VX, VI, None);
        m.vgather(VT, count_poly, VX, 4, None, 0);
        m.vbinop_vs(BinOp::Add, VT, VT, 1, None);
        m.vscatter(VT, count_poly, VX, 4, None, 0);
        m.vgather(VT, sum_poly, VX, 4, None, 0);
        m.vbinop_vv(BinOp::Add, VT, VT, VV, None);
        m.vscatter(VT, sum_poly, VX, 4, None, 0);
    }

    // Local→global reduction (Figure 8): MVL consecutive cells form one
    // group; each is reduced to a single cell of the global tables.
    let count_tbl = m.space_mut().alloc(4 * cells as u64, 64);
    let sum_tbl = m.space_mut().alloc(4 * cells as u64, 64);
    m.set_vl(mvl);
    let mut rt = 0;
    for k in 0..cells {
        let lt = m.s_op(0);
        m.vload_unit(VT, count_poly + 4 * (k as u64 * mvl as u64), 4, lt);
        let (c, ct) = m.vred(RedOp::Sum, VT, None);
        m.s_store_u32(count_tbl + 4 * k as u64, c as u32, ct);
        m.vload_unit(VT, sum_poly + 4 * (k as u64 * mvl as u64), 4, lt);
        let (s, st) = m.vred(RedOp::Sum, VT, None);
        rt = m.s_store_u32(sum_tbl + 4 * k as u64, s as u32, st);
    }
    let _ = (t, rt);

    // Step 4: compact.
    let out = OutputTable::alloc(m, cells);
    let rows = compact_tables(m, count_tbl, sum_tbl, cells, &out);
    (out, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::reference;

    fn run(g: Vec<u32>, v: Vec<u32>, presorted: bool) -> (crate::result::AggResult, u64) {
        let mut m = Machine::paper();
        let st = StagedInput::stage_raw(&mut m, &g, &v, presorted);
        let (out, rows) = polytable_aggregate(&mut m, &st);
        let r = out.read(&m, rows);
        r.validate(g.len()).unwrap();
        assert_eq!(r, reference(&g, &v));
        (r, m.cycles())
    }

    #[test]
    fn matches_reference_small() {
        run(
            vec![1, 3, 3, 0, 0, 5, 2, 4],
            vec![0, 5, 2, 4, 1, 3, 3, 0],
            false,
        );
    }

    #[test]
    fn duplicates_within_one_vector_are_safe() {
        // All 64 lanes hit the same group — the exact GMS hazard the
        // replication exists to avoid.
        run(vec![3; 64], (0..64).collect(), false);
    }

    #[test]
    fn matches_reference_multi_chunk() {
        let n = 2000u32;
        let g: Vec<u32> = (0..n).map(|i| (i * 7919) % 53).collect();
        let v: Vec<u32> = (0..n).map(|i| i % 10).collect();
        run(g, v, false);
    }

    #[test]
    fn sparse_groups_compact_correctly() {
        run(vec![500, 2, 500, 99], vec![1, 2, 3, 4], false);
    }

    #[test]
    fn presorted_input_works() {
        let g: Vec<u32> = (0..1000).map(|i| i / 25).collect();
        let v: Vec<u32> = (0..1000).map(|i| i % 10).collect();
        run(g, v, true);
    }

    #[test]
    fn beats_scalar_at_low_cardinality() {
        // Table V: low cardinality is where polytable shines (3-3.7×).
        let n = 8192usize;
        let g: Vec<u32> = (0..n)
            .map(|i| ((i as u64 * 2654435761) % 16) as u32)
            .collect();
        let v: Vec<u32> = (0..n).map(|i| (i % 10) as u32).collect();

        let (_, poly) = run(g.clone(), v.clone(), false);

        let mut m = Machine::paper();
        let st = StagedInput::stage_raw(&mut m, &g, &v, false);
        crate::scalar::scalar_aggregate(&mut m, &st);
        let scalar = m.cycles();

        assert!(
            poly < scalar,
            "polytable ({poly}) should beat scalar ({scalar}) at c=16"
        );
    }

    #[test]
    fn n_smaller_than_mvl() {
        run(vec![1, 0, 1], vec![5, 6, 7], false);
    }
}
