//! Monotable — confrontation technique #2 (§V-B), the paper's headline
//! algorithm.
//!
//! A vectorised translation of the scalar baseline that keeps a **single**
//! (non-replicated) pair of tables, preserving whatever cache locality the
//! input has. GMS conflicts are resolved entirely in registers before any
//! memory access, using the paper's new `VGAsum` instruction together with
//! `VLU` (the Figure 15 kernel):
//!
//! ```text
//! v2 ← vgasum(v0, v1)       ; running per-group partial sums
//! m0 ← vlu(v0)              ; last instance of each group
//! v3 ← gather(table, v0, m0)
//! v4 ← vadd(v2, v3)
//! scatter(table, v0, v4, m0)
//! ```
//!
//! At each group's *last* in-register instance, the `VGAsum` output equals
//! the group's total within the register, so one masked gather/add/scatter
//! per table suffices and the scatter indices are conflict-free.

use crate::compact::compact_tables;
use crate::input::{vector_max_scan, OutputTable, StagedInput};
use vagg_isa::{BinOp, Mreg, RedOp, Vreg};
use vagg_sim::Machine;

const VG: Vreg = Vreg(0); // group keys
const VV: Vreg = Vreg(1); // values
const VA: Vreg = Vreg(2); // running group sums (VGAsum out)
const VTS: Vreg = Vreg(3); // sum-table values
const VTC: Vreg = Vreg(4); // count-table values
const VC: Vreg = Vreg(5); // running group counts (VGAsum of ones)
const VZ: Vreg = Vreg(6); // zero
const VONE: Vreg = Vreg(7); // all-ones (hoisted)
const M0: Mreg = Mreg(0); // VLU mask

/// Runs monotable on already-staged input columns at `g`/`v` (used both
/// directly and by partially-sorted monotable after its partial sort).
/// Returns the output table and row count.
pub fn monotable_on(
    m: &mut Machine,
    g: u64,
    v: u64,
    n: usize,
    maxg: u32,
    tok: vagg_sim::Tok,
) -> (OutputTable, usize) {
    let mvl = m.mvl();
    let cells = maxg as usize + 1;

    // Step 2: clear the single pair of tables (vector stores).
    let count_tbl = m.space_mut().alloc(4 * cells as u64, 64);
    let sum_tbl = m.space_mut().alloc(4 * cells as u64, 64);
    m.set_vl(mvl);
    m.vset(VZ, 0, None);
    let mut t = tok;
    for i in (0..cells).step_by(mvl) {
        let vl = (cells - i).min(mvl);
        if vl != m.vl() {
            m.set_vl(vl);
        }
        t = m.vstore_unit(VZ, count_tbl + 4 * i as u64, 4, t);
        m.vstore_unit(VZ, sum_tbl + 4 * i as u64, 4, t);
    }

    // All-ones vector, hoisted: VGAsum over it yields running group
    // counts (§VI-B notes VGAsum generalises VPI this way), letting the
    // count and sum updates proceed as two independent dependency chains
    // on the two vector FUs.
    m.set_vl(mvl);
    m.vset(VONE, 1, None);

    // Step 3: the Figure 15 loop, once per table.
    for start in (0..n).step_by(mvl) {
        let vl = (n - start).min(mvl);
        m.set_vl(vl);
        let lt = m.s_op(0);
        m.vload_unit(VG, g + 4 * start as u64, 4, lt);
        m.vload_unit(VV, v + 4 * start as u64, 4, lt);
        m.vga(RedOp::Sum, VA, VG, VV); // running group sums
        m.vga(RedOp::Sum, VC, VG, VONE); // running group counts
        m.vlu(M0, VG); // last instances
                       // sum[g] += group sum (masked to last instances: conflict-free).
        m.vgather(VTS, sum_tbl, VG, 4, Some(M0), 0);
        m.vbinop_vv(BinOp::Add, VTS, VTS, VA, Some(M0));
        m.vscatter(VTS, sum_tbl, VG, 4, Some(M0), 0);
        // count[g] += group count.
        m.vgather(VTC, count_tbl, VG, 4, Some(M0), 0);
        m.vbinop_vv(BinOp::Add, VTC, VTC, VC, Some(M0));
        m.vscatter(VTC, count_tbl, VG, 4, Some(M0), 0);
    }

    // Step 4: compact.
    let out = OutputTable::alloc(m, cells);
    let rows = compact_tables(m, count_tbl, sum_tbl, cells, &out);
    (out, rows)
}

/// Runs the full monotable algorithm on a staged input.
pub fn monotable_aggregate(m: &mut Machine, input: &StagedInput) -> (OutputTable, usize) {
    let (maxg, tok) = if input.presorted {
        crate::input::presorted_max(m, input)
    } else {
        vector_max_scan(m, input)
    };
    monotable_on(m, input.g, input.v, input.n, maxg, tok)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::reference;

    fn run(g: Vec<u32>, v: Vec<u32>, presorted: bool) -> (crate::result::AggResult, u64) {
        let mut m = Machine::paper();
        let st = StagedInput::stage_raw(&mut m, &g, &v, presorted);
        let (out, rows) = monotable_aggregate(&mut m, &st);
        let r = out.read(&m, rows);
        r.validate(g.len()).unwrap();
        assert_eq!(r, reference(&g, &v));
        (r, m.cycles())
    }

    #[test]
    fn matches_reference_small() {
        run(
            vec![1, 3, 3, 0, 0, 5, 2, 4],
            vec![0, 5, 2, 4, 1, 3, 3, 0],
            false,
        );
    }

    #[test]
    fn figure13_vector_aggregates_correctly() {
        let g = vec![7u32, 5, 5, 5, 11, 9, 9, 11];
        let v = vec![6u32, 3, 4, 9, 15, 2, 3, 4];
        let (r, _) = run(g, v, false);
        assert_eq!(r.groups, vec![5, 7, 9, 11]);
        assert_eq!(r.counts, vec![3, 1, 2, 2]);
        assert_eq!(r.sums, vec![16, 6, 5, 19]);
    }

    #[test]
    fn heavy_duplication_within_vectors() {
        // Single group: worst-case CAM conflicts, still correct.
        run(vec![9; 200], (0..200).map(|i| i % 10).collect(), false);
    }

    #[test]
    fn matches_reference_multi_chunk() {
        let n = 3000u32;
        let g: Vec<u32> = (0..n).map(|i| (i * 7919) % 211).collect();
        let v: Vec<u32> = (0..n).map(|i| i % 10).collect();
        run(g, v, false);
    }

    #[test]
    fn groups_spanning_chunk_boundaries_accumulate() {
        // Group 5 appears in many different 64-element chunks.
        let n = 640usize;
        let g: Vec<u32> = (0..n)
            .map(|i| if i % 7 == 0 { 5 } else { (i % 50) as u32 })
            .collect();
        let v: Vec<u32> = vec![1; n];
        run(g, v, false);
    }

    #[test]
    fn sparse_keys() {
        run(vec![1000, 0, 1000, 512], vec![1, 2, 3, 4], false);
    }

    #[test]
    fn n_smaller_than_mvl() {
        run(vec![2, 2, 1], vec![3, 4, 5], false);
    }

    #[test]
    fn beats_scalar_at_low_cardinality() {
        // Table VII: monotable achieves ~3.8-4.1× in `low`.
        let n = 8192usize;
        let g: Vec<u32> = (0..n)
            .map(|i| ((i as u64 * 2654435761) % 64) as u32)
            .collect();
        let v: Vec<u32> = (0..n).map(|i| (i % 10) as u32).collect();

        let (_, mono) = run(g.clone(), v.clone(), false);

        let mut m = Machine::paper();
        let st = StagedInput::stage_raw(&mut m, &g, &v, false);
        crate::scalar::scalar_aggregate(&mut m, &st);
        let scalar = m.cycles();
        assert!(
            mono < scalar,
            "monotable ({mono}) should beat scalar ({scalar}) at c=64"
        );
    }

    #[test]
    fn beats_polytable_at_high_cardinality() {
        // §V-B: monotable "beat[s] the polytable method in every case" for
        // the higher cardinalities.
        let n = 4096usize;
        let c = 50_000u64;
        let g: Vec<u32> = (0..n)
            .map(|i| ((i as u64 * 2654435761) % c) as u32)
            .collect();
        let v: Vec<u32> = (0..n).map(|i| (i % 10) as u32).collect();

        let (_, mono) = run(g.clone(), v.clone(), false);

        let mut m = Machine::paper();
        let st = StagedInput::stage_raw(&mut m, &g, &v, false);
        crate::polytable::polytable_aggregate(&mut m, &st);
        let poly = m.cycles();
        assert!(
            mono < poly,
            "monotable ({mono}) should beat polytable ({poly}) at c=50k"
        );
    }
}
