//! Extended aggregation using the full VGAx family (§V-B / §VI-B).
//!
//! The paper defines three Vector Group Aggregate instructions — `VGAsum`,
//! `VGAmin` and `VGAmax` — but its evaluation only exercises `VGAsum`
//! (COUNT + SUM). This module implements the natural extension the
//! instructions were designed for:
//!
//! ```sql
//! SELECT g, COUNT(*), SUM(v), MIN(v), MAX(v) FROM r GROUP BY g
//! ```
//!
//! as a monotable-style kernel with four single tables updated per chunk,
//! each through its own `VGAx` + masked gather/combine/scatter chain. The
//! min table is initialised to `u32::MAX` (the identity of `min`), and the
//! combine step uses `vmax`/element-wise minimum instead of `vadd`.

use crate::compact::compact_tables;
use crate::input::{vector_max_scan, OutputTable, StagedInput};
use crate::result::AggResult;
use vagg_isa::{BinOp, Mreg, RedOp, Vreg};
use vagg_sim::Machine;

const VG: Vreg = Vreg(0); // group keys
const VV: Vreg = Vreg(1); // values
const VA: Vreg = Vreg(2); // running sums
const VC: Vreg = Vreg(3); // running counts
const VMIN: Vreg = Vreg(4); // running minima
const VMAX: Vreg = Vreg(5); // running maxima
const VT: Vreg = Vreg(6); // table values (sum)
const VT2: Vreg = Vreg(7); // table values (count)
const VT3: Vreg = Vreg(8); // table values (min)
const VT4: Vreg = Vreg(9); // table values (max)
const VONE: Vreg = Vreg(10); // ones
const VFILL: Vreg = Vreg(11); // min-identity fill
const VSUMAB: Vreg = Vreg(12); // min-combine scratch (a + b)
const M0: Mreg = Mreg(0); // VLU mask

/// The five-column extended result, ordered by group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinMaxResult {
    /// The COUNT/SUM columns (shared layout with [`AggResult`]).
    pub base: AggResult,
    /// `MIN(v)` per group.
    pub mins: Vec<u32>,
    /// `MAX(v)` per group.
    pub maxs: Vec<u32>,
}

/// Host-side oracle for the extended query.
pub fn reference_minmax(g: &[u32], v: &[u32]) -> MinMaxResult {
    let base = crate::result::reference(g, v);
    let mut mins = vec![u32::MAX; base.len()];
    let mut maxs = vec![0u32; base.len()];
    for (&k, &x) in g.iter().zip(v) {
        let i = base.groups.binary_search(&k).expect("group present");
        mins[i] = mins[i].min(x);
        maxs[i] = maxs[i].max(x);
    }
    MinMaxResult { base, mins, maxs }
}

/// Runs the extended monotable kernel; returns the result read back from
/// simulated memory.
pub fn minmax_aggregate(m: &mut Machine, input: &StagedInput) -> MinMaxResult {
    let mvl = m.mvl();
    let n = input.n;
    let (maxg, tok) = if input.presorted {
        crate::input::presorted_max(m, input)
    } else {
        vector_max_scan(m, input)
    };
    let cells = maxg as usize + 1;
    let bytes = 4 * cells as u64;

    let count_tbl = m.space_mut().alloc(bytes, 64);
    let sum_tbl = m.space_mut().alloc(bytes, 64);
    let min_tbl = m.space_mut().alloc(bytes, 64);
    let max_tbl = m.space_mut().alloc(bytes, 64);

    // Clear: zeros for count/sum/max, the min identity for min.
    m.set_vl(mvl);
    m.vset(VT, 0, None);
    m.vset(VFILL, u32::MAX as u64, None);
    let mut t = tok;
    for i in (0..cells).step_by(mvl) {
        let vl = (cells - i).min(mvl);
        if vl != m.vl() {
            m.set_vl(vl);
        }
        let off = 4 * i as u64;
        t = m.vstore_unit(VT, count_tbl + off, 4, t);
        m.vstore_unit(VT, sum_tbl + off, 4, t);
        m.vstore_unit(VT, max_tbl + off, 4, t);
        m.vstore_unit(VFILL, min_tbl + off, 4, t);
    }

    m.set_vl(mvl);
    m.vset(VONE, 1, None);

    // Main loop: one VGAx chain per aggregate.
    for start in (0..n).step_by(mvl) {
        let vl = (n - start).min(mvl);
        m.set_vl(vl);
        let lt = m.s_op(0);
        m.vload_unit(VG, input.g + 4 * start as u64, 4, lt);
        m.vload_unit(VV, input.v + 4 * start as u64, 4, lt);
        m.vga(RedOp::Sum, VA, VG, VV);
        m.vga(RedOp::Sum, VC, VG, VONE);
        m.vga(RedOp::Min, VMIN, VG, VV);
        m.vga(RedOp::Max, VMAX, VG, VV);
        m.vlu(M0, VG);

        m.vgather(VT, sum_tbl, VG, 4, Some(M0), 0);
        m.vbinop_vv(BinOp::Add, VT, VT, VA, Some(M0));
        m.vscatter(VT, sum_tbl, VG, 4, Some(M0), 0);

        m.vgather(VT2, count_tbl, VG, 4, Some(M0), 0);
        m.vbinop_vv(BinOp::Add, VT2, VT2, VC, Some(M0));
        m.vscatter(VT2, count_tbl, VG, 4, Some(M0), 0);

        // min[g] = min(min[g], group minimum). Table III has no vmin, but
        // for u32 values held in u64 lanes min(a,b) = a + b − max(a,b)
        // computes it exactly in three instructions.
        m.vgather(VT3, min_tbl, VG, 4, Some(M0), 0);
        m.vbinop_vv(BinOp::Add, VSUMAB, VT3, VMIN, None);
        m.vbinop_vv(BinOp::Max, VT3, VT3, VMIN, None);
        m.vbinop_vv(BinOp::Sub, VT3, VSUMAB, VT3, None);
        m.vscatter(VT3, min_tbl, VG, 4, Some(M0), 0);

        m.vgather(VT4, max_tbl, VG, 4, Some(M0), 0);
        m.vbinop_vv(BinOp::Max, VT4, VT4, VMAX, Some(M0));
        m.vscatter(VT4, max_tbl, VG, 4, Some(M0), 0);
    }

    // Compact via the shared COUNT/SUM path, then read min/max columns
    // for the surviving groups.
    let out = OutputTable::alloc(m, cells);
    let rows = compact_tables(m, count_tbl, sum_tbl, cells, &out);
    let base = out.read(m, rows);
    let mut mins = Vec::with_capacity(rows);
    let mut maxs = Vec::with_capacity(rows);
    let mut tok = 0;
    for &g in &base.groups {
        let (mn, t1) = m.s_load_u32(min_tbl + 4 * g as u64, tok);
        let (mx, t2) = m.s_load_u32(max_tbl + 4 * g as u64, tok);
        tok = t1.max(t2);
        mins.push(mn);
        maxs.push(mx);
    }
    MinMaxResult { base, mins, maxs }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(g: Vec<u32>, v: Vec<u32>) {
        let mut m = Machine::paper();
        let input = StagedInput::stage_raw(&mut m, &g, &v, false);
        let got = minmax_aggregate(&mut m, &input);
        assert_eq!(got, reference_minmax(&g, &v));
    }

    #[test]
    fn figure13_extended() {
        run(
            vec![7, 5, 5, 5, 11, 9, 9, 11],
            vec![6, 3, 4, 9, 15, 2, 3, 4],
        );
    }

    #[test]
    fn multi_chunk_minmax() {
        let n = 2000u32;
        let g: Vec<u32> = (0..n).map(|i| (i * 7919) % 97).collect();
        let v: Vec<u32> = (0..n).map(|i| (i * 31) % 1000).collect();
        run(g, v);
    }

    #[test]
    fn single_group_extremes() {
        run(vec![3; 100], (0..100).collect());
    }

    #[test]
    fn zero_values_are_valid_minima() {
        run(vec![1, 1, 2], vec![0, 5, 0]);
    }

    #[test]
    fn sparse_groups() {
        run(vec![1000, 4, 1000, 4], vec![9, 1, 2, 8]);
    }
}
