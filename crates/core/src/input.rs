//! Staging datasets into the simulated column store.
//!
//! The paper emulates a column-oriented DBMS: the group and value columns
//! live contiguously in (simulated) memory (§III-A). [`StagedInput`] holds
//! their addresses plus the metadata a real DBMS would track — whether the
//! table is known to be presorted (so sorting can be skipped, §III-A) and
//! buffers for the sorting algorithms.

use crate::result::AggResult;
use vagg_datagen::Dataset;
use vagg_sim::{Machine, Tok};
use vagg_sort::SortArrays;

/// A dataset resident in simulated memory, ready for aggregation.
#[derive(Debug, Clone, Copy)]
pub struct StagedInput {
    /// Group column address.
    pub g: u64,
    /// Value column address.
    pub v: u64,
    /// Auxiliary group buffer (for sorting algorithms).
    pub aux_g: u64,
    /// Auxiliary value buffer.
    pub aux_v: u64,
    /// Row count.
    pub n: usize,
    /// DBMS metadata: the column is known to be sorted.
    pub presorted: bool,
}

impl StagedInput {
    /// Uploads a dataset into fresh simulated arrays (host-side, untimed —
    /// the data is assumed to already live in the DBMS's column store).
    pub fn stage(m: &mut Machine, ds: &Dataset) -> Self {
        Self::stage_raw(m, &ds.g, &ds.v, ds.spec.distribution.is_presorted())
    }

    /// Stages raw columns (for tests and custom workloads).
    pub fn stage_raw(m: &mut Machine, g: &[u32], v: &[u32], presorted: bool) -> Self {
        assert_eq!(g.len(), v.len());
        assert!(!g.is_empty(), "empty input");
        let n = g.len();
        let bytes = 4 * n as u64;
        let s = m.space_mut();
        let g_addr = s.alloc_slice_u32(g);
        let v_addr = s.alloc_slice_u32(v);
        let aux_g = s.alloc(bytes, 64);
        let aux_v = s.alloc(bytes, 64);
        Self {
            g: g_addr,
            v: v_addr,
            aux_g,
            aux_v,
            n,
            presorted,
        }
    }

    /// View as sort buffers.
    pub fn sort_arrays(&self) -> SortArrays {
        SortArrays {
            keys: self.g,
            vals: self.v,
            aux_keys: self.aux_g,
            aux_vals: self.aux_v,
            n: self.n,
        }
    }
}

/// Output arrays for the three-column result table, plus the emitted row
/// count.
#[derive(Debug, Clone, Copy)]
pub struct OutputTable {
    /// Group column address.
    pub groups: u64,
    /// Count column address.
    pub counts: u64,
    /// Sum column address.
    pub sums: u64,
    /// Capacity in rows.
    pub capacity: usize,
}

impl OutputTable {
    /// Allocates an output table with room for `capacity` groups.
    pub fn alloc(m: &mut Machine, capacity: usize) -> Self {
        let bytes = 4 * capacity.max(1) as u64;
        let s = m.space_mut();
        Self {
            groups: s.alloc(bytes, 64),
            counts: s.alloc(bytes, 64),
            sums: s.alloc(bytes, 64),
            capacity: capacity.max(1),
        }
    }

    /// Reads the first `rows` result rows back to the host (untimed).
    pub fn read(&self, m: &Machine, rows: usize) -> AggResult {
        assert!(rows <= self.capacity);
        AggResult {
            groups: m.space().read_slice_u32(self.groups, rows),
            counts: m.space().read_slice_u32(self.counts, rows),
            sums: m.space().read_slice_u32(self.sums, rows),
        }
    }
}

/// Finds the maximum group key with a vectorised scan (unit-stride loads +
/// `vmax` accumulation + one final reduction) — the metadata step shared by
/// every vector algorithm (§III-A). Returns `(maxg, token)`.
pub fn vector_max_scan(m: &mut Machine, input: &StagedInput) -> (u32, Tok) {
    use vagg_isa::{BinOp, RedOp, Vreg};
    const VDATA: Vreg = Vreg(14);
    const VACC: Vreg = Vreg(15);
    let mvl = m.mvl();
    m.set_vl(mvl);
    m.vset(VACC, 0, None);
    for start in (0..input.n).step_by(mvl) {
        let vl = (input.n - start).min(mvl);
        if vl != m.vl() {
            m.set_vl(vl);
        }
        let t = m.s_op(0);
        m.vload_unit(VDATA, input.g + 4 * start as u64, 4, t);
        m.vbinop_vv(BinOp::Max, VACC, VACC, VDATA, None);
    }
    // Shorter final vectors leave stale accumulator lanes beyond vl, but
    // those lanes were populated by earlier full-width maxima, so reducing
    // at full MVL is correct as long as at least one full chunk ran;
    // normalise by reducing at MVL with the accumulator zero-initialised.
    m.set_vl(mvl.min(input.n.max(1)));
    let (maxg, tok) = m.vred(RedOp::Max, VACC, None);
    (maxg as u32, tok)
}

/// Reads the last element of a sorted column — the O(1) maximum-key lookup
/// available when the input is presorted (§III-A).
pub fn presorted_max(m: &mut Machine, input: &StagedInput) -> (u32, Tok) {
    m.s_load_u32(input.g + 4 * (input.n as u64 - 1), 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vagg_datagen::{DatasetSpec, Distribution};

    #[test]
    fn stage_roundtrip() {
        let mut m = Machine::paper();
        let ds = DatasetSpec::paper(Distribution::Uniform, 100)
            .with_rows(500)
            .generate();
        let st = StagedInput::stage(&mut m, &ds);
        assert_eq!(m.space().read_slice_u32(st.g, 500), ds.g);
        assert_eq!(m.space().read_slice_u32(st.v, 500), ds.v);
        assert!(!st.presorted);

        let sorted = DatasetSpec::paper(Distribution::Sorted, 100)
            .with_rows(500)
            .generate();
        let st = StagedInput::stage(&mut m, &sorted);
        assert!(st.presorted);
    }

    #[test]
    fn vector_max_scan_finds_max() {
        let mut m = Machine::paper();
        for n in [1usize, 63, 64, 65, 500] {
            let g: Vec<u32> = (0..n as u32).map(|i| (i * 37) % 1000).collect();
            let v = vec![0u32; n];
            let st = StagedInput::stage_raw(&mut m, &g, &v, false);
            let (maxg, _) = vector_max_scan(&mut m, &st);
            assert_eq!(maxg, g.iter().copied().max().unwrap(), "n={n}");
        }
    }

    #[test]
    fn presorted_max_reads_last() {
        let mut m = Machine::paper();
        let g: Vec<u32> = (0..100).collect();
        let v = vec![0u32; 100];
        let st = StagedInput::stage_raw(&mut m, &g, &v, true);
        let (maxg, _) = presorted_max(&mut m, &st);
        assert_eq!(maxg, 99);
    }

    #[test]
    fn output_table_roundtrip() {
        let mut m = Machine::paper();
        let out = OutputTable::alloc(&mut m, 4);
        m.space_mut().write_slice_u32(out.groups, &[1, 2]);
        m.space_mut().write_slice_u32(out.counts, &[5, 6]);
        m.space_mut().write_slice_u32(out.sums, &[7, 8]);
        let r = out.read(&m, 2);
        assert_eq!(r.groups, vec![1, 2]);
        assert_eq!(r.counts, vec![5, 6]);
        assert_eq!(r.sums, vec![7, 8]);
    }

    #[test]
    #[should_panic(expected = "empty input")]
    fn empty_input_rejected() {
        let mut m = Machine::paper();
        StagedInput::stage_raw(&mut m, &[], &[], false);
    }
}
