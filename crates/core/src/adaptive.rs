//! Adaptive algorithm selection (§V-D, Table IX).
//!
//! The paper's closing observation: no single algorithm wins everywhere,
//! but the winning algorithm is *predictable* from information available at
//! runtime — whether the input is presorted (DBMS metadata) and its
//! cardinality (from the maximum-key scan every algorithm performs
//! anyway). Only one case is undetectable: `sequential` data at high
//! cardinality prefers plain monotable over PSM, but distinguishing
//! sequential from uniform at runtime is impractical (the ‡ cells). The
//! *realistic* policy accepts that miss — the paper measures the penalty
//! at a mere 1.3% (4.15× vs 4.21× average speedup).

use crate::algorithm::{run_algorithm, AggRun, Algorithm};
use vagg_datagen::{Dataset, Distribution, Division};
use vagg_sim::SimConfig;

/// Whether the selector may use an oracle for the ‡ cases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdaptiveMode {
    /// Oracle knowledge of the distribution (upper bound; "ideal").
    Ideal,
    /// Only runtime-observable information (presortedness + cardinality).
    Realistic,
}

/// The runtime-observable facts the §V-D policy consults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannerInputs {
    /// Whether the group column is presorted (DBMS metadata).
    pub presorted: bool,
    /// The cardinality estimate (maximum group key + 1, from the max-scan
    /// every algorithm performs anyway).
    pub cardinality: u64,
    /// Input row count.
    pub rows: usize,
    /// The machine's maximum vector length.
    pub mvl: usize,
}

impl PlannerInputs {
    /// The average run length of a presorted input: `rows / cardinality`.
    ///
    /// Polytable's presorted-input win (§IV-B) comes from long runs of a
    /// repeated group hitting the same replicated-table lines; with runs
    /// shorter than a vector that locality is gone. The paper's n is
    /// pinned at 10,000,000 so its division rule implies long runs at
    /// every "lower" cardinality; at other scales run length is the
    /// quantity that actually transfers.
    pub fn run_length(&self) -> f64 {
        self.rows as f64 / self.cardinality.max(1) as f64
    }
}

/// Selects the algorithm per the §V-D policy.
///
/// `distribution` is consulted only in [`AdaptiveMode::Ideal`] (the ‡
/// cells of Table IX).
pub fn select_algorithm(
    inputs: &PlannerInputs,
    distribution: Option<Distribution>,
    mode: AdaptiveMode,
) -> Algorithm {
    let division = Division::of_cardinality(inputs.cardinality);
    if inputs.presorted {
        // "for sorted datasets, polytable can be used for lower
        // cardinalities and sorted reduce and monotable for higher" —
        // provided the runs are long enough for polytable's replicated
        // tables to see locality (always true at the paper's n).
        return match division {
            Division::Low | Division::LowNormal => {
                if inputs.run_length() >= inputs.mvl as f64 {
                    Algorithm::Polytable
                } else {
                    Algorithm::Monotable
                }
            }
            // Sorting is skipped on presorted input, so standard and
            // advanced sorted reduce are identical here; report standard.
            Division::HighNormal => Algorithm::StandardSortedReduce,
            Division::High => Algorithm::Monotable,
        };
    }
    match division {
        // "apply monotable to non-sorted datasets for lower cardinalities".
        Division::Low | Division::LowNormal => Algorithm::Monotable,
        // "...and partially sorted monotable for higher cardinalities" —
        // except the ‡ sequential cases, which only the oracle sees.
        Division::HighNormal | Division::High => {
            if mode == AdaptiveMode::Ideal && distribution == Some(Distribution::Sequential) {
                Algorithm::Monotable
            } else {
                Algorithm::PartiallySortedMonotable
            }
        }
    }
}

/// Runs the adaptive implementation on a dataset: select, then execute.
///
/// The runtime cardinality estimate is the dataset's actual maximum key +
/// 1 — exactly what the algorithms' own max-scan step observes.
pub fn run_adaptive(cfg: &SimConfig, ds: &Dataset, mode: AdaptiveMode) -> AggRun {
    let inputs = PlannerInputs {
        presorted: ds.spec.distribution.is_presorted(),
        cardinality: ds.max_group_key() as u64 + 1,
        rows: ds.len(),
        mvl: cfg.mvl,
    };
    let oracle = match mode {
        AdaptiveMode::Ideal => Some(ds.spec.distribution),
        AdaptiveMode::Realistic => None,
    };
    let alg = select_algorithm(&inputs, oracle, mode);
    run_algorithm(alg, cfg, ds)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Planner inputs at the paper's scale (n = 10,000,000, MVL = 64).
    fn paper_inputs(presorted: bool, cardinality: u64) -> PlannerInputs {
        PlannerInputs {
            presorted,
            cardinality,
            rows: 10_000_000,
            mvl: 64,
        }
    }

    #[test]
    fn policy_matches_table_ix_nonsorted() {
        use Algorithm::*;
        // hhitter/uniform/zipf rows of Table IX.
        for c in [4u64, 152, 305, 9_765] {
            assert_eq!(
                select_algorithm(&paper_inputs(false, c), None, AdaptiveMode::Realistic),
                Monotable
            );
        }
        for c in [19_531u64, 312_500, 625_000, 10_000_000] {
            assert_eq!(
                select_algorithm(&paper_inputs(false, c), None, AdaptiveMode::Realistic),
                PartiallySortedMonotable
            );
        }
    }

    #[test]
    fn policy_matches_table_ix_sorted() {
        use Algorithm::*;
        // At the paper's n every "lower" cardinality has long runs, so
        // the division rule applies verbatim.
        for c in [100u64, 5_000, 9_765] {
            assert_eq!(
                select_algorithm(&paper_inputs(true, c), None, AdaptiveMode::Realistic),
                Polytable
            );
        }
        assert_eq!(
            select_algorithm(&paper_inputs(true, 100_000), None, AdaptiveMode::Realistic),
            StandardSortedReduce
        );
        assert_eq!(
            select_algorithm(
                &paper_inputs(true, 5_000_000),
                None,
                AdaptiveMode::Realistic
            ),
            Monotable
        );
    }

    #[test]
    fn short_runs_override_the_presorted_polytable_rule() {
        // Polytable's presorted win needs run locality: with n = 20,000
        // and c = 9,765 the average run is ~2 elements and the replicated
        // tables thrash. The planner must see that and fall back.
        let short = PlannerInputs {
            presorted: true,
            cardinality: 9_765,
            rows: 20_000,
            mvl: 64,
        };
        assert!(short.run_length() < 64.0);
        assert_eq!(
            select_algorithm(&short, None, AdaptiveMode::Realistic),
            Algorithm::Monotable
        );
        // Same cardinality at the paper's n: long runs, polytable.
        assert_eq!(
            select_algorithm(&paper_inputs(true, 9_765), None, AdaptiveMode::Realistic),
            Algorithm::Polytable
        );
    }

    #[test]
    fn run_length_guards_against_zero_cardinality() {
        let i = PlannerInputs {
            presorted: true,
            cardinality: 0,
            rows: 100,
            mvl: 64,
        };
        assert!(i.run_length().is_finite());
    }

    #[test]
    fn ideal_mode_catches_the_sequential_dagger_cases() {
        use Algorithm::*;
        let seq = Some(Distribution::Sequential);
        assert_eq!(
            select_algorithm(&paper_inputs(false, 100_000), seq, AdaptiveMode::Ideal),
            Monotable
        );
        // Realistic mode cannot see the distribution.
        assert_eq!(
            select_algorithm(&paper_inputs(false, 100_000), None, AdaptiveMode::Realistic),
            PartiallySortedMonotable
        );
        // Non-sequential distributions are unaffected.
        assert_eq!(
            select_algorithm(
                &paper_inputs(false, 100_000),
                Some(Distribution::Uniform),
                AdaptiveMode::Ideal
            ),
            PartiallySortedMonotable
        );
    }

    #[test]
    fn adaptive_run_produces_correct_results() {
        use vagg_datagen::DatasetSpec;
        let cfg = SimConfig::paper();
        for dist in Distribution::ALL {
            let ds = DatasetSpec::paper(dist, 76).with_rows(400).generate();
            for mode in [AdaptiveMode::Ideal, AdaptiveMode::Realistic] {
                let run = run_adaptive(&cfg, &ds, mode);
                assert_eq!(
                    run.result,
                    crate::result::reference(&ds.g, &ds.v),
                    "{} {:?}",
                    dist.name(),
                    mode
                );
            }
        }
    }
}
