//! Related-work comparators (§VI-B), measured instead of argued.
//!
//! The paper compares its VGAx/VLU approach *qualitatively* against two
//! hardware alternatives for irregular DLP; this module implements both so
//! the comparison becomes a benchmark:
//!
//! * [`cdi_monotable_aggregate`] — a single-table aggregation in the style
//!   of Intel's **atomic vector operations** \[27\] and **AVX512-CDI**
//!   \[6\]: a best-effort retry loop around the gather-modify-scatter,
//!   retiring only conflict-free elements each pass. The paper predicts:
//!   *"in the worst case scenario the operation will be completely
//!   serialised inside a loop with a difficult to predict exit condition.
//!   Since each retry requires loading, modifying and storing the data
//!   again, it could even lead to more operations than its scalar
//!   counterpart."*
//! * [`scatter_add_monotable_aggregate`] — a single-table aggregation
//!   using **scatter-add** \[26\] (Ahn et al., HPCA 2005): a memory-side
//!   read-modify-write that resolves conflicts at the memory interface.
//!   Fast for the update itself, but with *"no return path for original
//!   values"* and no ordering semantics it cannot implement VSR sort, so
//!   there is no partially-sorted variant — the locality repair that wins
//!   the paper's high cardinalities is unavailable.
//!
//! Both reuse the monotable skeleton (max-scan, table clear, compaction)
//! so the measured difference isolates the table-update strategy.

use crate::compact::compact_tables;
use crate::input::{presorted_max, vector_max_scan, OutputTable, StagedInput};
use vagg_isa::conflict::MaskLogic;
use vagg_isa::{BinOp, Mreg, Vreg};
use vagg_sim::{Machine, Tok};

const VG: Vreg = Vreg(0); // group keys
const VV: Vreg = Vreg(1); // values
const VB: Vreg = Vreg(2); // conflict bitmasks
const VTS: Vreg = Vreg(3); // sum-table values
const VTC: Vreg = Vreg(4); // count-table values
const VZ: Vreg = Vreg(6); // zero
const VONE: Vreg = Vreg(7); // all-ones
const M_PEND: Mreg = Mreg(0); // elements not yet retired
const M_READY: Mreg = Mreg(1); // conflict-free subset this pass
const M_TEST: Mreg = Mreg(2); // vtestnm result

/// Clears `cells` entries of two fresh tables and returns their bases
/// (shared step 2 of every single-table variant).
fn clear_tables(m: &mut Machine, cells: usize, tok: Tok) -> (u64, u64) {
    let mvl = m.mvl();
    let count_tbl = m.space_mut().alloc(4 * cells as u64, 64);
    let sum_tbl = m.space_mut().alloc(4 * cells as u64, 64);
    m.set_vl(mvl);
    m.vset(VZ, 0, None);
    let mut t = tok;
    for i in (0..cells).step_by(mvl) {
        let vl = (cells - i).min(mvl);
        if vl != m.vl() {
            m.set_vl(vl);
        }
        t = m.vstore_unit(VZ, count_tbl + 4 * i as u64, 4, t);
        m.vstore_unit(VZ, sum_tbl + 4 * i as u64, 4, t);
    }
    (count_tbl, sum_tbl)
}

/// The max-scan step shared by the single-table variants.
fn max_key(m: &mut Machine, input: &StagedInput) -> (u32, Tok) {
    if input.presorted {
        presorted_max(m, input)
    } else {
        vector_max_scan(m, input)
    }
}

/// Runs the CDI-style retry-loop monotable on staged input.
///
/// Per 64-element chunk, the kernel follows Intel's documented histogram
/// idiom: one `vconflict`, then a loop of `kmov` → `vtestnm` → `kand`
/// selecting the elements with no *pending* earlier duplicate, a masked
/// gather/add/scatter per table for that subset, and a `kandn` to peel the
/// retired elements off. The loop trip count is the maximum duplicate
/// multiplicity in the chunk — 1 for all-distinct keys, VL for a single
/// hot key.
pub fn cdi_monotable_aggregate(m: &mut Machine, input: &StagedInput) -> (OutputTable, usize) {
    let (maxg, tok) = max_key(m, input);
    let mvl = m.mvl();
    assert!(mvl <= 64, "CDI conflict bitmasks limit MVL to 64");
    let cells = maxg as usize + 1;
    let (count_tbl, sum_tbl) = clear_tables(m, cells, tok);

    m.set_vl(mvl);
    m.vset(VONE, 1, None);

    for start in (0..input.n).step_by(mvl) {
        let vl = (input.n - start).min(mvl);
        m.set_vl(vl);
        let lt = m.s_op(0);
        m.vload_unit(VG, input.g + 4 * start as u64, 4, lt);
        m.vload_unit(VV, input.v + 4 * start as u64, 4, lt);
        m.vconflict(VB, VG);
        m.mset_all(M_PEND);
        loop {
            // ready = pending & (conflicts ∩ pending-bits == 0)
            let (bits, bt) = m.kmov(M_PEND);
            m.vtestnm_vs(M_TEST, VB, bits, bt);
            m.mlogic(MaskLogic::And, M_READY, M_PEND, M_TEST);
            // sum[g] += v, count[g] += 1 — re-issued on every retry, which
            // is precisely the §VI-B objection.
            m.vgather(VTS, sum_tbl, VG, 4, Some(M_READY), 0);
            m.vbinop_vv(BinOp::Add, VTS, VTS, VV, Some(M_READY));
            m.vscatter(VTS, sum_tbl, VG, 4, Some(M_READY), 0);
            m.vgather(VTC, count_tbl, VG, 4, Some(M_READY), 0);
            m.vbinop_vv(BinOp::Add, VTC, VTC, VONE, Some(M_READY));
            m.vscatter(VTC, count_tbl, VG, 4, Some(M_READY), 0);
            m.mlogic(MaskLogic::AndNot, M_PEND, M_PEND, M_READY);
            let (left, pt) = m.mpopcnt(M_PEND);
            m.s_op(pt); // loop-exit branch on the popcount
            if left == 0 {
                break;
            }
        }
    }

    let out = OutputTable::alloc(m, cells);
    let rows = compact_tables(m, count_tbl, sum_tbl, cells, &out);
    (out, rows)
}

/// Runs the scatter-add monotable on staged input.
///
/// The inner loop collapses to two `vscatadd` instructions per chunk: the
/// memory-side adder absorbs all conflicts, so there is no VGAsum, no VLU
/// and no retry. What scatter-add *cannot* do is return the old values or
/// order its updates, so no VSR-style partial sort is possible and high
/// cardinalities run at whatever locality the raw input has.
pub fn scatter_add_monotable_aggregate(
    m: &mut Machine,
    input: &StagedInput,
) -> (OutputTable, usize) {
    let (maxg, tok) = max_key(m, input);
    let mvl = m.mvl();
    let cells = maxg as usize + 1;
    let (count_tbl, sum_tbl) = clear_tables(m, cells, tok);

    m.set_vl(mvl);
    m.vset(VONE, 1, None);

    for start in (0..input.n).step_by(mvl) {
        let vl = (input.n - start).min(mvl);
        m.set_vl(vl);
        let lt = m.s_op(0);
        m.vload_unit(VG, input.g + 4 * start as u64, 4, lt);
        m.vload_unit(VV, input.v + 4 * start as u64, 4, lt);
        m.vscatter_add(VV, sum_tbl, VG, 4, None, 0);
        m.vscatter_add(VONE, count_tbl, VG, 4, None, 0);
    }

    let out = OutputTable::alloc(m, cells);
    let rows = compact_tables(m, count_tbl, sum_tbl, cells, &out);
    (out, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::reference;

    fn run_both(g: Vec<u32>, v: Vec<u32>) -> (u64, u64) {
        let expect = reference(&g, &v);

        let mut mc = Machine::paper();
        let st = StagedInput::stage_raw(&mut mc, &g, &v, false);
        let (out, rows) = cdi_monotable_aggregate(&mut mc, &st);
        assert_eq!(out.read(&mc, rows), expect, "cdi wrong");

        let mut ms = Machine::paper();
        let st = StagedInput::stage_raw(&mut ms, &g, &v, false);
        let (out, rows) = scatter_add_monotable_aggregate(&mut ms, &st);
        assert_eq!(out.read(&ms, rows), expect, "scatter-add wrong");

        (mc.cycles(), ms.cycles())
    }

    #[test]
    fn both_match_reference_on_mixed_keys() {
        run_both(
            vec![1, 3, 3, 0, 0, 5, 2, 4, 3, 3, 1, 0],
            vec![0, 5, 2, 4, 1, 3, 3, 0, 7, 8, 9, 1],
        );
    }

    #[test]
    fn both_match_reference_across_chunks() {
        let n = 1000u32;
        let g: Vec<u32> = (0..n).map(|i| (i * 31) % 97).collect();
        let v: Vec<u32> = (0..n).map(|i| i % 10).collect();
        run_both(g, v);
    }

    #[test]
    fn single_hot_key_is_cdis_worst_case() {
        // All keys equal: the CDI loop serialises to VL iterations per
        // chunk while scatter-add stays one instruction pair per chunk.
        let n = 512;
        let (cdi, sam) = run_both(vec![7; n], vec![1; n]);
        assert!(
            cdi > 4 * sam,
            "hot key should crush cdi ({cdi}) vs scatter-add ({sam})"
        );
    }

    #[test]
    fn distinct_keys_need_one_cdi_pass() {
        // All-distinct chunks: one retry round; CDI should stay within a
        // small factor of scatter-add rather than VL× behind.
        let n = 512u32;
        let g: Vec<u32> = (0..n).collect();
        let v = vec![1u32; n as usize];
        let (cdi, sam) = run_both(g, v);
        assert!(
            cdi < 4 * sam,
            "distinct keys: cdi ({cdi}) should be within ~4x of sam ({sam})"
        );
    }

    #[test]
    fn cdi_worst_case_loses_to_scalar() {
        // The §VI-B prediction: "it could even lead to more operations
        // than its scalar counterpart" — a single hot key at MVL=64.
        let n = 4096;
        let g = vec![3u32; n];
        let v = vec![2u32; n];

        let mut mc = Machine::paper();
        let st = StagedInput::stage_raw(&mut mc, &g, &v, false);
        cdi_monotable_aggregate(&mut mc, &st);

        let mut ms = Machine::paper();
        let st = StagedInput::stage_raw(&mut ms, &g, &v, false);
        crate::scalar::scalar_aggregate(&mut ms, &st);

        assert!(
            mc.cycles() > ms.cycles(),
            "cdi ({}) should lose to scalar ({}) on a single hot key",
            mc.cycles(),
            ms.cycles()
        );
    }

    #[test]
    fn vga_monotable_beats_cdi_on_skewed_data() {
        // The paper's central §VI-B claim, measured: on skewed input the
        // deterministic CAM path wins.
        let n = 4096usize;
        // Zipf-ish skew: half the rows hit one key.
        let g: Vec<u32> = (0..n)
            .map(|i| if i % 2 == 0 { 0 } else { (i % 64) as u32 })
            .collect();
        let v: Vec<u32> = (0..n).map(|i| (i % 10) as u32).collect();

        let mut mc = Machine::paper();
        let st = StagedInput::stage_raw(&mut mc, &g, &v, false);
        cdi_monotable_aggregate(&mut mc, &st);

        let mut mm = Machine::paper();
        let st = StagedInput::stage_raw(&mut mm, &g, &v, false);
        crate::monotable::monotable_aggregate(&mut mm, &st);

        assert!(
            mm.cycles() < mc.cycles(),
            "monotable ({}) should beat cdi ({}) on skew",
            mm.cycles(),
            mc.cycles()
        );
    }
}
