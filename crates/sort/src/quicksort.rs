//! Vectorised quicksort — the second sort comparator behind §IV-A.
//!
//! §IV-A cites (from the VSR-sort paper, HPCA 2015) that radix sort
//! "outperforms quicksort and bitonic mergesort when MVL = 64 and
//! lanes = 4"; [`crate::bitonic`] covers the second comparator and this
//! module the first. The vectorisable part of quicksort is the
//! partition: each chunk is classified against the pivot with Table III
//! comparisons (`x < p ⟺ max(x, p) ≠ x`), split with `compress`, and
//! streamed out with unit-stride stores. What *cannot* be vectorised is
//! the control structure — recursion produces ever smaller partitions,
//! and once a partition drops under the vector length the machine runs
//! at a fraction of its width (this implementation falls back to a
//! scalar insertion sort below 2·MVL, which is where quicksort loses the
//! race on a vector machine).
//!
//! Three-way (Dutch-flag) partitioning keeps duplicate-heavy inputs —
//! the paper's low-cardinality grids — from degenerating quadratically.
//! Like textbook quicksort this is **not stable**; the sorted-reduce
//! aggregation path needs stability, which is one more reason §IV-A
//! rejects it.

use crate::arrays::SortArrays;
use vagg_isa::conflict::MaskLogic;
use vagg_isa::{BinOp, CmpOp, Mreg, Vreg};
use vagg_sim::Machine;

const VK: Vreg = Vreg(0); // keys in
const VV: Vreg = Vreg(1); // payloads in
const VMAXP: Vreg = Vreg(2); // max(key, pivot)
const VCK: Vreg = Vreg(3); // compressed keys
const VCV: Vreg = Vreg(4); // compressed payloads
const M_LT: Mreg = Mreg(0); // key < pivot
const M_GT: Mreg = Mreg(1); // key > pivot
const M_EQ: Mreg = Mreg(2); // key == pivot
const M_ALL: Mreg = Mreg(3); // first-VL bits set (scratch)

/// Partitions below which the recursion hands over to a scalar
/// insertion sort: one full vector chunk cannot pay the pivot/compress
/// overhead.
const SCALAR_CUTOFF_VECTORS: usize = 2;

/// Sorts the `keys`/`vals` pair of `a` ascending by key with a
/// vectorised three-way quicksort. The result lands back in
/// `a.keys` / `a.vals` (read it with `a.read_result(m, 0)`).
///
/// Not stable.
///
/// # Panics
///
/// Panics if `a.n == 0`.
pub fn quicksort(m: &mut Machine, a: &SortArrays) {
    assert!(a.n > 0, "empty input");
    let mut stack = vec![(0usize, a.n)];
    let cutoff = SCALAR_CUTOFF_VECTORS * m.mvl();
    // Scratch for the pivot run's payloads during partitioning.
    let eq_scratch = m.space_mut().alloc(4 * a.n as u64, 64);
    while let Some((lo, len)) = stack.pop() {
        if len <= 1 {
            continue;
        }
        if len <= cutoff {
            insertion_sort(m, a, lo, len);
            continue;
        }
        let (lt_len, eq_len) = partition(m, a, lo, len, eq_scratch);
        // Equal-to-pivot run is already in place; recurse on the sides
        // (larger side pushed first so the stack stays O(log n)).
        let gt_lo = lo + lt_len + eq_len;
        let gt_len = len - lt_len - eq_len;
        if lt_len >= gt_len {
            stack.push((lo, lt_len));
            stack.push((gt_lo, gt_len));
        } else {
            stack.push((gt_lo, gt_len));
            stack.push((lo, lt_len));
        }
    }
}

// Median-of-three pivot: three scalar loads plus compare/cmov chains.
fn pick_pivot(m: &mut Machine, keys: u64, lo: usize, len: usize) -> u32 {
    let idx = [lo, lo + len / 2, lo + len - 1];
    let mut vals = [0u32; 3];
    let mut tok = 0;
    for (v, &i) in vals.iter_mut().zip(&idx) {
        let it = m.s_op(0);
        let (k, kt) = m.s_load_u32(keys + 4 * i as u64, it);
        *v = k;
        tok = m.s_op(kt.max(tok));
    }
    let _ = tok;
    vals.sort_unstable();
    vals[1]
}

// Three-way partition of [lo, lo+len) against a median-of-three pivot,
// through the aux buffers: `< pivot` fills from the front, `== pivot`
// and `> pivot` are buffered per chunk and appended after. Returns
// (lt_len, eq_len).
fn partition(
    m: &mut Machine,
    a: &SortArrays,
    lo: usize,
    len: usize,
    eq_scratch: u64,
) -> (usize, usize) {
    let pivot = pick_pivot(m, a.keys, lo, len) as u64;
    let mvl = m.mvl();

    // Output cursors in the aux buffers: `<` ascending from lo; `=` and
    // `>` ascending from scratch offsets past the region (the aux buffer
    // is n elements; we reuse the same region, writing `=`/`>` behind
    // the `<` cursor once known — so buffer them densely at the region's
    // end, then copy into place).
    let mut lt = 0usize; // `<` count written at aux[lo..]
    let mut gt = 0usize; // `>` count written from the back of the region
    let mut eq = 0usize; // `=` count (keys all equal the pivot)

    for start in (lo..lo + len).step_by(mvl) {
        let vl = (lo + len - start).min(mvl);
        m.set_vl(vl);
        let t = m.s_op(0);
        m.vload_unit(VK, a.keys + 4 * start as u64, 4, t);
        m.vload_unit(VV, a.vals + 4 * start as u64, 4, t);

        // x < p ⟺ max(x, p) ≠ x; x > p ⟺ max(x, p) ≠ p; equality is
        // everything else (mask logic on the complements).
        m.vbinop_vs(BinOp::Max, VMAXP, VK, pivot, None);
        m.vcmp_vv(CmpOp::Ne, M_LT, VMAXP, VK, None);
        m.vcmp_vs(CmpOp::Ne, M_GT, VMAXP, pivot, None);
        m.mset_all(M_ALL);
        m.mlogic(MaskLogic::AndNot, M_EQ, M_ALL, M_LT);
        m.mlogic(MaskLogic::AndNot, M_EQ, M_EQ, M_GT);

        // `<` side: compress and append at aux[lo + lt].
        let (n_lt, _) = m.vcompress(VCK, VK, M_LT);
        m.vcompress(VCV, VV, M_LT);
        if n_lt > 0 {
            m.set_vl(n_lt);
            let o = 4 * (lo + lt) as u64;
            m.vstore_unit(VCK, a.aux_keys + o, 4, t);
            m.vstore_unit(VCV, a.aux_vals + o, 4, t);
            m.set_vl(vl);
            lt += n_lt;
        }
        // `>` side: compress and fill the region from the back.
        let (n_gt, _) = m.vcompress(VCK, VK, M_GT);
        m.vcompress(VCV, VV, M_GT);
        if n_gt > 0 {
            m.set_vl(n_gt);
            let o = 4 * (lo + len - gt - n_gt) as u64;
            m.vstore_unit(VCK, a.aux_keys + o, 4, t);
            m.vstore_unit(VCV, a.aux_vals + o, 4, t);
            m.set_vl(vl);
            gt += n_gt;
        }
        // `=` side: only the payloads need buffering (keys == pivot);
        // they stream into the dedicated scratch buffer.
        let (n_eq, _) = m.vcompress(VCV, VV, M_EQ);
        if n_eq > 0 {
            m.set_vl(n_eq);
            m.vstore_unit(VCV, eq_scratch + 4 * eq as u64, 4, t);
            m.set_vl(vl);
            eq += n_eq;
        }
    }
    debug_assert_eq!(lt + gt + eq, len);

    // Assemble back into the main buffers: [< | = | >]. The `<` and `>`
    // runs stream from aux; the `=` run is the pivot broadcast plus the
    // buffered payloads.
    copy(m, a.aux_keys, 4 * lo as u64, a.keys, 4 * lo as u64, lt);
    copy(m, a.aux_vals, 4 * lo as u64, a.vals, 4 * lo as u64, lt);
    // `=` keys: broadcast the pivot.
    let mvl = m.mvl();
    for start in (0..eq).step_by(mvl) {
        let vl = (eq - start).min(mvl);
        m.set_vl(vl);
        let t = m.s_op(0);
        m.vset(VCK, pivot, None);
        m.vstore_unit(VCK, a.keys + 4 * (lo + lt + start) as u64, 4, t);
    }
    // `=` payloads from the scratch buffer.
    copy(m, eq_scratch, 0, a.vals, 4 * (lo + lt) as u64, eq);
    copy(
        m,
        a.aux_keys,
        4 * (lo + len - gt) as u64,
        a.keys,
        4 * (lo + lt + eq) as u64,
        gt,
    );
    copy(
        m,
        a.aux_vals,
        4 * (lo + len - gt) as u64,
        a.vals,
        4 * (lo + lt + eq) as u64,
        gt,
    );
    (lt, eq)
}

// Unit-stride vector copy of `n` u32 elements between buffers.
fn copy(m: &mut Machine, src: u64, src_off: u64, dst: u64, dst_off: u64, n: usize) {
    let mvl = m.mvl();
    for start in (0..n).step_by(mvl) {
        let vl = (n - start).min(mvl);
        m.set_vl(vl);
        let t = m.s_op(0);
        m.vload_unit(VCK, src + src_off + 4 * start as u64, 4, t);
        m.vstore_unit(VCK, dst + dst_off + 4 * start as u64, 4, t);
    }
}

// The scalar tail: classic insertion sort with per-element loads,
// compares and shifting stores — the serialisation cost small
// partitions force on quicksort.
fn insertion_sort(m: &mut Machine, a: &SortArrays, lo: usize, len: usize) {
    let keys: Vec<u32> = m.space().read_slice_u32(a.keys + 4 * lo as u64, len);
    let vals: Vec<u32> = m.space().read_slice_u32(a.vals + 4 * lo as u64, len);
    let mut pairs: Vec<(u32, u32)> = keys.into_iter().zip(vals).collect();

    // Charge the timing model what a scalar insertion sort executes:
    // per element, the probe loads/compares of its insertion walk plus
    // the shifting stores.
    for i in 1..len {
        let mut j = i;
        let it = m.s_op(0);
        let (_, kt) = m.s_load_u32(a.keys + 4 * (lo + i) as u64, it);
        let mut tok = m.s_op(kt);
        while j > 0 && pairs[j - 1].0 > pairs[j].0 {
            let (_, pt) = m.s_load_u32(a.keys + 4 * (lo + j - 1) as u64, tok);
            tok = m.s_op(pt);
            m.s_store_u32(a.keys + 4 * (lo + j) as u64, pairs[j - 1].0, tok);
            m.s_store_u32(a.vals + 4 * (lo + j) as u64, pairs[j - 1].1, tok);
            pairs.swap(j - 1, j);
            j -= 1;
        }
        m.s_store_u32(a.keys + 4 * (lo + j) as u64, pairs[j].0, tok);
        m.s_store_u32(a.vals + 4 * (lo + j) as u64, pairs[j].1, tok);
    }

    // Functional result (the charged stores above wrote intermediate
    // states; settle the final image).
    for (i, (k, v)) in pairs.into_iter().enumerate() {
        m.space_mut().write_u32(a.keys + 4 * (lo + i) as u64, k);
        m.space_mut().write_u32(a.vals + 4 * (lo + i) as u64, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sort_pairs(keys: &[u32], vals: &[u32]) -> (Vec<u32>, Vec<u32>) {
        let mut m = Machine::paper();
        let a = SortArrays::stage(&mut m, keys, vals);
        quicksort(&mut m, &a);
        a.read_result(&m, 0)
    }

    fn check(keys: Vec<u32>) {
        let vals: Vec<u32> = (0..keys.len() as u32).collect();
        let (k, v) = sort_pairs(&keys, &vals);
        assert!(k.windows(2).all(|w| w[0] <= w[1]), "not sorted: {k:?}");
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(k, expect, "key multiset changed");
        for (i, &p) in v.iter().enumerate() {
            assert_eq!(keys[p as usize], k[i], "payload binding broken at {i}");
        }
        let mut vs = v.clone();
        vs.sort_unstable();
        assert_eq!(vs, (0..keys.len() as u32).collect::<Vec<_>>());
    }

    #[test]
    fn sorts_small_inputs_via_insertion() {
        check(vec![3]);
        check(vec![9, 1]);
        check((0..100u32).rev().collect());
    }

    #[test]
    fn sorts_beyond_the_cutoff() {
        check(
            (0..2_000u64)
                .map(|i| ((i * 2_654_435_761) % 500) as u32)
                .collect(),
        );
    }

    #[test]
    fn duplicate_heavy_inputs_do_not_degenerate() {
        // All-equal and two-value inputs: the three-way partition puts
        // the pivot run in place in one pass.
        check(vec![7; 1_000]);
        check((0..1_500u32).map(|i| i % 2).collect());
    }

    #[test]
    fn sorted_and_reversed_inputs() {
        check((0..1_000u32).collect());
        check((0..1_000u32).rev().collect());
    }

    #[test]
    fn extreme_keys() {
        check(vec![u32::MAX, 0, u32::MAX, 5, 0, u32::MAX - 1, 1]);
    }

    #[test]
    fn agrees_with_radix_on_key_order() {
        let keys: Vec<u32> = (0..3_000u64)
            .map(|i| ((i * 48_271) % 7_919) as u32)
            .collect();
        let vals = vec![0u32; keys.len()];
        let (qk, _) = sort_pairs(&keys, &vals);

        let mut m = Machine::paper();
        let a = SortArrays::stage(&mut m, &keys, &vals);
        let passes = crate::radix_sort(&mut m, &a, 7_918);
        let (rk, _) = a.read_result(&m, passes);
        assert_eq!(qk, rk);
    }

    #[test]
    fn radix_sort_beats_quicksort_in_simulated_cycles() {
        // The §IV-A claim: the recursion's shrinking partitions and the
        // scalar tail cannot compete with radix's fixed pass count.
        let n = 4_096;
        let keys: Vec<u32> = (0..n as u64)
            .map(|i| ((i * 2_654_435_761) % 10_000) as u32)
            .collect();
        let vals: Vec<u32> = (0..n as u32).collect();

        let mut m1 = Machine::paper();
        let a1 = SortArrays::stage(&mut m1, &keys, &vals);
        crate::radix_sort(&mut m1, &a1, 9_999);

        let mut m2 = Machine::paper();
        let a2 = SortArrays::stage(&mut m2, &keys, &vals);
        quicksort(&mut m2, &a2);

        assert!(
            m1.cycles() < m2.cycles(),
            "radix ({}) should beat quicksort ({})",
            m1.cycles(),
            m2.cycles()
        );
    }
}
