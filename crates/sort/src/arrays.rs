//! Shared buffer handles for the simulated sorts.

use vagg_sim::Machine;

/// Addresses of the key/payload arrays and their ping-pong buffers in
/// simulated memory.
#[derive(Debug, Clone, Copy)]
pub struct SortArrays {
    /// Key column (`g`).
    pub keys: u64,
    /// Payload column (`v`).
    pub vals: u64,
    /// Auxiliary key buffer.
    pub aux_keys: u64,
    /// Auxiliary payload buffer.
    pub aux_vals: u64,
    /// Row count.
    pub n: usize,
}

impl SortArrays {
    /// Stages `keys`/`vals` into fresh simulated arrays and allocates the
    /// auxiliary buffers.
    pub fn stage(m: &mut Machine, keys: &[u32], vals: &[u32]) -> Self {
        assert_eq!(keys.len(), vals.len());
        let n = keys.len();
        let bytes = 4 * n as u64;
        let s = m.space_mut();
        let keys_addr = s.alloc_slice_u32(keys);
        let vals_addr = s.alloc_slice_u32(vals);
        let aux_keys = s.alloc(bytes, 64);
        let aux_vals = s.alloc(bytes, 64);
        Self {
            keys: keys_addr,
            vals: vals_addr,
            aux_keys,
            aux_vals,
            n,
        }
    }

    /// The buffer pair holding the result after `passes` ping-pong rounds.
    pub fn result_buffers(&self, passes: u32) -> (u64, u64) {
        if passes.is_multiple_of(2) {
            (self.keys, self.vals)
        } else {
            (self.aux_keys, self.aux_vals)
        }
    }

    /// Reads back a buffer pair (host-side, untimed).
    pub fn read_result(&self, m: &Machine, passes: u32) -> (Vec<u32>, Vec<u32>) {
        let (k, v) = self.result_buffers(passes);
        (
            m.space().read_slice_u32(k, self.n),
            m.space().read_slice_u32(v, self.n),
        )
    }
}

/// Number of 8-bit LSD passes needed to fully sort keys up to `max_key`.
pub fn passes_for_max_key(max_key: u32) -> u32 {
    match max_key {
        0..=0xFF => 1,
        0x100..=0xFFFF => 2,
        0x1_0000..=0xFF_FFFF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pass_counts() {
        assert_eq!(passes_for_max_key(0), 1);
        assert_eq!(passes_for_max_key(255), 1);
        assert_eq!(passes_for_max_key(256), 2);
        assert_eq!(passes_for_max_key(65_535), 2);
        assert_eq!(passes_for_max_key(65_536), 3);
        assert_eq!(passes_for_max_key(9_999_999), 3);
        assert_eq!(passes_for_max_key(u32::MAX), 4);
    }

    #[test]
    fn stage_and_readback() {
        let mut m = Machine::paper();
        let k = vec![3u32, 1, 2];
        let v = vec![30u32, 10, 20];
        let a = SortArrays::stage(&mut m, &k, &v);
        let (rk, rv) = a.read_result(&m, 0);
        assert_eq!(rk, k);
        assert_eq!(rv, v);
        // Aux buffers are distinct allocations.
        assert_ne!(a.keys, a.aux_keys);
        assert_ne!(a.vals, a.aux_vals);
    }

    #[test]
    fn result_buffers_alternate() {
        let mut m = Machine::paper();
        let a = SortArrays::stage(&mut m, &[1], &[2]);
        assert_eq!(a.result_buffers(0), (a.keys, a.vals));
        assert_eq!(a.result_buffers(1), (a.aux_keys, a.aux_vals));
        assert_eq!(a.result_buffers(2), (a.keys, a.vals));
    }
}
