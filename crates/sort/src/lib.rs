//! # vagg-sort
//!
//! The two simulated vectorised sorts of the ISCA 2016 aggregation paper:
//!
//! * [`radix`] — evasion-style radix sort using only typical vector SIMD
//!   instructions (replicated histograms + strided input, §IV-A);
//! * [`vsr`] — VSR sort (HPCA 2015) using VPI/VLU, with single histogram
//!   and unit-stride input, including the single-pass *partial sort* that
//!   powers partially sorted monotable (§V-C);
//! * [`bitonic`] / [`quicksort`](mod@quicksort) — vectorised bitonic mergesort and
//!   three-way quicksort, the two comparators §IV-A cites radix sort as
//!   beating (and the `sorts` bench confirms).
//!
//! Both sort `(key, payload)` column pairs held in simulated memory and are
//! stable — the property the run-detection step of the sorted-reduce
//! aggregation algorithms relies on.

#![warn(missing_docs)]

pub mod arrays;
pub mod bitonic;
pub mod quicksort;
pub mod radix;
pub mod scalar;
pub mod vsr;

pub use arrays::{passes_for_max_key, SortArrays};
pub use bitonic::bitonic_sort;
pub use quicksort::quicksort;
pub use radix::radix_sort;
pub use vsr::{vsr_partial_pass, vsr_sort};
