//! Vectorised radix sort with *typical* vector SIMD instructions — the
//! evasion-technique sort of §IV-A (after Zagha & Blelloch, SC'91).
//!
//! Two transformations are forced on the algorithm by GMS conflicts, and
//! both are the bottlenecks the paper calls out:
//!
//! 1. **Replicated histograms** — each of the MVL vector elements owns a
//!    private copy of the digit histogram (`hist[digit][copy]`), so the
//!    gather-increment-scatter in the counting phase never collides. The
//!    bookkeeping structure is MVL× larger and thrashes the cache sooner.
//! 2. **Strided input access** — to keep the sort stable, element `j` must
//!    process a *contiguous* chunk of the input, which turns the input load
//!    into a strided access pattern (one cache line per element in the
//!    worst case) instead of unit-stride.
//!
//! The sort is LSD over 8-bit digits, with the pass count trimmed to the
//! maximum key (§IV-A: radix sort "can be optimised for a particular
//! maximum group key").

use crate::arrays::{passes_for_max_key, SortArrays};
use vagg_isa::{BinOp, Mreg, Vreg};
use vagg_sim::Machine;

const DIGIT_BITS: u32 = 8;

const VK: Vreg = Vreg(0); // keys
const VD: Vreg = Vreg(1); // digit / histogram index
const VI: Vreg = Vreg(2); // iota (copy index)
const VH: Vreg = Vreg(3); // histogram values / offsets
const VP: Vreg = Vreg(5); // payload
const VZ: Vreg = Vreg(6); // zero

/// Runs the full sort; returns the number of passes executed (use
/// [`SortArrays::result_buffers`] to find the output).
pub fn radix_sort(m: &mut Machine, a: &SortArrays, max_key: u32) -> u32 {
    let passes = passes_for_max_key(max_key);
    let mvl = m.mvl();
    // One replicated histogram, reused across passes.
    let hist = m.space_mut().alloc(256 * mvl as u64 * 4, 64);
    for p in 0..passes {
        let (src_k, src_v) = a.result_buffers(p);
        let (dst_k, dst_v) = a.result_buffers(p + 1);
        radix_pass(
            m,
            a.n,
            src_k,
            src_v,
            dst_k,
            dst_v,
            hist,
            p * DIGIT_BITS,
            max_key,
        );
    }
    passes
}

// Active vector length for strided iteration `i`: elements j with
// j*chunk + i < n form a prefix.
fn strided_vl(n: usize, chunk: usize, i: usize, mvl: usize) -> usize {
    if i >= n {
        return 0;
    }
    (((n - 1 - i) / chunk) + 1).min(mvl)
}

#[allow(clippy::too_many_arguments)]
fn radix_pass(
    m: &mut Machine,
    n: usize,
    src_k: u64,
    src_v: u64,
    dst_k: u64,
    dst_v: u64,
    hist: u64,
    shift: u32,
    max_key: u32,
) {
    let mvl = m.mvl();
    let chunk = n.div_ceil(mvl);
    // Digits this pass can produce, trimmed to the maximum key.
    let r_eff = (((max_key >> shift) as u64) + 1).min(256) as usize;
    let hist_len = r_eff * mvl;

    // Zero the histogram with unit-stride vector stores.
    m.set_vl(mvl);
    m.vset(VZ, 0, None);
    let mut t = 0;
    for i in (0..hist_len).step_by(mvl) {
        let vl = (hist_len - i).min(mvl);
        if vl != m.vl() {
            m.set_vl(vl);
        }
        t = m.vstore_unit(VZ, hist + 4 * i as u64, 4, t);
    }

    // Copy index vector (the `j` in hist[digit*MVL + j]), hoisted.
    m.set_vl(mvl);
    m.viota(VI, None);

    // Phase 1: replicated histogram build.
    for i in 0..chunk {
        let vl = strided_vl(n, chunk, i, mvl);
        if vl == 0 {
            break;
        }
        m.set_vl(vl);
        let loop_t = m.s_op(0); // induction/branch overhead
        m.vload_strided(VK, src_k + 4 * i as u64, 4 * chunk as i64, 4, loop_t);
        m.vbinop_vs(BinOp::Shr, VD, VK, shift as u64, None);
        m.vbinop_vs(BinOp::And, VD, VD, 0xFF, None);
        m.vbinop_vs(BinOp::Mul, VD, VD, mvl as u64, None);
        m.vbinop_vv(BinOp::Add, VD, VD, VI, None);
        m.vgather(VH, hist, VD, 4, None, 0);
        m.vbinop_vs(BinOp::Add, VH, VH, 1, None);
        m.vscatter(VH, hist, VD, 4, None, 0);
    }

    // Phase 2: exclusive prefix sum over hist (scalar, sequential chain).
    let mut running: u32 = 0;
    let mut tok = 0;
    for idx in 0..hist_len {
        let addr = hist + 4 * idx as u64;
        let (v, lt) = m.s_load_u32(addr, tok);
        let st = m.s_store_u32(addr, running, lt);
        tok = m.s_op(st.max(lt)); // running += v
        running = running.wrapping_add(v);
    }

    // Phase 3: stable scatter into the destination buffers.
    for i in 0..chunk {
        let vl = strided_vl(n, chunk, i, mvl);
        if vl == 0 {
            break;
        }
        m.set_vl(vl);
        let loop_t = m.s_op(0);
        let stride = 4 * chunk as i64;
        m.vload_strided(VK, src_k + 4 * i as u64, stride, 4, loop_t);
        m.vload_strided(VP, src_v + 4 * i as u64, stride, 4, loop_t);
        m.vbinop_vs(BinOp::Shr, VD, VK, shift as u64, None);
        m.vbinop_vs(BinOp::And, VD, VD, 0xFF, None);
        m.vbinop_vs(BinOp::Mul, VD, VD, mvl as u64, None);
        m.vbinop_vv(BinOp::Add, VD, VD, VI, None);
        m.vgather(VH, hist, VD, 4, None, 0);
        m.vscatter(VK, dst_k, VH, 4, None, 0);
        m.vscatter(VP, dst_v, VH, 4, None, 0);
        m.vbinop_vs(BinOp::Add, VH, VH, 1, None);
        m.vscatter(VH, hist, VD, 4, None, 0);
    }
    let _ = (t, Mreg(0));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::is_stable_sort_of;

    fn run(keys: Vec<u32>, vals: Vec<u32>) -> (Vec<u32>, Vec<u32>, u64) {
        let mut m = Machine::paper();
        let a = SortArrays::stage(&mut m, &keys, &vals);
        let max = keys.iter().copied().max().unwrap_or(0);
        let passes = radix_sort(&mut m, &a, max);
        let (k, v) = a.read_result(&m, passes);
        assert!(is_stable_sort_of(&k, &v, &keys, &vals), "not a stable sort");
        (k, v, m.cycles())
    }

    #[test]
    fn sorts_small_single_pass() {
        let keys = vec![3u32, 1, 4, 1, 5, 9, 2, 6];
        let vals = vec![0u32, 1, 2, 3, 4, 5, 6, 7];
        let (k, _, _) = run(keys, vals);
        assert_eq!(k, vec![1, 1, 2, 3, 4, 5, 6, 9]);
    }

    #[test]
    fn sorts_more_than_one_vector() {
        let n = 1000;
        let keys: Vec<u32> = (0..n).map(|i| (i * 7919 + 13) % 97).collect();
        let vals: Vec<u32> = (0..n).collect();
        run(keys, vals);
    }

    #[test]
    fn sorts_multi_pass_large_keys() {
        let n = 500;
        let keys: Vec<u32> = (0..n)
            .map(|i| ((i as u64 * 104729 + 7) % 1_000_003) as u32)
            .collect();
        let vals: Vec<u32> = (0..n).collect();
        run(keys, vals); // max key ~1e6 → 3 passes
    }

    #[test]
    fn n_smaller_than_mvl() {
        run(vec![5, 2, 9], vec![0, 1, 2]);
        run(vec![1], vec![0]);
    }

    #[test]
    fn all_equal_keys_preserve_order() {
        let keys = vec![7u32; 200];
        let vals: Vec<u32> = (0..200).collect();
        let (_, v, _) = run(keys, vals);
        assert_eq!(v, (0..200).collect::<Vec<u32>>());
    }

    #[test]
    fn already_sorted_stays_sorted() {
        let keys: Vec<u32> = (0..300).collect();
        let vals: Vec<u32> = (0..300).rev().collect();
        let (k, v, _) = run(keys.clone(), vals.clone());
        assert_eq!(k, keys);
        assert_eq!(v, vals);
    }

    #[test]
    fn strided_vl_covers_exactly_n() {
        for n in [1usize, 5, 64, 65, 100, 129, 1000] {
            let mvl = 64;
            let chunk = n.div_ceil(mvl);
            let total: usize = (0..chunk).map(|i| strided_vl(n, chunk, i, mvl)).sum();
            assert_eq!(total, n, "n={n}");
        }
    }

    #[test]
    fn low_max_key_costs_fewer_cycles_than_high() {
        let n = 512;
        let vals: Vec<u32> = (0..n as u32).collect();
        let small: Vec<u32> = (0..n as u32).map(|i| i % 4).collect();
        let big: Vec<u32> = (0..n as u32)
            .map(|i| ((i as u64 * 2654435761) % 1_000_000) as u32)
            .collect();
        let (_, _, c_small) = run(small, vals.clone());
        let (_, _, c_big) = run(big, vals);
        assert!(
            c_small < c_big,
            "optimised pass trimming should help: {c_small} vs {c_big}"
        );
    }
}
