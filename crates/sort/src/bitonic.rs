//! Vectorised bitonic mergesort — the classic vector-machine sorting
//! network, built here as a *comparator* for the paper's sort choice.
//!
//! §IV-A picks radix sort because (citing the VSR-sort paper, HPCA 2015)
//! it "outperforms quicksort and bitonic mergesort when MVL = 64 and
//! lanes = 4". This module makes that claim measurable in this
//! reproduction: the full Batcher network, vectorised with the Table III
//! instruction set only (iota/shift/and to synthesise butterfly indices,
//! gathers/scatters to exchange, `maximum` plus wrapping arithmetic for
//! min/max, masks for the per-block direction and the payload swap).
//!
//! Why it loses to radix sort on this machine — visible in the
//! `sorts` bench — is structural:
//!
//! * O(n·log²n) key movements against radix's O(passes·n);
//! * every exchange is a gather + scatter (`VL/lanes` address-generation
//!   cycles each) against radix's unit-stride streams;
//! * stability costs it 8-byte packed elements (`key << 32 | row`),
//!   doubling the exchanged bytes relative to radix's 4-byte keys.
//!
//! The implementation sorts `(key, payload)` pairs ascending, working in
//! a power-of-two padded copy whose 8-byte elements pack
//! `key << 32 | row_index`. The index tie-break makes every element
//! unique — so the network is **stable** (unlike textbook bitonic) and
//! the padding sentinel `u64::MAX` sorts strictly after any genuine key,
//! even `u32::MAX`.

use crate::arrays::SortArrays;
use vagg_isa::{BinOp, CmpOp, Mreg, Vreg};
use vagg_sim::Machine;

const VI: Vreg = Vreg(0); // element indices m
const VIDXL: Vreg = Vreg(1); // low partner index
const VIDXH: Vreg = Vreg(2); // high partner index
const VKL: Vreg = Vreg(3); // low keys in
const VKH: Vreg = Vreg(4); // high keys in
const VKMIN: Vreg = Vreg(5);
const VKMAX: Vreg = Vreg(6);
const VKLOW: Vreg = Vreg(7); // low keys out
const VKHIGH: Vreg = Vreg(8); // high keys out
const VPL: Vreg = Vreg(9); // low payloads in
const VPH: Vreg = Vreg(10); // high payloads in
const VPLOW: Vreg = Vreg(11); // low payloads out
const VPHIGH: Vreg = Vreg(12); // high payloads out
const VT: Vreg = Vreg(13); // scratch
const VZ: Vreg = Vreg(14); // zero
const M_DESC: Mreg = Mreg(0); // element sits in a descending block
const M_SWAP: Mreg = Mreg(1); // pair was exchanged

/// Sorts the `keys`/`vals` pair of `a` ascending by key with a bitonic
/// network. The result lands back in `a.keys` / `a.vals` (read it with
/// `a.read_result(m, 0)`).
///
/// Stable: keys are augmented with their row index during packing, so
/// equal keys keep their input order.
///
/// # Panics
///
/// Panics if `a.n == 0`.
pub fn bitonic_sort(m: &mut Machine, a: &SortArrays) {
    assert!(a.n > 0, "empty input");
    let n2 = a.n.next_power_of_two();
    if a.n == 1 {
        return;
    }
    let mvl = m.mvl();

    // Pack `key << 32 | row` into an 8-byte padded buffer; the payload
    // column is copied alongside. Padding packs to u64::MAX, strictly
    // above every genuine element.
    let pk = m.space_mut().alloc(8 * n2 as u64, 64);
    let pv = m.space_mut().alloc(4 * n2 as u64, 64);
    for start in (0..a.n).step_by(mvl) {
        let vl = (a.n - start).min(mvl);
        m.set_vl(vl);
        let t = m.s_op(0);
        m.vload_unit(VKL, a.keys + 4 * start as u64, 4, t);
        m.vbinop_vs(BinOp::Shl, VKL, VKL, 32, None);
        m.viota(VT, None);
        m.vbinop_vs(BinOp::Add, VT, VT, start as u64, None);
        m.vbinop_vv(BinOp::Add, VKL, VKL, VT, None);
        m.vstore_unit(VKL, pk + 8 * start as u64, 8, t);
    }
    copy_region(m, a.vals, pv, a.n);
    fill_region(m, pk + 8 * a.n as u64, n2 - a.n, u64::MAX, 8);
    fill_region(m, pv + 4 * a.n as u64, n2 - a.n, 0, 4);

    m.set_vl(mvl);
    m.vset(VZ, 0, None);

    // The Batcher network: k is the (power-of-two) sorted-run target,
    // j the butterfly distance within the merge step.
    let mut k = 2usize;
    while k <= n2 {
        let mut j = k / 2;
        while j >= 1 {
            phase(m, pk, pv, n2, k, j);
            j /= 2;
        }
        k *= 2;
    }

    // Unpack: high 32 bits are the key.
    for start in (0..a.n).step_by(mvl) {
        let vl = (a.n - start).min(mvl);
        m.set_vl(vl);
        let t = m.s_op(0);
        m.vload_unit(VKL, pk + 8 * start as u64, 8, t);
        m.vbinop_vs(BinOp::Shr, VKL, VKL, 32, None);
        m.vstore_unit(VKL, a.keys + 4 * start as u64, 4, t);
    }
    copy_region(m, pv, a.vals, a.n);
}

// One (k, j) phase: every low element m in 0..n2/2 exchanges with its
// partner at distance j, direction chosen by bit k of its index. Low
// indices are synthesised from iota with shift/and (j and k are powers
// of two), so full-MVL strips span block boundaries.
fn phase(m: &mut Machine, keys: u64, vals: u64, n2: usize, k: usize, j: usize) {
    let s = j.trailing_zeros() as u64; // log2 j
    let half = n2 / 2;
    let mvl = m.mvl();
    for start in (0..half).step_by(mvl) {
        let vl = (half - start).min(mvl);
        if vl != m.vl() {
            m.set_vl(vl);
        }
        let t = m.s_op(0); // strip induction

        // idx_low = ((m >> s) << (s+1)) | (m & (j-1)); idx_high = +j.
        m.viota(VI, None);
        m.vbinop_vs(BinOp::Add, VI, VI, start as u64, None);
        m.vbinop_vs(BinOp::Shr, VT, VI, s, None);
        m.vbinop_vs(BinOp::Shl, VT, VT, s + 1, None);
        m.vbinop_vs(BinOp::And, VIDXL, VI, (j - 1) as u64, None);
        m.vbinop_vv(BinOp::Add, VIDXL, VIDXL, VT, None);
        m.vbinop_vs(BinOp::Add, VIDXH, VIDXL, j as u64, None);

        // Exchange inputs (keys are the packed 8-byte elements).
        m.vgather(VKL, keys, VIDXL, 8, None, t);
        m.vgather(VKH, keys, VIDXH, 8, None, t);
        m.vgather(VPL, vals, VIDXL, 4, None, t);
        m.vgather(VPH, vals, VIDXH, 4, None, t);

        // min/max from Table III's `maximum` plus wrapping add/sub.
        m.vbinop_vv(BinOp::Max, VKMAX, VKL, VKH, None);
        m.vbinop_vv(BinOp::Add, VT, VKL, VKH, None);
        m.vbinop_vv(BinOp::Sub, VKMIN, VT, VKMAX, None);

        // Descending blocks are the ones with bit k of the index set.
        m.vbinop_vs(BinOp::And, VT, VIDXL, k as u64, None);
        m.vcmp_vs(CmpOp::Nez, M_DESC, VT, 0, None);

        // keys_low = desc ? max : min (and the mirror for keys_high);
        // unmasked copy then a masked move (add-zero merge).
        m.vbinop_vs(BinOp::Add, VKLOW, VKMIN, 0, None);
        m.vbinop_vv(BinOp::Add, VKLOW, VKMAX, VZ, Some(M_DESC));
        m.vbinop_vs(BinOp::Add, VKHIGH, VKMAX, 0, None);
        m.vbinop_vv(BinOp::Add, VKHIGH, VKMIN, VZ, Some(M_DESC));

        // Payloads follow their key: packed elements are unique, so the
        // pair swapped iff the outgoing low element differs from the
        // incoming one.
        m.vcmp_vv(CmpOp::Ne, M_SWAP, VKLOW, VKL, None);
        m.vbinop_vs(BinOp::Add, VPLOW, VPL, 0, None);
        m.vbinop_vv(BinOp::Add, VPLOW, VPH, VZ, Some(M_SWAP));
        m.vbinop_vs(BinOp::Add, VPHIGH, VPH, 0, None);
        m.vbinop_vv(BinOp::Add, VPHIGH, VPL, VZ, Some(M_SWAP));

        // Exchange outputs (indices are disjoint: conflict-free).
        m.vscatter(VKLOW, keys, VIDXL, 8, None, t);
        m.vscatter(VKHIGH, keys, VIDXH, 8, None, t);
        m.vscatter(VPLOW, vals, VIDXL, 4, None, t);
        m.vscatter(VPHIGH, vals, VIDXH, 4, None, t);
    }
}

// Unit-stride vector copy of `n` u32 elements.
fn copy_region(m: &mut Machine, src: u64, dst: u64, n: usize) {
    let mvl = m.mvl();
    for start in (0..n).step_by(mvl) {
        let vl = (n - start).min(mvl);
        m.set_vl(vl);
        let t = m.s_op(0);
        m.vload_unit(VT, src + 4 * start as u64, 4, t);
        m.vstore_unit(VT, dst + 4 * start as u64, 4, t);
    }
}

// Unit-stride fill of `n` elements of `elem_bytes` with `value`.
fn fill_region(m: &mut Machine, dst: u64, n: usize, value: u64, elem_bytes: u64) {
    let mvl = m.mvl();
    for start in (0..n).step_by(mvl) {
        let vl = (n - start).min(mvl);
        m.set_vl(vl);
        let t = m.s_op(0);
        m.vset(VT, value, None);
        m.vstore_unit(VT, dst + elem_bytes * start as u64, elem_bytes, t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vagg_sim::SimConfig;

    fn sort_pairs(keys: &[u32], vals: &[u32]) -> (Vec<u32>, Vec<u32>) {
        let mut m = Machine::paper();
        let a = SortArrays::stage(&mut m, keys, vals);
        bitonic_sort(&mut m, &a);
        a.read_result(&m, 0)
    }

    fn check(keys: Vec<u32>) {
        // Payloads are row indices so the key→payload binding is
        // verifiable per element.
        let vals: Vec<u32> = (0..keys.len() as u32).collect();
        let (k, v) = sort_pairs(&keys, &vals);
        assert!(k.windows(2).all(|w| w[0] <= w[1]), "keys not sorted: {k:?}");
        // Same multiset of keys.
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(k, expect);
        // Every payload still names a row whose key matches.
        for (i, &p) in v.iter().enumerate() {
            assert_eq!(keys[p as usize], k[i], "payload binding broken at {i}");
        }
        // Stability: among equal keys, payloads (input rows) ascend.
        for w in k.windows(2).zip(v.windows(2)) {
            let (kw, vw) = w;
            if kw[0] == kw[1] {
                assert!(vw[0] < vw[1], "instability at key {}", kw[0]);
            }
        }
        // Payloads are a permutation.
        let mut vs = v.clone();
        vs.sort_unstable();
        let want: Vec<u32> = (0..keys.len() as u32).collect();
        assert_eq!(vs, want);
    }

    #[test]
    fn sorts_a_power_of_two() {
        check((0..128u32).rev().collect());
    }

    #[test]
    fn sorts_non_power_of_two_lengths() {
        for n in [1usize, 2, 3, 63, 64, 65, 100, 130] {
            check(
                (0..n as u64)
                    .map(|i| ((i * 2_654_435_761) % 97) as u32)
                    .collect(),
            );
        }
    }

    #[test]
    fn sorts_with_duplicates_and_extremes() {
        check(vec![5, 5, 5, 0, u32::MAX, 7, u32::MAX, 0, 1]);
    }

    #[test]
    fn already_sorted_and_reversed() {
        check((0..200u32).collect());
        check((0..200u32).rev().collect());
    }

    #[test]
    fn works_on_small_mvl_machines() {
        let keys: Vec<u32> = (0..75u32).map(|i| (i * 31) % 19).collect();
        let vals: Vec<u32> = (0..75).collect();
        for mvl in [2usize, 4, 8] {
            let mut m = Machine::new(SimConfig::paper().with_mvl(mvl).with_lanes(1));
            let a = SortArrays::stage(&mut m, &keys, &vals);
            bitonic_sort(&mut m, &a);
            let (k, _) = a.read_result(&m, 0);
            assert!(k.windows(2).all(|w| w[0] <= w[1]), "mvl={mvl}");
        }
    }

    #[test]
    fn radix_sort_beats_bitonic_in_simulated_cycles() {
        // The §IV-A claim this module exists to check. Unit-stride
        // streaming radix vs gather/scatter-heavy O(n log² n) network.
        let n = 4_096;
        let keys: Vec<u32> = (0..n as u64)
            .map(|i| ((i * 2_654_435_761) % 10_000) as u32)
            .collect();
        let vals: Vec<u32> = (0..n as u32).collect();

        let mut m1 = Machine::paper();
        let a1 = SortArrays::stage(&mut m1, &keys, &vals);
        let passes = crate::radix_sort(&mut m1, &a1, 9_999);
        let (rk, _) = a1.read_result(&m1, passes);

        let mut m2 = Machine::paper();
        let a2 = SortArrays::stage(&mut m2, &keys, &vals);
        bitonic_sort(&mut m2, &a2);
        let (bk, _) = a2.read_result(&m2, 0);

        assert_eq!(rk, bk, "both sorts must agree");
        assert!(
            m1.cycles() * 2 < m2.cycles(),
            "radix ({}) should beat bitonic ({}) clearly",
            m1.cycles(),
            m2.cycles()
        );
    }
}
