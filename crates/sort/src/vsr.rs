//! VSR sort — the confrontation-technique sort (Hayes et al., HPCA 2015),
//! used by *advanced sorted reduce* (§V-A) and, in single-pass partial
//! form, by *partially sorted monotable* (§V-C).
//!
//! Unlike the evasion radix sort, VSR sort keeps **one** histogram and
//! reads its input with efficient **unit-stride** loads. The VPI and VLU
//! instructions detect and correct would-be GMS conflicts inside the vector
//! registers before any memory access:
//!
//! * the scatter offset of element `i` becomes `hist[digit[i]] + vpi[i]`,
//!   sending repeated digits to *adjacent* slots instead of colliding;
//! * the histogram update happens only at VLU-selected last instances,
//!   incremented by that element's total in-register count (`vpi + 1`).

use crate::arrays::{passes_for_max_key, SortArrays};
use vagg_isa::{BinOp, Mreg, Vreg};
use vagg_sim::Machine;

const DIGIT_BITS: u32 = 8;

const VK: Vreg = Vreg(0); // keys
const VD: Vreg = Vreg(1); // digit
const VPIV: Vreg = Vreg(2); // prior-instance counts
const VH: Vreg = Vreg(3); // histogram values / base offsets
const VO: Vreg = Vreg(4); // corrected offsets
const VP: Vreg = Vreg(5); // payload
const VC: Vreg = Vreg(6); // per-digit total counts
const VZ: Vreg = Vreg(7); // zero
const M0: Mreg = Mreg(0); // VLU mask

/// Fully sorts the arrays; returns the number of passes executed.
pub fn vsr_sort(m: &mut Machine, a: &SortArrays, max_key: u32) -> u32 {
    let passes = passes_for_max_key(max_key);
    for p in 0..passes {
        let (src_k, src_v) = a.result_buffers(p);
        let (dst_k, dst_v) = a.result_buffers(p + 1);
        let shift = p * DIGIT_BITS;
        let r_eff = (((max_key >> shift) as u64) + 1).min(1 << DIGIT_BITS) as usize;
        vsr_pass(m, a.n, src_k, src_v, dst_k, dst_v, shift, DIGIT_BITS, r_eff);
    }
    passes
}

/// One partial pass over bits `[bit_lo, bit_hi)` — the §V-C primitive. The
/// result lands in the aux buffers (`result_buffers(1)`); it is partitioned
/// by (and stably ordered within) the selected bit field.
pub fn vsr_partial_pass(m: &mut Machine, a: &SortArrays, bit_lo: u32, bit_hi: u32, max_key: u32) {
    assert!(bit_lo < bit_hi && bit_hi <= 32, "bad bit range");
    let bits = bit_hi - bit_lo;
    let r_eff = (((max_key >> bit_lo) as u64) + 1).min(1u64 << bits) as usize;
    vsr_pass(
        m, a.n, a.keys, a.vals, a.aux_keys, a.aux_vals, bit_lo, bits, r_eff,
    );
}

#[allow(clippy::too_many_arguments)]
fn vsr_pass(
    m: &mut Machine,
    n: usize,
    src_k: u64,
    src_v: u64,
    dst_k: u64,
    dst_v: u64,
    shift: u32,
    digit_bits: u32,
    r_eff: usize,
) {
    let mvl = m.mvl();
    let digit_mask = (1u64 << digit_bits) - 1;
    let hist = m.space_mut().alloc(r_eff as u64 * 4, 64);

    // Zero the (single, unreplicated) histogram.
    m.set_vl(mvl.min(r_eff));
    m.vset(VZ, 0, None);
    let mut t = 0;
    for i in (0..r_eff).step_by(mvl) {
        let vl = (r_eff - i).min(mvl);
        if vl != m.vl() {
            m.set_vl(vl);
        }
        t = m.vstore_unit(VZ, hist + 4 * i as u64, 4, t);
    }
    let _ = t;

    // Phase 1: histogram via VPI/VLU (unit-stride input).
    for start in (0..n).step_by(mvl) {
        let vl = (n - start).min(mvl);
        m.set_vl(vl);
        let loop_t = m.s_op(0);
        m.vload_unit(VK, src_k + 4 * start as u64, 4, loop_t);
        m.vbinop_vs(BinOp::Shr, VD, VK, shift as u64, None);
        m.vbinop_vs(BinOp::And, VD, VD, digit_mask, None);
        m.vpi(VPIV, VD);
        m.vlu(M0, VD);
        m.vbinop_vs(BinOp::Add, VC, VPIV, 1, None); // total in-register count
        m.vgather(VH, hist, VD, 4, Some(M0), 0);
        m.vbinop_vv(BinOp::Add, VH, VH, VC, Some(M0));
        m.vscatter(VH, hist, VD, 4, Some(M0), 0);
    }

    // Phase 2: exclusive prefix sum over the single histogram (scalar).
    let mut running: u32 = 0;
    let mut tok = 0;
    for idx in 0..r_eff {
        let addr = hist + 4 * idx as u64;
        let (v, lt) = m.s_load_u32(addr, tok);
        let st = m.s_store_u32(addr, running, lt);
        tok = m.s_op(st.max(lt));
        running = running.wrapping_add(v);
    }

    // Phase 3: conflict-corrected scatter.
    for start in (0..n).step_by(mvl) {
        let vl = (n - start).min(mvl);
        m.set_vl(vl);
        let loop_t = m.s_op(0);
        m.vload_unit(VK, src_k + 4 * start as u64, 4, loop_t);
        m.vload_unit(VP, src_v + 4 * start as u64, 4, loop_t);
        m.vbinop_vs(BinOp::Shr, VD, VK, shift as u64, None);
        m.vbinop_vs(BinOp::And, VD, VD, digit_mask, None);
        m.vpi(VPIV, VD);
        m.vlu(M0, VD);
        m.vgather(VH, hist, VD, 4, None, 0); // base offsets (read may conflict)
        m.vbinop_vv(BinOp::Add, VO, VH, VPIV, None); // corrected, now unique
        m.vscatter(VK, dst_k, VO, 4, None, 0);
        m.vscatter(VP, dst_v, VO, 4, None, 0);
        m.vbinop_vs(BinOp::Add, VC, VPIV, 1, None);
        m.vbinop_vv(BinOp::Add, VH, VH, VC, Some(M0));
        m.vscatter(VH, hist, VD, 4, Some(M0), 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::is_stable_sort_of;

    fn run(keys: Vec<u32>, vals: Vec<u32>) -> (Vec<u32>, Vec<u32>, u64) {
        let mut m = Machine::paper();
        let a = SortArrays::stage(&mut m, &keys, &vals);
        let max = keys.iter().copied().max().unwrap_or(0);
        let passes = vsr_sort(&mut m, &a, max);
        let (k, v) = a.read_result(&m, passes);
        assert!(is_stable_sort_of(&k, &v, &keys, &vals), "not a stable sort");
        (k, v, m.cycles())
    }

    #[test]
    fn sorts_with_duplicates_in_one_register() {
        // The Figure 10 keys contain in-register duplicates — the exact
        // case VPI/VLU exist for.
        let keys = vec![7u32, 5, 5, 5, 11, 9, 9, 11];
        let vals = vec![0u32, 1, 2, 3, 4, 5, 6, 7];
        let (k, v, _) = run(keys, vals);
        assert_eq!(k, vec![5, 5, 5, 7, 9, 9, 11, 11]);
        assert_eq!(v, vec![1, 2, 3, 0, 5, 6, 4, 7]);
    }

    #[test]
    fn sorts_multiple_vectors() {
        let n = 1000u32;
        let keys: Vec<u32> = (0..n).map(|i| (i * 7919 + 13) % 97).collect();
        let vals: Vec<u32> = (0..n).collect();
        run(keys, vals);
    }

    #[test]
    fn sorts_multi_pass() {
        let n = 600u32;
        let keys: Vec<u32> = (0..n)
            .map(|i| ((i as u64 * 104729 + 7) % 500_009) as u32)
            .collect();
        let vals: Vec<u32> = (0..n).collect();
        run(keys, vals);
    }

    #[test]
    fn tiny_inputs() {
        run(vec![2, 1], vec![0, 1]);
        run(vec![9], vec![0]);
    }

    #[test]
    fn all_equal_keys_stay_stable() {
        let keys = vec![42u32; 130];
        let vals: Vec<u32> = (0..130).collect();
        let (_, v, _) = run(keys, vals);
        assert_eq!(v, (0..130).collect::<Vec<u32>>());
    }

    #[test]
    fn vsr_is_cheaper_than_radix_on_random_input() {
        let n = 2000u32;
        let keys: Vec<u32> = (0..n)
            .map(|i| ((i as u64 * 2654435761) % 10_000) as u32)
            .collect();
        let vals: Vec<u32> = (0..n).collect();

        let mut m1 = Machine::paper();
        let a1 = SortArrays::stage(&mut m1, &keys, &vals);
        let max = keys.iter().copied().max().unwrap();
        vsr_sort(&mut m1, &a1, max);

        let mut m2 = Machine::paper();
        let a2 = SortArrays::stage(&mut m2, &keys, &vals);
        crate::radix::radix_sort(&mut m2, &a2, max);

        assert!(
            m1.cycles() < m2.cycles(),
            "VSR ({}) should beat evasion radix ({})",
            m1.cycles(),
            m2.cycles()
        );
    }

    #[test]
    fn partial_pass_partitions_by_top_bits() {
        let n = 800u32;
        let keys: Vec<u32> = (0..n).map(|i| (i * 48271) % 4096).collect();
        let vals: Vec<u32> = (0..n).collect();
        let max = keys.iter().copied().max().unwrap();

        let mut m = Machine::paper();
        let a = SortArrays::stage(&mut m, &keys, &vals);
        // Partition on bits [8, 12): 16 partitions of 256 keys each.
        vsr_partial_pass(&mut m, &a, 8, 12, max);
        let (k, v) = a.read_result(&m, 1);

        // Top bits must be non-decreasing.
        let top = |x: u32| x >> 8;
        assert!(k.windows(2).all(|w| top(w[0]) <= top(w[1])));
        // Within equal top bits, original order preserved (stability):
        // payload values must be increasing because input payloads were
        // the row indices.
        for w in k.windows(2).zip(v.windows(2)) {
            let (ks, vs) = w;
            if top(ks[0]) == top(ks[1]) {
                assert!(vs[0] < vs[1], "instability within partition");
            }
        }
        // And it is a permutation.
        let mut sk = k.clone();
        let mut ok = keys.clone();
        sk.sort_unstable();
        ok.sort_unstable();
        assert_eq!(sk, ok);
    }

    #[test]
    fn partial_pass_is_cheaper_than_full_sort() {
        let n = 1500u32;
        let keys: Vec<u32> = (0..n)
            .map(|i| ((i as u64 * 2654435761) % 1_000_000) as u32)
            .collect();
        let vals: Vec<u32> = (0..n).collect();
        let max = keys.iter().copied().max().unwrap();

        let mut m1 = Machine::paper();
        let a1 = SortArrays::stage(&mut m1, &keys, &vals);
        vsr_partial_pass(&mut m1, &a1, 12, 20, max);

        let mut m2 = Machine::paper();
        let a2 = SortArrays::stage(&mut m2, &keys, &vals);
        vsr_sort(&mut m2, &a2, max);

        assert!(m1.cycles() < m2.cycles());
    }

    #[test]
    #[should_panic(expected = "bad bit range")]
    fn partial_pass_validates_bits() {
        let mut m = Machine::paper();
        let a = SortArrays::stage(&mut m, &[1], &[1]);
        vsr_partial_pass(&mut m, &a, 8, 8, 1);
    }
}
