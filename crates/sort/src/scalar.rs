//! Host-side reference sort used as a correctness oracle in tests.
//!
//! A stable LSD radix sort over `(key, payload)` pairs, matching the
//! semantics both simulated sorts must reproduce.

/// Stable sort of `keys` with `payload` carried along. Reference only —
//  performs no simulation.
pub fn radix_sort_pairs(keys: &mut Vec<u32>, payload: &mut Vec<u32>) {
    assert_eq!(keys.len(), payload.len());
    let n = keys.len();
    if n <= 1 {
        return;
    }
    let max = keys.iter().copied().max().unwrap_or(0);
    let mut k_src = std::mem::take(keys);
    let mut p_src = std::mem::take(payload);
    let mut k_dst = vec![0u32; n];
    let mut p_dst = vec![0u32; n];
    let mut shift = 0u32;
    while (max >> shift) > 0 || shift == 0 {
        let mut hist = [0usize; 256];
        for &k in &k_src {
            hist[((k >> shift) & 0xFF) as usize] += 1;
        }
        let mut sum = 0usize;
        for h in hist.iter_mut() {
            let c = *h;
            *h = sum;
            sum += c;
        }
        for i in 0..n {
            let d = ((k_src[i] >> shift) & 0xFF) as usize;
            k_dst[hist[d]] = k_src[i];
            p_dst[hist[d]] = p_src[i];
            hist[d] += 1;
        }
        std::mem::swap(&mut k_src, &mut k_dst);
        std::mem::swap(&mut p_src, &mut p_dst);
        shift += 8;
        if shift >= 32 {
            break;
        }
    }
    *keys = k_src;
    *payload = p_src;
}

/// Checks that `(keys, payload)` is a stable sort of `(orig_keys,
/// orig_payload)` (test helper).
pub fn is_stable_sort_of(
    keys: &[u32],
    payload: &[u32],
    orig_keys: &[u32],
    orig_payload: &[u32],
) -> bool {
    if keys.len() != orig_keys.len() || payload.len() != orig_payload.len() {
        return false;
    }
    if keys.windows(2).any(|w| w[0] > w[1]) {
        return false;
    }
    // Stability + permutation: sorting the originals by key with a stable
    // host sort must reproduce (keys, payload) exactly.
    let mut pairs: Vec<(u32, u32)> = orig_keys
        .iter()
        .copied()
        .zip(orig_payload.iter().copied())
        .collect();
    pairs.sort_by_key(|&(k, _)| k);
    pairs
        .iter()
        .zip(keys.iter().zip(payload.iter()))
        .all(|(&(k1, p1), (&k2, &p2))| k1 == k2 && p1 == p2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_and_is_stable() {
        let mut k = vec![3u32, 1, 2, 1, 3, 0];
        let mut p = vec![10u32, 11, 12, 13, 14, 15];
        let ok = k.clone();
        let op = p.clone();
        radix_sort_pairs(&mut k, &mut p);
        assert_eq!(k, vec![0, 1, 1, 2, 3, 3]);
        assert_eq!(p, vec![15, 11, 13, 12, 10, 14]);
        assert!(is_stable_sort_of(&k, &p, &ok, &op));
    }

    #[test]
    fn empty_and_singleton() {
        let mut k = Vec::new();
        let mut p = Vec::new();
        radix_sort_pairs(&mut k, &mut p);
        assert!(k.is_empty());
        let mut k = vec![5u32];
        let mut p = vec![9u32];
        radix_sort_pairs(&mut k, &mut p);
        assert_eq!((k[0], p[0]), (5, 9));
    }

    #[test]
    fn large_keys_use_all_four_bytes() {
        let mut k = vec![u32::MAX, 0, 0x8000_0000, 0x7FFF_FFFF];
        let mut p = vec![0u32, 1, 2, 3];
        radix_sort_pairs(&mut k, &mut p);
        assert_eq!(k, vec![0, 0x7FFF_FFFF, 0x8000_0000, u32::MAX]);
        assert_eq!(p, vec![1, 3, 2, 0]);
    }

    #[test]
    fn detector_rejects_unsorted_and_unstable() {
        let ok = [1u32, 1];
        let op = [0u32, 1];
        assert!(!is_stable_sort_of(&[2, 1], &[0, 1], &ok, &op));
        // Swapped payloads of equal keys = unstable.
        assert!(!is_stable_sort_of(&[1, 1], &[1, 0], &ok, &op));
        assert!(is_stable_sort_of(&[1, 1], &[0, 1], &ok, &op));
    }
}
