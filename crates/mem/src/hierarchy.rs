//! The full memory hierarchy: L1-d → L2 → DRAM.
//!
//! Composition rules from the paper:
//!
//! * Table I latencies — L1-d 4 cycles, L2 10 cycles, 64-byte lines;
//! * scalar accesses walk L1-d → L2 → DRAM;
//! * **vector accesses bypass the L1-d** and go straight to the L2
//!   (§II-A, after Tarantula); a line cached by the scalar side is evicted
//!   (written back if dirty) first, keeping the two paths coherent;
//! * the L2 set index uses XOR-based placement (see [`crate::xor`]);
//! * dirty victims are written back to the next level; write-backs occupy
//!   DRAM banks but do not delay the requester (posted writes).

use crate::cache::{modulo_index, Access, Cache, CacheStats};
use crate::dram::{Dram, DramParams, DramStats};
use crate::xor::poly_mod_index;

/// Geometry and latency knobs (defaults = Table I).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchyParams {
    /// L1-d size in bytes.
    pub l1_size: u64,
    /// L1-d associativity.
    pub l1_ways: usize,
    /// L1-d hit latency (cycles).
    pub l1_latency: u64,
    /// L2 size in bytes.
    pub l2_size: u64,
    /// L2 associativity.
    pub l2_ways: usize,
    /// L2 hit latency (cycles).
    pub l2_latency: u64,
    /// Line size in bytes (all levels).
    pub line_bytes: u64,
    /// Use XOR-based set placement in the L2 (paper default: yes).
    pub xor_l2: bool,
    /// Vector memory traffic bypasses the L1-d (paper default: yes).
    pub l1_bypass_vector: bool,
    /// DRAM configuration.
    pub dram: DramParams,
}

impl Default for HierarchyParams {
    fn default() -> Self {
        Self::westmere()
    }
}

impl HierarchyParams {
    /// Table I / Table II configuration.
    pub fn westmere() -> Self {
        Self {
            l1_size: 32 * 1024,
            l1_ways: 8,
            l1_latency: 4,
            l2_size: 256 * 1024,
            l2_ways: 8,
            l2_latency: 10,
            line_bytes: 64,
            xor_l2: true,
            l1_bypass_vector: true,
            dram: DramParams::ddr3_1333(),
        }
    }
}

/// Combined counters for one simulation.
#[derive(Debug, Clone, Copy, Default)]
pub struct HierarchyStats {
    /// L1-d counters.
    pub l1: CacheStats,
    /// L2 counters.
    pub l2: CacheStats,
    /// DRAM counters.
    pub dram: DramStats,
    /// Vector accesses that had to evict a scalar-side L1 line.
    pub vector_l1_evictions: u64,
}

/// L1-d + L2 + DRAM with the paper's routing rules.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    params: HierarchyParams,
    l1d: Cache,
    l2: Cache,
    dram: Dram,
    vector_l1_evictions: u64,
}

impl MemoryHierarchy {
    /// Builds the hierarchy.
    pub fn new(params: HierarchyParams) -> Self {
        let l2_index = if params.xor_l2 {
            poly_mod_index
        } else {
            modulo_index
        };
        Self {
            l1d: Cache::new(params.l1_size, params.l1_ways, params.line_bytes),
            l2: Cache::with_index(params.l2_size, params.l2_ways, params.line_bytes, l2_index),
            dram: Dram::new(params.dram.clone()),
            params,
            vector_l1_evictions: 0,
        }
    }

    /// The configured parameters.
    pub fn params(&self) -> &HierarchyParams {
        &self.params
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.params.line_bytes
    }

    /// Counters.
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats {
            l1: self.l1d.stats(),
            l2: self.l2.stats(),
            dram: self.dram.stats(),
            vector_l1_evictions: self.vector_l1_evictions,
        }
    }

    /// Resets counters (not cache/DRAM contents).
    pub fn reset_stats(&mut self) {
        self.l1d.reset_stats();
        self.l2.reset_stats();
        self.dram.reset_stats();
        self.vector_l1_evictions = 0;
    }

    /// Empties caches and idles DRAM (between experiments).
    pub fn flush(&mut self) {
        self.l1d.flush();
        self.l2.flush();
        self.dram.quiesce();
    }

    // A dirty line leaving the L2 is posted to DRAM: occupies a bank but
    // does not delay the requester.
    fn post_writeback_to_dram(&mut self, line_addr: u64, now: u64) {
        let addr = line_addr * self.params.line_bytes;
        let _ = self.dram.access(addr, now);
    }

    // Fill path shared by both access kinds once the request reaches the L2.
    fn access_l2(&mut self, byte_addr: u64, write: bool, now: u64) -> u64 {
        let after_l2 = now + self.params.l2_latency;
        match self.l2.access(byte_addr, write) {
            Access::Hit => after_l2,
            Access::Miss { writeback } => {
                if let Some(line) = writeback {
                    self.post_writeback_to_dram(line, after_l2);
                }
                self.dram.access(byte_addr, after_l2)
            }
        }
    }

    /// A scalar load/store of any width within one line. Returns the
    /// completion cycle.
    pub fn scalar_access(&mut self, byte_addr: u64, write: bool, now: u64) -> u64 {
        let after_l1 = now + self.params.l1_latency;
        match self.l1d.access(byte_addr, write) {
            Access::Hit => after_l1,
            Access::Miss { writeback } => {
                if let Some(line) = writeback {
                    // L1 victim is installed in the L2 (write-back).
                    let addr = line * self.params.line_bytes;
                    if let Access::Miss {
                        writeback: Some(l2v),
                    } = self.l2.access(addr, true)
                    {
                        self.post_writeback_to_dram(l2v, after_l1);
                    }
                }
                self.access_l2(byte_addr, write, after_l1)
            }
        }
    }

    /// One element of a vector memory instruction. Bypasses the L1-d when
    /// the paper's configuration is active. Returns the completion cycle.
    pub fn vector_access(&mut self, byte_addr: u64, write: bool, now: u64) -> u64 {
        if !self.params.l1_bypass_vector {
            return self.scalar_access(byte_addr, write, now);
        }
        // Coherence: pull the line out of the scalar L1 if present.
        if self.l1d.probe(byte_addr) {
            self.vector_l1_evictions += 1;
            if let Some(line) = self.l1d.evict_line(byte_addr) {
                let addr = line * self.params.line_bytes;
                if let Access::Miss {
                    writeback: Some(l2v),
                } = self.l2.access(addr, true)
                {
                    self.post_writeback_to_dram(l2v, now);
                }
            }
        }
        self.access_l2(byte_addr, write, now)
    }

    /// True if the byte's line currently resides in the L2 (test hook).
    pub fn l2_contains(&self, byte_addr: u64) -> bool {
        self.l2.probe(byte_addr)
    }

    /// True if the byte's line currently resides in the L1-d (test hook).
    pub fn l1_contains(&self, byte_addr: u64) -> bool {
        self.l1d.probe(byte_addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hier() -> MemoryHierarchy {
        MemoryHierarchy::new(HierarchyParams::westmere())
    }

    #[test]
    fn scalar_l1_hit_costs_l1_latency() {
        let mut h = hier();
        h.scalar_access(0x1000, false, 0); // warm
        let t = h.scalar_access(0x1000, false, 100);
        assert_eq!(t, 104);
    }

    #[test]
    fn scalar_l2_hit_costs_l1_plus_l2() {
        let mut h = hier();
        h.vector_access(0x1000, false, 0); // line in L2 only
        let t = h.scalar_access(0x1000, false, 100);
        assert_eq!(t, 100 + 4 + 10);
    }

    #[test]
    fn cold_miss_goes_to_dram() {
        let mut h = hier();
        let t = h.scalar_access(0x1000, false, 0);
        // Must include at least tRCD+tCL memory cycles × ratio.
        assert!(t >= 4 + 10 + (9 + 9) * 4);
        assert_eq!(h.stats().dram.requests, 1);
    }

    #[test]
    fn vector_access_bypasses_l1() {
        let mut h = hier();
        h.vector_access(0x2000, false, 0);
        assert!(h.l2_contains(0x2000));
        assert!(!h.l1_contains(0x2000));
        assert_eq!(h.stats().l1.accesses, 0);
    }

    #[test]
    fn vector_hit_in_l2_costs_l2_latency() {
        let mut h = hier();
        h.vector_access(0x2000, false, 0);
        let t = h.vector_access(0x2000, false, 50);
        assert_eq!(t, 60);
    }

    #[test]
    fn vector_evicts_scalar_l1_copy() {
        let mut h = hier();
        h.scalar_access(0x3000, true, 0); // dirty in L1
        assert!(h.l1_contains(0x3000));
        h.vector_access(0x3000, false, 100);
        assert!(!h.l1_contains(0x3000));
        assert_eq!(h.stats().vector_l1_evictions, 1);
        // The dirty data moved into the L2.
        assert!(h.l2_contains(0x3000));
    }

    #[test]
    fn bypass_can_be_disabled() {
        let mut p = HierarchyParams::westmere();
        p.l1_bypass_vector = false;
        let mut h = MemoryHierarchy::new(p);
        h.vector_access(0x2000, false, 0);
        assert!(h.l1_contains(0x2000));
    }

    #[test]
    fn repeated_misses_heat_up_the_l2() {
        let mut h = hier();
        let t_cold = h.vector_access(0x9000, false, 0);
        let t_warm = h.vector_access(0x9000, false, t_cold) - t_cold;
        assert!(t_warm < t_cold);
        assert_eq!(t_warm, 10);
    }

    #[test]
    fn stats_track_all_levels() {
        let mut h = hier();
        h.scalar_access(0, false, 0);
        h.scalar_access(0, false, 10);
        h.vector_access(0x10000, false, 20);
        let s = h.stats();
        assert_eq!(s.l1.accesses, 2);
        assert_eq!(s.l1.hits, 1);
        assert_eq!(s.l2.accesses, 2); // one L1-miss fill + one vector access
        assert_eq!(s.dram.requests, 2);
    }

    #[test]
    fn flush_forgets_contents() {
        let mut h = hier();
        h.scalar_access(0x1000, false, 0);
        h.flush();
        assert!(!h.l1_contains(0x1000));
        assert!(!h.l2_contains(0x1000));
    }

    #[test]
    fn working_set_beyond_l1_spills_to_l2() {
        let mut h = hier();
        // 64 KB working set: 2× the L1, fits the 256 KB L2.
        let lines = 1024u64;
        let mut now = 0;
        for round in 0..2 {
            for i in 0..lines {
                now = h.scalar_access(i * 64, false, now);
            }
            if round == 0 {
                h.reset_stats();
            }
        }
        let s = h.stats();
        // Second round: L1 thrashes but L2 absorbs everything.
        assert!(s.l1.misses > 0);
        assert_eq!(s.dram.requests, 0, "L2-resident set went to DRAM");
    }
}
