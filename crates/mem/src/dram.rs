//! DDR3 DRAM timing model (the DRAMSim2 substitution).
//!
//! Reproduces the memory-system behaviour Table II prescribes:
//!
//! * DDR3-1333, 1.5 ns memory clock — the 2.67 GHz core clocks the memory
//!   controller once every **4 processor cycles**;
//! * 4 ranks × 8 banks, 32,768 rows, 2,048 columns, device width ×4;
//! * **open-page** row-buffer policy with a maximum of **8 row accesses**
//!   before the controller closes the row (starvation avoidance, as in
//!   DRAMSim2's `total_row_accesses` knob);
//! * address layout `row:rank:bank:column:burst` (the layout the paper
//!   found to work best);
//! * 64-byte bursts (one cache line per transaction).
//!
//! The model tracks, per bank, the open row and the earliest memory cycle
//! the bank can accept a new column command, plus a shared data bus. A
//! request's latency is therefore sensitive to row locality (hit/miss/
//! conflict) *and* to bank/bus contention — the two effects that separate
//! unit-stride from scattered vector traffic.

/// DDR3 timing and geometry parameters (memory-clock units).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DramParams {
    /// Processor cycles per memory-controller cycle.
    pub clock_ratio: u64,
    /// Ranks per channel.
    pub ranks: u64,
    /// Banks per rank.
    pub banks: u64,
    /// Rows per bank.
    pub rows: u64,
    /// Columns per row.
    pub columns: u64,
    /// Device width in bits (×4 parts).
    pub device_width: u64,
    /// Burst length in bytes (one transaction).
    pub burst_bytes: u64,
    /// CAS latency (tCL).
    pub t_cl: u64,
    /// RAS-to-CAS delay (tRCD).
    pub t_rcd: u64,
    /// Row precharge (tRP).
    pub t_rp: u64,
    /// Data transfer occupancy of one burst on the bus (BL8 → 4 memory
    /// cycles).
    pub t_burst: u64,
    /// Maximum column accesses served from one open row before the
    /// controller force-closes it.
    pub max_row_accesses: u64,
    /// Transaction queue capacity (Table II).
    pub transaction_queue: usize,
    /// Command queue capacity (Table II).
    pub command_queue: usize,
}

impl DramParams {
    /// Table II configuration: DDR3-1333 under a 2.67 GHz core.
    pub fn ddr3_1333() -> Self {
        Self {
            clock_ratio: 4,
            ranks: 4,
            banks: 8,
            rows: 32_768,
            columns: 2_048,
            device_width: 4,
            burst_bytes: 64,
            // DDR3-1333H: CL-RCD-RP = 9-9-9 memory cycles.
            t_cl: 9,
            t_rcd: 9,
            t_rp: 9,
            t_burst: 4,
            max_row_accesses: 8,
            transaction_queue: 64,
            command_queue: 256,
        }
    }

    /// Bytes held in one row buffer across the rank: `columns ×
    /// device_width × devices-per-rank / 8`. With ×4 parts filling a 64-bit
    /// bus there are 16 devices: 2,048 × 4 × 16 / 8 = 16 KB.
    pub fn row_buffer_bytes(&self) -> u64 {
        let devices = 64 / self.device_width;
        self.columns * self.device_width * devices / 8
    }
}

/// How a request interacted with the row buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowOutcome {
    /// Open row matched (tCL only).
    Hit,
    /// Bank was idle/precharged (tRCD + tCL).
    Miss,
    /// A different row was open (tRP + tRCD + tCL).
    Conflict,
}

/// Decomposed physical address (layout `row:rank:bank:column:burst`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedAddr {
    /// Row index within the bank.
    pub row: u64,
    /// Rank index.
    pub rank: u64,
    /// Bank index within the rank.
    pub bank: u64,
    /// Column-burst index within the row.
    pub column: u64,
}

/// Data-bus reservation schedule. The controller's 64-deep transaction
/// queue (Table II) lets it reorder requests and backfill idle bus slots,
/// so a late-arriving request must not starve earlier-timestamped traffic:
/// reservations claim the earliest idle gap at or after their ready time.
#[derive(Debug, Clone, Default)]
struct BusSchedule {
    /// Sorted, disjoint busy intervals `[start, end)`, pruned from the
    /// front as they age out.
    busy: std::collections::VecDeque<(u64, u64)>,
}

impl BusSchedule {
    /// Reserves `width` cycles at the earliest point ≥ `earliest`;
    /// returns the reserved start.
    fn reserve(&mut self, earliest: u64, width: u64) -> u64 {
        let mut start = earliest;
        let mut insert_at = self.busy.len();
        for (i, &(b, e)) in self.busy.iter().enumerate() {
            if start + width <= b {
                insert_at = i;
                break;
            }
            if start < e {
                start = e;
            }
        }
        self.busy.insert(insert_at, (start, start + width));
        // Coalesce + prune to bound the schedule (the transaction queue
        // depth bounds how far back the controller can reorder).
        while self.busy.len() > 128 {
            self.busy.pop_front();
        }
        start
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct BankState {
    open_row: Option<u64>,
    /// Earliest memory cycle the bank can start a new command.
    ready: u64,
    /// Column accesses served from the currently open row.
    row_uses: u64,
}

/// Aggregate counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Total transactions.
    pub requests: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Row misses (bank precharged).
    pub row_misses: u64,
    /// Row conflicts (wrong row open).
    pub row_conflicts: u64,
    /// Rows force-closed by the 8-access policy.
    pub forced_closes: u64,
}

/// The memory controller + DRAM devices.
#[derive(Debug, Clone)]
pub struct Dram {
    params: DramParams,
    banks: Vec<BankState>, // ranks × banks
    /// Shared data bus reservations.
    bus: BusSchedule,
    stats: DramStats,
}

impl Dram {
    /// Creates a DRAM system with the given parameters.
    pub fn new(params: DramParams) -> Self {
        let nbanks = (params.ranks * params.banks) as usize;
        Self {
            params,
            banks: vec![BankState::default(); nbanks],
            bus: BusSchedule::default(),
            stats: DramStats::default(),
        }
    }

    /// The configured parameters.
    pub fn params(&self) -> &DramParams {
        &self.params
    }

    /// Counters.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Resets counters (not device state).
    pub fn reset_stats(&mut self) {
        self.stats = DramStats::default();
    }

    /// Splits a byte address per `row:rank:bank:column:burst`.
    pub fn decode(&self, byte_addr: u64) -> DecodedAddr {
        let p = &self.params;
        let mut a = byte_addr / p.burst_bytes; // drop burst offset
        let bursts_per_row = p.row_buffer_bytes() / p.burst_bytes;
        let column = a % bursts_per_row;
        a /= bursts_per_row;
        let bank = a % p.banks;
        a /= p.banks;
        let rank = a % p.ranks;
        a /= p.ranks;
        let row = a % p.rows;
        DecodedAddr {
            row,
            rank,
            bank,
            column,
        }
    }

    /// Issues one 64-byte transaction at processor cycle `cpu_now`; returns
    /// the processor cycle at which the data transfer completes.
    ///
    /// Writes use the same bank/bus occupancy as reads (write latency is
    /// posted, but the bank is busy, which is what back-pressures the
    /// pipeline).
    pub fn access(&mut self, byte_addr: u64, cpu_now: u64) -> u64 {
        let p = self.params.clone();
        let d = self.decode(byte_addr);
        let mem_now = cpu_now.div_ceil(p.clock_ratio);
        let bank_idx = (d.rank * p.banks + d.bank) as usize;

        self.stats.requests += 1;
        let (start, outcome, act_latency) = {
            let bank = &mut self.banks[bank_idx];
            let start = mem_now.max(bank.ready);
            // Row-buffer outcome (with the forced-close policy applied
            // first).
            let force_closed = bank.open_row.is_some() && bank.row_uses >= p.max_row_accesses;
            if force_closed {
                bank.open_row = None;
                bank.row_uses = 0;
                self.stats.forced_closes += 1;
            }
            let (outcome, act_latency) = match bank.open_row {
                Some(r) if r == d.row => (RowOutcome::Hit, p.t_cl),
                Some(_) => (RowOutcome::Conflict, p.t_rp + p.t_rcd + p.t_cl),
                None => (RowOutcome::Miss, p.t_rcd + p.t_cl),
            };
            (start, outcome, act_latency)
        };
        match outcome {
            RowOutcome::Hit => self.stats.row_hits += 1,
            RowOutcome::Miss => self.stats.row_misses += 1,
            RowOutcome::Conflict => self.stats.row_conflicts += 1,
        }

        // Column data must also win a slot on the shared data bus; the
        // controller backfills idle slots (reordering within its
        // transaction queue), so late arrivals cannot starve earlier ones.
        let data_start = self.bus.reserve(start + act_latency, p.t_burst);
        let done = data_start + p.t_burst;
        // Column commands to an open row pipeline at tCCD (= t_burst):
        // the bank accepts the next command while this data is in flight.
        let bank = &mut self.banks[bank_idx];
        bank.ready = start + act_latency + p.t_burst - p.t_cl;
        bank.open_row = Some(d.row);
        bank.row_uses = if outcome == RowOutcome::Hit {
            bank.row_uses + 1
        } else {
            1
        };

        done * p.clock_ratio
    }

    /// Closes all rows and idles all banks (between experiments).
    pub fn quiesce(&mut self) {
        for b in &mut self.banks {
            *b = BankState::default();
        }
        self.bus = BusSchedule::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(DramParams::ddr3_1333())
    }

    #[test]
    fn row_buffer_is_16kb() {
        assert_eq!(DramParams::ddr3_1333().row_buffer_bytes(), 16 * 1024);
    }

    #[test]
    fn decode_layout_row_rank_bank_column() {
        let d = dram();
        let p = d.params().clone();
        let bursts_per_row = p.row_buffer_bytes() / p.burst_bytes; // 256
                                                                   // Walk one field at a time.
        let a = d.decode(0);
        assert_eq!((a.row, a.rank, a.bank, a.column), (0, 0, 0, 0));
        let a = d.decode(p.burst_bytes);
        assert_eq!(a.column, 1);
        let a = d.decode(p.burst_bytes * bursts_per_row);
        assert_eq!((a.bank, a.column), (1, 0));
        let a = d.decode(p.burst_bytes * bursts_per_row * p.banks);
        assert_eq!((a.rank, a.bank), (1, 0));
        let a = d.decode(p.burst_bytes * bursts_per_row * p.banks * p.ranks);
        assert_eq!((a.row, a.rank, a.bank), (1, 0, 0));
    }

    #[test]
    fn first_access_is_row_miss() {
        let mut d = dram();
        d.access(0, 0);
        assert_eq!(d.stats().row_misses, 1);
    }

    #[test]
    fn second_access_same_row_hits_and_is_faster() {
        let mut d = dram();
        let t1 = d.access(0, 0);
        let mut d2 = dram();
        d2.access(0, 0);
        let t2 = d2.access(64, t1) - t1; // relative latency of the hit
        assert_eq!(d2.stats().row_hits, 1);
        let miss_latency = t1;
        assert!(
            t2 < miss_latency,
            "row hit ({t2}) not faster than miss ({miss_latency})"
        );
    }

    #[test]
    fn different_row_same_bank_conflicts() {
        let mut d = dram();
        let p = d.params().clone();
        let row_stride = p.row_buffer_bytes() * p.banks * p.ranks; // next row, same bank
        let t1 = d.access(0, 0);
        d.access(row_stride, t1);
        assert_eq!(d.stats().row_conflicts, 1);
    }

    #[test]
    fn conflict_costs_more_than_hit() {
        let p = DramParams::ddr3_1333();
        let row_stride = p.row_buffer_bytes() * p.banks * p.ranks;

        let mut hit = Dram::new(p.clone());
        let t = hit.access(0, 0);
        let hit_latency = hit.access(64, t) - t;

        let mut conf = Dram::new(p);
        let t = conf.access(0, 0);
        let conf_latency = conf.access(row_stride, t) - t;
        assert!(conf_latency > hit_latency);
    }

    #[test]
    fn forced_close_after_eight_row_accesses() {
        let mut d = dram();
        let mut now = 0;
        // 1 activating miss + 7 hits = 8 row accesses, the budget.
        for i in 0..8u64 {
            now = d.access(i * 64, now);
        }
        assert_eq!(d.stats().row_hits, 7);
        assert_eq!(d.stats().forced_closes, 0);
        // The 9th access to the same row pays a forced-close miss.
        d.access(8 * 64, now);
        assert_eq!(d.stats().forced_closes, 1);
        assert_eq!(d.stats().row_misses, 2);
    }

    #[test]
    fn banks_overlap_but_bus_serialises_transfers() {
        let mut d = dram();
        let p = d.params().clone();
        let bank_stride = p.row_buffer_bytes(); // next bank
                                                // Two requests to different banks at the same time: the second
                                                // completes one burst after the first, not a full latency after.
        let t1 = d.access(0, 0);
        let t2 = d.access(bank_stride, 0);
        assert!(t2 > t1);
        assert!(
            t2 - t1 <= p.t_burst * p.clock_ratio,
            "bank-parallel requests should pipeline on the bus"
        );
    }

    #[test]
    fn same_bank_row_hits_pipeline_at_burst_rate() {
        let mut d = dram();
        let p = d.params().clone();
        let t1 = d.access(0, 0);
        let t2 = d.access(64, 0); // same row, same bank, immediately after
                                  // Column commands pipeline: spacing is one burst, not a full CAS.
        assert_eq!(t2 - t1, p.t_burst * p.clock_ratio);
    }

    #[test]
    fn streaming_throughput_hits_bus_bound() {
        // 32 sequential lines from one row: after the activating miss,
        // deliveries arrive every t_burst memory cycles (the DDR3-1333
        // bandwidth envelope the paper's vector loads must live within).
        let mut d = dram();
        let p = d.params().clone();
        let mut last = 0;
        let mut gaps = Vec::new();
        for i in 0..8u64 {
            let t = d.access(i * 64, 0);
            if i > 0 {
                gaps.push(t - last);
            }
            last = t;
        }
        assert!(
            gaps.iter().all(|&g| g == p.t_burst * p.clock_ratio),
            "{gaps:?}"
        );
    }

    #[test]
    fn completion_is_cpu_aligned_and_monotonic_per_bank() {
        let mut d = dram();
        let mut now = 0;
        let mut last = 0;
        for i in 0..32u64 {
            let t = d.access(i * 64, now);
            assert_eq!(t % d.params().clock_ratio, 0);
            assert!(t >= last);
            last = t;
            now = t;
        }
    }

    #[test]
    fn quiesce_resets_device_state() {
        let mut d = dram();
        d.access(0, 0);
        d.quiesce();
        d.reset_stats();
        d.access(64, 0);
        // After quiesce the bank is precharged again → row miss, not hit.
        assert_eq!(d.stats().row_misses, 1);
    }
}
