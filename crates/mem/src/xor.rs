//! XOR-based (pseudo-random) cache-set placement.
//!
//! §II-A of the paper: *"We interleave the L2 cache sets using a simple
//! mapping scheme based on irreducible polynomials suggested in [Rau'91,
//! González'97]. This scheme eliminates pathological behaviour where a
//! particular strided memory access uses the same cache set for all its
//! requests."*
//!
//! The implementation follows Rau's formulation: the line address, viewed as
//! a polynomial over GF(2), is reduced modulo an irreducible polynomial of
//! degree `h = log2(sets)`; the residue is the set index. Strides that are
//! powers of two then spread over all sets instead of aliasing onto one.

/// Irreducible polynomials over GF(2) by degree (index = degree, 1..=16).
/// Entry `d` encodes the polynomial's coefficient bits including the leading
/// `x^d` term.
const POLYS: [u64; 17] = [
    0,                       // degree 0 unused
    0b11,                    // x + 1
    0b111,                   // x^2 + x + 1
    0b1011,                  // x^3 + x + 1
    0b1_0011,                // x^4 + x + 1
    0b10_0101,               // x^5 + x^2 + 1
    0b100_0011,              // x^6 + x + 1
    0b1000_0011,             // x^7 + x + 1
    0b1_0001_1101,           // x^8 + x^4 + x^3 + x^2 + 1
    0b10_0001_0001,          // x^9 + x^4 + 1
    0b100_0000_1001,         // x^10 + x^3 + 1
    0b1000_0000_0101,        // x^11 + x^2 + 1
    0b1_0000_0101_0011,      // x^12 + x^6 + x^4 + x + 1
    0b10_0000_0001_1011,     // x^13 + x^4 + x^3 + x + 1
    0b100_0000_0100_0011,    // x^14 + x^6 + x + 1 (x^14+x^10+x^6+x+1 variant ok)
    0b1000_0000_0000_0011,   // x^15 + x + 1
    0b1_0000_0000_0010_1101, // x^16 + x^5 + x^3 + x^2 + 1
];

/// Reduces `line_addr` (as a GF(2) polynomial) modulo the degree-`h`
/// irreducible polynomial, producing a set index in `[0, 2^h)`.
pub fn poly_mod_index(line_addr: u64, sets: u64) -> u64 {
    debug_assert!(sets.is_power_of_two());
    let h = sets.trailing_zeros() as u64;
    if h == 0 {
        return 0;
    }
    assert!(h <= 16, "no polynomial tabulated for degree {h}");
    let poly = POLYS[h as usize];
    let mut a = line_addr;
    // Cancel bits from the top down to degree h.
    let mut bit = 63;
    while bit >= h {
        if (a >> bit) & 1 == 1 {
            a ^= poly << (bit - h);
        }
        if bit == 0 {
            break;
        }
        bit -= 1;
    }
    a & (sets - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn index_is_in_range() {
        for sets in [2u64, 8, 64, 512, 4096] {
            for a in 0..10_000u64 {
                assert!(poly_mod_index(a * 37 + 5, sets) < sets);
            }
        }
    }

    #[test]
    fn sequential_lines_cover_all_sets() {
        let sets = 512;
        let seen: HashSet<u64> = (0..sets).map(|a| poly_mod_index(a, sets)).collect();
        assert_eq!(seen.len(), sets as usize);
    }

    #[test]
    fn power_of_two_stride_no_longer_aliases() {
        // The pathological case the paper cites: stride = sets × line.
        // Modulo placement maps everything to set 0; XOR placement spreads.
        let sets = 512u64;
        let stride_lines = sets; // stride of 512 lines
        let idxs: HashSet<u64> = (0..64u64)
            .map(|i| poly_mod_index(i * stride_lines, sets))
            .collect();
        assert!(
            idxs.len() >= 32,
            "XOR placement left {} distinct sets only",
            idxs.len()
        );
        // Sanity: plain modulo placement collapses to exactly one set.
        let naive: HashSet<u64> = (0..64u64).map(|i| (i * stride_lines) % sets).collect();
        assert_eq!(naive.len(), 1);
    }

    #[test]
    fn distribution_is_roughly_balanced() {
        let sets = 64u64;
        let mut counts = vec![0usize; sets as usize];
        for a in 0..64_000u64 {
            counts[poly_mod_index(a, sets) as usize] += 1;
        }
        let (min, max) = (
            counts.iter().min().copied().unwrap(),
            counts.iter().max().copied().unwrap(),
        );
        assert!(max - min <= max / 4, "imbalanced: min {min}, max {max}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            poly_mod_index(0xDEAD_BEEF, 512),
            poly_mod_index(0xDEAD_BEEF, 512)
        );
    }

    #[test]
    fn single_set_degenerates_to_zero() {
        assert_eq!(poly_mod_index(12345, 1), 0);
    }

    #[test]
    fn identity_below_degree() {
        // Addresses smaller than 2^h reduce to themselves.
        for a in 0..512u64 {
            assert_eq!(poly_mod_index(a, 512), a);
        }
    }
}
