//! # vagg-mem
//!
//! The memory-system substrate for the ISCA 2016 aggregation-vectorisation
//! paper: set-associative caches ([`cache`]), XOR-based L2 set interleaving
//! ([`xor`]), a DDR3-1333 DRAM timing model replacing DRAMSim2 ([`dram`]),
//! and the composed hierarchy with the paper's vector L1-bypass path
//! ([`hierarchy`]).
//!
//! Timing is request-level: each access returns the processor cycle at which
//! it completes, letting the out-of-order model in `vagg-cpu` overlap
//! memory operations while still observing bank conflicts, row-buffer
//! locality and bus occupancy.

#![warn(missing_docs)]

pub mod cache;
pub mod dram;
pub mod hierarchy;
pub mod xor;

pub use cache::{Access, Cache, CacheStats};
pub use dram::{Dram, DramParams, DramStats, RowOutcome};
pub use hierarchy::{HierarchyParams, HierarchyStats, MemoryHierarchy};
pub use xor::poly_mod_index;
