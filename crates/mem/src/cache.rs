//! Set-associative cache model (write-back, write-allocate, true-LRU).
//!
//! Matches the cache hierarchy of Table I: L1-i 32 KB/4-way, L1-d 32 KB/
//! 8-way, L2 256 KB/8-way, all with 64-byte lines. The set-index function is
//! pluggable so the L2 can use the XOR-based placement of §II-A (see
//! [`crate::xor`]).

/// Where a line's set index comes from.
pub type IndexFn = fn(line_addr: u64, sets: u64) -> u64;

/// Default modulo placement: low bits of the line address.
pub fn modulo_index(line_addr: u64, sets: u64) -> u64 {
    line_addr % sets
}

/// Outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// The line was present.
    Hit,
    /// The line was absent; if a dirty victim was evicted its line address
    /// is reported so the caller can write it back to the next level.
    Miss {
        /// Dirty victim evicted by the fill, if any.
        writeback: Option<u64>,
    },
}

impl Access {
    /// Whether this access hit.
    pub fn is_hit(&self) -> bool {
        matches!(self, Access::Hit)
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Higher = more recently used.
    lru: u64,
}

/// Counters exposed by [`Cache::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Hits.
    pub hits: u64,
    /// Misses.
    pub misses: u64,
    /// Dirty lines evicted (write-backs generated).
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss ratio in `[0, 1]`; 0 when no accesses have occurred.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// A single cache level.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: u64,
    ways: usize,
    line_bytes: u64,
    index_fn: IndexFn,
    lines: Vec<Line>, // sets * ways
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Builds a cache of `size_bytes` with `ways` associativity and
    /// `line_bytes` lines, using the default modulo set index.
    ///
    /// # Panics
    ///
    /// Panics unless `size_bytes` is an exact multiple of `ways *
    /// line_bytes` and the set count is a power of two.
    pub fn new(size_bytes: u64, ways: usize, line_bytes: u64) -> Self {
        Self::with_index(size_bytes, ways, line_bytes, modulo_index)
    }

    /// Like [`Cache::new`] but with a custom set-index function.
    pub fn with_index(size_bytes: u64, ways: usize, line_bytes: u64, index_fn: IndexFn) -> Self {
        assert!(ways > 0 && line_bytes > 0);
        assert_eq!(size_bytes % (ways as u64 * line_bytes), 0);
        let sets = size_bytes / (ways as u64 * line_bytes);
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Self {
            sets,
            ways,
            line_bytes,
            index_fn,
            lines: vec![Line::default(); (sets as usize) * ways],
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Access counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets counters (not contents).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn set_range(&self, line_addr: u64) -> std::ops::Range<usize> {
        let set = (self.index_fn)(line_addr, self.sets) as usize;
        let start = set * self.ways;
        start..start + self.ways
    }

    /// Looks up a byte address without modifying state (except no stats).
    pub fn probe(&self, byte_addr: u64) -> bool {
        let line_addr = byte_addr / self.line_bytes;
        self.lines[self.set_range(line_addr)]
            .iter()
            .any(|l| l.valid && l.tag == line_addr)
    }

    /// Accesses a byte address; `write` marks the line dirty. On a miss the
    /// line is allocated (write-allocate for both directions).
    pub fn access(&mut self, byte_addr: u64, write: bool) -> Access {
        let line_addr = byte_addr / self.line_bytes;
        self.tick += 1;
        self.stats.accesses += 1;
        let tick = self.tick;
        let range = self.set_range(line_addr);
        let set = &mut self.lines[range];

        if let Some(l) = set.iter_mut().find(|l| l.valid && l.tag == line_addr) {
            l.lru = tick;
            l.dirty |= write;
            self.stats.hits += 1;
            return Access::Hit;
        }

        self.stats.misses += 1;
        // Victim: invalid way first, else true-LRU.
        let victim = if let Some(v) = set.iter_mut().find(|l| !l.valid) {
            v
        } else {
            set.iter_mut().min_by_key(|l| l.lru).expect("ways > 0")
        };
        let writeback = (victim.valid && victim.dirty).then_some(victim.tag);
        if writeback.is_some() {
            self.stats.writebacks += 1;
        }
        *victim = Line {
            tag: line_addr,
            valid: true,
            dirty: write,
            lru: tick,
        };
        Access::Miss { writeback }
    }

    /// Removes a line if present, returning its address if it was dirty
    /// (used to keep the scalar L1 coherent with the vector L1-bypass path).
    pub fn evict_line(&mut self, byte_addr: u64) -> Option<u64> {
        let line_addr = byte_addr / self.line_bytes;
        let range = self.set_range(line_addr);
        let set = &mut self.lines[range];
        if let Some(l) = set.iter_mut().find(|l| l.valid && l.tag == line_addr) {
            l.valid = false;
            let was_dirty = l.dirty;
            l.dirty = false;
            return was_dirty.then_some(line_addr);
        }
        None
    }

    /// Invalidates everything (e.g. between experiments) without writing
    /// back.
    pub fn flush(&mut self) {
        for l in &mut self.lines {
            *l = Line::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets × 2 ways × 64 B = 512 B.
        Cache::new(512, 2, 64)
    }

    #[test]
    fn geometry() {
        let c = Cache::new(32 * 1024, 8, 64);
        assert_eq!(c.sets(), 64);
        let c = Cache::new(256 * 1024, 8, 64);
        assert_eq!(c.sets(), 512);
        let c = Cache::new(32 * 1024, 4, 64);
        assert_eq!(c.sets(), 128);
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = tiny();
        assert!(!c.access(0x40, false).is_hit());
        assert!(c.access(0x40, false).is_hit());
        assert!(c.access(0x7f, false).is_hit()); // same line
        assert!(!c.access(0x80, false).is_hit()); // next line
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = tiny(); // 4 sets → set stride 256 B for 64 B lines
                            // Three lines mapping to set 0: 0x000, 0x100, 0x200.
        c.access(0x000, false);
        c.access(0x100, false);
        c.access(0x000, false); // touch 0x000 again → 0x100 is LRU
        c.access(0x200, false); // evicts 0x100
        assert!(c.probe(0x000));
        assert!(!c.probe(0x100));
        assert!(c.probe(0x200));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.access(0x000, true); // dirty
        c.access(0x100, false);
        let r = c.access(0x200, false); // evicts dirty 0x000
        assert_eq!(r, Access::Miss { writeback: Some(0) });
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = tiny();
        c.access(0x000, false);
        c.access(0x100, false);
        let r = c.access(0x200, false);
        assert_eq!(r, Access::Miss { writeback: None });
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny();
        c.access(0x000, false);
        c.access(0x000, true); // now dirty via hit
        c.access(0x100, false);
        let r = c.access(0x200, false);
        assert_eq!(r, Access::Miss { writeback: Some(0) });
    }

    #[test]
    fn evict_line_reports_dirtiness() {
        let mut c = tiny();
        c.access(0x000, true);
        assert_eq!(c.evict_line(0x000), Some(0));
        assert!(!c.probe(0x000));
        c.access(0x040, false);
        assert_eq!(c.evict_line(0x040), None);
        assert_eq!(c.evict_line(0xdead_beef), None);
    }

    #[test]
    fn stats_accumulate() {
        let mut c = tiny();
        c.access(0, false);
        c.access(0, false);
        c.access(64, false);
        let s = c.stats();
        assert_eq!(s.accesses, 3);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        assert!((s.miss_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = tiny();
        c.access(0, true);
        c.flush();
        assert!(!c.probe(0));
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = tiny(); // 8 lines total
                            // 16-line working set, round-robin: every access misses.
        for round in 0..3 {
            for i in 0..16u64 {
                let hit = c.access(i * 64, false).is_hit();
                if round > 0 {
                    assert!(!hit, "line {i} unexpectedly survived");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_panic() {
        Cache::new(3 * 64 * 2, 2, 64);
    }
}

#[cfg(test)]
mod model_tests {
    //! Model-based checking: drive the cache and an explicit reference
    //! LRU model with the same access stream and require identical
    //! hit/miss/writeback behaviour.

    use super::*;
    use std::collections::VecDeque;

    /// Reference model: per set, an ordered list of (line, dirty), most
    /// recently used last.
    struct RefLru {
        sets: Vec<VecDeque<(u64, bool)>>,
        ways: usize,
        line_bytes: u64,
    }

    impl RefLru {
        fn new(sets: u64, ways: usize, line_bytes: u64) -> Self {
            Self {
                sets: (0..sets).map(|_| VecDeque::new()).collect(),
                ways,
                line_bytes,
            }
        }

        fn access(&mut self, byte_addr: u64, write: bool) -> Access {
            let line = byte_addr / self.line_bytes;
            let nsets = self.sets.len() as u64;
            let set = &mut self.sets[(line % nsets) as usize];
            if let Some(pos) = set.iter().position(|&(l, _)| l == line) {
                let (l, d) = set.remove(pos).expect("present");
                set.push_back((l, d || write));
                return Access::Hit;
            }
            let writeback = if set.len() == self.ways {
                let (victim, dirty) = set.pop_front().expect("full set");
                dirty.then_some(victim)
            } else {
                None
            };
            set.push_back((line, write));
            Access::Miss { writeback }
        }
    }

    #[test]
    fn agrees_with_reference_lru_on_pseudorandom_stream() {
        let mut cache = Cache::new(4 * 1024, 4, 64); // 16 sets × 4 ways
        let mut model = RefLru::new(16, 4, 64);
        let mut x = 0x12345678u64;
        for i in 0..20_000u64 {
            // Mix of local and far accesses, ~30% writes.
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let addr = (x >> 16) % (32 * 1024);
            let write = x % 10 < 3;
            let got = cache.access(addr, write);
            let expect = model.access(addr, write);
            assert_eq!(got, expect, "divergence at access {i} (addr {addr:#x})");
        }
        let s = cache.stats();
        assert_eq!(s.accesses, 20_000);
        assert_eq!(s.hits + s.misses, 20_000);
    }

    #[test]
    fn agrees_on_adversarial_set_thrash() {
        // ways+1 lines in one set: classic LRU kill pattern.
        let mut cache = Cache::new(4 * 1024, 4, 64); // 16 sets
        let mut model = RefLru::new(16, 4, 64);
        for round in 0..50u64 {
            for k in 0..5u64 {
                let addr = k * 16 * 64; // all map to set 0
                let got = cache.access(addr, round % 2 == 0);
                let expect = model.access(addr, round % 2 == 0);
                assert_eq!(got, expect, "round {round} line {k}");
            }
        }
    }
}
