//! # vagg-cpu
//!
//! Approximate out-of-order superscalar timing model standing in for
//! PTLsim, configured as Table I of the ISCA 2016 aggregation paper
//! (Westmere-like: 4-wide, 128-entry ROB, six scalar execution clusters
//! plus the two vector clusters the paper adds).
//!
//! The model is a greedy scoreboard driven in program order by `vagg-sim`:
//! it applies dispatch bandwidth, ROB occupancy, per-cluster issue queues
//! and widths, functional-unit occupancy and load/store queue capacity, and
//! reports in-order commit times from which total cycle counts derive.

#![warn(missing_docs)]

pub mod params;
pub mod pipeline;

pub use params::{CpuParams, FuKind};
pub use pipeline::Pipeline;
