//! Approximate out-of-order pipeline timing (the PTLsim substitution).
//!
//! A greedy scoreboard model processed in program order. For each micro-op
//! the caller supplies the execution cluster, the functional-unit occupancy
//! and the cycle its source operands become ready; the model returns the
//! issue cycle after applying the structural constraints of Table I:
//!
//! * dispatch bandwidth (4 ops/cycle) behind a 17-stage frontend;
//! * reorder-buffer capacity (128) with in-order commit at 4 ops/cycle;
//! * per-cluster issue queues (8 entries) and issue width (1/cycle);
//! * functional-unit occupancy (e.g. a vector add holds its FU for
//!   `VL/lanes` cycles);
//! * load (48) and store (32) queue capacity for memory ops.
//!
//! Register dependencies are the caller's job (`vagg-sim` tracks a
//! ready-time per architectural register, which is equivalent to ideal
//! renaming — the paper provisions 2× physical registers precisely so that
//! renaming is not a bottleneck). Branches are not modelled: the evaluated
//! kernels are long trip-count loops whose predictors would be near-perfect.

use crate::params::{CpuParams, FuKind};
use std::collections::VecDeque;

/// Busy-interval schedule for one functional unit. Out-of-order issue
/// means an op whose operands are ready early can claim an FU slot ahead
/// of an earlier-dispatched op that is still waiting on its inputs, so
/// reservations fill the earliest idle gap rather than appending to a
/// cursor. The window is bounded by the issue queue's reach.
#[derive(Debug, Clone, Default)]
struct FuSchedule {
    busy: VecDeque<(u64, u64)>,
}

impl FuSchedule {
    /// Earliest start ≥ `earliest` with `width` free cycles, without
    /// reserving it.
    fn probe(&self, earliest: u64, width: u64) -> u64 {
        let mut start = earliest;
        for &(b, e) in &self.busy {
            if start + width <= b {
                break;
            }
            if start < e {
                start = e;
            }
        }
        start
    }

    /// Reserves `[start, start + width)`; `start` must come from
    /// [`FuSchedule::probe`] with the same arguments.
    fn reserve(&mut self, start: u64, width: u64) {
        let at = self
            .busy
            .iter()
            .position(|&(b, _)| b >= start)
            .unwrap_or(self.busy.len());
        self.busy.insert(at, (start, start + width));
        while self.busy.len() > 64 {
            self.busy.pop_front();
        }
    }
}

#[derive(Debug, Clone)]
struct ClusterState {
    /// Reservation schedule of each functional unit in this cluster.
    fus: Vec<FuSchedule>,
    /// Recent issue cycles (issue width = 1/cycle/cluster).
    issued: VecDeque<u64>,
    /// Issue times of ops still notionally queued (capacity = IQ size).
    queue: VecDeque<u64>,
}

impl ClusterState {
    fn new(units: usize) -> Self {
        Self {
            fus: vec![FuSchedule::default(); units],
            issued: VecDeque::new(),
            queue: VecDeque::new(),
        }
    }

    /// Finds a free issue cycle ≥ `start` (one issue per cycle per
    /// cluster).
    fn issue_slot(&mut self, mut start: u64, issue_per_cycle: u64) -> u64 {
        if issue_per_cycle > 1 {
            return start;
        }
        while self.issued.contains(&start) {
            start += 1;
        }
        self.issued.push_back(start);
        while self.issued.len() > 64 {
            self.issued.pop_front();
        }
        start
    }
}

/// The pipeline model. Feed it micro-ops in program order via
/// [`Pipeline::dispatch`] and report each op's completion via
/// [`Pipeline::retire`].
#[derive(Debug, Clone)]
pub struct Pipeline {
    params: CpuParams,
    clusters: Vec<Vec<ClusterState>>, // [FuKind ordinal][cluster index]
    /// Next dispatch slot: cycle + ops already dispatched that cycle.
    dispatch_cycle: u64,
    dispatch_in_cycle: u64,
    /// Commit times of in-flight ops (ROB occupancy).
    rob: VecDeque<u64>,
    last_commit: u64,
    commits_in_cycle: u64,
    /// Completion times of in-flight loads/stores (LQ/SQ occupancy).
    load_queue: VecDeque<u64>,
    store_queue: VecDeque<u64>,
    ops: u64,
    ops_by_kind: [u64; 6],
    busy_by_kind: [u64; 6],
}

const KINDS: [FuKind; 6] = [
    FuKind::LoadAgu,
    FuKind::StoreAgu,
    FuKind::StoreData,
    FuKind::ScalarArith,
    FuKind::VecMemAgu,
    FuKind::VecArith,
];

fn ordinal(kind: FuKind) -> usize {
    KINDS.iter().position(|&k| k == kind).expect("known kind")
}

impl Pipeline {
    /// Creates an empty pipeline; the first op dispatches after the
    /// frontend fill latency.
    pub fn new(params: CpuParams) -> Self {
        let clusters = KINDS
            .iter()
            .map(|&k| {
                (0..k.clusters())
                    .map(|_| ClusterState::new(k.units_per_cluster()))
                    .collect()
            })
            .collect();
        Self {
            dispatch_cycle: params.frontend_stages,
            dispatch_in_cycle: 0,
            clusters,
            rob: VecDeque::new(),
            last_commit: 0,
            commits_in_cycle: 0,
            load_queue: VecDeque::new(),
            store_queue: VecDeque::new(),
            ops: 0,
            ops_by_kind: [0; 6],
            busy_by_kind: [0; 6],
            params,
        }
    }

    /// The configured parameters.
    pub fn params(&self) -> &CpuParams {
        &self.params
    }

    /// Micro-ops dispatched so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Micro-ops dispatched to each execution-cluster family, in
    /// [`FuKind`]'s declaration order (load AGU, store AGU, store data,
    /// scalar arithmetic, vector memory AGU, vector execution).
    pub fn ops_by_kind(&self) -> [u64; 6] {
        self.ops_by_kind
    }

    /// Micro-ops dispatched to one cluster family.
    pub fn ops_of_kind(&self, kind: FuKind) -> u64 {
        self.ops_by_kind[ordinal(kind)]
    }

    /// Functional-unit busy cycles accumulated per cluster family, in
    /// [`FuKind`]'s declaration order. Divide by `cycles() × total
    /// units of the family` for a utilisation fraction — the measure
    /// behind "the vector unit is the bottleneck / is underutilised"
    /// statements (cf. the §V-A average-vector-length collapse).
    pub fn busy_by_kind(&self) -> [u64; 6] {
        self.busy_by_kind
    }

    /// Busy cycles of one cluster family.
    pub fn busy_of_kind(&self, kind: FuKind) -> u64 {
        self.busy_by_kind[ordinal(kind)]
    }

    /// Utilisation fraction of one cluster family so far (0 when no
    /// cycle has elapsed).
    pub fn utilization_of_kind(&self, kind: FuKind) -> f64 {
        if self.last_commit == 0 {
            return 0.0;
        }
        let units = (kind.clusters() * kind.units_per_cluster()) as f64;
        self.busy_of_kind(kind) as f64 / (self.last_commit as f64 * units)
    }

    /// Total simulated cycles: the commit time of the last retired op.
    pub fn cycles(&self) -> u64 {
        self.last_commit
    }

    // Advance the dispatch cursor by one op, honouring dispatch width.
    fn take_dispatch_slot(&mut self, earliest: u64) -> u64 {
        if earliest > self.dispatch_cycle {
            self.dispatch_cycle = earliest;
            self.dispatch_in_cycle = 0;
        }
        let slot = self.dispatch_cycle;
        self.dispatch_in_cycle += 1;
        if self.dispatch_in_cycle >= self.params.dispatch_width {
            self.dispatch_cycle += 1;
            self.dispatch_in_cycle = 0;
        }
        slot
    }

    /// Dispatches one micro-op.
    ///
    /// * `kind` — the execution cluster family;
    /// * `occupancy` — cycles the chosen functional unit stays busy;
    /// * `deps_ready` — cycle all source operands are available.
    ///
    /// Returns the cycle execution *starts* (operands read). The result of
    /// the op is available at `start + occupancy` for single-cycle-latency
    /// units; memory ops learn their completion from the memory hierarchy
    /// and must report it via [`Pipeline::retire`] / the queue hooks.
    pub fn dispatch(&mut self, kind: FuKind, occupancy: u64, deps_ready: u64) -> u64 {
        self.ops += 1;
        self.ops_by_kind[ordinal(kind)] += 1;
        let occupancy = occupancy.max(1);
        self.busy_by_kind[ordinal(kind)] += occupancy;

        // ROB back-pressure: op #i needs a free entry, i.e. the op
        // `reorder_buffer` positions earlier must have committed.
        let mut earliest = 0u64;
        if self.rob.len() >= self.params.reorder_buffer {
            // Oldest commit time gates dispatch.
            earliest = self.rob.pop_front().expect("rob non-empty");
        }
        let dispatch_at = self.take_dispatch_slot(earliest);

        // Choose the best (cluster, FU) pair: the one offering the
        // earliest start for this op's ready time.
        let ord = ordinal(kind);
        let iq_cap = self.params.issue_queue_per_cluster;
        let issue_per = self.params.issue_per_cluster;
        let ready0 = deps_ready.max(dispatch_at + 1);

        let (ci, fi, _) = self.clusters[ord]
            .iter()
            .enumerate()
            .flat_map(|(ci, c)| {
                // Issue-queue back-pressure applies per cluster.
                let iq_ready = if c.queue.len() >= iq_cap {
                    c.queue.front().copied().unwrap_or(0)
                } else {
                    0
                };
                let ready = ready0.max(iq_ready);
                c.fus
                    .iter()
                    .enumerate()
                    .map(move |(fi, fu)| (ci, fi, fu.probe(ready, occupancy)))
            })
            .min_by_key(|&(_, _, s)| s)
            .expect("at least one FU");

        let cluster = &mut self.clusters[ord][ci];
        let mut ready = ready0;
        while cluster.queue.len() >= iq_cap {
            let oldest = cluster.queue.pop_front().expect("queue non-empty");
            ready = ready.max(oldest);
        }
        let slot = cluster.fus[fi].probe(ready, occupancy);
        let start = cluster.issue_slot(slot, issue_per);
        cluster.fus[fi].reserve(start, occupancy);
        cluster.queue.push_back(start);
        start
    }

    /// Reserves a load-queue entry; returns the cycle a slot is free (the
    /// caller should fold this into the op's dependencies). Call
    /// [`Pipeline::complete_load`] with the final completion time.
    pub fn reserve_load_slot(&mut self) -> u64 {
        if self.load_queue.len() >= self.params.load_queue {
            self.load_queue.pop_front().expect("lq non-empty")
        } else {
            0
        }
    }

    /// Records a load's completion for queue-occupancy accounting.
    pub fn complete_load(&mut self, done: u64) {
        self.load_queue.push_back(done);
    }

    /// Reserves a store-queue entry (see [`Pipeline::reserve_load_slot`]).
    pub fn reserve_store_slot(&mut self) -> u64 {
        if self.store_queue.len() >= self.params.store_queue {
            self.store_queue.pop_front().expect("sq non-empty")
        } else {
            0
        }
    }

    /// Records a store's completion.
    pub fn complete_store(&mut self, done: u64) {
        self.store_queue.push_back(done);
    }

    /// Retires one op that produced its result at `complete_at`. Commit is
    /// in order at `commit_width` per cycle; returns the commit cycle.
    pub fn retire(&mut self, complete_at: u64) -> u64 {
        let mut commit = complete_at.max(self.last_commit);
        if commit == self.last_commit {
            if self.commits_in_cycle >= self.params.commit_width {
                commit += 1;
                self.commits_in_cycle = 1;
            } else {
                self.commits_in_cycle += 1;
            }
        } else {
            self.commits_in_cycle = 1;
        }
        self.last_commit = commit;
        self.rob.push_back(commit);
        while self.rob.len() > self.params.reorder_buffer {
            self.rob.pop_front();
        }
        commit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pipe() -> Pipeline {
        Pipeline::new(CpuParams::westmere())
    }

    #[test]
    fn ops_by_kind_tracks_every_cluster_family() {
        let mut p = pipe();
        p.dispatch(FuKind::ScalarArith, 1, 0);
        p.dispatch(FuKind::ScalarArith, 1, 0);
        p.dispatch(FuKind::LoadAgu, 1, 0);
        p.dispatch(FuKind::StoreAgu, 1, 0);
        p.dispatch(FuKind::StoreData, 1, 0);
        p.dispatch(FuKind::VecMemAgu, 4, 0);
        p.dispatch(FuKind::VecArith, 16, 0);
        assert_eq!(p.ops(), 7);
        assert_eq!(p.ops_by_kind().iter().sum::<u64>(), p.ops());
        assert_eq!(p.ops_of_kind(FuKind::ScalarArith), 2);
        assert_eq!(p.ops_of_kind(FuKind::LoadAgu), 1);
        assert_eq!(p.ops_of_kind(FuKind::VecMemAgu), 1);
        assert_eq!(p.ops_of_kind(FuKind::VecArith), 1);
    }

    #[test]
    fn busy_cycles_accumulate_occupancy() {
        let mut p = pipe();
        p.dispatch(FuKind::VecArith, 16, 0);
        p.dispatch(FuKind::VecArith, 16, 0);
        p.dispatch(FuKind::ScalarArith, 1, 0);
        assert_eq!(p.busy_of_kind(FuKind::VecArith), 32);
        assert_eq!(p.busy_of_kind(FuKind::ScalarArith), 1);
        assert_eq!(p.busy_by_kind().iter().sum::<u64>(), 33);
    }

    #[test]
    fn utilization_is_a_fraction() {
        let mut p = pipe();
        for _ in 0..50 {
            let s = p.dispatch(FuKind::VecArith, 16, 0);
            p.retire(s + 16);
        }
        let u = p.utilization_of_kind(FuKind::VecArith);
        assert!(u > 0.0 && u <= 1.0, "utilisation {u} out of range");
        // An untouched family reads zero.
        assert_eq!(p.utilization_of_kind(FuKind::LoadAgu), 0.0);
    }

    #[test]
    fn first_op_waits_for_frontend_fill() {
        let mut p = pipe();
        let start = p.dispatch(FuKind::ScalarArith, 1, 0);
        assert!(start >= CpuParams::westmere().frontend_stages);
    }

    #[test]
    fn dependent_op_waits_for_producer() {
        let mut p = pipe();
        let s1 = p.dispatch(FuKind::ScalarArith, 1, 0);
        let done = s1 + 1;
        let s2 = p.dispatch(FuKind::ScalarArith, 1, done);
        assert!(s2 >= done);
    }

    #[test]
    fn independent_ops_overlap_across_clusters() {
        let mut p = pipe();
        let s1 = p.dispatch(FuKind::ScalarArith, 10, 0);
        let s2 = p.dispatch(FuKind::ScalarArith, 10, 0);
        let s3 = p.dispatch(FuKind::ScalarArith, 10, 0);
        // Three identical arithmetic clusters: all can start near each
        // other rather than serialising behind one FU.
        assert!(s2 < s1 + 10);
        assert!(s3 < s1 + 10);
    }

    #[test]
    fn single_cluster_fu_serialises() {
        let mut p = pipe();
        let s1 = p.dispatch(FuKind::LoadAgu, 10, 0);
        let s2 = p.dispatch(FuKind::LoadAgu, 10, 0);
        assert!(s2 >= s1 + 10, "one load AGU: second op must wait");
    }

    #[test]
    fn vector_cluster_two_fus_overlap_two_ops() {
        let mut p = pipe();
        let s1 = p.dispatch(FuKind::VecArith, 16, 0);
        let s2 = p.dispatch(FuKind::VecArith, 16, 0);
        let s3 = p.dispatch(FuKind::VecArith, 16, 0);
        // Two FUs: ops 1 and 2 overlap; op 3 waits for a unit.
        assert!(s2 < s1 + 16);
        assert!(s3 >= s1 + 16);
    }

    #[test]
    fn issue_width_one_per_cluster_per_cycle() {
        let mut p = pipe();
        let s1 = p.dispatch(FuKind::VecArith, 1, 0);
        let s2 = p.dispatch(FuKind::VecArith, 1, 0);
        assert!(s2 > s1, "two issues in one cycle on one cluster");
    }

    #[test]
    fn dispatch_width_limits_throughput() {
        let mut p = pipe();
        // 40 zero-dependency single-cycle ops across plenty of clusters:
        // dispatch at 4/cycle floors the spread at 10 cycles.
        let mut starts = Vec::new();
        for i in 0..40 {
            let kind = match i % 4 {
                0 => FuKind::ScalarArith,
                1 => FuKind::LoadAgu,
                2 => FuKind::StoreAgu,
                _ => FuKind::StoreData,
            };
            starts.push(p.dispatch(kind, 1, 0));
        }
        let spread = starts.last().unwrap() - starts.first().unwrap();
        assert!(spread >= 9, "dispatch width ignored: spread {spread}");
    }

    #[test]
    fn rob_capacity_backpressures() {
        let mut p = pipe();
        // Fill the ROB with slow ops that all complete late.
        let mut last_start = 0;
        for _ in 0..200 {
            let s = p.dispatch(FuKind::ScalarArith, 1, 0);
            p.retire(s + 500); // everything completes at cycle ~500+
            last_start = s;
        }
        // Op 200 cannot dispatch before ROB entries drain (~500).
        assert!(
            last_start > 400,
            "ROB should have stalled dispatch: start {last_start}"
        );
    }

    #[test]
    fn retire_is_in_order_and_width_limited() {
        let mut p = pipe();
        let c1 = p.retire(100);
        let c2 = p.retire(50); // completed earlier but commits after c1
        assert!(c2 >= c1);
        // Five ops completing at once need two cycles at width 4.
        let mut p = pipe();
        let commits: Vec<u64> = (0..5).map(|_| p.retire(10)).collect();
        assert_eq!(commits[3], 10);
        assert!(commits[4] > 10);
    }

    #[test]
    fn load_queue_slots_recycle() {
        let mut p = pipe();
        let cap = p.params().load_queue;
        for _ in 0..cap {
            assert_eq!(p.reserve_load_slot(), 0);
            p.complete_load(1000);
        }
        // Queue full: next reservation waits for the oldest completion.
        assert_eq!(p.reserve_load_slot(), 1000);
    }

    #[test]
    fn store_queue_slots_recycle() {
        let mut p = pipe();
        let cap = p.params().store_queue;
        for _ in 0..cap {
            assert_eq!(p.reserve_store_slot(), 0);
            p.complete_store(777);
        }
        assert_eq!(p.reserve_store_slot(), 777);
    }

    #[test]
    fn cycles_track_last_commit() {
        let mut p = pipe();
        assert_eq!(p.cycles(), 0);
        p.retire(42);
        assert_eq!(p.cycles(), 42);
        p.retire(40);
        assert!(p.cycles() >= 42);
    }
}

#[cfg(test)]
mod schedule_tests {
    use super::*;

    #[test]
    fn probe_finds_earliest_gap() {
        let mut s = FuSchedule::default();
        s.reserve(10, 5); // busy [10, 15)
        s.reserve(20, 5); // busy [20, 25)
        assert_eq!(s.probe(0, 5), 0); // before everything
        assert_eq!(s.probe(0, 12), 25); // too wide for any gap
        assert_eq!(s.probe(12, 5), 15); // lands in the middle gap
        assert_eq!(s.probe(16, 4), 16); // fits the middle gap exactly
        assert_eq!(s.probe(22, 1), 25); // inside the second interval
    }

    #[test]
    fn reserve_keeps_intervals_sorted_and_disjoint() {
        let mut s = FuSchedule::default();
        let starts: Vec<u64> = [30u64, 0, 15, 7]
            .iter()
            .map(|&e| {
                let st = s.probe(e, 5);
                s.reserve(st, 5);
                st
            })
            .collect();
        // All reservations disjoint.
        let mut iv: Vec<(u64, u64)> = starts.iter().map(|&st| (st, st + 5)).collect();
        iv.sort_unstable();
        for w in iv.windows(2) {
            assert!(w[0].1 <= w[1].0, "overlap: {:?}", iv);
        }
    }

    #[test]
    fn backfilling_lets_late_dispatch_use_early_slot() {
        // The regression the gap model exists for: op A dispatched first
        // but with late-ready operands must not block op B whose operands
        // are ready immediately.
        let mut p = Pipeline::new(CpuParams::westmere());
        let a = p.dispatch(FuKind::VecArith, 16, 1000); // waits on deps
        let b = p.dispatch(FuKind::VecArith, 16, 0); // ready now
        assert!(
            b < a,
            "late-ready op blocked an early-ready one: {b} !< {a}"
        );
        assert!(b < 1000);
    }

    #[test]
    fn issue_slot_enforces_one_per_cycle() {
        let mut c = ClusterState::new(2);
        let s1 = c.issue_slot(5, 1);
        let s2 = c.issue_slot(5, 1);
        let s3 = c.issue_slot(5, 1);
        let mut v = vec![s1, s2, s3];
        v.sort_unstable();
        v.dedup();
        assert_eq!(v.len(), 3, "issue cycles must be distinct");
    }

    #[test]
    fn issue_slot_unlimited_when_width_above_one() {
        let mut c = ClusterState::new(2);
        assert_eq!(c.issue_slot(5, 2), 5);
        assert_eq!(c.issue_slot(5, 2), 5);
    }
}
