//! Microarchitecture parameters (Table I of the paper).

/// Superscalar out-of-order core parameters, Westmere-like.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpuParams {
    /// Instructions fetched per cycle.
    pub fetch_width: u64,
    /// Fetch queue entries.
    pub fetch_queue: u64,
    /// Decode/rename width per cycle.
    pub frontend_width: u64,
    /// Frontend pipeline depth (fetch → dispatch), cycles.
    pub frontend_stages: u64,
    /// Dispatch width per cycle.
    pub dispatch_width: u64,
    /// Writeback width per cycle.
    pub writeback_width: u64,
    /// Commit width per cycle.
    pub commit_width: u64,
    /// Reorder buffer entries.
    pub reorder_buffer: usize,
    /// Issue width per execution cluster.
    pub issue_per_cluster: u64,
    /// Issue-queue entries per cluster.
    pub issue_queue_per_cluster: usize,
    /// Load queue entries.
    pub load_queue: usize,
    /// Store queue entries.
    pub store_queue: usize,
    /// Lockstepped vector lanes.
    pub lanes: usize,
    /// CAM ports for the irregular-DLP instructions (defaults to `lanes`).
    pub cam_ports: usize,
}

impl Default for CpuParams {
    fn default() -> Self {
        Self::westmere()
    }
}

impl CpuParams {
    /// The Table I configuration, with the paper's vector setup
    /// (`lanes = 4`).
    pub fn westmere() -> Self {
        Self {
            fetch_width: 4,
            fetch_queue: 28,
            frontend_width: 4,
            frontend_stages: 17,
            dispatch_width: 4,
            writeback_width: 4,
            commit_width: 4,
            reorder_buffer: 128,
            issue_per_cluster: 1,
            issue_queue_per_cluster: 8,
            load_queue: 48,
            store_queue: 32,
            lanes: 4,
            cam_ports: 4,
        }
    }
}

/// Execution clusters (§II: six scalar clusters plus the two added vector
/// clusters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuKind {
    /// Load address generation.
    LoadAgu,
    /// Store address generation.
    StoreAgu,
    /// Store data.
    StoreData,
    /// Arithmetic (three identical clusters; the model picks the least
    /// loaded).
    ScalarArith,
    /// Vector memory address generation (added cluster #1).
    VecMemAgu,
    /// Vector non-memory execution (added cluster #2, two functional
    /// units).
    VecArith,
}

impl FuKind {
    /// Number of identical clusters of this kind.
    pub fn clusters(self) -> usize {
        match self {
            FuKind::ScalarArith => 3,
            _ => 1,
        }
    }

    /// Functional units inside one cluster of this kind.
    pub fn units_per_cluster(self) -> usize {
        match self {
            FuKind::VecArith => 2,
            _ => 1,
        }
    }

    /// Short display name for reports.
    pub fn name(self) -> &'static str {
        match self {
            FuKind::LoadAgu => "load-agu",
            FuKind::StoreAgu => "store-agu",
            FuKind::StoreData => "store-data",
            FuKind::ScalarArith => "scalar-alu",
            FuKind::VecMemAgu => "vec-mem-agu",
            FuKind::VecArith => "vec-exec",
        }
    }

    /// Every cluster family, in declaration order.
    pub const ALL: [FuKind; 6] = [
        FuKind::LoadAgu,
        FuKind::StoreAgu,
        FuKind::StoreData,
        FuKind::ScalarArith,
        FuKind::VecMemAgu,
        FuKind::VecArith,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn westmere_matches_table1() {
        let p = CpuParams::westmere();
        assert_eq!(p.fetch_width, 4);
        assert_eq!(p.fetch_queue, 28);
        assert_eq!(p.frontend_stages, 17);
        assert_eq!(p.reorder_buffer, 128);
        assert_eq!(p.issue_queue_per_cluster, 8);
        assert_eq!(p.load_queue, 48);
        assert_eq!(p.store_queue, 32);
        // Total issue width 6 across the six scalar clusters.
        let scalar_issue = FuKind::LoadAgu.clusters()
            + FuKind::StoreAgu.clusters()
            + FuKind::StoreData.clusters()
            + FuKind::ScalarArith.clusters();
        assert_eq!(scalar_issue as u64 * p.issue_per_cluster, 6);
    }

    #[test]
    fn vector_cluster_has_two_fus() {
        assert_eq!(FuKind::VecArith.units_per_cluster(), 2);
        assert_eq!(FuKind::VecMemAgu.units_per_cluster(), 1);
        assert_eq!(FuKind::ScalarArith.clusters(), 3);
    }
}
