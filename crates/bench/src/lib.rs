//! # vagg-bench
//!
//! The benchmark harness regenerating every table and figure of the
//! paper's evaluation. The [`grid`] module sweeps the 110-dataset
//! experimental grid and renders figure series (CSV) and speedup tables
//! (markdown); the `repro` binary drives it from the command line
//! (`repro all --rows 1000000 --out results/`).
//!
//! Criterion micro-benchmarks (one per figure/table plus ISA-level
//! primitives) live under `benches/` and exercise the same code paths on
//! reduced grids, measuring *host* time of the simulator; the simulated
//! cycle counts that reproduce the paper's numbers come from the `repro`
//! binary.

#![warn(missing_docs)]

pub mod grid;
pub mod plot;
pub mod quick;

pub use grid::{Cell, GridRunner, Series, SpeedupTable};
