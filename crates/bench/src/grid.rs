//! The experimental grid runner: produces the figure series and speedup
//! tables of the paper's evaluation (§III–§V).
//!
//! A [`GridRunner`] sweeps distributions × cardinalities for a chosen row
//! count, runs algorithms on freshly generated datasets, and renders:
//!
//! * **figure series** (Figures 4, 6, 9, 12, 16, 17): cycles-per-tuple per
//!   dataset, as CSV — one column per distribution, one row per
//!   cardinality;
//! * **speedup tables** (Tables IV–VIII): average speedup (and standard
//!   deviation) over the scalar baseline per cardinality division;
//! * **Table IX**: the best algorithm per cell plus the ideal/realistic
//!   adaptive averages.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use vagg_core::{run_adaptive, run_algorithm, AdaptiveMode, Algorithm};
use vagg_datagen::{DatasetSpec, Distribution, Division, CARDINALITIES};
use vagg_sim::SimConfig;

/// One (distribution, cardinality) cell key.
pub type Cell = (Distribution, u64);

/// CPT results for one algorithm across the grid.
#[derive(Debug, Clone, Default)]
pub struct Series {
    /// Cycles per tuple, keyed by cell.
    pub cpt: BTreeMap<Cell, f64>,
}

/// Sweeps the experimental grid.
#[derive(Debug, Clone)]
pub struct GridRunner {
    /// Simulator configuration.
    pub cfg: SimConfig,
    /// Rows per dataset (the paper uses 10,000,000; scaled runs use less).
    pub rows: usize,
    /// Cardinalities to sweep (default: all 22).
    pub cards: Vec<u64>,
    /// Distributions to sweep (default: all 5).
    pub dists: Vec<Distribution>,
    /// Base seed.
    pub seed: u64,
}

impl GridRunner {
    /// A runner over the full grid at `rows` rows per dataset.
    pub fn new(rows: usize) -> Self {
        Self {
            cfg: SimConfig::paper(),
            rows,
            cards: CARDINALITIES.to_vec(),
            dists: Distribution::ALL.to_vec(),
            seed: 0,
        }
    }

    /// Restricts the sweep to cardinalities that do not exceed `max`.
    /// Useful for scaled-down runs where `c >> n` cells are degenerate.
    pub fn clamp_cards(mut self, max: u64) -> Self {
        self.cards.retain(|&c| c <= max);
        self
    }

    /// Every cell in sweep order.
    pub fn cells(&self) -> Vec<Cell> {
        let mut v = Vec::new();
        for &d in &self.dists {
            for &c in &self.cards {
                v.push((d, c));
            }
        }
        v
    }

    fn dataset(&self, cell: Cell) -> vagg_datagen::Dataset {
        DatasetSpec::paper(cell.0, cell.1)
            .with_rows(self.rows)
            .with_seed(self.seed)
            .generate()
    }

    /// Runs one algorithm over the whole grid.
    pub fn run_series(&self, alg: Algorithm) -> Series {
        self.run_series_with(alg, |_, _| {})
    }

    /// Like [`GridRunner::run_series`] but with a progress callback
    /// `(done, total)`.
    pub fn run_series_with(
        &self,
        alg: Algorithm,
        mut progress: impl FnMut(usize, usize),
    ) -> Series {
        let cells = self.cells();
        let total = cells.len();
        let mut out = Series::default();
        for (i, cell) in cells.into_iter().enumerate() {
            let ds = self.dataset(cell);
            let run = run_algorithm(alg, &self.cfg, &ds);
            debug_assert_eq!(run.result, vagg_core::reference(&ds.g, &ds.v));
            out.cpt.insert(cell, run.cpt);
            progress(i + 1, total);
        }
        out
    }

    /// Runs the adaptive implementation over the whole grid.
    pub fn run_adaptive_series(&self, mode: AdaptiveMode) -> Series {
        let mut out = Series::default();
        for cell in self.cells() {
            let ds = self.dataset(cell);
            let run = run_adaptive(&self.cfg, &ds, mode);
            out.cpt.insert(cell, run.cpt);
        }
        out
    }

    /// Composes the adaptive series from already-measured per-algorithm
    /// series without re-simulating anything.
    ///
    /// The adaptive implementation's cycle cost *is* the cost of whatever
    /// algorithm the §V-D planner selects (selection reads metadata the
    /// algorithms compute anyway — see [`vagg_core::adaptive`]), so given
    /// each candidate's CPT for a cell the adaptive CPT is a lookup. Only
    /// dataset *generation* is repeated here, to recover the planner's
    /// runtime cardinality estimate.
    ///
    /// Returns `None` if a cell's selected algorithm is missing from
    /// `series`.
    pub fn adaptive_series_from(
        &self,
        mode: AdaptiveMode,
        series: &[(Algorithm, Series)],
    ) -> Option<Series> {
        use vagg_core::{select_algorithm, PlannerInputs};
        let mut out = Series::default();
        for cell in self.cells() {
            let ds = self.dataset(cell);
            let inputs = PlannerInputs {
                presorted: ds.spec.distribution.is_presorted(),
                cardinality: ds.max_group_key() as u64 + 1,
                rows: ds.len(),
                mvl: self.cfg.mvl,
            };
            let oracle = match mode {
                AdaptiveMode::Ideal => Some(ds.spec.distribution),
                AdaptiveMode::Realistic => None,
            };
            let alg = select_algorithm(&inputs, oracle, mode);
            let cpt = series.iter().find(|(a, _)| *a == alg)?.1.cpt.get(&cell)?;
            out.cpt.insert(cell, *cpt);
        }
        Some(out)
    }

    /// Renders a figure series as CSV (`cardinality, <dist...>`).
    pub fn series_csv(&self, s: &Series) -> String {
        let mut out = String::from("cardinality");
        for d in &self.dists {
            write!(out, ",{}", d.name()).unwrap();
        }
        out.push('\n');
        for &c in &self.cards {
            write!(out, "{c}").unwrap();
            for &d in &self.dists {
                match s.cpt.get(&(d, c)) {
                    Some(v) => write!(out, ",{v:.3}").unwrap(),
                    None => out.push(','),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Per-division average speedup (and standard deviation) of `alg`
    /// over `base`, in the paper's table layout.
    pub fn speedup_table(&self, base: &Series, alg: &Series) -> SpeedupTable {
        let mut table = SpeedupTable::default();
        for &d in &self.dists {
            let mut row = Vec::new();
            for div in Division::ALL {
                let speedups: Vec<f64> = self
                    .cards
                    .iter()
                    .filter(|&&c| Division::of_cardinality(c) == div)
                    .filter_map(|&c| {
                        let b = base.cpt.get(&(d, c))?;
                        let a = alg.cpt.get(&(d, c))?;
                        Some(b / a)
                    })
                    .collect();
                row.push(stats(&speedups));
            }
            table.rows.push((d, row));
        }
        table
    }
}

/// A `(mean, stdev)` table cell.
pub type CellPoint = (f64, f64);

/// Mean/stdev per division for one distribution row.
#[derive(Debug, Clone, Default)]
pub struct SpeedupTable {
    /// One row per distribution: (distribution, per-division (mean,
    /// stdev); `None` when the division had no swept cardinalities).
    pub rows: Vec<(Distribution, Vec<Option<CellPoint>>)>,
}

impl SpeedupTable {
    /// Markdown rendering in the paper's layout.
    pub fn to_markdown(&self, caption: &str) -> String {
        let mut out = format!("**{caption}**\n\n");
        out.push_str("| dataset | low | low-normal | high-normal | high |\n");
        out.push_str("|---|---|---|---|---|\n");
        for (d, cells) in &self.rows {
            write!(out, "| {} |", d.name()).unwrap();
            for cell in cells {
                match cell {
                    Some((m, s)) => write!(out, " {m:.1}x ({s:.1}) |").unwrap(),
                    None => out.push_str(" — |"),
                }
            }
            out.push('\n');
        }
        out
    }

    /// The (distribution, division) cell, if swept.
    pub fn cell(&self, d: Distribution, div: Division) -> Option<(f64, f64)> {
        let idx = Division::ALL.iter().position(|&x| x == div)?;
        self.rows.iter().find(|(x, _)| *x == d)?.1[idx]
    }
}

fn stats(xs: &[f64]) -> Option<(f64, f64)> {
    if xs.is_empty() {
        return None;
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
    Some((mean, var.sqrt()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_runner() -> GridRunner {
        let mut r = GridRunner::new(640);
        r.cards = vec![4, 19];
        r.dists = vec![Distribution::Uniform, Distribution::Sorted];
        r
    }

    #[test]
    fn series_covers_all_cells() {
        let r = tiny_runner();
        let s = r.run_series(Algorithm::Monotable);
        assert_eq!(s.cpt.len(), 4);
        assert!(s.cpt.values().all(|&v| v > 0.0));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let r = tiny_runner();
        let s = r.run_series(Algorithm::Scalar);
        let csv = r.series_csv(&s);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "cardinality,uniform,sorted");
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("4,"));
    }

    #[test]
    fn speedup_table_structure() {
        let r = tiny_runner();
        let base = r.run_series(Algorithm::Scalar);
        let s = r.run_series(Algorithm::Monotable);
        let t = r.speedup_table(&base, &s);
        assert_eq!(t.rows.len(), 2);
        // Only the `low` division was swept.
        let low = t.cell(Distribution::Uniform, Division::Low).unwrap();
        assert!(low.0 > 0.0);
        assert!(t.cell(Distribution::Uniform, Division::High).is_none());
        let md = t.to_markdown("test");
        assert!(md.contains("| uniform |"));
    }

    #[test]
    fn clamp_cards_filters() {
        let r = GridRunner::new(100).clamp_cards(1000);
        assert!(r.cards.iter().all(|&c| c <= 1000));
        assert_eq!(r.cards.len(), 8);
    }

    #[test]
    fn adaptive_series_runs() {
        let r = tiny_runner();
        let s = r.run_adaptive_series(AdaptiveMode::Realistic);
        assert_eq!(s.cpt.len(), 4);
    }

    #[test]
    fn adaptive_series_from_matches_resimulation() {
        let r = tiny_runner();
        let series: Vec<(Algorithm, Series)> = Algorithm::VECTORISED
            .into_iter()
            .map(|a| (a, r.run_series(a)))
            .collect();
        for mode in [AdaptiveMode::Ideal, AdaptiveMode::Realistic] {
            let composed = r.adaptive_series_from(mode, &series).unwrap();
            let resim = r.run_adaptive_series(mode);
            assert_eq!(composed.cpt, resim.cpt, "{mode:?}");
        }
        // Missing candidate series → None, not a panic.
        let only_mono: Vec<(Algorithm, Series)> = series
            .iter()
            .filter(|(a, _)| *a == Algorithm::Monotable)
            .cloned()
            .collect();
        // The tiny grid's cells may all select monotable; force a cell
        // that cannot: a presorted low-cardinality dataset picks
        // polytable or ssr, so composing from monotable alone fails.
        let mut sorted_runner = tiny_runner();
        sorted_runner.dists = vec![Distribution::Sorted];
        sorted_runner.cards = vec![4];
        assert!(sorted_runner
            .adaptive_series_from(AdaptiveMode::Realistic, &only_mono)
            .is_none());
    }
}
