use vagg_core::{run_adaptive, run_algorithm, AdaptiveMode, Algorithm};
use vagg_datagen::{DatasetSpec, Distribution};
use vagg_sim::SimConfig;

fn main() {
    let cfg = SimConfig::paper();
    let n = 20_000;
    let cells: Vec<_> = Distribution::ALL
        .iter()
        .flat_map(|&d| [76u64, 9_765, 78_125].map(|c| (d, c)))
        .collect();
    let mut adaptive = 0.0;
    let mut fixed: Vec<(Algorithm, f64)> =
        Algorithm::VECTORISED.iter().map(|&a| (a, 0.0)).collect();
    for &(d, c) in &cells {
        let ds = DatasetSpec::paper(d, c)
            .with_rows(n)
            .with_seed(3)
            .generate();
        let scalar = run_algorithm(Algorithm::Scalar, &cfg, &ds).cpt;
        let ad = scalar / run_adaptive(&cfg, &ds, AdaptiveMode::Realistic).cpt;
        adaptive += ad;
        print!("{:>10} c={:<7} adaptive {:.2}", d.name(), c, ad);
        for (alg, total) in fixed.iter_mut() {
            let s = scalar / run_algorithm(*alg, &cfg, &ds).cpt;
            *total += s;
            print!("  {} {:.2}", alg.short_name(), s);
        }
        println!();
    }
    println!("\nTOTALS: adaptive {:.3}", adaptive / cells.len() as f64);
    for (alg, total) in fixed {
        println!(
            "  {:<6} {:.3}",
            alg.short_name(),
            total / cells.len() as f64
        );
    }
}
