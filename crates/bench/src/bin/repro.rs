//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro <command> [--rows N] [--out DIR] [--cards-max C]
//!
//! commands:
//!   config   print Tables I–III (machine configuration + instruction list)
//!   fig4     scalar baseline CPT series
//!   fig6     standard sorted reduce series + Table IV
//!   fig9     polytable series + Table V
//!   fig12    advanced sorted reduce series + Table VI
//!   fig16    monotable series + Table VII
//!   fig17    partially sorted monotable series + Table VIII
//!   table9   best-algorithm summary + adaptive ideal/realistic averages
//!   related  §VI-B comparators: monotable/psm vs CDI-style vs scatter-add
//!   ablate   design-choice ablations (L1 bypass, XOR L2, CAM ports, MVL,
//!            lanes, PSM partial-sort bits) in simulated CPT
//!   mix      dynamic instruction mix + average vector length per algorithm
//!   extdist  extension: the two remaining Cieslewicz & Ross distributions
//!            (moving cluster, self-similar) across the cardinality sweep
//!   multicore extension: §VI-A multithreaded-scalar comparator (cores
//!            needed to match the vector speedups)
//!   all      everything above, written under --out (default results/)
//! ```
//!
//! `--rows` defaults to 1,000,000 (the paper uses 10,000,000; CPT is
//! row-normalised — see EXPERIMENTS.md for the scaling discussion).

use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;
use std::time::Instant;
use vagg_bench::{GridRunner, Series};
use vagg_core::{AdaptiveMode, Algorithm};
use vagg_cpu::CpuParams;
use vagg_datagen::{Distribution, Division};
use vagg_isa::Instruction;
use vagg_mem::DramParams;

struct Opts {
    rows: usize,
    out: PathBuf,
    cards_max: u64,
}

fn parse_args() -> (String, Opts) {
    let mut args = std::env::args().skip(1);
    let cmd = args.next().unwrap_or_else(|| usage("missing command"));
    let mut opts = Opts {
        rows: 1_000_000,
        out: PathBuf::from("results"),
        cards_max: u64::MAX,
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--rows" => {
                opts.rows = args
                    .next()
                    .and_then(|v| v.replace('_', "").parse().ok())
                    .unwrap_or_else(|| usage("--rows needs a number"));
            }
            "--out" => {
                opts.out = PathBuf::from(args.next().unwrap_or_else(|| usage("--out needs a dir")));
            }
            "--cards-max" => {
                opts.cards_max = args
                    .next()
                    .and_then(|v| v.replace('_', "").parse().ok())
                    .unwrap_or_else(|| usage("--cards-max needs a number"));
            }
            other => usage(&format!("unknown option {other}")),
        }
    }
    (cmd, opts)
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: repro <config|fig4|fig6|fig9|fig12|fig16|fig17|table9|related|ablate|mix|\
         extdist|multicore|all> [--rows N] [--out DIR] [--cards-max C]"
    );
    std::process::exit(2);
}

fn main() {
    let (cmd, opts) = parse_args();
    fs::create_dir_all(&opts.out).expect("create output dir");
    let runner = GridRunner::new(opts.rows).clamp_cards(opts.cards_max);
    match cmd.as_str() {
        "config" => config(),
        "fig4" => figure(&runner, &opts, Algorithm::Scalar, "fig4", None),
        "fig6" => figure(
            &runner,
            &opts,
            Algorithm::StandardSortedReduce,
            "fig6",
            Some("Table IV"),
        ),
        "fig9" => figure(
            &runner,
            &opts,
            Algorithm::Polytable,
            "fig9",
            Some("Table V"),
        ),
        "fig12" => figure(
            &runner,
            &opts,
            Algorithm::AdvancedSortedReduce,
            "fig12",
            Some("Table VI"),
        ),
        "fig16" => figure(
            &runner,
            &opts,
            Algorithm::Monotable,
            "fig16",
            Some("Table VII"),
        ),
        "fig17" => figure(
            &runner,
            &opts,
            Algorithm::PartiallySortedMonotable,
            "fig17",
            Some("Table VIII"),
        ),
        "table9" => table9(&runner, &opts),
        "related" => related(&runner, &opts),
        "ablate" => ablate(&opts),
        "mix" => mix(&opts),
        "extdist" => extdist(&runner, &opts),
        "multicore" => multicore(&opts),
        "all" => {
            figure(&runner, &opts, Algorithm::Scalar, "fig4", None);
            figure(
                &runner,
                &opts,
                Algorithm::StandardSortedReduce,
                "fig6",
                Some("Table IV"),
            );
            figure(
                &runner,
                &opts,
                Algorithm::Polytable,
                "fig9",
                Some("Table V"),
            );
            figure(
                &runner,
                &opts,
                Algorithm::AdvancedSortedReduce,
                "fig12",
                Some("Table VI"),
            );
            figure(
                &runner,
                &opts,
                Algorithm::Monotable,
                "fig16",
                Some("Table VII"),
            );
            figure(
                &runner,
                &opts,
                Algorithm::PartiallySortedMonotable,
                "fig17",
                Some("Table VIII"),
            );
            table9(&runner, &opts);
            related(&runner, &opts);
            ablate(&opts);
            mix(&opts);
            extdist(&runner, &opts);
            multicore(&opts);
        }
        other => usage(&format!("unknown command {other}")),
    }
}

fn config() {
    let cpu = CpuParams::westmere();
    println!("== Table I: microarchitecture parameters ==");
    println!("fetch width          {}", cpu.fetch_width);
    println!("fetch queue          {}", cpu.fetch_queue);
    println!("frontend width       {}", cpu.frontend_width);
    println!("frontend stages      {}", cpu.frontend_stages);
    println!("dispatch width       {}", cpu.dispatch_width);
    println!("writeback width      {}", cpu.writeback_width);
    println!("commit width         {}", cpu.commit_width);
    println!("reorder buffer       {}", cpu.reorder_buffer);
    println!("issue width/cluster  {}", cpu.issue_per_cluster);
    println!("issue queue/cluster  {}", cpu.issue_queue_per_cluster);
    println!("load queue           {}", cpu.load_queue);
    println!("store queue          {}", cpu.store_queue);
    println!("vector lanes         {}", cpu.lanes);
    println!("CAM ports            {}", cpu.cam_ports);

    let d = DramParams::ddr3_1333();
    println!("\n== Table II: memory system parameters ==");
    println!("type                 DDR3-1333");
    println!("cpu:mem clock ratio  {}", d.clock_ratio);
    println!("ranks                {}", d.ranks);
    println!("banks                {}", d.banks);
    println!("rows                 {}", d.rows);
    println!("columns              {}", d.columns);
    println!("device width         {}", d.device_width);
    println!("burst length (B)     {}", d.burst_bytes);
    println!("CL-RCD-RP            {}-{}-{}", d.t_cl, d.t_rcd, d.t_rp);
    println!("max row accesses     {}", d.max_row_accesses);
    println!("transaction queue    {}", d.transaction_queue);
    println!("command queue        {}", d.command_queue);
    println!("row buffer (B)       {}", d.row_buffer_bytes());

    println!("\n== Table III: non-memory vector instructions ==");
    let mut by_class: BTreeMap<String, Vec<&str>> = BTreeMap::new();
    let mut extensions: Vec<&str> = Vec::new();
    for i in Instruction::ALL {
        if i.is_paper() {
            by_class
                .entry(format!("{:?}", i.class()))
                .or_default()
                .push(i.mnemonic());
        } else {
            extensions.push(i.mnemonic());
        }
    }
    for (class, mnems) in by_class {
        println!("{class:16} {}", mnems.join(", "));
    }
    println!("\n== related-work extensions (§VI-B comparators, not Table III) ==");
    println!("{}", extensions.join(", "));
}

fn figure(runner: &GridRunner, opts: &Opts, alg: Algorithm, fig: &str, table: Option<&str>) {
    let t0 = Instant::now();
    eprintln!(
        "[{fig}] {} at n = {} over {} cells...",
        alg.name(),
        runner.rows,
        runner.cells().len()
    );
    let series = runner.run_series_with(alg, |done, total| {
        if done % 11 == 0 || done == total {
            eprintln!("[{fig}] {done}/{total}");
        }
    });
    eprintln!("[{fig}] done in {:.1}s", t0.elapsed().as_secs_f64());

    let csv = runner.series_csv(&series);
    let path = opts.out.join(format!("{fig}_{}.csv", alg.short_name()));
    fs::write(&path, &csv).expect("write csv");
    fs::write(series_cache_path(runner, opts, alg), &csv).ok();
    let svg = vagg_bench::plot::series_svg(
        runner,
        &series,
        &format!("{fig}: {} (n = {})", alg.name(), runner.rows),
        135.0,
    );
    let svg_path = opts.out.join(format!("{fig}_{}.svg", alg.short_name()));
    fs::write(&svg_path, &svg).expect("write svg");
    println!("# {fig}: {} (CPT series)", alg.name());
    print!("{csv}");
    println!("written: {} and {}", path.display(), svg_path.display());

    if let Some(caption) = table {
        let base = load_or_run_scalar(runner, opts);
        let tbl = runner.speedup_table(&base, &series);
        let md = tbl.to_markdown(&format!(
            "{caption}: average speedups (stdev) of {} over baseline",
            alg.name()
        ));
        let tpath = opts.out.join(format!(
            "{}_{}.md",
            caption.to_lowercase().replace(' ', ""),
            alg.short_name()
        ));
        fs::write(&tpath, &md).expect("write table");
        println!("\n{md}");
        println!("written: {}", tpath.display());
    }
}

// Series caches are keyed by algorithm, row count and grid size so a
// `repro all` run computes each series exactly once (the figure commands
// write them too) and stale caches from other configurations are ignored.
fn series_cache_path(runner: &GridRunner, opts: &Opts, alg: Algorithm) -> PathBuf {
    opts.out.join(format!(
        "cache_{}_n{}_c{}.csv",
        alg.short_name(),
        runner.rows,
        runner.cards.len()
    ))
}

fn load_or_run(runner: &GridRunner, opts: &Opts, alg: Algorithm) -> Series {
    let cache = series_cache_path(runner, opts, alg);
    if let Ok(text) = fs::read_to_string(&cache) {
        if let Some(s) = parse_series_csv(runner, &text) {
            return s;
        }
    }
    eprintln!("[{}] series for speedup tables...", alg.short_name());
    let s = runner.run_series(alg);
    fs::write(&cache, runner.series_csv(&s)).ok();
    s
}

fn load_or_run_scalar(runner: &GridRunner, opts: &Opts) -> Series {
    load_or_run(runner, opts, Algorithm::Scalar)
}

fn parse_series_csv(runner: &GridRunner, text: &str) -> Option<Series> {
    let mut lines = text.lines();
    let header = lines.next()?;
    let dists: Vec<Distribution> = header
        .split(',')
        .skip(1)
        .map(Distribution::parse)
        .collect::<Option<_>>()?;
    let mut s = Series::default();
    for line in lines {
        let mut parts = line.split(',');
        let c: u64 = parts.next()?.parse().ok()?;
        for (&d, v) in dists.iter().zip(parts) {
            if let Ok(v) = v.parse::<f64>() {
                s.cpt.insert((d, c), v);
            }
        }
    }
    // Must cover the runner's grid to be usable.
    let complete = runner.cells().iter().all(|cell| s.cpt.contains_key(cell));
    complete.then_some(s)
}

// §VI-B measured: the paper argues qualitatively that its register-level
// conflict resolution beats best-effort retry (AVX-512-CDI style) and
// memory-side scatter-add; this prints the CPT grid that argument implies.
fn related(runner: &GridRunner, opts: &Opts) {
    let contenders = [
        Algorithm::Monotable,
        Algorithm::PartiallySortedMonotable,
        Algorithm::CdiMonotable,
        Algorithm::ScatterAddMonotable,
    ];
    // A reduced grid: the cells where the §VI-B predictions bind.
    let cards: Vec<u64> = [76u64, 1_220, 78_125]
        .into_iter()
        .filter(|&c| c <= opts.cards_max)
        .collect();
    let dists = [
        Distribution::HeavyHitter,
        Distribution::Uniform,
        Distribution::Zipf,
        Distribution::Sorted,
    ];
    let mut sub = runner.clone();
    sub.cards = cards.clone();
    sub.dists = dists.to_vec();

    let mut md = String::from(
        "**§VI-B comparators: simulated CPT (lower is better)**\n\n\
         | dataset | c | mono | psm | cdi | sam |\n|---|---|---|---|---|---|\n",
    );
    for &d in &dists {
        for &c in &cards {
            eprintln!("[related] {} c={c}...", d.name());
            let mut row = format!("| {} | {c} |", d.name());
            for alg in contenders {
                let ds = vagg_datagen::DatasetSpec::paper(d, c)
                    .with_rows(sub.rows)
                    .with_seed(sub.seed)
                    .generate();
                let run = vagg_core::run_algorithm(alg, &sub.cfg, &ds);
                row += &format!(" {:.1} |", run.cpt);
            }
            md.push_str(&row);
            md.push('\n');
        }
    }
    let path = opts.out.join("related_work.md");
    fs::write(&path, &md).expect("write related_work");
    println!("{md}");
    println!("written: {}", path.display());
}

// The design-choice ablations DESIGN.md §5 calls out, reported in
// simulated CPT on focused cells (the cells where each mechanism binds).
// Rows are capped at 200k: ablation deltas are locality/occupancy effects
// that do not need the full grid's n.
fn ablate(opts: &Opts) {
    use vagg_core::{run_algorithm, Algorithm};
    use vagg_datagen::DatasetSpec;
    use vagg_sim::{Machine, SimConfig};

    let rows = opts.rows.min(200_000);
    let gen = |d: Distribution, c: u64| {
        DatasetSpec::paper(d, c)
            .with_rows(rows)
            .with_seed(0)
            .generate()
    };
    let cpt = |cfg: &SimConfig, alg: Algorithm, ds: &vagg_datagen::Dataset| {
        run_algorithm(alg, cfg, ds).cpt
    };
    let mut md =
        format!("**Design-choice ablations (simulated CPT, lower is better; n = {rows})**\n\n");

    // 1. Vector memory L1 bypass (§II-A): funnelling the vector stream
    // through the single-ported L1-d serialises line requests (1/cycle
    // vs `lanes`/cycle into the interleaved L2), but the out-of-order
    // window overlaps vector memory instructions aggressively enough that
    // the measured delta is small for these kernels — the bypass is
    // roughly latency/bandwidth-neutral at this abstraction level, and
    // its practical motivations (L1 port area, scalar/vector thrash; cf.
    // the `vector_l1_evictions` coherence counter) sit below it.
    eprintln!("[ablate] L1 bypass...");
    let ds = gen(Distribution::Uniform, 1_220);
    md.push_str("*Vector L1 bypass* — monotable, uniform, c = 1,220\n\n");
    md.push_str("| vector memory path | CPT |\n|---|---|\n");
    for (label, bypass) in [("L2 direct (paper)", true), ("through L1-d", false)] {
        let mut cfg = SimConfig::paper();
        cfg.mem.l1_bypass_vector = bypass;
        md.push_str(&format!(
            "| {label} | {:.2} |\n",
            cpt(&cfg, Algorithm::Monotable, &ds)
        ));
    }
    md.push_str(
        "\n(The bypass is near-neutral in cycles here: the OoO window hides \
         the L1's single-port serialisation for these kernels. The paper's \
         motivation — sustained bandwidth without growing L1 ports, and \
         keeping vector streams from thrashing the scalar working set — is \
         structural rather than visible in per-kernel CPT.)\n",
    );

    // 2. XOR-interleaved L2 placement (Rau '91). The pathological case
    // §II-A cites is a strided access whose stride maps every request to
    // the same set group: radix sort's stability transformation streams
    // the input at stride n/MVL, which with n = 2^18 is exactly a
    // power-of-two number of cache lines.
    eprintln!("[ablate] XOR L2 placement...");
    let ds = DatasetSpec::paper(Distribution::Uniform, 1_220)
        .with_rows(1 << 18)
        .with_seed(0)
        .generate();
    md.push_str(
        "\n*L2 set placement* — standard sorted reduce (radix), uniform, \
         c = 1,220, n = 2^18 (power-of-two stride)\n\n",
    );
    md.push_str("| L2 index | CPT |\n|---|---|\n");
    for (label, xor) in [("XOR-interleaved (paper)", true), ("modulo", false)] {
        let mut cfg = SimConfig::paper();
        cfg.mem.xor_l2 = xor;
        md.push_str(&format!(
            "| {label} | {:.2} |\n",
            cpt(&cfg, Algorithm::StandardSortedReduce, &ds)
        ));
    }

    // 3. CAM ports p: sorted input maximises port conflicts (runs of one
    // key), uniform input benefits from conflict-free slices.
    eprintln!("[ablate] CAM ports...");
    let sorted = gen(Distribution::Sorted, 610);
    let uniform = gen(Distribution::Uniform, 610);
    md.push_str("\n*CAM ports* — monotable, c = 610\n\n");
    md.push_str("| p | sorted CPT | uniform CPT |\n|---|---|---|\n");
    for p in [1usize, 2, 4, 8] {
        let cfg = SimConfig::paper().with_cam_ports(p);
        md.push_str(&format!(
            "| {p} | {:.2} | {:.2} |\n",
            cpt(&cfg, Algorithm::Monotable, &sorted),
            cpt(&cfg, Algorithm::Monotable, &uniform)
        ));
    }

    // 4. MVL sweep: polytable's replication footprint scales with MVL
    // (its collapse moves earlier as MVL grows); monotable is MVL-robust.
    eprintln!("[ablate] MVL...");
    let ds = gen(Distribution::Uniform, 2_441);
    md.push_str("\n*Maximum vector length* — uniform, c = 2,441\n\n");
    md.push_str("| MVL | polytable CPT | monotable CPT |\n|---|---|---|\n");
    for mvl in [16usize, 32, 64, 128, 256] {
        let cfg = SimConfig::paper().with_mvl(mvl);
        md.push_str(&format!(
            "| {mvl} | {:.2} | {:.2} |\n",
            cpt(&cfg, Algorithm::Polytable, &ds),
            cpt(&cfg, Algorithm::Monotable, &ds)
        ));
    }

    // 5. Lanes sweep: FU occupancy is ceil(VL/lanes) so arithmetic-bound
    // cells scale until memory binds.
    eprintln!("[ablate] lanes...");
    let ds = gen(Distribution::Uniform, 1_220);
    md.push_str("\n*Lockstepped lanes* — monotable, uniform, c = 1,220\n\n");
    md.push_str("| lanes | CPT |\n|---|---|\n");
    for lanes in [1usize, 2, 4, 8, 16] {
        let cfg = SimConfig::paper().with_lanes(lanes);
        md.push_str(&format!(
            "| {lanes} | {:.2} |\n",
            cpt(&cfg, Algorithm::Monotable, &ds)
        ));
    }

    // 6. PSM partial-sort bit count (§V-C): too few bits leaves the
    // tables thrashing, too many re-pays full-sort overhead.
    eprintln!("[ablate] PSM bits...");
    let ds = gen(Distribution::Uniform, 312_500);
    md.push_str("\n*PSM partial-sort top bits* — uniform, c = 312,500 (0 = plain monotable)\n\n");
    md.push_str("| top bits sorted | CPT |\n|---|---|\n");
    let cfg = SimConfig::paper();
    for bits in [0u32, 2, 4, 6, 8, 11, 14, 19] {
        let mut m = Machine::new(cfg.clone());
        let st = vagg_core::StagedInput::stage(&mut m, &ds);
        let (out, nrows) = vagg_core::psm::psm_aggregate_with_bits(&mut m, &st, bits);
        assert_eq!(out.read(&m, nrows), vagg_core::reference(&ds.g, &ds.v));
        md.push_str(&format!(
            "| {bits} | {:.2} |\n",
            m.cycles() as f64 / ds.len() as f64
        ));
    }

    let path = opts.out.join("ablations.md");
    fs::write(&path, &md).expect("write ablations");
    println!("{md}");
    println!("written: {}", path.display());
}

// Dynamic instruction mix per algorithm: the analysis behind the paper's
// §IV/§V discussion (replication costs, strided-vs-unit-stride access,
// CAM traffic, and the average-vector-length collapse of §V-A).
fn mix(opts: &Opts) {
    use vagg_core::{run_algorithm, Algorithm};
    use vagg_datagen::DatasetSpec;
    use vagg_sim::SimConfig;

    let rows = opts.rows.min(200_000);
    let cfg = SimConfig::paper();
    let mut md = format!("**Dynamic instruction mix (n = {rows})**\n\n");

    for (dist, card) in [
        (Distribution::Uniform, 1_220u64),
        (Distribution::Uniform, 312_500),
        (Distribution::Sorted, 1_220),
    ] {
        if card > opts.cards_max {
            continue;
        }
        eprintln!("[mix] {} c={card}...", dist.name());
        let ds = DatasetSpec::paper(dist, card)
            .with_rows(rows)
            .with_seed(0)
            .generate();
        md.push_str(&format!(
            "*{} c = {card}* — per 1,000 tuples\n\n\
             | algorithm | scalar | v.arith | v.red | v.cam | mask | uload | sload | gather | ustore | sstore | scatter | avg VL | CPT |\n\
             |---|---|---|---|---|---|---|---|---|---|---|---|---|\n",
            dist.name()
        ));
        for alg in Algorithm::PAPER {
            let run = run_algorithm(alg, &cfg, &ds);
            let m = run.mix;
            let per_k = |x: u64| x as f64 * 1000.0 / rows as f64;
            md.push_str(&format!(
                "| {} | {:.1} | {:.1} | {:.1} | {:.1} | {:.1} | {:.1} | {:.1} | {:.1} | {:.1} | {:.1} | {:.1} | {:.1} | {:.1} |\n",
                alg.short_name(),
                per_k(m.scalar_ops()),
                per_k(m.v_elementwise),
                per_k(m.v_reductions),
                per_k(m.v_cam),
                per_k(m.v_mask_ops),
                per_k(m.v_unit_loads),
                per_k(m.v_strided_loads),
                per_k(m.v_gathers),
                per_k(m.v_unit_stores),
                per_k(m.v_strided_stores),
                per_k(m.v_scatters),
                m.avg_vl(),
                run.cpt,
            ));
        }
        md.push('\n');
    }

    // Functional-unit utilisation: which cluster family each algorithm
    // saturates (one representative cell).
    let ds = DatasetSpec::paper(Distribution::Uniform, 1_220)
        .with_rows(rows)
        .with_seed(0)
        .generate();
    md.push_str(
        "*Functional-unit utilisation* — uniform, c = 1,220 (busy \
         fraction of each cluster family's units)\n\n",
    );
    let mut header_done = false;
    for alg in Algorithm::PAPER {
        use vagg_core::StagedInput;
        use vagg_sim::Machine;
        let mut machine = Machine::new(cfg.clone());
        let st = StagedInput::stage(&mut machine, &ds);
        let _ = alg.execute(&mut machine, &st);
        let util = machine.fu_utilization();
        if !header_done {
            md.push_str("| algorithm |");
            for (name, _) in util {
                md.push_str(&format!(" {name} |"));
            }
            md.push_str("\n|---|");
            for _ in util {
                md.push_str("---|");
            }
            md.push('\n');
            header_done = true;
        }
        md.push_str(&format!("| {} |", alg.short_name()));
        for (_, u) in util {
            md.push_str(&format!(" {:.0}% |", u * 100.0));
        }
        md.push('\n');
    }

    let path = opts.out.join("instruction_mix.md");
    fs::write(&path, &md).expect("write mix");
    println!("{md}");
    println!("written: {}", path.display());
}

// Extension beyond the paper: the two remaining Cieslewicz & Ross
// distributions (moving cluster, self-similar). The paper's §III-A suite
// is derived from theirs; these two cells test the adaptive policy on
// inputs it was not tuned for (temporal locality without order; extreme
// recursive skew).
fn extdist(runner: &GridRunner, opts: &Opts) {
    let mut sub = runner.clone();
    sub.dists = vec![Distribution::MovingCluster, Distribution::SelfSimilar];

    let algs = [
        Algorithm::Scalar,
        Algorithm::Polytable,
        Algorithm::StandardSortedReduce,
        Algorithm::AdvancedSortedReduce,
        Algorithm::Monotable,
        Algorithm::PartiallySortedMonotable,
    ];
    let mut series: Vec<(Algorithm, Series)> = Vec::new();
    for alg in algs {
        eprintln!(
            "[extdist] {} over {} cells...",
            alg.name(),
            sub.cells().len()
        );
        let s = sub.run_series(alg);
        let csv = sub.series_csv(&s);
        fs::write(
            opts.out.join(format!("extdist_{}.csv", alg.short_name())),
            &csv,
        )
        .expect("write extdist csv");
        series.push((alg, s));
    }

    let scalar = series[0].1.clone();
    let mut md = String::from(
        "**Extension: Cieslewicz & Ross distributions the paper omits**\n\n\
         Moving cluster (uniform inside a window sliding over the domain) \
         and self-similar (80–20 rule). Average speedup (stdev) over the \
         scalar baseline per cardinality division:\n\n",
    );
    for (alg, s) in series.iter().skip(1) {
        let t = sub.speedup_table(&scalar, s);
        md.push_str(&t.to_markdown(alg.name()));
        md.push('\n');
    }

    // Adaptive (realistic: no distribution oracle) on the new inputs.
    let vectorised: Vec<(Algorithm, Series)> = series.iter().skip(1).cloned().collect();
    if let Some(adaptive) = sub.adaptive_series_from(AdaptiveMode::Realistic, &vectorised) {
        let t = sub.speedup_table(&scalar, &adaptive);
        md.push_str(&t.to_markdown("adaptive (realistic selection, §V-D policy unchanged)"));
        let cells = sub.cells();
        let avg: f64 = cells
            .iter()
            .map(|cell| scalar.cpt[cell] / adaptive.cpt[cell])
            .sum::<f64>()
            / cells.len() as f64;
        md.push_str(&format!(
            "\ntotal average adaptive speedup on the extension grid: {avg:.2}x\n"
        ));
    }

    let path = opts.out.join("extended_distributions.md");
    fs::write(&path, &md).expect("write extdist");
    println!("{md}");
    println!("written: {}", path.display());
}

// §VI-A measured: the paper claims matching its single-vector-unit
// speedups with multithreading "would require — at minimum — eight
// cores". We simulate Ye et al.-style independent-table multicore scalar
// aggregation (optimistic: private caches and DRAM per core, free
// barriers) and report the core count needed to match the best vector
// algorithm per cell.
fn multicore(opts: &Opts) {
    use vagg_core::{cores_to_match, multicore_scalar_aggregate, run_algorithm, Algorithm};
    use vagg_datagen::DatasetSpec;
    use vagg_sim::SimConfig;

    let rows = opts.rows.min(200_000);
    let cfg = SimConfig::paper();
    let cells: Vec<(Distribution, u64)> = [
        (Distribution::Sorted, 76u64),
        (Distribution::Uniform, 76),
        (Distribution::Uniform, 1_220),
        (Distribution::Uniform, 78_125),
        (Distribution::Zipf, 1_220),
        (Distribution::HeavyHitter, 78_125),
    ]
    .into_iter()
    .filter(|&(_, c)| c <= opts.cards_max)
    .collect();

    let mut md = format!(
        "**§VI-A comparator: cores needed to match one vector unit \
         (n = {rows})**\n\n\
         Multicore model: Ye et al. independent tables, private machine \
         per core, serial merge — optimistic for multithreading (see \
         `vagg_core::multicore` docs), so these core counts are lower \
         bounds.\n\n\
         | dataset | c | best vector | vector speedup | cores to match |\n\
         |---|---|---|---|---|\n"
    );
    for &(d, c) in &cells {
        eprintln!("[multicore] {} c={c}...", d.name());
        let ds = DatasetSpec::paper(d, c)
            .with_rows(rows)
            .with_seed(0)
            .generate();
        let scalar = run_algorithm(Algorithm::Scalar, &cfg, &ds);
        let (best_alg, best) = Algorithm::VECTORISED
            .into_iter()
            .map(|a| (a, run_algorithm(a, &cfg, &ds)))
            .min_by(|a, b| a.1.cycles.cmp(&b.1.cycles))
            .unwrap();
        let speedup = scalar.cycles as f64 / best.cycles as f64;
        let cores = cores_to_match(
            &cfg,
            &ds.g,
            &ds.v,
            ds.spec.distribution.is_presorted(),
            best.cycles,
            64,
        );
        let cores_str = match &cores {
            Some((t, _)) => format!("{t}"),
            None => ">64 (merge-bound)".to_string(),
        };
        md.push_str(&format!(
            "| {} | {c} | {} | {speedup:.1}x | {cores_str} |\n",
            d.name(),
            best_alg.short_name(),
        ));
    }

    // Thread-scaling curve for one representative cell: where the serial
    // merge bends the curve over.
    let ds = DatasetSpec::paper(Distribution::Uniform, 1_220)
        .with_rows(rows)
        .with_seed(0)
        .generate();
    md.push_str(
        "\n*Thread scaling* — uniform, c = 1,220 (CPT; parallel + merge \
         breakdown)\n\n| cores | CPT | parallel | merge |\n|---|---|---|---|\n",
    );
    for threads in [1usize, 2, 4, 8, 16, 32] {
        let run = multicore_scalar_aggregate(&cfg, &ds.g, &ds.v, threads, false);
        md.push_str(&format!(
            "| {threads} | {:.2} | {:.2} | {:.2} |\n",
            run.cpt,
            run.parallel_cycles as f64 / rows as f64,
            run.merge_cycles as f64 / rows as f64,
        ));
    }

    let path = opts.out.join("multicore.md");
    fs::write(&path, &md).expect("write multicore");
    println!("{md}");
    println!("written: {}", path.display());
}

fn table9(runner: &GridRunner, opts: &Opts) {
    eprintln!("[table9] running all algorithms + adaptive...");
    let scalar = load_or_run_scalar(runner, opts);
    let mut series: Vec<(Algorithm, Series)> = Vec::new();
    for alg in Algorithm::VECTORISED {
        series.push((alg, load_or_run(runner, opts, alg)));
    }

    // Best algorithm per (distribution, division).
    let mut md = String::from(
        "**Table IX: best average speedup (algorithm) over baseline**\n\n\
         | dataset | low | low-normal | high-normal | high |\n|---|---|---|---|---|\n",
    );
    for &d in &runner.dists {
        md.push_str(&format!("| {} |", d.name()));
        for div in Division::ALL {
            let mut best: Option<(f64, Algorithm)> = None;
            for (alg, s) in &series {
                let t = runner.speedup_table(&scalar, s);
                if let Some((m, _)) = t.cell(d, div) {
                    if best.is_none_or(|(bm, _)| m > bm) {
                        best = Some((m, *alg));
                    }
                }
            }
            match best {
                Some((m, a)) => md.push_str(&format!(" {m:.1}x ({}) |", a.short_name())),
                None => md.push_str(" — |"),
            }
        }
        md.push('\n');
    }

    // Adaptive averages (ideal vs realistic), grand mean of per-cell
    // speedups as in §V-D. Composed from the measured per-algorithm
    // series — the adaptive run's cycle cost is the selected algorithm's.
    eprintln!("[table9] adaptive (ideal + realistic) from measured series...");
    let ideal = runner
        .adaptive_series_from(AdaptiveMode::Ideal, &series)
        .expect("ideal adaptive series");
    let realistic = runner
        .adaptive_series_from(AdaptiveMode::Realistic, &series)
        .expect("realistic adaptive series");
    let avg = |s: &Series| -> f64 {
        let cells = runner.cells();
        let sum: f64 = cells
            .iter()
            .map(|cell| scalar.cpt[cell] / s.cpt[cell])
            .sum();
        sum / cells.len() as f64
    };
    let ai = avg(&ideal);
    let ar = avg(&realistic);
    md.push_str(&format!(
        "\nideal algorithm selection: {ai:.2}x total average speedup\n\
         realistic algorithm selection: {ar:.2}x total average speedup\n\
         penalty: {:.1}%\n",
        (1.0 - ar / ai) * 100.0
    ));

    let path = opts.out.join("table9.md");
    fs::write(&path, &md).expect("write table9");
    println!("{md}");
    println!("written: {}", path.display());
}
