use std::time::Instant;
use vagg_core::*;
use vagg_datagen::*;
use vagg_sim::SimConfig;
fn main() {
    let cfg = SimConfig::paper();
    for (alg, dist, c, n) in [
        (
            Algorithm::Polytable,
            Distribution::Uniform,
            10_000_000u64,
            200_000usize,
        ),
        (
            Algorithm::Scalar,
            Distribution::Uniform,
            10_000_000,
            200_000,
        ),
        (
            Algorithm::Monotable,
            Distribution::Uniform,
            10_000_000,
            200_000,
        ),
        (
            Algorithm::AdvancedSortedReduce,
            Distribution::Uniform,
            10_000_000,
            200_000,
        ),
        (Algorithm::Monotable, Distribution::Uniform, 78_125, 200_000),
    ] {
        let ds = DatasetSpec::paper(dist, c).with_rows(n).generate();
        let t = Instant::now();
        let r = run_algorithm(alg, &cfg, &ds);
        println!(
            "{:6} c={:9} n={}: cpt={:8.1}  host={:.1}s",
            alg.short_name(),
            c,
            n,
            r.cpt,
            t.elapsed().as_secs_f64()
        );
    }
}
