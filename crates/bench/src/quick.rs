//! Shared helpers for the criterion benches: reduced-scale dataset cells
//! and a one-call "simulate this algorithm on this cell" wrapper.
//!
//! Criterion measures *host* wall time of the simulator here; the
//! simulated cycle counts that regenerate the paper's numbers come from
//! the `repro` binary. Benchmarking the simulator itself still pins the
//! relative cost of each algorithm (more simulated work = more host work)
//! and guards against performance regressions in the models.

use vagg_core::{run_algorithm, AggRun, Algorithm};
use vagg_datagen::{Dataset, DatasetSpec, Distribution};
use vagg_sim::SimConfig;

/// Default row count for bench cells: large enough to exercise the cache
/// hierarchy transitions, small enough for quick iterations.
pub const BENCH_ROWS: usize = 20_000;

/// A representative low / high-normal cardinality pair.
pub const BENCH_CARDS: [u64; 2] = [76, 78_125];

/// Generates one bench dataset.
pub fn cell(dist: Distribution, card: u64) -> Dataset {
    DatasetSpec::paper(dist, card)
        .with_rows(BENCH_ROWS)
        .with_seed(7)
        .generate()
}

/// Runs an algorithm on a dataset under the paper configuration.
pub fn simulate(alg: Algorithm, ds: &Dataset) -> AggRun {
    run_algorithm(alg, &SimConfig::paper(), ds)
}

/// Runs an algorithm under a custom configuration.
pub fn simulate_with(alg: Algorithm, cfg: &SimConfig, ds: &Dataset) -> AggRun {
    run_algorithm(alg, cfg, ds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_cells_simulate() {
        let ds = cell(Distribution::Uniform, 76);
        let run = simulate(Algorithm::Monotable, &ds);
        assert_eq!(run.result, vagg_core::reference(&ds.g, &ds.v));
    }
}
