//! SVG renderings of the figure series — dependency-free line charts in
//! the paper's visual layout (CPT on a linear y-axis capped as in the
//! paper, cardinalities along x, one line per distribution).

use crate::grid::{GridRunner, Series};
use std::fmt::Write as _;

const WIDTH: f64 = 860.0;
const HEIGHT: f64 = 420.0;
const MARGIN_L: f64 = 60.0;
const MARGIN_B: f64 = 70.0;
const MARGIN_T: f64 = 30.0;
const MARGIN_R: f64 = 20.0;

/// Line colours per distribution index (the paper's five datasets).
const COLOURS: [&str; 5] = ["#c0392b", "#27ae60", "#2980b9", "#8e44ad", "#e67e22"];

/// Renders one figure series as a standalone SVG. `y_cap` bounds the
/// y-axis (the paper clips its figures at 135 CPT so polytable's collapse
/// does not flatten every other line).
pub fn series_svg(runner: &GridRunner, series: &Series, title: &str, y_cap: f64) -> String {
    let plot_w = WIDTH - MARGIN_L - MARGIN_R;
    let plot_h = HEIGHT - MARGIN_T - MARGIN_B;
    let nx = runner.cards.len().max(2);

    let x_of = |i: usize| MARGIN_L + plot_w * i as f64 / (nx - 1) as f64;
    let y_of = |v: f64| {
        let c = v.min(y_cap);
        MARGIN_T + plot_h * (1.0 - c / y_cap)
    };

    let mut svg = String::new();
    write!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}">"#
    )
    .unwrap();
    svg.push_str(r#"<rect width="100%" height="100%" fill="white"/>"#);
    write!(
        svg,
        r#"<text x="{}" y="18" font-family="sans-serif" font-size="14" text-anchor="middle">{title}</text>"#,
        WIDTH / 2.0
    )
    .unwrap();

    // Axes + gridlines.
    for k in 0..=9 {
        let v = y_cap * k as f64 / 9.0;
        let y = y_of(v);
        write!(
            svg,
            r##"<line x1="{MARGIN_L}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#eee"/>"##,
            WIDTH - MARGIN_R
        )
        .unwrap();
        write!(
            svg,
            r#"<text x="{:.1}" y="{:.1}" font-family="sans-serif" font-size="10" text-anchor="end">{v:.0}</text>"#,
            MARGIN_L - 6.0,
            y + 3.0
        )
        .unwrap();
    }
    for (i, &c) in runner.cards.iter().enumerate() {
        let x = x_of(i);
        write!(
            svg,
            r#"<text x="{x:.1}" y="{:.1}" font-family="sans-serif" font-size="9" text-anchor="end" transform="rotate(-60 {x:.1} {:.1})">{c}</text>"#,
            HEIGHT - MARGIN_B + 14.0,
            HEIGHT - MARGIN_B + 14.0
        )
        .unwrap();
    }
    write!(
        svg,
        r#"<text x="{:.1}" y="{:.1}" font-family="sans-serif" font-size="12" text-anchor="middle">maximum cardinality</text>"#,
        MARGIN_L + plot_w / 2.0,
        HEIGHT - 8.0
    )
    .unwrap();
    write!(
        svg,
        r#"<text x="14" y="{:.1}" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 14 {:.1})">cycles per tuple</text>"#,
        MARGIN_T + plot_h / 2.0,
        MARGIN_T + plot_h / 2.0
    )
    .unwrap();

    // One polyline per distribution + legend.
    for (di, &dist) in runner.dists.iter().enumerate() {
        let colour = COLOURS[di % COLOURS.len()];
        let mut points = String::new();
        for (i, &c) in runner.cards.iter().enumerate() {
            if let Some(&v) = series.cpt.get(&(dist, c)) {
                write!(points, "{:.1},{:.1} ", x_of(i), y_of(v)).unwrap();
            }
        }
        write!(
            svg,
            r#"<polyline fill="none" stroke="{colour}" stroke-width="2" points="{points}"/>"#
        )
        .unwrap();
        let lx = MARGIN_L + 10.0 + 130.0 * di as f64;
        write!(
            svg,
            r#"<rect x="{lx:.1}" y="{:.1}" width="12" height="3" fill="{colour}"/><text x="{:.1}" y="{:.1}" font-family="sans-serif" font-size="11">{}</text>"#,
            MARGIN_T + 4.0,
            lx + 16.0,
            MARGIN_T + 8.0,
            dist.name()
        )
        .unwrap();
    }
    svg.push_str("</svg>");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use vagg_core::Algorithm;
    use vagg_datagen::Distribution;

    #[test]
    fn renders_well_formed_svg() {
        let mut r = GridRunner::new(640);
        r.cards = vec![4, 19, 76];
        r.dists = vec![Distribution::Uniform, Distribution::Sorted];
        let s = r.run_series(Algorithm::Monotable);
        let svg = series_svg(&r, &s, "test figure", 135.0);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("uniform"));
        assert!(svg.contains("cycles per tuple"));
        // Every plotted point is inside the canvas.
        for cap in svg.split("points=\"").skip(1) {
            let pts = cap.split('"').next().unwrap();
            for pair in pts.split_whitespace() {
                let (x, y) = pair.split_once(',').unwrap();
                let (x, y): (f64, f64) = (x.parse().unwrap(), y.parse().unwrap());
                assert!((0.0..=WIDTH).contains(&x));
                assert!((0.0..=HEIGHT).contains(&y));
            }
        }
    }

    #[test]
    fn y_cap_clips_outliers() {
        let mut r = GridRunner::new(640);
        r.cards = vec![4, 19];
        r.dists = vec![Distribution::Uniform];
        let mut s = Series::default();
        s.cpt.insert((Distribution::Uniform, 4), 10.0);
        s.cpt.insert((Distribution::Uniform, 19), 10_000.0); // off the chart
        let svg = series_svg(&r, &s, "clip", 135.0);
        // The clipped point must sit at the top of the plot area, not
        // outside the canvas.
        assert!(svg.contains(&format!("{:.1}", MARGIN_T)));
    }
}
