//! Observability bench: what `EXPLAIN ANALYZE` tracing and the metrics
//! registry cost.
//!
//! Three measurements —
//!
//! * `trace-overhead/single`: the same full-pipeline query untraced vs
//!   under `EXPLAIN ANALYZE` on one session (the zero-cost-when-off
//!   claim, and the when-on overhead — target under 5%);
//! * `trace-overhead/sharded`: ditto on the 4-shard morsel executor,
//!   where tracing additionally clones per-morsel spans back to the
//!   coordinator;
//! * `metrics-snapshot`: one [`Database::metrics`] /
//!   [`ShardedDatabase::metrics`] call — the registry snapshot plus the
//!   folded plan-cache/snapshot/WAL/executor stats.
//!
//! Besides the usual stdout lines, the bench writes a machine-readable
//! summary to `BENCH_obs.json` at the repository root so future PRs can
//! track the tracing tax.

use criterion::{criterion_group, criterion_main, Criterion};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::{Duration, Instant};
use vagg_datagen::rng::Xoshiro256StarStar;
use vagg_datagen::zipf::Zipf;
use vagg_db::{Database, Engine, ExecutorConfig, ShardedDatabase, SqlOutcome, Table};

const SHARDS: usize = 4;
const ROWS: usize = 8_192;
const SQL: &str = "SELECT g, COUNT(*), SUM(v), MIN(v), MAX(v) FROM events \
                   WHERE v > 100 GROUP BY g";

fn zipf_table(rows: usize, domain: u64) -> Table {
    let zipf = Zipf::new(domain, 1.0);
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x0B5);
    Table::new("events")
        .with_column(
            "g",
            (0..rows).map(|_| zipf.sample(&mut rng) as u32).collect(),
        )
        .with_column(
            "v",
            (0..rows).map(|_| rng.next_below(1000) as u32).collect(),
        )
}

/// Mean wall milliseconds per call (one warm-up, then `iters` timed).
fn wall_ms(iters: u32, mut f: impl FnMut()) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() * 1e3 / iters as f64
}

struct Summary {
    single_off_ms: f64,
    single_on_ms: f64,
    sharded_off_ms: f64,
    sharded_on_ms: f64,
    snapshot_us: f64,
    sharded_snapshot_us: f64,
}

fn write_summary(s: &Summary) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
    let overhead = |on: f64, off: f64| (on / off - 1.0) * 100.0;
    let mut out = String::from("{\n");
    let _ = writeln!(
        out,
        "  \"generated_by\": \"cargo bench -p vagg-bench --bench obs\",\n  \
         \"rows\": {ROWS},\n  \"shards\": {SHARDS},"
    );
    let _ = writeln!(
        out,
        "  \"trace_overhead\": {{\n    \
         \"single\": {{\"untraced_ms\": {:.4}, \"traced_ms\": {:.4}, \
         \"overhead_pct\": {:.2}}},\n    \
         \"sharded\": {{\"untraced_ms\": {:.4}, \"traced_ms\": {:.4}, \
         \"overhead_pct\": {:.2}}}\n  }},",
        s.single_off_ms,
        s.single_on_ms,
        overhead(s.single_on_ms, s.single_off_ms),
        s.sharded_off_ms,
        s.sharded_on_ms,
        overhead(s.sharded_on_ms, s.sharded_off_ms),
    );
    let _ = writeln!(
        out,
        "  \"metrics_snapshot\": {{\n    \"single_us\": {:.3},\n    \
         \"sharded_us\": {:.3}\n  }}\n}}",
        s.snapshot_us, s.sharded_snapshot_us
    );
    std::fs::write(path, out).expect("write BENCH_obs.json");
    println!("  wrote {path}");
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs");
    g.warm_up_time(Duration::from_millis(200));
    g.measurement_time(Duration::from_secs(1));
    g.sample_size(10);

    let traced_sql = format!("EXPLAIN ANALYZE {SQL}");

    // Single session, tracing off vs on. Same database for both so the
    // machine's cache-model state is equally warm.
    let (single_off_ms, single_on_ms) = {
        let mut db = Database::new();
        db.register(zipf_table(ROWS, 512));
        g.bench_function("trace-overhead/single-off", |b| {
            b.iter(|| match db.run_sql(SQL).unwrap() {
                SqlOutcome::Rows(out) => black_box(out.rows.len()),
                other => unreachable!("rows: {other:?}"),
            })
        });
        g.bench_function("trace-overhead/single-on", |b| {
            b.iter(|| match db.run_sql(&traced_sql).unwrap() {
                SqlOutcome::Analyzed(a) => black_box(a.trace.steps.len()),
                other => unreachable!("analyzed: {other:?}"),
            })
        });
        let off = wall_ms(40, || match db.run_sql(SQL).unwrap() {
            SqlOutcome::Rows(out) => {
                black_box(out.rows.len());
            }
            other => unreachable!("rows: {other:?}"),
        });
        let on = wall_ms(40, || match db.run_sql(&traced_sql).unwrap() {
            SqlOutcome::Analyzed(a) => {
                black_box(a.trace.steps.len());
            }
            other => unreachable!("analyzed: {other:?}"),
        });
        (off, on)
    };
    println!(
        "  single: untraced {single_off_ms:.4} ms, traced {single_on_ms:.4} ms \
         ({:+.2}%)",
        (single_on_ms / single_off_ms - 1.0) * 100.0
    );

    // Sharded: per-morsel spans ride back through the outcome channel.
    let (sharded_off_ms, sharded_on_ms) = {
        let mut db = ShardedDatabase::with_executor(
            Engine::new(),
            SHARDS,
            ExecutorConfig {
                workers: SHARDS,
                morsel_rows: 512,
                steal: true,
                ..ExecutorConfig::default()
            },
        );
        db.register(zipf_table(ROWS, 512));
        g.bench_function("trace-overhead/sharded-off", |b| {
            b.iter(|| black_box(db.run_sql(SQL).unwrap().rows.len()))
        });
        g.bench_function("trace-overhead/sharded-on", |b| {
            b.iter(|| black_box(db.run_sql(&traced_sql).unwrap().rows.len()))
        });
        let off = wall_ms(40, || {
            black_box(db.run_sql(SQL).unwrap().rows.len());
        });
        let on = wall_ms(40, || {
            black_box(db.run_sql(&traced_sql).unwrap().rows.len());
        });
        (off, on)
    };
    println!(
        "  sharded: untraced {sharded_off_ms:.4} ms, traced {sharded_on_ms:.4} ms \
         ({:+.2}%)",
        (sharded_on_ms / sharded_off_ms - 1.0) * 100.0
    );

    // Metrics snapshot cost: counters + histogram + slow ring + folded
    // subsystem stats, rendered structures included.
    let (snapshot_us, sharded_snapshot_us) = {
        let mut db = Database::new();
        db.register(zipf_table(ROWS, 512));
        for _ in 0..50 {
            db.run_sql(SQL).unwrap();
        }
        g.bench_function("metrics-snapshot/single", |b| {
            b.iter(|| black_box(db.metrics().counters().count()))
        });
        let single = wall_ms(200, || {
            black_box(db.metrics().counters().count());
        }) * 1e3;

        let mut sh = ShardedDatabase::new(SHARDS);
        sh.register(zipf_table(ROWS, 512));
        for _ in 0..50 {
            sh.run_sql(SQL).unwrap();
        }
        g.bench_function("metrics-snapshot/sharded", |b| {
            b.iter(|| black_box(sh.metrics().counters().count()))
        });
        let sharded = wall_ms(200, || {
            black_box(sh.metrics().counters().count());
        }) * 1e3;
        (single, sharded)
    };
    println!("  metrics snapshot: single {snapshot_us:.3} µs, sharded {sharded_snapshot_us:.3} µs");

    g.finish();
    write_summary(&Summary {
        single_off_ms,
        single_on_ms,
        sharded_off_ms,
        sharded_on_ms,
        snapshot_us,
        sharded_snapshot_us,
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
