//! Criterion benches for the ISA emulation layer itself: the CAM-backed
//! irregular instructions (VPI/VLU/VGAsum) across input regimes and port
//! counts, plus the regular reduction/compress primitives. These measure
//! the *host-side* cost of the functional+timing emulation — the layer's
//! fitness for running full-grid sweeps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use vagg_isa::exec::{compress, reduce, RedOp};
use vagg_isa::irregular::{vga_sum, vlu, vpi};

fn keys(regime: &str, vl: usize) -> Vec<u64> {
    match regime {
        "distinct" => (0..vl as u64).collect(),
        "sorted" => vec![7; vl],
        "low-card" => (0..vl as u64).map(|i| (i * 2654435761) % 8).collect(),
        _ => unreachable!(),
    }
}

fn bench_cam(c: &mut Criterion) {
    let mut g = c.benchmark_group("cam");
    g.warm_up_time(Duration::from_millis(200));
    g.measurement_time(Duration::from_secs(1));
    let vl = 64;
    for regime in ["distinct", "sorted", "low-card"] {
        let ks = keys(regime, vl);
        let vs = vec![1u64; vl];
        g.bench_with_input(BenchmarkId::new("vpi", regime), &ks, |b, ks| {
            b.iter(|| black_box(vpi(ks, vl, 4).cycles))
        });
        g.bench_with_input(BenchmarkId::new("vlu", regime), &ks, |b, ks| {
            b.iter(|| black_box(vlu(ks, vl, 4).cycles))
        });
        g.bench_with_input(BenchmarkId::new("vgasum", regime), &ks, |b, ks| {
            b.iter(|| black_box(vga_sum(ks, &vs, vl, 4).cycles))
        });
    }
    for ports in [1usize, 2, 4, 8] {
        let ks = keys("low-card", vl);
        g.bench_with_input(BenchmarkId::new("vpi-ports", ports), &ports, |b, &p| {
            b.iter(|| black_box(vpi(&ks, vl, p).cycles))
        });
    }
    g.finish();
}

fn bench_regular(c: &mut Criterion) {
    let mut g = c.benchmark_group("regular");
    g.warm_up_time(Duration::from_millis(200));
    g.measurement_time(Duration::from_secs(1));
    let v: Vec<u64> = (0..64).collect();
    let mask: Vec<bool> = (0..64).map(|i| i % 3 != 0).collect();
    g.bench_function("reduce-sum", |b| {
        b.iter(|| black_box(reduce(RedOp::Sum, &v, 64, None)))
    });
    g.bench_function("reduce-masked", |b| {
        b.iter(|| black_box(reduce(RedOp::Max, &v, 64, Some(&mask))))
    });
    g.bench_function("compress", |b| {
        let mut dst = vec![0u64; 64];
        b.iter(|| black_box(compress(&mut dst, &v, &mask, 64)))
    });
    g.finish();
}

criterion_group!(benches, bench_cam, bench_regular);
criterion_main!(benches);
