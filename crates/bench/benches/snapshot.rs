//! Criterion bench for the snapshot-first read path: what the MVCC
//! redesign costs per read, and what pinned snapshots buy under
//! ingest.
//!
//! Four workloads over one table shape —
//!
//! * `read-of-now`: `run_sql` end to end — since the redesign this IS
//!   a per-statement snapshot capture (cut + pin + plan + release),
//!   the number to compare against the pre-snapshot latest-read path;
//! * `read-at-pinned`: `run_sql_at` against one long-lived snapshot —
//!   the capture cost amortised away, isolating the snapshot-of-now
//!   overhead as the difference to `read-of-now`;
//! * `snapshot-capture`: `Database::snapshot()` alone (cut + pin +
//!   release on drop), the fixed cost a statement adds;
//! * `readers-under-ingest`: a writer thread streams batches and trips
//!   compactions while the measured session reads — pinned-snapshot
//!   reads vs of-now reads under live drift, the
//!   "repeatable reads never block the write path" regime.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;
use vagg_db::{CompactionPolicy, Database, RowBatch, SharedCatalogue, SqlOutcome, Table};

const BASE_ROWS: usize = 8_192;
const BATCH_ROWS: usize = 128;
const CARD: u32 = 256;

fn events(rows: usize) -> Table {
    Table::new("events")
        .with_column("g", (0..rows).map(|i| ((i * 7919) as u32) % CARD).collect())
        .with_column("v", (0..rows).map(|i| ((i * 31) as u32) % 100).collect())
}

fn batch(salt: usize) -> RowBatch {
    RowBatch::new()
        .with_column(
            "g",
            (0..BATCH_ROWS)
                .map(|i| (((i + salt) * 127) as u32) % CARD)
                .collect(),
        )
        .with_column(
            "v",
            (0..BATCH_ROWS)
                .map(|i| (((i + salt) * 13) as u32) % 100)
                .collect(),
        )
}

const SQL: &str = "SELECT g, COUNT(*), SUM(v) FROM events GROUP BY g";

fn run_rows(db: &mut Database, sql: &str) -> usize {
    match db.run_sql(sql).expect("query runs") {
        SqlOutcome::Rows(out) => out.rows.len(),
        other => unreachable!("SELECT returns rows: {other:?}"),
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("snapshot");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(2));
    g.sample_size(10);

    // Per-statement snapshot-of-now: the whole read path as `run_sql`
    // ships it (capture + plan-cache hit + execute + release).
    {
        let mut db = Database::new();
        db.register(events(BASE_ROWS));
        g.bench_function("read-of-now", |b| {
            b.iter(|| black_box(run_rows(&mut db, SQL)))
        });
    }

    // The same read against one pinned snapshot: capture amortised
    // over every statement — the difference to `read-of-now` is the
    // per-statement snapshot overhead.
    {
        let mut db = Database::new();
        db.register(events(BASE_ROWS));
        let snap = db.snapshot();
        g.bench_function("read-at-pinned", |b| {
            b.iter(|| {
                let out = db.run_sql_at(&snap, SQL).expect("query runs");
                black_box(matches!(out, SqlOutcome::Rows(_)))
            })
        });
    }

    // The fixed capture cost alone: cut every table, register the
    // pins, release them on drop.
    {
        let mut db = Database::new();
        db.register(events(BASE_ROWS));
        g.bench_function("snapshot-capture", |b| {
            b.iter(|| black_box(db.snapshot().data_version("events")))
        });
    }

    // Reads while a writer streams batches and trips compactions:
    // of-now reads chase the drifting versions (merge + rebase per
    // data version), pinned reads keep serving one materialised cut.
    for mode in ["of-now", "pinned"] {
        let catalogue = SharedCatalogue::new();
        catalogue.set_compaction_policy(CompactionPolicy::every(4 * BATCH_ROWS));
        catalogue.register(events(BASE_ROWS));
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let writer_cat = catalogue.clone();
            let writer = scope.spawn({
                let stop = &stop;
                move || {
                    let mut salt = 0usize;
                    while !stop.load(Ordering::Relaxed) {
                        salt += 1;
                        writer_cat.append("events", batch(salt)).expect("appends");
                    }
                }
            });
            let mut session = catalogue.connect();
            let snap = catalogue.snapshot();
            g.bench_function(format!("readers-under-ingest/{mode}"), |b| {
                b.iter(|| match mode {
                    "pinned" => {
                        let out = session.run_sql_at(&snap, SQL).expect("query runs");
                        black_box(matches!(out, SqlOutcome::Rows(_)))
                    }
                    _ => black_box(run_rows(&mut session, SQL) > 0),
                })
            });
            stop.store(true, Ordering::Relaxed);
            writer.join().expect("writer thread");
        });
        let stats = catalogue.snapshot_stats();
        println!(
            "  [{mode}] snapshots_taken={} deferred_gcs={} reclaimed_gcs={}",
            stats.snapshots_taken, stats.deferred_gcs, stats.reclaimed_gcs
        );
    }

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
