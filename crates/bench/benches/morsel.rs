//! Morsel-driven executor bench: what the persistent pool, work
//! stealing, zone-map pruning and the forced-domain composite merge
//! buy on the sharded path.
//!
//! Four workloads —
//!
//! * `small-query`: the same small cached query on one long-lived pool
//!   (`pooled`) vs a pool rebuilt before every query
//!   (`spawn-per-query`, the old thread-per-shard-per-query regime's
//!   cost structure);
//! * `skew`: a Zipf-keyed table partitioned uniformly vs with one hot
//!   shard, stealing on vs off — wall time per query plus the
//!   *simulated* makespan (busiest virtual worker) each schedule pays;
//! * `selective`: clustered-value `WHERE` scans at 0.1% / 1% / 10% /
//!   100% selectivity with zone-map morsel pruning on vs off — the
//!   payoff grows as the predicate excludes more zones;
//! * `composite`: `GROUP BY a, b` on four shards (plan-time global key
//!   domains forced into every morsel, partials merged directly) vs a
//!   single session.
//!
//! Besides the usual stdout lines, the bench writes a machine-readable
//! summary to `BENCH_shard.json` at the repository root so future PRs
//! can track the sharded-path trajectory.

use criterion::{criterion_group, criterion_main, Criterion};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::{Duration, Instant};
use vagg_datagen::rng::Xoshiro256StarStar;
use vagg_datagen::zipf::Zipf;
use vagg_db::{Database, Engine, ExecutorConfig, ShardedDatabase, ShardedOutput, Table};

const SHARDS: usize = 4;
const SMALL_ROWS: usize = 1024;
const SKEW_ROWS: usize = 12_288;
const COMPOSITE_ROWS: usize = 8_192;
const SELECTIVE_ROWS: usize = 262_144;

fn zipf_table(rows: usize, domain: u64) -> Table {
    let zipf = Zipf::new(domain, 1.0);
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x5EED);
    Table::new("events")
        .with_column(
            "g",
            (0..rows).map(|_| zipf.sample(&mut rng) as u32).collect(),
        )
        .with_column(
            "v",
            (0..rows).map(|_| rng.next_below(1000) as u32).collect(),
        )
}

/// One hot shard (¾ of the rows), the rest spread thin.
fn skewed_parts(table: &Table) -> Vec<Table> {
    let n = table.rows();
    let cuts = [0, n * 3 / 4, n * 5 / 6, n * 11 / 12, n];
    (0..SHARDS)
        .map(|i| {
            let (lo, hi) = (cuts[i], cuts[i + 1]);
            let mut part = Table::new(table.name());
            for col in table.column_names() {
                part = part.with_column(col, table.column(col).unwrap()[lo..hi].to_vec());
            }
            part
        })
        .collect()
}

fn executor(steal: bool) -> ExecutorConfig {
    ExecutorConfig {
        workers: SHARDS,
        morsel_rows: 512,
        steal,
        ..ExecutorConfig::default()
    }
}

/// Mean wall milliseconds per call (one warm-up, then `iters` timed).
fn wall_ms(iters: u32, mut f: impl FnMut()) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() * 1e3 / iters as f64
}

struct Summary {
    pooled_ms: f64,
    spawn_ms: f64,
    uniform: (u64, u64),
    zipf: (u64, u64),
    zipf_steals: u64,
    steal_ms: f64,
    no_steal_ms: f64,
    /// Per selectivity tier: `(label, pruned_ms, unpruned_ms, morsels_pruned)`.
    selective: Vec<(&'static str, f64, f64, u64)>,
    composite_single_ms: f64,
    composite_sharded_ms: f64,
}

fn write_summary(s: &Summary) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_shard.json");
    let mut out = String::from("{\n");
    let _ = writeln!(
        out,
        "  \"generated_by\": \"cargo bench -p vagg-bench --bench morsel\",\n  \
         \"shards\": {SHARDS},\n  \"workers\": {SHARDS},"
    );
    let _ = writeln!(
        out,
        "  \"small_query\": {{\n    \"rows\": {SMALL_ROWS},\n    \
         \"pooled_ms\": {:.4},\n    \"spawn_per_query_ms\": {:.4},\n    \
         \"pooled_speedup\": {:.2}\n  }},",
        s.pooled_ms,
        s.spawn_ms,
        s.spawn_ms / s.pooled_ms
    );
    let _ = writeln!(
        out,
        "  \"skew\": {{\n    \"rows\": {SKEW_ROWS},\n    \
         \"uniform_makespan_cycles\": {{\"steal\": {}, \"no_steal\": {}}},\n    \
         \"zipf_makespan_cycles\": {{\"steal\": {}, \"no_steal\": {}}},\n    \
         \"zipf_makespan_reduction\": {:.2},\n    \"zipf_steals\": {},\n    \
         \"zipf_wall_ms\": {{\"steal\": {:.4}, \"no_steal\": {:.4}}}\n  }},",
        s.uniform.0,
        s.uniform.1,
        s.zipf.0,
        s.zipf.1,
        s.zipf.1 as f64 / s.zipf.0.max(1) as f64,
        s.zipf_steals,
        s.steal_ms,
        s.no_steal_ms,
    );
    let _ = writeln!(out, "  \"selective_where\": {{\n    \"rows\": {SELECTIVE_ROWS},");
    for (i, (label, pruned_ms, unpruned_ms, morsels_pruned)) in s.selective.iter().enumerate() {
        let _ = writeln!(
            out,
            "    \"{label}\": {{\"pruned_ms\": {:.4}, \"unpruned_ms\": {:.4}, \
             \"speedup\": {:.2}, \"morsels_pruned\": {}}}{}",
            pruned_ms,
            unpruned_ms,
            unpruned_ms / pruned_ms.max(1e-9),
            morsels_pruned,
            if i + 1 == s.selective.len() { "" } else { "," },
        );
    }
    let _ = writeln!(out, "  }},");
    let _ = writeln!(
        out,
        "  \"composite_group_by\": {{\n    \"rows\": {COMPOSITE_ROWS},\n    \
         \"single_session_ms\": {:.4},\n    \"sharded_ms\": {:.4}\n  }}\n}}",
        s.composite_single_ms, s.composite_sharded_ms
    );
    std::fs::write(path, out).expect("write BENCH_shard.json");
    println!("  wrote {path}");
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("morsel");
    g.warm_up_time(Duration::from_millis(200));
    g.measurement_time(Duration::from_secs(1));
    g.sample_size(10);

    let small_sql = "SELECT g, COUNT(*), SUM(v) FROM events GROUP BY g";

    // Persistent pool: the query reuses warm workers and cached plans.
    let pooled_ms = {
        let mut db = ShardedDatabase::with_executor(Engine::new(), SHARDS, executor(true));
        db.register(zipf_table(SMALL_ROWS, 64));
        g.bench_function("small-query/pooled", |b| {
            b.iter(|| black_box(db.run_sql(small_sql).unwrap().rows.len()))
        });
        let mut db = ShardedDatabase::with_executor(Engine::new(), SHARDS, executor(true));
        db.register(zipf_table(SMALL_ROWS, 64));
        wall_ms(50, || {
            black_box(db.run_sql(small_sql).unwrap().rows.len());
        })
    };

    // Spawn-per-query: rebuilding the pool before every query restores
    // the seed's thread-per-shard-per-query cost structure.
    let spawn_ms = {
        let mut db = ShardedDatabase::with_executor(Engine::new(), SHARDS, executor(true));
        db.register(zipf_table(SMALL_ROWS, 64));
        g.bench_function("small-query/spawn-per-query", |b| {
            b.iter(|| {
                db.set_executor_config(executor(true)).unwrap();
                black_box(db.run_sql(small_sql).unwrap().rows.len())
            })
        });
        let mut db = ShardedDatabase::with_executor(Engine::new(), SHARDS, executor(true));
        db.register(zipf_table(SMALL_ROWS, 64));
        wall_ms(50, || {
            db.set_executor_config(executor(true)).unwrap();
            black_box(db.run_sql(small_sql).unwrap().rows.len());
        })
    };

    // Skewed vs uniform partitions, stealing on vs off. The makespan
    // (simulated cycles on the busiest virtual worker) is the number
    // the steal schedule exists to shrink; wall time rides along.
    let skew_sql = "SELECT g, COUNT(*), SUM(v) FROM events WHERE v > 100 GROUP BY g";
    let table = zipf_table(SKEW_ROWS, 512);
    let mut makespan = |uniform: bool, steal: bool| -> (ShardedOutput, f64) {
        let mut db = ShardedDatabase::with_executor(Engine::new(), SHARDS, executor(steal));
        if uniform {
            db.register(table.clone());
        } else {
            db.register_partitioned(skewed_parts(&table));
        }
        db.run_sql(skew_sql).unwrap(); // warm the pool
        let label = format!(
            "skew/{}-{}",
            if uniform { "uniform" } else { "zipf" },
            if steal { "steal" } else { "no-steal" }
        );
        let ms = wall_ms(20, || {
            black_box(db.run_sql(skew_sql).unwrap().rows.len());
        });
        g.bench_function(label, |b| {
            b.iter(|| black_box(db.run_sql(skew_sql).unwrap().rows.len()))
        });
        (db.run_sql(skew_sql).unwrap(), ms)
    };
    let (uni_steal, _) = makespan(true, true);
    let (uni_static, _) = makespan(true, false);
    let (zipf_steal, steal_ms) = makespan(false, true);
    let (zipf_static, no_steal_ms) = makespan(false, false);
    assert_eq!(
        zipf_steal.rows, zipf_static.rows,
        "stealing never changes rows"
    );
    println!(
        "  makespan cycles: uniform steal={} static={} | zipf steal={} static={} (steals={})",
        uni_steal.report.cycles,
        uni_static.report.cycles,
        zipf_steal.report.cycles,
        zipf_static.report.cycles,
        zipf_steal.steals,
    );

    // Selective WHERE on clustered values: `v` climbs with the row
    // index, so `v > t` excludes a contiguous prefix of zones — the
    // shape zone-map pruning exists for. Each tier keeps roughly the
    // named fraction of rows; 100% is the pruning-can't-help control.
    let clustered = {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0xC1A5);
        Table::new("events")
            .with_column(
                "g",
                (0..SELECTIVE_ROWS)
                    .map(|_| rng.next_below(64) as u32)
                    .collect(),
            )
            .with_column(
                "v",
                (0..SELECTIVE_ROWS)
                    .map(|i| i as u32 * 4 + rng.next_below(4) as u32)
                    .collect(),
            )
    };
    let vmax = SELECTIVE_ROWS as u64 * 4;
    let tiers: [(&str, u64); 4] = [
        ("0.1%", vmax - vmax / 1000),
        ("1%", vmax - vmax / 100),
        ("10%", vmax - vmax / 10),
        ("100%", 0),
    ];
    let mut selective = Vec::new();
    for (label, threshold) in tiers {
        let sql = format!("SELECT g, COUNT(*), SUM(v) FROM events WHERE v > {threshold} GROUP BY g");
        let mut tier = [0.0f64; 2];
        let mut morsels_pruned = 0;
        for (slot, prune) in [(0, true), (1, false)] {
            let mut db = ShardedDatabase::with_executor(
                Engine::new(),
                SHARDS,
                ExecutorConfig {
                    workers: SHARDS,
                    prune,
                    ..ExecutorConfig::default()
                },
            );
            db.register(clustered.clone());
            db.run_sql(&sql).unwrap(); // warm the pool
            let mode = if prune { "pruned" } else { "unpruned" };
            g.bench_function(format!("selective/{label}-{mode}"), |b| {
                b.iter(|| black_box(db.run_sql(&sql).unwrap().rows.len()))
            });
            tier[slot] = wall_ms(20, || {
                black_box(db.run_sql(&sql).unwrap().rows.len());
            });
            if prune {
                morsels_pruned = db.metrics().get("executor_morsels_pruned").unwrap_or(0);
            }
        }
        println!(
            "  selective {label}: pruned={:.4}ms unpruned={:.4}ms ({:.1}x, {} morsels pruned)",
            tier[0],
            tier[1],
            tier[1] / tier[0].max(1e-9),
            morsels_pruned,
        );
        selective.push((label, tier[0], tier[1], morsels_pruned));
    }

    // Composite GROUP BY: plan-time global key domains are forced into
    // every morsel's fusion, so shard partials merge directly — the
    // shape used to need a per-query key dictionary and lost to a
    // single session.
    let composite_sql = "SELECT a, b, COUNT(*), SUM(v) FROM t GROUP BY a, b";
    let two_key = {
        let mut rng = Xoshiro256StarStar::seed_from_u64(42);
        Table::new("t")
            .with_column(
                "a",
                (0..COMPOSITE_ROWS)
                    .map(|_| rng.next_below(16) as u32)
                    .collect(),
            )
            .with_column(
                "b",
                (0..COMPOSITE_ROWS)
                    .map(|_| rng.next_below(24) as u32)
                    .collect(),
            )
            .with_column(
                "v",
                (0..COMPOSITE_ROWS)
                    .map(|_| rng.next_below(100) as u32)
                    .collect(),
            )
    };
    let composite_single_ms = {
        let mut db = Database::new();
        db.register(two_key.clone());
        g.bench_function("composite/single-session", |b| {
            b.iter(|| black_box(db.execute_sql(composite_sql).unwrap().rows.len()))
        });
        let mut db = Database::new();
        db.register(two_key.clone());
        wall_ms(10, || {
            black_box(db.execute_sql(composite_sql).unwrap().rows.len());
        })
    };
    // Default morsel size (one morsel per 2048-row shard): the forced
    // fusion spares each morsel the per-column max scans the single
    // session pays, and there is no dictionary to remap through.
    let composite_config = ExecutorConfig {
        workers: SHARDS,
        ..ExecutorConfig::default()
    };
    let composite_sharded_ms = {
        let mut db = ShardedDatabase::with_executor(Engine::new(), SHARDS, composite_config);
        db.register(two_key.clone());
        g.bench_function("composite/sharded", |b| {
            b.iter(|| black_box(db.run_sql(composite_sql).unwrap().rows.len()))
        });
        let mut db = ShardedDatabase::with_executor(Engine::new(), SHARDS, composite_config);
        db.register(two_key.clone());
        wall_ms(10, || {
            black_box(db.run_sql(composite_sql).unwrap().rows.len());
        })
    };

    write_summary(&Summary {
        pooled_ms,
        spawn_ms,
        uniform: (uni_steal.report.cycles, uni_static.report.cycles),
        zipf: (zipf_steal.report.cycles, zipf_static.report.cycles),
        zipf_steals: zipf_steal.steals,
        steal_ms,
        no_steal_ms,
        selective,
        composite_single_ms,
        composite_sharded_ms,
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
