//! Criterion bench for Table IX: the adaptive implementation (ideal and
//! realistic selection) against the best fixed algorithm, on a reduced
//! grid (see `repro table9` for the full-scale table).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use vagg_bench::quick::{cell, simulate, BENCH_CARDS};
use vagg_core::{run_adaptive, AdaptiveMode, Algorithm};
use vagg_datagen::Distribution;
use vagg_sim::SimConfig;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table9");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(2));
    g.sample_size(10);
    let cfg = SimConfig::paper();
    for dist in [Distribution::Uniform, Distribution::Sequential] {
        for card in BENCH_CARDS {
            let ds = cell(dist, card);
            g.bench_with_input(
                BenchmarkId::new(format!("adaptive-realistic/{}", dist.name()), card),
                &ds,
                |b, ds| b.iter(|| black_box(run_adaptive(&cfg, ds, AdaptiveMode::Realistic).cpt)),
            );
            g.bench_with_input(
                BenchmarkId::new(format!("adaptive-ideal/{}", dist.name()), card),
                &ds,
                |b, ds| b.iter(|| black_box(run_adaptive(&cfg, ds, AdaptiveMode::Ideal).cpt)),
            );
            // Fixed-choice anchor for comparison.
            g.bench_with_input(
                BenchmarkId::new(format!("fixed-monotable/{}", dist.name()), card),
                &ds,
                |b, ds| b.iter(|| black_box(simulate(Algorithm::Monotable, ds).cpt)),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
