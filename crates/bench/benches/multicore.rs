//! The §VI-A comparison, measured: simulated multicore scalar aggregation
//! (Ye et al. independent tables, private machine per core, serial merge)
//! against the single vector unit, at the thread counts the paper's
//! "would require — at minimum — eight cores" argument names.
//!
//! Criterion measures host time of the simulation; the printed simulated
//! CPT values are the architectural result.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use vagg_bench::quick::{cell, simulate};
use vagg_core::{multicore_scalar_aggregate, Algorithm};
use vagg_datagen::Distribution;
use vagg_sim::SimConfig;

fn bench_thread_scaling(c: &mut Criterion) {
    let ds = cell(Distribution::Uniform, 76);
    let cfg = SimConfig::paper();
    let mut g = c.benchmark_group("multicore_thread_scaling");
    g.sample_size(10).measurement_time(Duration::from_secs(4));
    for threads in [1usize, 2, 4, 8] {
        let run = multicore_scalar_aggregate(&cfg, &ds.g, &ds.v, threads, false);
        eprintln!(
            "[multicore] uniform c=76 threads={threads}: {:.2} simulated CPT \
             ({:.2} parallel + {:.2} merge)",
            run.cpt,
            run.parallel_cycles as f64 / ds.len() as f64,
            run.merge_cycles as f64 / ds.len() as f64,
        );
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| {
                black_box(multicore_scalar_aggregate(
                    &cfg,
                    black_box(&ds.g),
                    black_box(&ds.v),
                    t,
                    false,
                ))
            })
        });
    }
    g.finish();
}

fn bench_vector_vs_eight_cores(c: &mut Criterion) {
    // The paper's headline comparison: one vector unit vs eight cores.
    let ds = cell(Distribution::Uniform, 76);
    let cfg = SimConfig::paper();
    let vector = simulate(Algorithm::Monotable, &ds);
    let cores8 = multicore_scalar_aggregate(&cfg, &ds.g, &ds.v, 8, false);
    eprintln!(
        "[multicore] one vector unit: {:.2} simulated CPT; eight cores: \
         {:.2} simulated CPT",
        vector.cpt, cores8.cpt
    );
    let mut g = c.benchmark_group("vector_vs_eight_cores");
    g.sample_size(10).measurement_time(Duration::from_secs(4));
    g.bench_function("monotable_one_vector_unit", |b| {
        b.iter(|| black_box(simulate(Algorithm::Monotable, black_box(&ds))))
    });
    g.bench_function("scalar_eight_cores", |b| {
        b.iter(|| {
            black_box(multicore_scalar_aggregate(
                &cfg,
                black_box(&ds.g),
                black_box(&ds.v),
                8,
                false,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_thread_scaling, bench_vector_vs_eight_cores);
criterion_main!(benches);
