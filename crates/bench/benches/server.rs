//! Serving-layer bench: what the TCP front end costs and how it
//! behaves at the edges.
//!
//! Three measurements —
//!
//! * `throughput/N-clients` for N ∈ {1, 8, 64}: queries per second
//!   through the full stack (framing, admission, per-connection
//!   session, engine, reply) with N concurrent blocking clients
//!   sharing one server. The engine's executor is the same either
//!   way; what scales is the serving layer's ability to multiplex
//!   sessions.
//! * `overload/reject-latency`: how fast a saturated server says
//!   `Overloaded` — the point of a bounded admission queue is that
//!   rejection is cheap and immediate, so clients can back off
//!   instead of timing out.
//! * `wire-tax/roundtrip-vs-library`: the same query on a direct
//!   library session vs over loopback TCP, isolating the serving tax
//!   (framing + syscalls + admission) from engine time.
//!
//! Besides the usual stdout lines, the bench writes a machine-readable
//! summary to `BENCH_server.json` at the repository root so future PRs
//! can track serving throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use std::fmt::Write as _;
use std::time::{Duration, Instant};
use vagg_db::{SharedCatalogue, SqlOutcome, Table};
use vagg_server::{serve, Client, ErrorCode, ServerConfig, ServerHandle};

const ROWS: usize = 8_192;
const SQL: &str = "SELECT g, COUNT(*), SUM(v), MIN(v), MAX(v) FROM events \
                   WHERE v > 100 GROUP BY g";
/// Queries each client runs per throughput measurement.
const PER_CLIENT: usize = 10;

fn catalogue() -> SharedCatalogue {
    let catalogue = SharedCatalogue::new();
    catalogue.register(
        Table::new("events")
            .with_column("g", (0..ROWS).map(|i| ((i * 7919) % 512) as u32).collect())
            .with_column("v", (0..ROWS).map(|i| ((i * 31) % 1000) as u32).collect()),
    );
    catalogue
}

fn fresh_server(max_inflight: usize, max_queue: usize) -> ServerHandle {
    serve(
        catalogue(),
        ServerConfig {
            max_inflight,
            max_queue,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback")
}

/// Runs `clients` concurrent connections, `PER_CLIENT` queries each,
/// and returns aggregate queries/second.
fn throughput(handle: &ServerHandle, clients: usize) -> f64 {
    let addr = handle.addr();
    let start = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for _ in 0..PER_CLIENT {
                    let rows = client.query(SQL).expect("wire query");
                    assert!(!rows.is_empty());
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("client thread");
    }
    (clients * PER_CLIENT) as f64 / start.elapsed().as_secs_f64()
}

struct Summary {
    qps_1: f64,
    qps_8: f64,
    qps_64: f64,
    reject_us: f64,
    library_ms: f64,
    wire_ms: f64,
}

fn write_summary(s: &Summary) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_server.json");
    let mut out = String::from("{\n");
    let _ = writeln!(
        out,
        "  \"generated_by\": \"cargo bench -p vagg-bench --bench server\",\n  \
         \"rows\": {ROWS},\n  \"queries_per_client\": {PER_CLIENT},"
    );
    let _ = writeln!(
        out,
        "  \"throughput_qps\": {{\"clients_1\": {:.1}, \"clients_8\": {:.1}, \
         \"clients_64\": {:.1}}},",
        s.qps_1, s.qps_8, s.qps_64
    );
    let _ = writeln!(out, "  \"overload_reject_latency_us\": {:.2},", s.reject_us);
    let _ = writeln!(
        out,
        "  \"wire_tax\": {{\"library_ms\": {:.4}, \"wire_ms\": {:.4}, \
         \"tax_pct\": {:.2}}}\n}}",
        s.library_ms,
        s.wire_ms,
        (s.wire_ms / s.library_ms - 1.0) * 100.0
    );
    std::fs::write(path, out).expect("write BENCH_server.json");
    println!("  wrote {path}");
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("server");
    g.warm_up_time(Duration::from_millis(200));
    g.measurement_time(Duration::from_secs(1));
    g.sample_size(10);

    // Throughput vs client count, one long-lived server per shape.
    let mut qps = [0.0f64; 3];
    for (slot, clients) in [(0usize, 1usize), (1, 8), (2, 64)] {
        let handle = fresh_server(8, 128);
        // Warm the engine (first query pays plan + staging).
        throughput(&handle, 1);
        g.bench_function(format!("throughput/{clients}-clients"), |b| {
            b.iter(|| throughput(&handle, clients))
        });
        qps[slot] = throughput(&handle, clients);
        println!("  {clients:>2} clients: {:.0} queries/s", qps[slot]);
        handle.shutdown();
    }

    // Overload rejection latency: a zero-capacity gate makes every
    // query an admission rejection, so the measurement is pure
    // reject-path (frame in, typed error out).
    let reject_us = {
        let handle = fresh_server(0, 0);
        let mut client = Client::connect(handle.addr()).expect("connect");
        g.bench_function("overload/reject-latency", |b| {
            b.iter(|| {
                let err = client.query(SQL).expect_err("must reject");
                assert_eq!(err.code(), Some(ErrorCode::Overloaded));
            })
        });
        let start = Instant::now();
        let n = 200;
        for _ in 0..n {
            let _ = client.query(SQL).expect_err("must reject");
        }
        let us = start.elapsed().as_secs_f64() * 1e6 / n as f64;
        handle.shutdown();
        us
    };

    // The wire tax: identical query, library session vs loopback TCP.
    let (library_ms, wire_ms) = {
        let catalogue = catalogue();
        let mut db = catalogue.connect();
        let warm = |db: &mut vagg_db::Database| match db.run_sql(SQL).unwrap() {
            SqlOutcome::Rows(out) => out.rows.len(),
            other => unreachable!("rows: {other:?}"),
        };
        warm(&mut db);
        let start = Instant::now();
        let n = 100;
        for _ in 0..n {
            warm(&mut db);
        }
        let library_ms = start.elapsed().as_secs_f64() * 1e3 / n as f64;

        let handle = serve(catalogue, ServerConfig::default()).expect("bind");
        let mut client = Client::connect(handle.addr()).expect("connect");
        client.query(SQL).expect("warm");
        let start = Instant::now();
        for _ in 0..n {
            client.query(SQL).expect("wire query");
        }
        let wire_ms = start.elapsed().as_secs_f64() * 1e3 / n as f64;
        g.bench_function("wire-tax/roundtrip", |b| {
            b.iter(|| client.query(SQL).expect("wire query").len())
        });
        handle.shutdown();
        (library_ms, wire_ms)
    };

    g.finish();
    write_summary(&Summary {
        qps_1: qps[0],
        qps_8: qps[1],
        qps_64: qps[2],
        reject_us,
        library_ms,
        wire_ms,
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
