//! The §VI-B comparison, measured: monotable (VGAsum/VLU) and partially
//! sorted monotable against the best-effort AVX-512-CDI-style retry loop
//! and memory-side scatter-add, on the cells where the paper's argument
//! makes predictions:
//!
//! * `hhitter` low cardinality — skew serialises the CDI retry loop;
//! * `uniform` low cardinality — CDI retries stay low but still re-issue
//!   memory traffic;
//! * `uniform` high-normal — scatter-add has no partial-sort answer to
//!   the locality cliff, PSM does.
//!
//! Criterion measures host time of the simulation; the printed simulated
//! CPT values are the architectural result.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use vagg_bench::quick::{cell, simulate};
use vagg_core::Algorithm;
use vagg_datagen::Distribution;

const CONTENDERS: [Algorithm; 4] = [
    Algorithm::Monotable,
    Algorithm::PartiallySortedMonotable,
    Algorithm::CdiMonotable,
    Algorithm::ScatterAddMonotable,
];

fn bench_cell(c: &mut Criterion, name: &str, dist: Distribution, card: u64) {
    let mut g = c.benchmark_group(name);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(2));
    g.sample_size(10);
    let ds = cell(dist, card);
    for alg in CONTENDERS {
        let run = simulate(alg, &ds);
        eprintln!(
            "[related_work] {name} {}: {:.2} simulated CPT",
            alg.short_name(),
            run.cpt
        );
        g.bench_with_input(
            BenchmarkId::from_parameter(alg.short_name()),
            &alg,
            |b, &alg| b.iter(|| black_box(simulate(alg, &ds).cpt)),
        );
    }
    g.finish();
}

fn skewed_low(c: &mut Criterion) {
    bench_cell(c, "related_hhitter_low", Distribution::HeavyHitter, 76);
}

fn uniform_low(c: &mut Criterion) {
    bench_cell(c, "related_uniform_low", Distribution::Uniform, 76);
}

fn uniform_high_normal(c: &mut Criterion) {
    bench_cell(c, "related_uniform_hn", Distribution::Uniform, 78_125);
}

criterion_group!(benches, skewed_low, uniform_low, uniform_high_normal);
criterion_main!(benches);
