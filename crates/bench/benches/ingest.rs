//! Criterion bench for the write path: what delta stores buy under
//! append traffic, and what ingest costs readers.
//!
//! Four workloads over one table shape —
//!
//! * `append-heavy`: back-to-back batch appends with compaction held
//!   off — the pure O(batch) delta write;
//! * `append-compacting`: the same appends under an aggressive
//!   compaction threshold, folding the merge cost in;
//! * `mixed-read-write`: alternating append → prepared execution, the
//!   streaming-serving loop (reads pay the per-data-version merge and
//!   the plan rebase);
//! * `read-after-ingest`: queries against a table with a standing
//!   delta, isolating the merged-view read penalty vs. a compacted
//!   base (`read-compacted`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use vagg_db::{CompactionPolicy, Database, RowBatch, Table};

const BASE_ROWS: usize = 8_192;
const BATCH_ROWS: usize = 256;
const CARD: u32 = 256;

fn events(rows: usize) -> Table {
    Table::new("events")
        .with_column("g", (0..rows).map(|i| ((i * 7919) as u32) % CARD).collect())
        .with_column("v", (0..rows).map(|i| ((i * 31) as u32) % 100).collect())
}

fn batch(salt: usize) -> RowBatch {
    RowBatch::new()
        .with_column(
            "g",
            (0..BATCH_ROWS)
                .map(|i| (((i + salt) * 127) as u32) % CARD)
                .collect(),
        )
        .with_column(
            "v",
            (0..BATCH_ROWS)
                .map(|i| (((i + salt) * 13) as u32) % 100)
                .collect(),
        )
}

const SQL: &str = "SELECT g, COUNT(*), SUM(v) FROM events WHERE v > ? GROUP BY g";

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ingest");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(2));
    g.sample_size(10);

    // Pure append throughput: delta writes only, no compaction, no
    // readers paying for a merge.
    {
        let mut db = Database::new();
        db.catalogue()
            .set_compaction_policy(CompactionPolicy::never());
        db.register(events(BASE_ROWS));
        let mut salt = 0usize;
        g.bench_function("append-heavy", |b| {
            b.iter(|| {
                salt += 1;
                black_box(db.append_rows("events", batch(salt)).expect("appends").rows)
            })
        });
    }

    // The same appends with compaction folding the delta back in every
    // few batches (threshold = 4 batches' worth of rows).
    {
        let mut db = Database::new();
        db.catalogue()
            .set_compaction_policy(CompactionPolicy::every(4 * BATCH_ROWS));
        db.register(events(BASE_ROWS));
        let mut salt = 0usize;
        g.bench_function("append-compacting", |b| {
            b.iter(|| {
                salt += 1;
                black_box(db.append_rows("events", batch(salt)).expect("appends").rows)
            })
        });
    }

    // The streaming-serving loop: every iteration appends a batch and
    // executes a prepared statement against the drifted table.
    {
        let mut db = Database::new();
        db.catalogue()
            .set_compaction_policy(CompactionPolicy::every(8 * BATCH_ROWS));
        db.register(events(BASE_ROWS));
        let mut stmt = db.prepare(SQL).expect("prepares");
        let mut salt = 0usize;
        g.bench_function("mixed-read-write", |b| {
            b.iter(|| {
                salt += 1;
                db.append_rows("events", batch(salt)).expect("appends");
                black_box(stmt.execute(&mut db, &[10]).expect("executes").rows.len())
            })
        });
    }

    // Reads over a standing delta (merged view + rebased plans)...
    {
        let mut db = Database::new();
        db.catalogue()
            .set_compaction_policy(CompactionPolicy::never());
        db.register(events(BASE_ROWS));
        db.append_rows("events", batch(1)).expect("appends");
        let mut stmt = db.prepare(SQL).expect("prepares");
        g.bench_function("read-after-ingest", |b| {
            b.iter(|| black_box(stmt.execute(&mut db, &[10]).expect("executes").rows.len()))
        });
    }

    // ...vs. the same rows fully compacted into the base.
    {
        let mut db = Database::new();
        db.catalogue()
            .set_compaction_policy(CompactionPolicy::every(1));
        db.register(events(BASE_ROWS));
        db.append_rows("events", batch(1)).expect("appends");
        let mut stmt = db.prepare(SQL).expect("prepares");
        g.bench_function("read-compacted", |b| {
            b.iter(|| black_box(stmt.execute(&mut db, &[10]).expect("executes").rows.len()))
        });
    }

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
