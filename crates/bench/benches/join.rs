//! Equi-join bench: where the hash-join cycles go and what the
//! sharded exchange strategies cost.
//!
//! Three measurement families —
//!
//! * `build-vs-probe`: a fixed 2,000-row build side probed by
//!   successively larger fact tables; the per-row slope is the probe
//!   (stream) cost and the intercept is the build (intern + bucket)
//!   cost;
//! * `exchange`: the same fact on four shards against a small build
//!   side (planner picks broadcast — one global index) and a large one
//!   (planner partitions both sides by join key);
//! * `shape`: small×large vs large×large at equal total input rows,
//!   single-session and sharded.
//!
//! Besides the usual stdout lines, the bench writes a machine-readable
//! summary to `BENCH_join.json` at the repository root so future PRs
//! can track the join-path trajectory.

use criterion::{criterion_group, criterion_main, Criterion};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::{Duration, Instant};
use vagg_datagen::rng::Xoshiro256StarStar;
use vagg_db::{Database, JoinStrategy, ShardedDatabase, SqlOutcome, Table};

const SHARDS: usize = 4;
const BUILD_ROWS: usize = 2_000;
const PROBE_SWEEP: [usize; 3] = [6_000, 12_000, 24_000];

const SQL: &str = "SELECT priority, COUNT(*), SUM(amount) \
                   FROM fact JOIN dim ON fact.orderkey = dim.orderkey \
                   GROUP BY priority";

/// A dimension side: dense sorted keys, a low-cardinality rollup column.
fn dim(rows: usize) -> Table {
    Table::new("dim")
        .with_column("orderkey", (0..rows as u32).collect())
        .with_column("priority", (0..rows as u32).map(|k| k % 5).collect())
}

/// A fact side: uniform foreign keys into `0..key_domain`, a value.
fn fact(rows: usize, key_domain: usize, seed: u64) -> Table {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    Table::new("fact")
        .with_column(
            "orderkey",
            (0..rows)
                .map(|_| rng.next_below(key_domain as u64) as u32)
                .collect(),
        )
        .with_column(
            "amount",
            (0..rows).map(|_| rng.next_below(1_000) as u32).collect(),
        )
}

/// Mean wall milliseconds per call (one warm-up, then `iters` timed).
fn wall_ms(iters: u32, mut f: impl FnMut()) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() * 1e3 / iters as f64
}

fn run_join(db: &mut Database) -> usize {
    match db.run_sql(SQL).expect("join executes") {
        SqlOutcome::Rows(out) => out.rows.len(),
        other => unreachable!("SELECT returns rows: {other:?}"),
    }
}

struct Summary {
    sweep_ms: Vec<(usize, f64)>,
    probe_ms_per_1k: f64,
    build_intercept_ms: f64,
    broadcast_ms: f64,
    partition_ms: f64,
    small_large_ms: f64,
    large_large_ms: f64,
    large_large_sharded_ms: f64,
}

fn write_summary(s: &Summary) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_join.json");
    let mut out = String::from("{\n");
    let _ = writeln!(
        out,
        "  \"generated_by\": \"cargo bench -p vagg-bench --bench join\",\n  \
         \"shards\": {SHARDS},"
    );
    let sweep = s
        .sweep_ms
        .iter()
        .map(|(rows, ms)| format!("{{\"probe_rows\": {rows}, \"ms\": {ms:.4}}}"))
        .collect::<Vec<_>>()
        .join(", ");
    let _ = writeln!(
        out,
        "  \"build_vs_probe\": {{\n    \"build_rows\": {BUILD_ROWS},\n    \
         \"sweep\": [{sweep}],\n    \
         \"probe_ms_per_1k_rows\": {:.4},\n    \
         \"build_intercept_ms\": {:.4}\n  }},",
        s.probe_ms_per_1k, s.build_intercept_ms
    );
    let _ = writeln!(
        out,
        "  \"exchange\": {{\n    \"probe_rows\": {},\n    \
         \"broadcast\": {{\"build_rows\": 1000, \"ms\": {:.4}}},\n    \
         \"partitioned\": {{\"build_rows\": 8000, \"ms\": {:.4}}}\n  }},",
        PROBE_SWEEP[2], s.broadcast_ms, s.partition_ms
    );
    let _ = writeln!(
        out,
        "  \"shape\": {{\n    \
         \"small_x_large\": {{\"sides\": [{BUILD_ROWS}, {}], \"ms\": {:.4}}},\n    \
         \"large_x_large\": {{\"sides\": [12000, 12000], \"ms\": {:.4}, \
         \"sharded_ms\": {:.4}}}\n  }}\n}}",
        PROBE_SWEEP[2], s.small_large_ms, s.large_large_ms, s.large_large_sharded_ms
    );
    std::fs::write(path, out).expect("write BENCH_join.json");
    println!("  wrote {path}");
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("join");
    g.warm_up_time(Duration::from_millis(200));
    g.measurement_time(Duration::from_secs(1));
    g.sample_size(10);

    // Build vs probe: fixed build side, growing probe side. The probe
    // stream is linear in its rows; extrapolating to zero probe rows
    // isolates what the build (intern + bucket + freeze) costs.
    let mut sweep_ms = Vec::new();
    for (i, &rows) in PROBE_SWEEP.iter().enumerate() {
        let mut db = Database::new();
        db.register(dim(BUILD_ROWS));
        db.register(fact(rows, BUILD_ROWS, 7 + i as u64));
        g.bench_function(format!("build-vs-probe/probe-{rows}"), |b| {
            b.iter(|| black_box(run_join(&mut db)))
        });
        sweep_ms.push((
            rows,
            wall_ms(8, || {
                black_box(run_join(&mut db));
            }),
        ));
    }
    let (lo, hi) = (sweep_ms[0], sweep_ms[sweep_ms.len() - 1]);
    let probe_ms_per_1k = (hi.1 - lo.1) / ((hi.0 - lo.0) as f64 / 1e3);
    let build_intercept_ms = lo.1 - probe_ms_per_1k * lo.0 as f64 / 1e3;
    println!(
        "  probe ≈ {probe_ms_per_1k:.3} ms/1k rows, build+tail intercept ≈ \
         {build_intercept_ms:.3} ms"
    );

    // Exchange strategies on four shards: the planner broadcasts the
    // 1,000-row build side (one global index) and partitions the
    // 8,000-row one (both sides routed by join-key hash).
    let mut exchange = |build_rows: usize, expect: JoinStrategy| -> f64 {
        let mut db = ShardedDatabase::new(SHARDS);
        db.register(dim(build_rows));
        db.register(fact(PROBE_SWEEP[2], build_rows, 21));
        let plan = db.explain_join_sql(SQL).expect("join plans");
        assert_eq!(plan.strategy(), expect, "{build_rows}-row build side");
        g.bench_function(format!("exchange/{expect}"), |b| {
            b.iter(|| black_box(db.run_sql(SQL).expect("sharded join").rows.len()))
        });
        wall_ms(8, || {
            black_box(db.run_sql(SQL).expect("sharded join").rows.len());
        })
    };
    let broadcast_ms = exchange(1_000, JoinStrategy::Broadcast);
    let partition_ms = exchange(8_000, JoinStrategy::Partition);

    // Query shape: the 24k-probe point above is small×large; measure
    // large×large at the same total input rows, single and sharded.
    let small_large_ms = sweep_ms[sweep_ms.len() - 1].1;
    let large_large_ms = {
        let mut db = Database::new();
        db.register(dim(12_000));
        db.register(fact(12_000, 12_000, 35));
        g.bench_function("shape/large-x-large", |b| {
            b.iter(|| black_box(run_join(&mut db)))
        });
        wall_ms(8, || {
            black_box(run_join(&mut db));
        })
    };
    let large_large_sharded_ms = {
        let mut db = ShardedDatabase::new(SHARDS);
        db.register(dim(12_000));
        db.register(fact(12_000, 12_000, 35));
        g.bench_function("shape/large-x-large-sharded", |b| {
            b.iter(|| black_box(db.run_sql(SQL).expect("sharded join").rows.len()))
        });
        wall_ms(8, || {
            black_box(db.run_sql(SQL).expect("sharded join").rows.len());
        })
    };

    write_summary(&Summary {
        sweep_ms,
        probe_ms_per_1k,
        build_intercept_ms,
        broadcast_ms,
        partition_ms,
        small_large_ms,
        large_large_ms,
        large_large_sharded_ms,
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
