//! Criterion bench for the serving layer: what plan caching, prepared
//! statements and sharding buy under repeated query traffic.
//!
//! Three planning regimes over the same query shape —
//!
//! * `cold-plan`: plan from scratch every query (the pre-cache world);
//! * `cached-plan`: SQL through the [`vagg_db::PlanCache`] (parse +
//!   shape lookup + constant rebind);
//! * `prepared`: [`vagg_db::PreparedStatement`] execution (bind only —
//!   no parse, no statistics pass) —
//!
//! and a `sessions` sweep running the merged sharded aggregate on
//! 1/2/4/8 concurrent shard sessions (host wall time; the simulated
//! makespan is reported by `ShardedOutput::report.cycles`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use vagg_db::{AggregateQuery, Database, Engine, Predicate, Session, ShardedDatabase, Table};

const ROWS: usize = 16_384;
const CARD: u32 = 256;

fn events() -> Table {
    Table::new("events")
        .with_column("g", (0..ROWS).map(|i| ((i * 7919) as u32) % CARD).collect())
        .with_column("v", (0..ROWS).map(|i| ((i * 31) as u32) % 100).collect())
}

const SQL: &str = "SELECT g, COUNT(*), SUM(v) FROM events WHERE v > 10 GROUP BY g";

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("serving");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(2));
    g.sample_size(10);

    let table = events();

    // Cold plan: the statistics pass reruns on every query.
    {
        let engine = Engine::new();
        let mut session = Session::new();
        let query = AggregateQuery::paper("g", "v").with_filter("v", Predicate::GreaterThan(10));
        g.bench_function("cold-plan", |b| {
            b.iter(|| {
                let plan = engine.plan(&table, &query).expect("plans");
                black_box(session.run(&plan).rows.len())
            })
        });
    }

    // Cached plan: SQL in, shape lookup + rebind, no statistics pass.
    {
        let mut db = Database::new();
        db.register(table.clone());
        g.bench_function("cached-plan", |b| {
            b.iter(|| black_box(db.execute_sql(SQL).expect("executes").rows.len()))
        });
    }

    // Prepared: bind two integers into the plan and go.
    {
        let mut db = Database::new();
        db.register(table.clone());
        let mut stmt = db
            .prepare("SELECT g, COUNT(*), SUM(v) FROM events WHERE v > ? GROUP BY g")
            .expect("prepares");
        g.bench_function("prepared", |b| {
            b.iter(|| black_box(stmt.execute(&mut db, &[10]).expect("executes").rows.len()))
        });
    }

    // Sharded sessions: same total rows, 1/2/4/8 partitions in
    // parallel threads, partials merged on the coordinator.
    for sessions in [1usize, 2, 4, 8] {
        let mut db = ShardedDatabase::new(sessions);
        db.register(table.clone());
        g.bench_with_input(BenchmarkId::new("sessions", sessions), &sessions, |b, _| {
            b.iter(|| black_box(db.run_sql(SQL).expect("executes").rows.len()))
        });
    }

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
