//! Durability bench: what the write-ahead log costs and what recovery
//! buys back.
//!
//! Three measurements —
//!
//! * `ingest`: the same batch stream appended to an in-memory database
//!   vs a durable one (every batch serialised, checksummed and flushed
//!   to `wal.log`) — the logged-ingest overhead the WAL design keeps
//!   under 2×;
//! * `replay`: `Database::open` on the full un-checkpointed log —
//!   recovery throughput in rows/s;
//! * `checkpoint`: folding the replayed state into fresh images and
//!   truncating the log (the compaction-time cost), plus the steady-
//!   state cost of re-checkpointing an already-compact database.
//!
//! Besides the usual stdout lines, the bench writes a machine-readable
//! summary to `BENCH_wal.json` at the repository root so future PRs
//! can track the durability-path trajectory.

use criterion::{criterion_group, criterion_main, Criterion};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::{Duration, Instant};
use vagg_db::{CompactionPolicy, Database, RowBatch, Table, TempDir};

const BATCHES: usize = 256;
const BATCH_ROWS: usize = 128;
const SEED_ROWS: usize = 1024;

fn seed_table() -> Table {
    Table::new("t")
        .with_column(
            "g",
            (0..SEED_ROWS).map(|i| (i * 7919 % 23) as u32).collect(),
        )
        .with_column("v", (0..SEED_ROWS).map(|i| (i * 31 % 100) as u32).collect())
}

fn batch(i: usize) -> RowBatch {
    RowBatch::new()
        .with_column(
            "g",
            (0..BATCH_ROWS)
                .map(|j| ((i + j) * 13 % 23) as u32)
                .collect(),
        )
        .with_column(
            "v",
            (0..BATCH_ROWS)
                .map(|j| ((i * 7 + j) % 100) as u32)
                .collect(),
        )
}

/// A database with the bench table, compaction parked so the ingest
/// comparison measures append+log cost alone (checkpointing is costed
/// separately below).
fn fresh(dir: Option<&std::path::Path>) -> Database {
    let mut db = match dir {
        Some(d) => Database::open(d).unwrap(),
        None => Database::new(),
    };
    db.catalogue()
        .set_compaction_policy(CompactionPolicy::never());
    db.register(seed_table());
    db
}

/// Wall milliseconds for one full batch-stream ingest, best of `reps`.
fn ingest_ms(reps: u32, mut make: impl FnMut() -> Database) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let mut db = make();
        let start = Instant::now();
        for i in 0..BATCHES {
            black_box(db.append_rows("t", batch(i)).unwrap());
        }
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("wal");
    g.warm_up_time(Duration::from_millis(200));
    g.measurement_time(Duration::from_secs(1));
    g.sample_size(10);

    // ---- Logged-ingest overhead. ------------------------------------
    {
        let mut db = fresh(None);
        let mut i = 0;
        g.bench_function("ingest/in-memory", |b| {
            b.iter(|| {
                i += 1;
                black_box(db.append_rows("t", batch(i)).unwrap())
            })
        });
    }
    {
        let dir = TempDir::new("bench-wal-ingest");
        let mut db = fresh(Some(dir.path()));
        let mut i = 0;
        g.bench_function("ingest/logged", |b| {
            b.iter(|| {
                i += 1;
                black_box(db.append_rows("t", batch(i)).unwrap())
            })
        });
    }
    let in_memory_ms = ingest_ms(3, || fresh(None));
    let logged_dir = TempDir::new("bench-wal-stream");
    let logged_ms = {
        // Reuse one directory; each rep starts over in a subdirectory
        // so the measured log always grows from empty.
        let mut rep = 0;
        ingest_ms(3, || {
            rep += 1;
            let sub = logged_dir.path().join(format!("rep-{rep}"));
            fresh(Some(&sub))
        })
    };
    let overhead = logged_ms / in_memory_ms;
    println!(
        "  ingest {BATCHES}x{BATCH_ROWS} rows: in-memory {in_memory_ms:.3} ms, \
         logged {logged_ms:.3} ms ({overhead:.2}x)"
    );

    // ---- Replay throughput. -----------------------------------------
    // The last ingest rep left a full un-checkpointed log behind.
    let replay_dir = logged_dir.path().join("rep-3");
    let replay_rows = SEED_ROWS + BATCHES * BATCH_ROWS;
    g.bench_function("replay/open", |b| {
        b.iter(|| black_box(Database::open(&replay_dir).unwrap().data_version("t")))
    });
    let open_ms = {
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let start = Instant::now();
            black_box(Database::open(&replay_dir).unwrap());
            best = best.min(start.elapsed().as_secs_f64() * 1e3);
        }
        best
    };
    let rows_per_sec = replay_rows as f64 / (open_ms / 1e3);
    println!(
        "  replay {} records / {replay_rows} rows: {open_ms:.3} ms ({rows_per_sec:.0} rows/s)",
        BATCHES + 1
    );

    // ---- Checkpoint cost. -------------------------------------------
    let fold_ms = {
        // Each ingest rep left an identical full log; fold each one
        // once so every rep measures a first-time checkpoint.
        let mut best = f64::INFINITY;
        for r in 1..=3 {
            let sub = logged_dir.path().join(format!("rep-{r}"));
            let mut db = Database::open(&sub).unwrap();
            let start = Instant::now();
            db.checkpoint().unwrap();
            best = best.min(start.elapsed().as_secs_f64() * 1e3);
        }
        best
    };
    let steady_ms = {
        let mut db = Database::open(&replay_dir).unwrap();
        db.checkpoint().unwrap();
        let start = Instant::now();
        db.checkpoint().unwrap();
        start.elapsed().as_secs_f64() * 1e3
    };
    {
        let mut db = Database::open(&replay_dir).unwrap();
        g.bench_function("checkpoint/steady", |b| b.iter(|| db.checkpoint().unwrap()));
    }
    println!("  checkpoint {replay_rows} rows: fold {fold_ms:.3} ms, steady {steady_ms:.3} ms");

    // ---- Machine-readable summary. ----------------------------------
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_wal.json");
    let mut out = String::from("{\n");
    let _ = writeln!(
        out,
        "  \"generated_by\": \"cargo bench -p vagg-bench --bench wal\","
    );
    let _ = writeln!(
        out,
        "  \"ingest\": {{\n    \"batches\": {BATCHES},\n    \
         \"rows_per_batch\": {BATCH_ROWS},\n    \
         \"in_memory_ms\": {in_memory_ms:.4},\n    \
         \"logged_ms\": {logged_ms:.4},\n    \
         \"logged_overhead\": {overhead:.3}\n  }},"
    );
    let _ = writeln!(
        out,
        "  \"replay\": {{\n    \"records\": {},\n    \"rows\": {replay_rows},\n    \
         \"open_ms\": {open_ms:.4},\n    \"rows_per_sec\": {rows_per_sec:.0}\n  }},",
        BATCHES + 1
    );
    let _ = writeln!(
        out,
        "  \"checkpoint\": {{\n    \"table_rows\": {replay_rows},\n    \
         \"fold_ms\": {fold_ms:.4},\n    \"steady_ms\": {steady_ms:.4}\n  }}\n}}"
    );
    std::fs::write(path, out).expect("write BENCH_wal.json");
    println!("  wrote {path}");
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
