//! Criterion benches for the simulated sorts — the §V-A comparison
//! (evasion radix vs VSR), the bitonic-mergesort comparator behind the
//! §IV-A sort choice, and the single-pass partial sort that powers
//! partially sorted monotable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use vagg_sim::Machine;
use vagg_sort::{bitonic_sort, quicksort, radix_sort, vsr_partial_pass, vsr_sort, SortArrays};

fn dataset(n: usize, c: u64) -> (Vec<u32>, Vec<u32>) {
    let keys = (0..n)
        .map(|i| ((i as u64).wrapping_mul(2654435761) % c) as u32)
        .collect();
    let vals = (0..n).map(|i| (i % 10) as u32).collect();
    (keys, vals)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("sorts");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(2));
    g.sample_size(10);
    let n = 10_000;
    for card in [256u64, 100_000] {
        let (keys, vals) = dataset(n, card);
        let max = keys.iter().copied().max().unwrap();
        g.bench_with_input(BenchmarkId::new("radix", card), &card, |b, _| {
            b.iter(|| {
                let mut m = Machine::paper();
                let a = SortArrays::stage(&mut m, &keys, &vals);
                black_box(radix_sort(&mut m, &a, max));
                black_box(m.cycles())
            })
        });
        g.bench_with_input(BenchmarkId::new("bitonic", card), &card, |b, _| {
            b.iter(|| {
                let mut m = Machine::paper();
                let a = SortArrays::stage(&mut m, &keys, &vals);
                bitonic_sort(&mut m, &a);
                black_box(m.cycles())
            })
        });
        g.bench_with_input(BenchmarkId::new("quicksort", card), &card, |b, _| {
            b.iter(|| {
                let mut m = Machine::paper();
                let a = SortArrays::stage(&mut m, &keys, &vals);
                quicksort(&mut m, &a);
                black_box(m.cycles())
            })
        });
        g.bench_with_input(BenchmarkId::new("vsr", card), &card, |b, _| {
            b.iter(|| {
                let mut m = Machine::paper();
                let a = SortArrays::stage(&mut m, &keys, &vals);
                black_box(vsr_sort(&mut m, &a, max));
                black_box(m.cycles())
            })
        });
        if card > 1_000 {
            g.bench_with_input(BenchmarkId::new("vsr-partial-top8", card), &card, |b, _| {
                b.iter(|| {
                    let mut m = Machine::paper();
                    let a = SortArrays::stage(&mut m, &keys, &vals);
                    let bits = 32 - max.leading_zeros();
                    vsr_partial_pass(&mut m, &a, bits - 8, bits, black_box(max));
                    black_box(m.cycles())
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
