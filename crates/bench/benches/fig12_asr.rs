//! Criterion bench regenerating Figure 12 / Table VI (advanced sorted reduce) on a reduced grid
//! (see the `repro fig12` command for the full-scale series).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use vagg_bench::quick::{cell, simulate, BENCH_CARDS};
use vagg_core::Algorithm;
use vagg_datagen::Distribution;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(2));
    g.sample_size(10);
    for dist in [Distribution::Uniform, Distribution::Sorted] {
        for card in BENCH_CARDS {
            let ds = cell(dist, card);
            g.bench_with_input(BenchmarkId::new(dist.name(), card), &ds, |b, ds| {
                b.iter(|| black_box(simulate(Algorithm::AdvancedSortedReduce, ds).cpt))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
