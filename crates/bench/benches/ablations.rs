//! Ablation benches for the design choices DESIGN.md calls out. Each
//! group prints the *simulated CPT* under both settings through criterion
//! labels (the measured host time tracks simulated work):
//!
//! * `l1bypass` — vector memory via L2 directly (paper) vs through L1;
//! * `xor` — XOR-interleaved L2 sets (paper) vs modulo placement;
//! * `cam_ports` — CAM port count p ∈ {1, 2, 4, 8};
//! * `mvl` — maximum vector length ∈ {16, 64, 256};
//! * `lanes` — lockstepped lane count ∈ {2, 4, 8}.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use vagg_bench::quick::{cell, simulate_with};
use vagg_core::Algorithm;
use vagg_datagen::Distribution;
use vagg_sim::SimConfig;

fn group<'a>(
    c: &'a mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(name);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(2));
    g.sample_size(10);
    g
}

fn ablate_l1_bypass(c: &mut Criterion) {
    let mut g = group(c, "ablation_l1bypass");
    let ds = cell(Distribution::Uniform, 78_125);
    for bypass in [true, false] {
        let mut cfg = SimConfig::paper();
        cfg.mem.l1_bypass_vector = bypass;
        let run = simulate_with(Algorithm::Monotable, &cfg, &ds);
        eprintln!(
            "[ablation] l1_bypass_vector={bypass}: {:.2} simulated CPT",
            run.cpt
        );
        g.bench_with_input(BenchmarkId::from_parameter(bypass), &cfg, |b, cfg| {
            b.iter(|| black_box(simulate_with(Algorithm::Monotable, cfg, &ds).cpt))
        });
    }
    g.finish();
}

fn ablate_xor(c: &mut Criterion) {
    let mut g = group(c, "ablation_xor");
    // Polytable's MVL-stride diagonal access is the pathological pattern
    // XOR placement exists to fix (§II-A).
    let ds = cell(Distribution::Sequential, 1_220);
    for xor in [true, false] {
        let mut cfg = SimConfig::paper();
        cfg.mem.xor_l2 = xor;
        let run = simulate_with(Algorithm::Polytable, &cfg, &ds);
        eprintln!("[ablation] xor_l2={xor}: {:.2} simulated CPT", run.cpt);
        g.bench_with_input(BenchmarkId::from_parameter(xor), &cfg, |b, cfg| {
            b.iter(|| black_box(simulate_with(Algorithm::Polytable, cfg, &ds).cpt))
        });
    }
    g.finish();
}

fn ablate_cam_ports(c: &mut Criterion) {
    let mut g = group(c, "ablation_cam_ports");
    let ds = cell(Distribution::Uniform, 76);
    for ports in [1usize, 2, 4, 8] {
        let cfg = SimConfig::paper().with_cam_ports(ports);
        let run = simulate_with(Algorithm::Monotable, &cfg, &ds);
        eprintln!("[ablation] cam_ports={ports}: {:.2} simulated CPT", run.cpt);
        g.bench_with_input(BenchmarkId::from_parameter(ports), &cfg, |b, cfg| {
            b.iter(|| black_box(simulate_with(Algorithm::Monotable, cfg, &ds).cpt))
        });
    }
    g.finish();
}

fn ablate_mvl(c: &mut Criterion) {
    let mut g = group(c, "ablation_mvl");
    let ds = cell(Distribution::Zipf, 1_220);
    for mvl in [16usize, 64, 256] {
        let cfg = SimConfig::paper().with_mvl(mvl);
        let run = simulate_with(Algorithm::Monotable, &cfg, &ds);
        eprintln!("[ablation] mvl={mvl}: {:.2} simulated CPT", run.cpt);
        g.bench_with_input(BenchmarkId::from_parameter(mvl), &cfg, |b, cfg| {
            b.iter(|| black_box(simulate_with(Algorithm::Monotable, cfg, &ds).cpt))
        });
    }
    g.finish();
}

fn ablate_lanes(c: &mut Criterion) {
    let mut g = group(c, "ablation_lanes");
    let ds = cell(Distribution::Uniform, 1_220);
    for lanes in [2usize, 4, 8] {
        let cfg = SimConfig::paper().with_lanes(lanes).with_cam_ports(lanes);
        let run = simulate_with(Algorithm::Monotable, &cfg, &ds);
        eprintln!("[ablation] lanes={lanes}: {:.2} simulated CPT", run.cpt);
        g.bench_with_input(BenchmarkId::from_parameter(lanes), &cfg, |b, cfg| {
            b.iter(|| black_box(simulate_with(Algorithm::Monotable, cfg, &ds).cpt))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    ablate_l1_bypass,
    ablate_xor,
    ablate_cam_ports,
    ablate_mvl,
    ablate_lanes
);
criterion_main!(benches);
