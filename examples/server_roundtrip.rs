//! Serving over TCP, end to end: stand a server up in-process, talk to
//! it with the wire client, and watch the serving policy work.
//!
//! ```text
//! cargo run --release --example server_roundtrip
//! ```
//!
//! The walk-through:
//!
//! 1. seed a shared catalogue and serve it on a loopback port;
//! 2. eight concurrent clients each run a different statement shape
//!    (aggregates, a composite GROUP BY, a join, a prepared
//!    statement) and check the wire answer against a direct library
//!    session, bit for bit;
//! 3. a morsel budget cancels a query mid-flight and the session
//!    survives;
//! 4. a zero-capacity server shows the typed `Overloaded` rejection;
//! 5. the `Metrics` frame returns the Prometheus exposition with
//!    serving counters, QPS and latency quantiles.

use vagg::db::{Row, SharedCatalogue, SqlOutcome, Table};
use vagg_server::{serve, Client, ErrorCode, ServerConfig, WireRow};

fn events(n: usize) -> Table {
    Table::new("events")
        .with_column("g", (0..n).map(|i| ((i * 7919) % 31) as u32).collect())
        .with_column("v", (0..n).map(|i| ((i * 31) % 100) as u32).collect())
        .with_column("k", (0..n).map(|i| ((i * 13) % 977) as u32).collect())
}

fn dims() -> Table {
    Table::new("dims")
        .with_column("g", (0..31).collect())
        .with_column("w", (0..31).map(|i| (i * i) as u32).collect())
}

fn library_rows(catalogue: &SharedCatalogue, sql: &str) -> Vec<Row> {
    match catalogue.connect().run_sql(sql).expect("library query") {
        SqlOutcome::Rows(output) => output.rows,
        other => panic!("expected rows, got {other:?}"),
    }
}

fn same_rows(wire: &[WireRow], lib: &[Row]) -> bool {
    wire.len() == lib.len()
        && wire.iter().zip(lib).all(|(w, l)| {
            w.group == l.group
                && w.group_parts == l.group_parts
                && w.values.len() == l.values.len()
                && w.values
                    .iter()
                    .zip(&l.values)
                    .all(|(a, b)| a.to_bits() == b.to_bits())
        })
}

fn main() {
    // 1. A shared catalogue served on a loopback port.
    let catalogue = SharedCatalogue::new();
    catalogue.register(events(50_000));
    catalogue.register(dims());
    let handle = serve(catalogue.clone(), ServerConfig::default()).expect("bind");
    let addr = handle.addr();
    println!("serving on {addr}");

    // 2. Eight concurrent clients, each with its own statement shape.
    let statements = [
        "SELECT g, COUNT(*), SUM(v), MIN(v), MAX(v), AVG(v) FROM events GROUP BY g",
        "SELECT g, SUM(v) FROM events WHERE v > 50 GROUP BY g",
        "SELECT g, k, COUNT(*) FROM events WHERE k < 100 GROUP BY g, k",
        "SELECT g, COUNT(*) FROM events GROUP BY g HAVING COUNT(*) > 100",
        "SELECT g, SUM(v) FROM events GROUP BY g ORDER BY SUM(v) DESC LIMIT 7",
        "SELECT g, AVG(k) FROM events WHERE v > 9 GROUP BY g",
        "SELECT events.g, SUM(dims.w) FROM events JOIN dims ON events.g = dims.g GROUP BY events.g",
        "SELECT g, MAX(k), MIN(k) FROM events GROUP BY g",
    ];
    let workers: Vec<_> = statements
        .iter()
        .map(|&sql| {
            let expected = library_rows(&catalogue, sql);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let rows = client.query(sql).expect("wire query");
                assert!(same_rows(&rows, &expected), "wire ≠ library for {sql}");
                client.goodbye().expect("goodbye");
                rows.len()
            })
        })
        .collect();
    let row_counts: Vec<usize> = workers.into_iter().map(|w| w.join().unwrap()).collect();
    println!(
        "8 concurrent clients matched the library bit for bit ({} result rows)",
        row_counts.iter().sum::<usize>()
    );

    // ...including a prepared statement bound three times.
    let mut client = Client::connect(addr).expect("connect");
    let stmt = client
        .prepare("SELECT g, COUNT(*), SUM(v) FROM events WHERE v > ? GROUP BY g")
        .expect("prepare");
    for threshold in [10u64, 50, 90] {
        let rows = client.execute(stmt, &[threshold]).expect("execute");
        let expected = library_rows(
            &catalogue,
            &format!("SELECT g, COUNT(*), SUM(v) FROM events WHERE v > {threshold} GROUP BY g"),
        );
        assert!(same_rows(&rows, &expected));
    }
    println!("prepared statement bound at 3 thresholds, all bit-identical");

    // 5. The metrics exposition (printed before shutdown so the gauges
    // are live).
    let text = client.metrics().expect("metrics");
    println!("\n--- Metrics (serving excerpt) ---");
    for line in text
        .lines()
        .filter(|l| l.starts_with("vagg_server_") || l.starts_with("vagg_query_cycles_p"))
    {
        println!("{line}");
    }
    drop(client);
    handle.shutdown();

    // 3. Cancellation: a 2-morsel budget kills a 25-morsel query at a
    // morsel boundary; the session survives and answers the next one.
    let budgeted = serve(
        catalogue.clone(),
        ServerConfig {
            morsel_budget: Some(2),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let mut client = Client::connect(budgeted.addr()).expect("connect");
    let err = client
        .query("SELECT g, COUNT(*), SUM(v) FROM events GROUP BY g")
        .expect_err("the budget must trip");
    assert_eq!(err.code(), Some(ErrorCode::Cancelled));
    println!("\nbudgeted query cancelled mid-flight: {err}");
    let rows = client
        .query("SELECT g, COUNT(*) FROM dims GROUP BY g")
        .expect("a small query still fits the budget");
    println!("same session answered the next query ({} rows)", rows.len());
    budgeted.shutdown();

    // 4. Backpressure: a zero-capacity gate rejects with a typed,
    // retryable error instead of queueing forever.
    let closed = serve(
        catalogue,
        ServerConfig {
            max_inflight: 0,
            max_queue: 0,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let mut client = Client::connect(closed.addr()).expect("connect");
    let err = client
        .query("SELECT g, COUNT(*) FROM events GROUP BY g")
        .expect_err("admission must reject");
    assert_eq!(err.code(), Some(ErrorCode::Overloaded));
    println!("overloaded server rejected typed and fast: {err}");
    closed.shutdown();
    println!("\nall servers drained and joined cleanly");
}
