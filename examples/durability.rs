//! Durability: the write-ahead log end to end — open a database on
//! disk, ingest and mutate it, "crash" (drop without any shutdown
//! hook), reopen, and watch recovery replay the log to the exact
//! committed state. Also shows write transactions rolling back by
//! omission and named versions surviving both compaction and the
//! crash.
//!
//! ```text
//! cargo run --release --example durability
//! ```

use vagg::db::{Database, SqlOutcome, Table, TempDir};

fn rows(db: &mut Database, sql: &str) -> usize {
    db.execute_sql(sql).unwrap().rows.len()
}

fn main() {
    let dir = TempDir::new("example-durability");
    let sql = "SELECT region, COUNT(*), SUM(amount) FROM orders GROUP BY region";

    // ---- Session 1: build state, then crash without warning. --------
    {
        let mut db = Database::open(dir.path()).unwrap();
        println!("opened {:?} (durable: {})", dir.path(), db.is_durable());
        db.register(
            Table::new("orders")
                .with_column("region", vec![1, 2, 1, 3, 2, 1])
                .with_column("amount", vec![10, 20, 30, 40, 50, 60]),
        );

        // A named version pins "now" forever — it survives unpin,
        // compaction, and (because it is WAL-logged) the crash below.
        db.run_sql("CREATE SNAPSHOT launch").unwrap();

        // Autocommitted writes: logged, flushed, durable.
        db.run_sql("INSERT INTO orders (region, amount) VALUES (3, 70), (2, 80)")
            .unwrap();
        match db.run_sql("DELETE FROM orders WHERE amount < 20").unwrap() {
            SqlOutcome::Deleted(r) => println!("deleted {} row(s) -> v{}", r.rows, r.data_version),
            other => unreachable!("DELETE reports a receipt: {other:?}"),
        }

        // A write transaction: queued statements become visible (and
        // durable) atomically at COMMIT, under one commit record.
        db.run_sql("BEGIN").unwrap();
        db.run_sql("INSERT INTO orders (region, amount) VALUES (4, 90)")
            .unwrap();
        db.run_sql("UPDATE orders SET amount = 25 WHERE region <> 1")
            .unwrap();
        db.run_sql("COMMIT").unwrap();
        println!("committed transaction; groups now: {}", rows(&mut db, sql));

        // This one never commits — the crash erases it.
        db.run_sql("BEGIN").unwrap();
        db.run_sql("INSERT INTO orders (region, amount) VALUES (9, 999)")
            .unwrap();
        println!("crashing with a transaction still open...");
    } // <- drop = crash: no flush call, no shutdown hook

    // ---- Session 2: recovery replays the log. -----------------------
    let mut db = Database::open(dir.path()).unwrap();
    let live = rows(&mut db, sql);
    println!("recovered; groups: {live}");
    assert_eq!(live, 4, "regions 1..4 — the region-9 insert rolled back");

    // Time travel across the crash: the named version still answers
    // with the pre-insert state.
    let at_launch = rows(
        &mut db,
        "SELECT region, COUNT(*), SUM(amount) FROM orders AS OF launch GROUP BY region",
    );
    println!("AS OF launch: {at_launch} groups");
    assert_eq!(at_launch, 3);

    // The recovered database is fully live: a checkpoint folds the
    // replayed state into fresh images and truncates the log.
    db.checkpoint().unwrap();
    db.run_sql("INSERT INTO orders (region, amount) VALUES (5, 5)")
        .unwrap();
    drop(db);
    let mut db = Database::open(dir.path()).unwrap();
    assert_eq!(rows(&mut db, sql), 5);
    println!("post-checkpoint write survived a second reopen — done");
}
