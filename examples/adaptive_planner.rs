//! Adaptive planner: demonstrates §V-D — the runtime algorithm selection
//! that gives the paper its 2.7×–7.6× headline. For a few representative
//! datasets, shows what the realistic policy picks (using only
//! presortedness metadata + the observed cardinality), what the oracle
//! would pick, and how the choice compares against running every
//! algorithm.
//!
//! ```text
//! cargo run --release --example adaptive_planner
//! ```

use vagg::core::{
    run_adaptive, run_algorithm, select_algorithm, AdaptiveMode, Algorithm, PlannerInputs,
};
use vagg::datagen::{DatasetSpec, Distribution, Division};
use vagg::sim::SimConfig;

fn main() {
    let cfg = SimConfig::paper();
    let n = 50_000;
    // One dataset per (distribution, division) corner worth showing.
    let cases = [
        (Distribution::Uniform, 19u64),
        (Distribution::Uniform, 78_125),
        (Distribution::Sorted, 19),
        (Distribution::Sorted, 78_125),
        (Distribution::Sequential, 78_125),
        (Distribution::Zipf, 1_220),
        (Distribution::HeavyHitter, 625_000),
    ];

    println!(
        "{:12} {:>9} {:12} | {:>18} | {:>18} | best-by-measurement",
        "dist", "c", "division", "realistic pick", "ideal pick"
    );
    for (dist, c) in cases {
        let ds = DatasetSpec::paper(dist, c).with_rows(n).generate();
        let division = Division::of_cardinality(ds.max_group_key() as u64 + 1);
        let presorted = dist.is_presorted();

        let inputs = PlannerInputs {
            presorted,
            cardinality: ds.max_group_key() as u64 + 1,
            rows: n,
            mvl: cfg.mvl,
        };
        let realistic = select_algorithm(&inputs, None, AdaptiveMode::Realistic);
        let ideal = select_algorithm(&inputs, Some(dist), AdaptiveMode::Ideal);

        // Ground truth: measure everything.
        let mut best = (f64::INFINITY, Algorithm::Scalar);
        for alg in Algorithm::VECTORISED {
            let run = run_algorithm(alg, &cfg, &ds);
            if run.cpt < best.0 {
                best = (run.cpt, alg);
            }
        }

        let run = run_adaptive(&cfg, &ds, AdaptiveMode::Realistic);
        let marker = if realistic == best.1 { "✓" } else { " " };
        println!(
            "{:12} {:>9} {:12} | {:>18} | {:>18} | {} ({:.1} CPT measured, picked {:.1}) {marker}",
            dist.name(),
            c,
            division.name(),
            realistic.short_name(),
            ideal.short_name(),
            best.1.short_name(),
            best.0,
            run.cpt,
        );
    }

    println!(
        "\nThe realistic policy needs only DBMS metadata (is the column \
         sorted?) and the\nmaximum group key — both available at runtime. \
         The only cells it can miss are\nthe sequential-at-high-cardinality \
         ‡ cases, which the paper measures as a 1.3%\naverage penalty."
    );
}
