//! Column-store query: the paper's motivating scenario (Figure 1) end to
//! end — a small analytics "database" with a people table, aggregated by
//! age bracket on the simulated vector machine.
//!
//! ```text
//! cargo run --release --example column_store_query
//! ```

use vagg::core::{reference, Algorithm, StagedInput};
use vagg::datagen::rng::Xoshiro256StarStar;
use vagg::sim::Machine;

fn main() {
    // Synthesize the Figure 1 table at scale: (name-id, age, earnings).
    // Column-store layout: each attribute is a contiguous array.
    let n = 40_000usize;
    let mut rng = Xoshiro256StarStar::seed_from_u64(2016);
    let ages: Vec<u32> = (0..n)
        .map(|_| 18 + rng.next_below(62) as u32) // 18..79
        .collect();
    let earnings: Vec<u32> = ages
        .iter()
        .map(|&a| {
            // Earnings loosely correlated with age, in thousands.
            let base = 8 + (a.saturating_sub(18)) / 4;
            base + rng.next_below(9) as u32
        })
        .collect();

    // The query of Figure 1/2 grouped by decade:
    //   SELECT age/10, COUNT(*), SUM(earnings) FROM people GROUP BY age/10
    // The bracketing projection (age → age/10) is itself vectorisable; we
    // precompute it here and aggregate the bracketed column.
    let brackets: Vec<u32> = ages.iter().map(|&a| a / 10).collect();

    let mut m = Machine::paper();
    let input = StagedInput::stage_raw(&mut m, &brackets, &earnings, false);
    let (result, _rows) = Algorithm::Monotable.execute(&mut m, &input);
    assert_eq!(result, reference(&brackets, &earnings));

    println!("SELECT age_bracket, COUNT(*), AVG(earnings) FROM people GROUP BY age_bracket;");
    println!("(run as COUNT + SUM on the simulated vector machine, AVG = SUM/COUNT)\n");
    println!("{:>10} {:>8} {:>14}", "age", "count", "avg earnings");
    for i in 0..result.len() {
        let lo = result.groups[i] * 10;
        println!(
            "{:>7}-{:<2} {:>8} {:>12}k€",
            lo,
            lo + 9,
            result.counts[i],
            result.sums[i] / result.counts[i]
        );
    }
    println!(
        "\nsimulated cost: {} cycles for {} tuples = {:.2} cycles/tuple",
        m.cycles(),
        n,
        m.cycles() as f64 / n as f64
    );

    // The same trend summary the paper motivates: does income rise with
    // age in this synthetic population?
    let first = result.sums[1] / result.counts[1];
    let last = result.sums[result.len() - 2] / result.counts[result.len() - 2];
    println!(
        "trend check: 20s average {first}k€ vs 60s average {last}k€ — {}",
        if last > first {
            "earnings rise with age"
        } else {
            "no rise"
        }
    );

    // And the literal Figure 1 table, loaded from CSV and run through the
    // SQL engine (ages pre-bracketed by decade as in the figure).
    let csv = "\
decade,earnings
4,24
3,11
5,24
4,10
5,15
4,8
5,9
4,6";
    let people = vagg::db::Table::from_csv("people", csv).expect("figure 1 csv");
    let mut db = vagg::db::Database::new();
    db.register(people);
    let out = db
        .execute_sql("SELECT decade, AVG(earnings) FROM people GROUP BY decade")
        .expect("figure 1 query");
    println!("\nFigure 1 verbatim (earnings in k€, grouped by age decade):");
    for r in &out.rows {
        println!("  {}0-{}9: avg {:.0}k€", r.group, r.group, r.values[0]);
    }
}
