//! Snapshot reads: point-in-time views that never block the writer.
//!
//! The MVCC demo: a reporting session pins a consistent snapshot of an
//! events table (and later a whole `BEGIN READ ONLY` transaction)
//! while a writer streams batches in, drifts the §V-D statistics past
//! the division boundary and trips threshold compactions. Every read
//! at the snapshot keeps answering the pinned cut — same rows, same
//! algorithm choice — while live reads follow the drift; a fresh
//! database registered from the snapshot's rows is the correctness
//! oracle. The pin/deferred-GC lifecycle is printed from
//! [`vagg::db::SnapshotStats`] along the way.
//!
//! ```text
//! cargo run --release --example snapshot_reads
//! ```

use vagg::datagen::{DatasetSpec, Distribution};
use vagg::db::{CompactionPolicy, Database, RowBatch, SqlOutcome, Table};

const SQL: &str = "SELECT g, COUNT(*), SUM(v) FROM events GROUP BY g";

fn rows(db: &mut Database, sql: &str) -> usize {
    match db.run_sql(sql).expect("query runs") {
        SqlOutcome::Rows(out) => out.rows.len(),
        other => unreachable!("SELECT returns rows: {other:?}"),
    }
}

fn main() {
    // Low cardinality to start: the §V-D policy picks monotable.
    let ds = DatasetSpec::paper(Distribution::Uniform, 60)
        .with_rows(2_048)
        .generate();
    let mut db = Database::new();
    db.catalogue()
        .set_compaction_policy(CompactionPolicy::every(1_024));
    db.register(
        Table::new("events")
            .with_column("g", ds.g.clone())
            .with_column("v", ds.v.clone()),
    );

    let mut stmt = db.prepare(SQL).expect("statement prepares");
    stmt.execute(&mut db, &[]).expect("executes");
    println!(
        "live plan before drift : {}",
        head(&stmt.explain().unwrap())
    );

    // A drifting source: cardinality ramps past the §V-D division
    // boundary (9,765) while the compaction threshold trips.
    let mut stream = DatasetSpec::paper(Distribution::Uniform, 60)
        .stream(512)
        .with_cardinality_drift(40_000, 6);
    let append = |db: &mut Database, g: Vec<u32>, v: Vec<u32>| {
        let rows = RowBatch::new().with_column("g", g).with_column("v", v);
        db.append_rows("events", rows).expect("appends")
    };

    // One batch lands in the delta, then the report pins its view of
    // the world: the snapshot's cut holds base + a delta prefix.
    let first = stream.next().expect("the stream is infinite");
    append(&mut db, first.g, first.v);
    let snap = db.snapshot();
    println!(
        "snapshot pinned        : data_version={} rows={} (delta prefix={})",
        snap.data_version("events").unwrap(),
        snap.table_stats("events").unwrap().rows(),
        snap.delta_rows("events").unwrap()
    );

    let mut compactions = 0;
    for batch in stream.by_ref().take(5) {
        let receipt = append(&mut db, batch.g, batch.v);
        compactions += usize::from(receipt.compacted);
    }
    println!(
        "writer streamed        : 5 more batches, {compactions} compaction(s), live rows={}",
        db.table("events").unwrap().rows()
    );

    // Live reads follow the drift; the snapshot does not.
    stmt.execute(&mut db, &[]).expect("executes");
    println!(
        "live plan after drift  : {}",
        head(&stmt.explain().unwrap())
    );
    let at = stmt.execute_at(&mut db, &snap, &[]).expect("executes at");
    println!(
        "snapshot plan          : {}",
        head(&stmt.explain().unwrap())
    );

    // Oracle: the snapshot answer equals a fresh one-shot database
    // over the snapshot's rows.
    let mut fresh = Database::new();
    fresh.register(snap.table("events").unwrap());
    let oracle = fresh.execute_sql(SQL).expect("oracle runs");
    assert_eq!(at.rows, oracle.rows, "snapshot read equals its oracle");
    println!(
        "snapshot read          : {} groups (oracle agrees)",
        at.rows.len()
    );

    // The pinned delta generation was retired, not freed — observable
    // in the stats — and reclaims when the snapshot drops.
    let stats = db.snapshot_stats();
    println!(
        "pins                   : live={} oldest_version={:?} deferred_gcs={} retired={}",
        stats.live_pins, stats.oldest_pinned_version, stats.deferred_gcs, stats.retired_deltas
    );
    drop(snap);
    let stats = db.snapshot_stats();
    assert_eq!(stats.live_pins, 0);
    assert_eq!(stats.retired_deltas, 0, "deferred GC reclaimed on drop");
    println!(
        "after drop             : live={} reclaimed_gcs={} retired={}",
        stats.live_pins, stats.reclaimed_gcs, stats.retired_deltas
    );

    // The same machinery through SQL: BEGIN READ ONLY pins the
    // session, concurrent ingest stays invisible until COMMIT.
    let mut writer = db.catalogue().connect();
    db.run_sql("BEGIN READ ONLY").expect("begins");
    let in_txn_before = rows(&mut db, SQL);
    writer
        .run_sql("INSERT INTO events (g, v) VALUES (50000, 1), (50001, 2)")
        .expect("writer inserts");
    let in_txn_after = rows(&mut db, SQL);
    assert_eq!(
        in_txn_before, in_txn_after,
        "repeatable read inside the txn"
    );
    db.run_sql("COMMIT").expect("commits");
    let live = rows(&mut db, SQL);
    assert_eq!(live, in_txn_before + 2, "COMMIT returns to the live view");
    println!("read-only txn          : {in_txn_before} groups across the txn, {live} after COMMIT");
    println!("\nsnapshot reads never blocked the writer — and never saw it.");
}

/// The first two lines of an EXPLAIN rendering (SQL + planner facts).
fn head(explain: &str) -> String {
    let mut lines = explain.lines();
    lines.next();
    lines.next().unwrap_or_default().trim().to_string()
}
