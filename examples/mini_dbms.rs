//! Mini DBMS: the full stack as a database developer would consume it —
//! build a column-store table, issue SQL-shaped queries (selection +
//! GROUP BY aggregation, including the VGAmin/VGAmax extension), and read
//! the planner's EXPLAIN output alongside simulated costs.
//!
//! ```text
//! cargo run --release --example mini_dbms
//! ```

use vagg::datagen::rng::Xoshiro256StarStar;
use vagg::db::{AggFn, AggregateQuery, Database, Engine, Predicate, Session, SqlOutcome, Table};

fn main() {
    // An orders table: region (16 values), quarter (4 values), status
    // (0 = cancelled), amount in euros.
    let n = 30_000usize;
    let mut rng = Xoshiro256StarStar::seed_from_u64(7);
    let region: Vec<u32> = (0..n).map(|_| rng.next_below(16) as u32).collect();
    let quarter: Vec<u32> = (0..n).map(|_| rng.next_below(4) as u32).collect();
    let status: Vec<u32> = (0..n).map(|_| (rng.next_below(10) != 0) as u32).collect();
    let amount: Vec<u32> = (0..n).map(|_| 5 + rng.next_below(495) as u32).collect();
    let orders = Table::new("orders")
        .with_column("region", region)
        .with_column("quarter", quarter)
        .with_column("status", status)
        .with_column("amount", amount);

    let engine = Engine::new();
    let mut session = Session::new();

    // Query 1: the paper's query shape, through the plan/execute split —
    // plan once, inspect the typed plan, then run it on the session.
    let q1 = AggregateQuery::paper("region", "amount");
    let plan = engine.plan(&orders, &q1).expect("plan q1");
    println!("EXPLAIN output:\n{}\n", plan.explain());
    let out = session.run(&plan);
    println!(
        "  {} groups, {} cycles ({:.2} CPT), algorithm: {}\n",
        out.rows.len(),
        out.report.cycles,
        out.report.cpt,
        out.report.algorithm.map(|a| a.name()).unwrap_or("skipped")
    );

    // Query 2: WHERE + MIN/MAX/AVG — exercises vectorised selection and
    // the VGAmin/VGAmax kernel, reusing the same session machine.
    let q2 = AggregateQuery::paper("region", "amount")
        .with_aggregate(AggFn::Min)
        .with_aggregate(AggFn::Max)
        .with_aggregate(AggFn::Avg)
        .with_filter("status", Predicate::NonZero);
    println!("Q2: {}", q2.sql("orders"));
    let plan2 = engine.plan(&orders, &q2).expect("plan q2");
    let out = session.run(&plan2);
    println!("  plan: {}", out.report.describe());
    println!(
        "  aggregated {} of {} rows in {} cycles ({:.2} CPT)",
        out.report.rows_aggregated,
        orders.rows(),
        out.report.cycles,
        out.report.cpt
    );
    println!(
        "\n{:>8} {:>8} {:>10} {:>6} {:>6} {:>8}",
        "region", "count", "sum", "min", "max", "avg"
    );
    for r in out.rows.iter().take(8) {
        println!(
            "{:>8} {:>8} {:>10} {:>6} {:>6} {:>8.1}",
            r.group, r.values[0], r.values[1], r.values[2], r.values[3], r.values[4]
        );
    }
    println!("  ... ({} rows total)", out.rows.len());
    println!(
        "  session so far: {} queries, {} cycles on one machine",
        session.queries_run(),
        session.total_cycles()
    );

    // Query 3: the same engine behind plain SQL text. The database owns
    // its own session, so consecutive statements also share a machine.
    let mut db = Database::new();
    db.register(orders);
    let sql = "SELECT region, COUNT(*), AVG(amount) FROM orders WHERE status <> 0 GROUP BY region";
    println!("\nQ3 (SQL): {sql}");
    let explained = db.explain_sql(sql).expect("explain q3");
    println!(
        "  EXPLAIN:\n    {}",
        explained.explain().replace('\n', "\n    ")
    );
    let out = db.execute_sql(sql).expect("execute q3");
    println!("  executed: {}", out.report.describe());
    for r in out.rows.iter().take(4) {
        println!(
            "  region {:>2}: {:>5} orders, avg €{:.2}",
            r.group, r.values[0], r.values[1]
        );
    }
    println!("  ... ({} rows total)", out.rows.len());

    // Query 4: the full tail — range WHERE (composed from max + ≠),
    // HAVING over a computed aggregate, and a vectorised top-k
    // (radix-sorted ORDER BY ... DESC LIMIT).
    let sql = "SELECT region, COUNT(*), SUM(amount) FROM orders \
               WHERE amount > 400 GROUP BY region \
               HAVING COUNT(*) > 50 \
               ORDER BY SUM(amount) DESC LIMIT 5";
    println!("\nQ4 (top-5 regions by premium-order revenue): {sql}");
    let out = db.execute_sql(sql).expect("execute q4");
    println!("  plan: {}", out.report.describe());
    for (rank, r) in out.rows.iter().enumerate() {
        println!(
            "  #{} region {:>2}: {:>5} orders, €{:>8}",
            rank + 1,
            r.group,
            r.values[0],
            r.values[1]
        );
    }

    // Query 5: composite GROUP BY — the engine fuses (region, quarter)
    // into one key on the machine and decomposes it on readback.
    let sql = "SELECT region, quarter, COUNT(*), SUM(amount) FROM orders \
               GROUP BY region, quarter ORDER BY region LIMIT 8";
    println!("\nQ5 (revenue by region and quarter): {sql}");
    let out = db.execute_sql(sql).expect("execute q5");
    println!("  plan: {}", out.report.describe());
    for r in &out.rows {
        println!(
            "  region {:>2} Q{}: {:>5} orders, €{:>8}",
            r.group_parts[0],
            r.group_parts[1] + 1,
            r.values[0],
            r.values[1]
        );
    }

    // Query 6: EXPLAIN through SQL — a typed plan, nothing executed.
    let sql = "EXPLAIN SELECT region, COUNT(*), SUM(amount) FROM orders \
               WHERE amount > 250 GROUP BY region";
    println!("\nQ6 (SQL EXPLAIN): {sql}");
    if let SqlOutcome::Plan(plan) = db.run_sql(sql).expect("explain q6") {
        println!("    {}", plan.explain().replace('\n', "\n    "));
    }

    // And the error paths a user would hit — all typed.
    let bad =
        db.execute_sql("SELECT region, SUM(amount) FROM orders WHERE amount = 5 GROUP BY region");
    println!("\nQ7 (unsupported comparison): {}", bad.unwrap_err());
    let bad = db.execute_sql("SELECT region, SUM(nope) FROM orders GROUP BY region");
    println!("Q8 (typed plan error):      {}", bad.unwrap_err());
    println!(
        "\ndatabase session: {} queries on one machine, {} total cycles",
        db.session().queries_run(),
        db.session().total_cycles()
    );
}
