//! Observability tour: `EXPLAIN ANALYZE`, the per-morsel trace, the
//! unified metrics registry, and the slow-query log.
//!
//! ```text
//! cargo run --release --example observability
//! ```

use vagg::datagen::rng::Xoshiro256StarStar;
use vagg::db::{Database, ShardedDatabase, SqlOutcome, Table};

fn events(n: usize) -> Table {
    let mut rng = Xoshiro256StarStar::seed_from_u64(11);
    Table::new("events")
        .with_column("g", (0..n).map(|_| rng.next_below(32) as u32).collect())
        .with_column("v", (0..n).map(|_| rng.next_below(1000) as u32).collect())
}

fn main() {
    // ---------------------------------------------------------------
    // 1. EXPLAIN ANALYZE on a single session: the plan's estimates
    //    rendered against the observed rows and simulated cycles of an
    //    actual execution. Rows are bit-identical to the untraced run.
    let mut db = Database::new();
    db.register(events(30_000));
    let sql = "SELECT g, COUNT(*), SUM(v), MIN(v) FROM events \
               WHERE v > 500 GROUP BY g ORDER BY SUM(v) DESC LIMIT 5";
    let analyzed = match db.run_sql(&format!("EXPLAIN ANALYZE {sql}")).unwrap() {
        SqlOutcome::Analyzed(a) => a,
        other => unreachable!("EXPLAIN ANALYZE traces: {other:?}"),
    };
    println!("single session:\n{}\n", analyzed.explain());

    // ---------------------------------------------------------------
    // 2. The same statement on the 4-shard morsel executor: every
    //    morsel's span comes back to the coordinator, which folds
    //    per-step and per-worker rollups from the deterministic
    //    virtual schedule.
    let mut sharded = ShardedDatabase::new(4);
    sharded.register(events(30_000));
    let out = sharded.run_sql(&format!("EXPLAIN ANALYZE {sql}")).unwrap();
    let trace = out.trace.as_deref().expect("EXPLAIN ANALYZE traces");
    println!("4 shards:\n{}\n", trace.explain());
    println!(
        "  {} morsels, {} stolen in the virtual schedule",
        trace.morsels.len(),
        trace.steals
    );

    // ---------------------------------------------------------------
    // 3. The unified metrics registry: every query (traced or not),
    //    ingest batch, plan-cache event, snapshot pin and WAL append
    //    lands in one catalogue-owned sink, exported as Prometheus-style
    //    text or JSON.
    db.run_sql(sql).unwrap();
    db.run_sql("INSERT INTO events (g, v) VALUES (1, 999), (2, 1)")
        .unwrap();
    println!("metrics (single):\n{}", db.metrics().to_text());

    // ---------------------------------------------------------------
    // 4. The slow-query log: the worst N queries by simulated cycles,
    //    most expensive first, gated by a configurable threshold.
    sharded.set_slow_query_threshold(1_000);
    for lim in [3, 7, 13] {
        sharded
            .run_sql(&format!(
                "SELECT g, COUNT(*), SUM(v) FROM events GROUP BY g \
                 ORDER BY SUM(v) DESC LIMIT {lim}"
            ))
            .unwrap();
    }
    println!("slow queries (sharded, threshold 1000 cycles):");
    for sq in sharded.slow_queries().iter().take(5) {
        println!("  {:>10} cycles {:>4} rows  {}", sq.cycles, sq.rows, sq.sql);
    }
}
