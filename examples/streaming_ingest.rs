//! Streaming ingest: prepare once, ingest continuously, watch the
//! §V-D choice follow the statistics.
//!
//! The write-path demo: an events table starts low-cardinality (the
//! adaptive policy picks monotable), a deterministic batch stream
//! ([`vagg::datagen::BatchStream`]) ramps the key domain past the
//! §V-D division boundary, and a statement prepared *once* keeps
//! serving while the statistics drift underneath it. Sub-threshold
//! batches refresh the cached plan in place (`rebases()`); the batch
//! that crosses the boundary forces a real re-plan (`replans()`) and
//! `explain()` flips from `Aggregate[mono]` to `Aggregate[psm]`. A
//! fresh one-shot database over the merged rows is the correctness
//! oracle at every step, and a round-robin-sharded database ingests
//! the same stream to show the routed write path agrees.
//!
//! ```text
//! cargo run --release --example streaming_ingest
//! ```

use vagg::datagen::{DatasetSpec, Distribution};
use vagg::db::{CompactionPolicy, Database, RowBatch, ShardedDatabase, Table};

fn main() {
    // A drifting source: 512-row batches, cardinality ramping from 60
    // to 40,000 across eight batches.
    let mut stream = DatasetSpec::paper(Distribution::Uniform, 60)
        .stream(512)
        .with_cardinality_drift(40_000, 8);
    let first = stream.next().expect("the stream is infinite");
    let seed = Table::new("events")
        .with_column("g", first.g.clone())
        .with_column("v", first.v.clone());

    let mut db = Database::new();
    db.catalogue()
        .set_compaction_policy(CompactionPolicy::every(1024));
    db.register(seed.clone());

    let mut sharded = ShardedDatabase::new(4);
    sharded.set_compaction_policy(CompactionPolicy::every(256));
    sharded.register(seed);

    let sql = "SELECT g, COUNT(*), SUM(v) FROM events WHERE v > ? GROUP BY g";
    let mut stmt = db.prepare(sql).expect("statement prepares");
    println!("prepared [{sql}]");
    println!(
        "batch 0: cardinality≈{:5} | {}\n",
        first.cardinality,
        algorithm_of(&stmt)
    );

    for batch in stream.take(7) {
        let rows = RowBatch::new()
            .with_column("g", batch.g.clone())
            .with_column("v", batch.v.clone());
        let receipt = db
            .append_rows("events", rows.clone())
            .expect("single-session ingest");
        sharded.append_rows("events", rows).expect("sharded ingest");

        let out = stmt.execute(&mut db, &[3]).expect("prepared execution");

        // Oracle: the same rows registered in one shot.
        let mut oracle = Database::new();
        oracle.register(db.table("events").expect("registered"));
        let expect = oracle
            .execute_sql(&sql.replace('?', "3"))
            .expect("oracle execution");
        assert_eq!(out.rows, expect.rows, "ingested ≡ one-shot load");

        let merged = sharded
            .run_sql(&sql.replace('?', "3"))
            .expect("sharded execution");
        assert_eq!(merged.rows, expect.rows, "routed ingest ≡ one-shot load");

        let stats = db.table_stats("events").expect("live statistics");
        let g = stats.column("g").expect("g column");
        println!(
            "batch {}: +{} rows (delta {:4}{}) | max {:5} distinct≈{:5} | {}",
            batch.index,
            receipt.rows,
            receipt.delta_rows,
            if receipt.compacted { ", compacted" } else { "" },
            g.max.unwrap_or(0),
            g.distinct_estimate(),
            algorithm_of(&stmt),
        );
    }

    println!(
        "\nexecutions: {} | rebases: {} (stats refreshed, choice held) | \
         replans: {} (the drift crossed the §V-D boundary)",
        stmt.executions(),
        stmt.rebases(),
        stmt.replans()
    );
    let s = db.plan_cache_stats();
    println!(
        "plan cache: {} hit(s), {} miss(es), {} rebase(s), {} invalidation(s)",
        s.hits, s.misses, s.rebases, s.invalidations
    );
    assert_eq!(stmt.replans(), 1, "exactly one threshold crossing");
    assert!(stmt.rebases() >= 1, "sub-threshold batches rebased");
    assert!(
        stmt.explain().expect("planned").contains("Aggregate[psm]"),
        "the final plan shows the flipped choice"
    );
}

fn algorithm_of(stmt: &vagg::db::PreparedStatement) -> String {
    let plan = stmt.plan().expect("prepared statements plan eagerly");
    format!(
        "cardinality≈{:5} -> {}",
        plan.cardinality_estimate(),
        plan.algorithm().name()
    )
}
