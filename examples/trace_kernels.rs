//! Instruction tracing: watch the Figure 15 kernel execute, µop by µop.
//!
//! Enables the machine's PTLsim-style instruction trace, runs the scalar
//! baseline and the monotable kernel on a small input, and prints the
//! head of each trace plus a per-mnemonic histogram — the ground truth
//! behind the `repro mix` instruction-mix tables.
//!
//! ```text
//! cargo run --release --example trace_kernels
//! ```

use std::collections::BTreeMap;
use vagg::core::{monotable, scalar, StagedInput};
use vagg::datagen::{DatasetSpec, Distribution};
use vagg::sim::{Machine, SimConfig, Trace};

fn traced<F>(label: &str, kernel: F) -> Trace
where
    F: FnOnce(&mut Machine, &StagedInput),
{
    let ds = DatasetSpec::paper(Distribution::Zipf, 76)
        .with_rows(512)
        .generate();
    let mut m = Machine::new(SimConfig::paper());
    m.enable_trace(usize::MAX);
    let st = StagedInput::stage(&mut m, &ds);
    kernel(&mut m, &st);
    let trace = m.take_trace().unwrap();
    println!(
        "\n=== {label}: {} instructions, {} cycles ===",
        trace.total(),
        m.cycles()
    );
    trace
}

fn histogram(trace: &Trace) -> BTreeMap<&'static str, usize> {
    let mut h = BTreeMap::new();
    for e in trace.events() {
        *h.entry(e.mnemonic).or_insert(0) += 1;
    }
    h
}

fn main() {
    // Scalar baseline: nothing but alu/load/store traffic.
    let t = traced("scalar baseline (Figure 3 loop)", |m, st| {
        scalar::scalar_aggregate(m, st);
    });
    println!("{}", head(&t, 12));
    print_histogram(&t);

    // Monotable: the Figure 15 kernel. The head of the trace shows the
    // table-clear stores, then per chunk: unit loads, two vgasum, vlu,
    // masked gather/add/scatter per table.
    let t = traced("monotable (Figure 15 kernel)", |m, st| {
        monotable::monotable_aggregate(m, st);
    });
    println!("{}", head(&t, 40));
    print_histogram(&t);

    println!(
        "\n(seq/@cycle columns: dynamic program order and completion \
         cycle; lines= is the distinct-cache-line footprint of a vector \
         memory op.)"
    );
}

fn head(trace: &Trace, n: usize) -> String {
    trace
        .listing()
        .lines()
        .take(n)
        .collect::<Vec<_>>()
        .join("\n")
}

fn print_histogram(trace: &Trace) {
    println!("\nper-mnemonic counts:");
    let h = histogram(trace);
    let mut sorted: Vec<_> = h.into_iter().collect();
    sorted.sort_by_key(|e| std::cmp::Reverse(e.1));
    for (mnemonic, count) in sorted {
        println!("  {mnemonic:<10} {count:>7}");
    }
}
