//! TPC-H-flavoured pricing summary — the workload the paper's
//! introduction motivates ("In the TPC-H decision support benchmark,
//! aggregations can dominate eight of the twenty-two queries").
//!
//! Builds a scaled-down `lineitem` table in the column-store and runs a
//! Q1-shaped pricing summary (`GROUP BY returnflag`, aggregates over
//! quantity/price) plus a Q5-shaped per-nation revenue rollup, both as
//! SQL, and shows what the adaptive planner does with each: `returnflag`
//! has cardinality 3 (deep `low` division → monotable), while `suppkey`
//! sits in the tens of thousands (PSM territory when unsorted).
//!
//! ```text
//! cargo run --release --example tpch_pricing
//! ```

use vagg::datagen::rng::Xoshiro256StarStar;
use vagg::db::{Database, Table};

fn main() {
    let n = 60_000usize;
    let mut rng = Xoshiro256StarStar::seed_from_u64(22);

    // lineitem: returnflag ∈ {0, 1, 2} (A/N/R), linestatus ∈ {0, 1},
    // quantity ∈ [1, 50], extendedprice ∈ [100, 10_000), suppkey with a
    // high-normal cardinality.
    let returnflag: Vec<u32> = (0..n).map(|_| rng.next_below(3) as u32).collect();
    let linestatus: Vec<u32> = (0..n).map(|_| rng.next_below(2) as u32).collect();
    let quantity: Vec<u32> = (0..n).map(|_| 1 + rng.next_below(50) as u32).collect();
    let extendedprice: Vec<u32> = (0..n).map(|_| 100 + rng.next_below(9_900) as u32).collect();
    let suppkey: Vec<u32> = (0..n).map(|_| rng.next_below(40_000) as u32).collect();

    let mut db = Database::new();
    db.register(
        Table::new("lineitem")
            .with_column("returnflag", returnflag)
            .with_column("linestatus", linestatus)
            .with_column("quantity", quantity)
            .with_column("extendedprice", extendedprice)
            .with_column("suppkey", suppkey),
    );

    // Q1-shaped pricing summary: one statement per aggregate column (the
    // engine aggregates one value column per pass, as the paper's
    // struct-of-arrays model encourages).
    println!("== Q1-shaped pricing summary ==");
    for sql in [
        "SELECT returnflag, COUNT(*), SUM(quantity), AVG(quantity) \
         FROM lineitem GROUP BY returnflag",
        "SELECT returnflag, SUM(extendedprice), AVG(extendedprice) \
         FROM lineitem GROUP BY returnflag",
    ] {
        let out = db.execute_sql(sql).expect("q1 executes");
        println!("{sql}");
        println!(
            "  plan: {}   ({} cycles, {:.2} CPT)",
            out.report.describe(),
            out.report.cycles,
            out.report.cpt
        );
        for r in &out.rows {
            let cells: Vec<String> = r.values.iter().map(|v| format!("{v:.1}")).collect();
            println!("  flag {}: {}", r.group, cells.join(", "));
        }
    }

    // Q5-shaped revenue rollup over a *high-cardinality* key: watch the
    // planner switch to partially sorted monotable.
    println!("\n== Q5-shaped per-supplier revenue (cardinality ~40,000) ==");
    let sql = "SELECT suppkey, COUNT(*), SUM(extendedprice) \
               FROM lineitem WHERE linestatus <> 0 GROUP BY suppkey";
    let out = db.execute_sql(sql).expect("q5 executes");
    println!("{sql}");
    println!(
        "  plan: {}   ({} of {} rows aggregated, {:.2} CPT)",
        out.report.describe(),
        out.report.rows_aggregated,
        n,
        out.report.cpt
    );
    println!(
        "  {} supplier groups; first: supp {} count {} revenue {}",
        out.rows.len(),
        out.rows[0].group,
        out.rows[0].values[0],
        out.rows[0].values[1],
    );

    println!(
        "\nThe same adaptive policy (§V-D) served both: cardinality 3 \
         stayed on the\nVGAsum monotable; cardinality ~40,000 triggered the \
         single-pass VSR partial\nsort before aggregating."
    );
}
