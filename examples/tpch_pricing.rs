//! TPC-H-flavoured pricing summary — the workload the paper's
//! introduction motivates ("In the TPC-H decision support benchmark,
//! aggregations can dominate eight of the twenty-two queries").
//!
//! Builds a scaled-down `lineitem` table in the column-store and runs a
//! Q1-shaped pricing summary (`GROUP BY returnflag`, aggregates over
//! quantity/price) plus a Q5-shaped per-nation revenue rollup, both as
//! SQL, and shows what the adaptive planner does with each: `returnflag`
//! has cardinality 3 (deep `low` division → monotable), while `suppkey`
//! sits in the tens of thousands (PSM territory when unsorted).
//!
//! Then it joins: a Q3-shaped `lineitem ⋈ orders` revenue rollup per
//! order priority, with `EXPLAIN` showing the §V-D build-side choice on
//! one session (hash-build the smaller `orders`) and the exchange
//! strategy the same statement picks on a sharded database (the build
//! side outgrows the broadcast threshold → partition both sides).
//!
//! ```text
//! cargo run --release --example tpch_pricing
//! ```

use vagg::datagen::rng::Xoshiro256StarStar;
use vagg::db::{Database, ShardedDatabase, Table};

fn main() {
    let n = 60_000usize;
    let n_orders = 20_000usize;
    let mut rng = Xoshiro256StarStar::seed_from_u64(22);

    // lineitem: returnflag ∈ {0, 1, 2} (A/N/R), linestatus ∈ {0, 1},
    // quantity ∈ [1, 50], extendedprice ∈ [100, 10_000), suppkey with a
    // high-normal cardinality, orderkey referencing `orders` (~3
    // lineitems per order, as in TPC-H).
    let returnflag: Vec<u32> = (0..n).map(|_| rng.next_below(3) as u32).collect();
    let linestatus: Vec<u32> = (0..n).map(|_| rng.next_below(2) as u32).collect();
    let quantity: Vec<u32> = (0..n).map(|_| 1 + rng.next_below(50) as u32).collect();
    let extendedprice: Vec<u32> = (0..n).map(|_| 100 + rng.next_below(9_900) as u32).collect();
    let suppkey: Vec<u32> = (0..n).map(|_| rng.next_below(40_000) as u32).collect();
    let orderkey: Vec<u32> = (0..n)
        .map(|_| rng.next_below(n_orders as u64) as u32)
        .collect();

    // orders: dense sorted orderkey, orderpriority ∈ {0..4}.
    let o_priority: Vec<u32> = (0..n_orders).map(|_| rng.next_below(5) as u32).collect();

    let lineitem = Table::new("lineitem")
        .with_column("returnflag", returnflag)
        .with_column("linestatus", linestatus)
        .with_column("quantity", quantity)
        .with_column("extendedprice", extendedprice)
        .with_column("suppkey", suppkey)
        .with_column("orderkey", orderkey);
    let orders = Table::new("orders")
        .with_column("orderkey", (0..n_orders as u32).collect())
        .with_column("orderpriority", o_priority);

    let mut db = Database::new();
    db.register(lineitem.clone());
    db.register(orders.clone());

    // Q1-shaped pricing summary: one statement per aggregate column (the
    // engine aggregates one value column per pass, as the paper's
    // struct-of-arrays model encourages).
    println!("== Q1-shaped pricing summary ==");
    for sql in [
        "SELECT returnflag, COUNT(*), SUM(quantity), AVG(quantity) \
         FROM lineitem GROUP BY returnflag",
        "SELECT returnflag, SUM(extendedprice), AVG(extendedprice) \
         FROM lineitem GROUP BY returnflag",
    ] {
        let out = db.execute_sql(sql).expect("q1 executes");
        println!("{sql}");
        println!(
            "  plan: {}   ({} cycles, {:.2} CPT)",
            out.report.describe(),
            out.report.cycles,
            out.report.cpt
        );
        for r in &out.rows {
            let cells: Vec<String> = r.values.iter().map(|v| format!("{v:.1}")).collect();
            println!("  flag {}: {}", r.group, cells.join(", "));
        }
    }

    // Q5-shaped revenue rollup over a *high-cardinality* key: watch the
    // planner switch to partially sorted monotable.
    println!("\n== Q5-shaped per-supplier revenue (cardinality ~40,000) ==");
    let sql = "SELECT suppkey, COUNT(*), SUM(extendedprice) \
               FROM lineitem WHERE linestatus <> 0 GROUP BY suppkey";
    let out = db.execute_sql(sql).expect("q5 executes");
    println!("{sql}");
    println!(
        "  plan: {}   ({} of {} rows aggregated, {:.2} CPT)",
        out.report.describe(),
        out.report.rows_aggregated,
        n,
        out.report.cpt
    );
    println!(
        "  {} supplier groups; first: supp {} count {} revenue {}",
        out.rows.len(),
        out.rows[0].group,
        out.rows[0].values[0],
        out.rows[0].values[1],
    );

    // Q3-shaped join: revenue per order priority for open lineitems.
    // The planner hash-builds the smaller `orders` side and streams
    // `lineitem` through it as probe morsels.
    println!("\n== Q3-shaped lineitem ⋈ orders revenue per priority ==");
    let join_sql = "SELECT orderpriority, COUNT(*), SUM(extendedprice) \
                    FROM lineitem JOIN orders ON lineitem.orderkey = orders.orderkey \
                    WHERE linestatus <> 0 GROUP BY orderpriority \
                    ORDER BY SUM(extendedprice) DESC";
    let plan = db.explain_join_sql(join_sql).expect("join plans");
    println!("{}", plan.explain());
    let out = match db.run_sql(join_sql).expect("join executes") {
        vagg::db::SqlOutcome::Rows(out) => out,
        other => unreachable!("SELECT returns rows: {other:?}"),
    };
    for r in &out.rows {
        println!(
            "  priority {}: {} lineitems, revenue {}",
            r.group, r.values[0], r.values[1]
        );
    }

    // The same statement on a sharded database: 20,000 build rows beat
    // the broadcast threshold, so both sides partition by orderkey.
    let mut sharded = ShardedDatabase::new(4);
    sharded.register(lineitem);
    sharded.register(orders);
    let plan = sharded.explain_join_sql(join_sql).expect("join plans");
    println!("\n  4 shards → strategy={}", plan.strategy());
    let merged = sharded.run_sql(join_sql).expect("sharded join executes");
    assert_eq!(merged.rows, out.rows, "sharded join is bit-identical");
    println!(
        "  merged {} priority groups across 4 shards — identical rows",
        merged.rows.len()
    );

    println!(
        "\nThe same adaptive policy (§V-D) served all three: cardinality 3 \
         stayed on the\nVGAsum monotable; cardinality ~40,000 triggered the \
         single-pass VSR partial\nsort before aggregating; the join built \
         the smaller orders side and picked\nits exchange strategy from the \
         same live statistics."
    );
}
