//! ISA explorer: reproduces, instruction by instruction, the worked
//! figures of the paper — the Figure 5 reduction tree, the Figure 10
//! VPI/VLU examples, the Figure 13 VGAsum example, and the Figure 15
//! monotable kernel — on the simulated machine.
//!
//! ```text
//! cargo run --release --example isa_explorer
//! ```

use vagg::isa::{irregular, BinOp, Mreg, RedOp, Vreg};
use vagg::sim::Machine;

fn main() {
    figure5_reduction();
    figure10_vpi_vlu();
    figure13_vgasum();
    figure15_kernel();
    cam_port_behaviour();
}

fn figure5_reduction() {
    println!("== Figure 5: sum reduction, VL = 8, lanes = 2 ==");
    let mut m = Machine::new(vagg::sim::SimConfig::paper().with_mvl(8).with_lanes(2));
    m.set_vl(8);
    let data: Vec<u32> = (1..=8).collect();
    let base = m.space_mut().alloc_slice_u32(&data);
    m.vload_unit(Vreg(0), base, 4, 0);
    let before = m.cycles();
    let (sum, _) = m.vred(RedOp::Sum, Vreg(0), None);
    println!("  reduce(1..=8) = {sum} (expected 36)");
    println!(
        "  occupancy: per-lane partials + log2(lanes) interlane cycles \
         (elapsed {} cycles)\n",
        m.cycles() - before
    );
    assert_eq!(sum, 36);
}

fn figure10_vpi_vlu() {
    println!("== Figure 10: VPI and VLU ==");
    let keys = [7u64, 5, 5, 5, 11, 9, 9, 11];
    let vpi = irregular::vpi(&keys, 8, 4);
    let vlu = irregular::vlu(&keys, 8, 4);
    println!("  in  = {keys:?}");
    println!("  vpi = {:?} (paper: [0,0,1,2,0,0,1,1])", vpi.value);
    let bits: Vec<u8> = vlu.value.iter().map(|&b| b as u8).collect();
    println!("  vlu = {bits:?} (paper: [1,0,0,1,0,0,1,1])\n");
    assert_eq!(vpi.value, vec![0, 0, 1, 2, 0, 0, 1, 1]);
    assert_eq!(bits, vec![1, 0, 0, 1, 0, 0, 1, 1]);
}

fn figure13_vgasum() {
    println!("== Figure 13: VGAsum ==");
    let ing = [7u64, 5, 5, 5, 11, 9, 9, 11];
    let inv = [6u64, 3, 4, 9, 15, 2, 3, 4];
    let out = irregular::vga_sum(&ing, &inv, 8, 4);
    println!("  ing = {ing:?}");
    println!("  inv = {inv:?}");
    println!("  out = {:?} (paper: [6,3,7,16,15,2,5,19])\n", out.value);
    assert_eq!(out.value, vec![6, 3, 7, 16, 15, 2, 5, 19]);
}

fn figure15_kernel() {
    println!("== Figure 15: one monotable table update ==");
    let mut m = Machine::paper();
    let table = m.space_mut().alloc(4096, 64);
    let keys = [7u32, 5, 5, 5, 11, 9, 9, 11];
    let vals = [6u32, 3, 4, 9, 15, 2, 3, 4];
    let kb = m.space_mut().alloc_slice_u32(&keys);
    let vb = m.space_mut().alloc_slice_u32(&vals);

    let (v0, v1, v2, v3) = (Vreg(0), Vreg(1), Vreg(2), Vreg(3));
    let m0 = Mreg(0);
    m.set_vl(8);
    m.vload_unit(v0, kb, 4, 0); // groups
    m.vload_unit(v1, vb, 4, 0); // values
    m.vga(RedOp::Sum, v2, v0, v1); // v2 ← vgasum(v0, v1)
    m.vlu(m0, v0); //                m0 ← vlu(v0)
    m.vgather(v3, table, v0, 4, Some(m0), 0); // v3 ← gather(table, v0, m0)
    m.vbinop_vv(BinOp::Add, v3, v3, v2, Some(m0)); // v4 ← vadd(v2, v3)
    m.vscatter(v3, table, v0, 4, Some(m0), 0); // scatter(table, v0, v4, m0)

    for g in [5u64, 7, 9, 11] {
        println!("  table[{g}] = {}", m.space().read_u32(table + 4 * g));
    }
    assert_eq!(m.space().read_u32(table + 4 * 5), 16);
    assert_eq!(m.space().read_u32(table + 4 * 7), 6);
    assert_eq!(m.space().read_u32(table + 4 * 9), 5);
    assert_eq!(m.space().read_u32(table + 4 * 11), 19);
    println!();
}

fn cam_port_behaviour() {
    println!("== CAM port sensitivity (§V-B) ==");
    println!("  2 cycles per conflict-free slice of p adjacent elements:");
    let distinct: Vec<u64> = (0..64).collect();
    let sorted = vec![42u64; 64];
    for ports in [1usize, 2, 4, 8] {
        let d = irregular::vpi(&distinct, 64, ports).cycles;
        let s = irregular::vpi(&sorted, 64, ports).cycles;
        println!("  p = {ports}: all-distinct {d:>4} cycles, all-equal {s:>4} cycles");
    }
    println!("  (sorted inputs pay the maximum latency — the paper's");
    println!("   explanation for monotable's behaviour on sorted data)");
}
