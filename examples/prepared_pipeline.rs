//! Prepared pipeline: prepare once, execute many, over a sharded
//! database.
//!
//! The serving-layer demo: an events table is partitioned across four
//! shard sessions ([`vagg::db::ShardedDatabase`]), a parameterised
//! statement is prepared once (`WHERE v < ?` — parsed and planned a
//! single time per shard), and then executed for a sweep of thresholds.
//! Every execution binds the parameter into the cached plans, runs the
//! distributive COUNT/SUM/MIN/MAX slice on all four shard machines in
//! parallel threads, and merges the partial aggregates on the
//! coordinator. A single-session database runs the same SQL as the
//! correctness oracle, and the plan-cache / re-plan counters show that
//! the statistics pass never reran.
//!
//! ```text
//! cargo run --release --example prepared_pipeline
//! ```

use vagg::datagen::rng::Xoshiro256StarStar;
use vagg::db::{Database, ShardedDatabase, Table};

fn main() {
    // An events table: 20k rows, 64 groups, values in 0..500.
    let n = 20_000usize;
    let mut rng = Xoshiro256StarStar::seed_from_u64(42);
    let g: Vec<u32> = (0..n).map(|_| rng.next_below(64) as u32).collect();
    let v: Vec<u32> = (0..n).map(|_| rng.next_below(500) as u32).collect();
    let events = Table::new("events").with_column("g", g).with_column("v", v);

    // Four shard sessions over contiguous row partitions.
    let mut sharded = ShardedDatabase::new(4);
    sharded.register(events.clone());

    // A single session as the oracle.
    let mut single = Database::new();
    single.register(events);

    // Prepare once: parsed and planned one time per shard.
    let sql = "SELECT g, COUNT(*), SUM(v), MIN(v), MAX(v) FROM events \
               WHERE v < ? GROUP BY g";
    let mut stmt = sharded.prepare(sql).expect("statement prepares");
    println!(
        "prepared [{}] with {} parameter slot(s)\n",
        sql,
        stmt.parameter_count()
    );

    // Execute many: one bind per threshold, no re-parsing/re-planning.
    for threshold in [50u64, 125, 250, 499] {
        let out = sharded
            .execute_prepared(&mut stmt, &[threshold])
            .expect("sharded execution");

        let oracle = single
            .execute_sql(&sql.replace('?', &threshold.to_string()))
            .expect("single-session execution");
        assert_eq!(out.rows, oracle.rows, "sharded ≡ single-session");

        let slowest = out.report.cycles;
        let busiest = out
            .shard_reports
            .iter()
            .map(|r| r.rows_aggregated)
            .max()
            .unwrap_or(0);
        println!(
            "v < {threshold:3}: {:2} groups over {:5} rows | makespan {slowest:7} cycles \
             (busiest shard {busiest:5} rows) | single-session {:7} cycles",
            out.rows.len(),
            out.report.rows_aggregated,
            oracle.report.cycles,
        );
    }

    println!(
        "\nexecutions: {} | shard re-plans: {} (planned once, bound per execution)",
        stmt.executions(),
        stmt.replans()
    );
    let stats = single.plan_cache_stats();
    println!(
        "single-session plan cache: {} hit(s), {} miss(es) — every `v < k` \
         literal shares one cached shape",
        stats.hits, stats.misses
    );
    assert_eq!(stmt.replans(), 0);
    assert_eq!(stats.misses, 1);
}
