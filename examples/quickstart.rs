//! Quickstart: run the paper's headline query on the simulated vector
//! machine and compare all six algorithms on one dataset.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use vagg::core::{reference, run_algorithm, Algorithm};
use vagg::datagen::{DatasetSpec, Distribution};
use vagg::sim::SimConfig;

fn main() {
    // The paper's query: SELECT g, COUNT(*), SUM(v) FROM r GROUP BY g,
    // over a column-store relation with a zipf-distributed group column.
    let ds = DatasetSpec::paper(Distribution::Zipf, 1_220)
        .with_rows(50_000)
        .generate();
    println!(
        "dataset: {} keys, max cardinality {}, actual cardinality {}, n = {}",
        ds.spec.distribution.name(),
        ds.spec.max_cardinality,
        ds.actual_cardinality(),
        ds.len()
    );

    // The machine of §II: MVL = 64, four lockstepped lanes, Westmere-like
    // core, DDR3-1333 memory, vector loads bypassing the L1.
    let cfg = SimConfig::paper();
    let expected = reference(&ds.g, &ds.v);

    println!("\n{:28} {:>10} {:>12}", "algorithm", "CPT", "cycles");
    let mut scalar_cpt = None;
    for alg in Algorithm::ALL {
        let run = run_algorithm(alg, &cfg, &ds);
        assert_eq!(
            run.result,
            expected,
            "{} produced a wrong answer",
            alg.name()
        );
        let speedup = scalar_cpt
            .map(|s: f64| format!("  ({:.1}x)", s / run.cpt))
            .unwrap_or_default();
        println!(
            "{:28} {:>10.2} {:>12}{speedup}",
            alg.name(),
            run.cpt,
            run.cycles
        );
        if alg == Algorithm::Scalar {
            scalar_cpt = Some(run.cpt);
        }
    }

    // Show the top of the result table.
    let run = run_algorithm(Algorithm::Monotable, &cfg, &ds);
    println!(
        "\nfirst rows of the result ({} groups total):",
        run.result.len()
    );
    println!("{:>8} {:>8} {:>8}", "g", "count", "sum");
    for i in 0..run.result.len().min(5) {
        println!(
            "{:>8} {:>8} {:>8}",
            run.result.groups[i], run.result.counts[i], run.result.sums[i]
        );
    }
}
