//! The paper's qualitative findings, asserted as executable trends.
//! These pin the *shape* of the reproduction: who wins where, and which
//! cliffs appear at which cardinalities.

use vagg::core::{run_adaptive, run_algorithm, AdaptiveMode, Algorithm};
use vagg::datagen::{DatasetSpec, Distribution};
use vagg::sim::SimConfig;

fn cpt(alg: Algorithm, dist: Distribution, card: u64, n: usize) -> f64 {
    let ds = DatasetSpec::paper(dist, card)
        .with_rows(n)
        .with_seed(3)
        .generate();
    run_algorithm(alg, &SimConfig::paper(), &ds).cpt
}

#[test]
fn monotable_beats_scalar_at_low_cardinality() {
    // Table VII, `low`: 3.8–4.1×.
    let n = 30_000;
    for dist in [
        Distribution::Uniform,
        Distribution::Zipf,
        Distribution::HeavyHitter,
    ] {
        let s = cpt(Algorithm::Scalar, dist, 76, n);
        let m = cpt(Algorithm::Monotable, dist, 76, n);
        assert!(
            s / m > 2.5,
            "{}: expected ≳4x monotable speedup, got {:.2}",
            dist.name(),
            s / m
        );
    }
}

#[test]
fn polytable_cliff_is_mvl_times_earlier_than_scalar() {
    // §IV-B: scalar degrades at c ≈ 9,765, polytable at c ≈ 152 — 64×
    // (the MVL) earlier. Assert both transitions.
    let n = 30_000;
    let d = Distribution::Uniform;
    // Polytable: healthy at 76, collapsed by 1,220.
    let p_low = cpt(Algorithm::Polytable, d, 76, n);
    let p_mid = cpt(Algorithm::Polytable, d, 1_220, n);
    assert!(
        p_mid > 2.0 * p_low,
        "polytable cliff missing: {p_low:.1} → {p_mid:.1}"
    );
    // Scalar: flat from 76 to 1,220 (its cliff comes much later).
    let s_low = cpt(Algorithm::Scalar, d, 76, n);
    let s_mid = cpt(Algorithm::Scalar, d, 1_220, n);
    assert!(
        s_mid < 1.5 * s_low,
        "scalar should not degrade yet: {s_low:.1} → {s_mid:.1}"
    );
}

#[test]
fn scalar_uniform_degrades_at_high_cardinality() {
    // Figure 4: uniform shows a dramatic CPT increase once bookkeeping
    // exceeds the caches; sequential stays much flatter.
    let n = 60_000;
    let u_low = cpt(Algorithm::Scalar, Distribution::Uniform, 76, n);
    let u_high = cpt(Algorithm::Scalar, Distribution::Uniform, 625_000, n);
    assert!(u_high > 4.0 * u_low, "{u_low:.1} → {u_high:.1}");

    let q_high = cpt(Algorithm::Scalar, Distribution::Sequential, 625_000, n);
    assert!(
        u_high > 2.0 * q_high,
        "uniform ({u_high:.1}) should be far worse than sequential ({q_high:.1})"
    );
}

#[test]
fn advanced_never_loses_to_standard_sorted_reduce() {
    // Table VI vs IV: VSR sort dominates evasion radix on every unsorted
    // dataset.
    let n = 20_000;
    for dist in [
        Distribution::Uniform,
        Distribution::Zipf,
        Distribution::Sequential,
    ] {
        for card in [76u64, 9_765] {
            let ssr = cpt(Algorithm::StandardSortedReduce, dist, card, n);
            let asr = cpt(Algorithm::AdvancedSortedReduce, dist, card, n);
            assert!(
                asr <= ssr * 1.02,
                "{} c={card}: asr {asr:.1} vs ssr {ssr:.1}",
                dist.name()
            );
        }
    }
}

#[test]
fn sorted_input_makes_sorted_reduce_best_in_class() {
    // Table IX `sorted`: sorted reduce ≈5x at low (sorting skipped).
    let n = 30_000;
    let s = cpt(Algorithm::Scalar, Distribution::Sorted, 76, n);
    let sr = cpt(Algorithm::StandardSortedReduce, Distribution::Sorted, 76, n);
    assert!(
        s / sr > 3.0,
        "sorted-reduce-on-sorted speedup only {:.2}",
        s / sr
    );

    // And standard == advanced exactly (the Ξ equality): sorting skipped.
    let asr = cpt(Algorithm::AdvancedSortedReduce, Distribution::Sorted, 76, n);
    assert_eq!(
        sr, asr,
        "Ξ: both sorted reduces must be identical on sorted input"
    );
}

#[test]
fn psm_beats_monotable_where_the_paper_says() {
    // Table VIII: hhitter/uniform/zipf gain at high-normal; sequential
    // loses (the ‡ case).
    let n = 100_000;
    let m = cpt(Algorithm::Monotable, Distribution::Uniform, 78_125, n);
    let p = cpt(
        Algorithm::PartiallySortedMonotable,
        Distribution::Uniform,
        78_125,
        n,
    );
    assert!(
        p < m,
        "uniform high-normal: psm {p:.1} should beat mono {m:.1}"
    );

    let ms = cpt(Algorithm::Monotable, Distribution::Sequential, 78_125, n);
    let ps = cpt(
        Algorithm::PartiallySortedMonotable,
        Distribution::Sequential,
        78_125,
        n,
    );
    assert!(
        ps > ms,
        "sequential high-normal (‡): psm {ps:.1} should lose to mono {ms:.1}"
    );
}

#[test]
fn psm_equals_monotable_at_low_cardinality() {
    // The Ξ cells of Table VIII: no partial sort, bit-identical cycles.
    let n = 10_000;
    for dist in [Distribution::Uniform, Distribution::Zipf] {
        let m = cpt(Algorithm::Monotable, dist, 610, n);
        let p = cpt(Algorithm::PartiallySortedMonotable, dist, 610, n);
        assert_eq!(m, p, "{}", dist.name());
    }
}

#[test]
fn adaptive_realistic_close_to_ideal() {
    // §V-D: the realistic policy costs ~1.3% on average. Allow slack on
    // the reduced grid but insist it is within 15%.
    let cfg = SimConfig::paper();
    let n = 20_000;
    let mut ideal_total = 0.0;
    let mut realistic_total = 0.0;
    for dist in Distribution::ALL {
        for card in [76u64, 9_765, 78_125] {
            let ds = DatasetSpec::paper(dist, card)
                .with_rows(n)
                .with_seed(3)
                .generate();
            ideal_total += run_adaptive(&cfg, &ds, AdaptiveMode::Ideal).cpt;
            realistic_total += run_adaptive(&cfg, &ds, AdaptiveMode::Realistic).cpt;
        }
    }
    let penalty = realistic_total / ideal_total - 1.0;
    assert!(
        (-1e-9..0.15).contains(&penalty),
        "realistic adaptive penalty {penalty:.3} out of band"
    );
}

#[test]
fn adaptive_beats_every_fixed_algorithm_on_average() {
    // The point of Table IX: no fixed algorithm matches the adaptive mix.
    let cfg = SimConfig::paper();
    let n = 20_000;
    let cells: Vec<_> = Distribution::ALL
        .iter()
        .flat_map(|&d| [76u64, 9_765, 78_125].map(|c| (d, c)))
        .collect();
    let mut adaptive = 0.0;
    let mut fixed: Vec<(Algorithm, f64)> =
        Algorithm::VECTORISED.iter().map(|&a| (a, 0.0)).collect();
    for &(d, c) in &cells {
        let ds = DatasetSpec::paper(d, c)
            .with_rows(n)
            .with_seed(3)
            .generate();
        let scalar = run_algorithm(Algorithm::Scalar, &cfg, &ds).cpt;
        adaptive += scalar / run_adaptive(&cfg, &ds, AdaptiveMode::Realistic).cpt;
        for (alg, total) in fixed.iter_mut() {
            *total += scalar / run_algorithm(*alg, &cfg, &ds).cpt;
        }
    }
    for (alg, total) in fixed {
        assert!(
            adaptive >= total * 0.98,
            "{} ({:.2} avg) outperforms adaptive ({:.2} avg)",
            alg.name(),
            total / cells.len() as f64,
            adaptive / cells.len() as f64
        );
    }
}

#[test]
fn one_vector_unit_is_worth_at_least_eight_cores() {
    // §VI-A: "to achieve this result using multithreading would
    // require — at minimum — eight cores." Matching monotable on a
    // low-cardinality dataset takes 8 cores even under our optimistic
    // multicore model (private caches and DRAM per core, free barriers).
    use vagg::core::cores_to_match;
    let ds = DatasetSpec::paper(Distribution::Uniform, 76)
        .with_rows(20_000)
        .with_seed(3)
        .generate();
    let cfg = SimConfig::paper();
    let vector = run_algorithm(Algorithm::Monotable, &cfg, &ds);
    let (cores, run) = cores_to_match(&cfg, &ds.g, &ds.v, false, vector.cycles, 64)
        .expect("some optimistic core count matches at low cardinality");
    assert_eq!(cores, 8, "paper claims at minimum eight cores");
    assert!(run.cycles <= vector.cycles);
}

#[test]
fn radix_sort_beats_both_cited_comparators() {
    // §IV-A's justification for radix sort, measured against both
    // comparators on one dataset.
    use vagg::sim::Machine;
    use vagg::sort::{bitonic_sort, quicksort, radix_sort, SortArrays};
    let keys: Vec<u32> = (0..4_096u64)
        .map(|i| ((i * 2_654_435_761) % 5_000) as u32)
        .collect();
    let vals: Vec<u32> = (0..keys.len() as u32).collect();

    let cycles = |kind: &str| -> u64 {
        let mut m = Machine::paper();
        let a = SortArrays::stage(&mut m, &keys, &vals);
        match kind {
            "radix" => {
                radix_sort(&mut m, &a, 4_999);
            }
            "bitonic" => bitonic_sort(&mut m, &a),
            "quicksort" => quicksort(&mut m, &a),
            _ => unreachable!(),
        }
        m.cycles()
    };
    let radix = cycles("radix");
    assert!(radix < cycles("bitonic"), "radix must beat bitonic");
    assert!(radix < cycles("quicksort"), "radix must beat quicksort");
}
