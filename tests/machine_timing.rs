//! Timing-model invariants across the whole stack: determinism,
//! monotonicity in machine resources, and the configuration sensitivities
//! the paper relies on.

use vagg::core::{run_algorithm, Algorithm};
use vagg::datagen::{DatasetSpec, Distribution};
use vagg::isa::{RedOp, Vreg};
use vagg::sim::{Machine, SimConfig};

fn cpt_with(cfg: &SimConfig, alg: Algorithm) -> f64 {
    let ds = DatasetSpec::paper(Distribution::Uniform, 1_220)
        .with_rows(10_000)
        .with_seed(9)
        .generate();
    run_algorithm(alg, cfg, &ds).cpt
}

#[test]
fn larger_mvl_amortises_per_instruction_overhead() {
    // Long runs of a presorted input are consumed MVL elements per
    // reduction: a wider machine amortises the per-segment overhead.
    // (Polytable is the opposite: its table replication *grows* with MVL —
    // that trade-off is the ablation_mvl bench.)
    let ds = DatasetSpec::paper(Distribution::Sorted, 76)
        .with_rows(20_000)
        .with_seed(9)
        .generate();
    let small = run_algorithm(
        Algorithm::StandardSortedReduce,
        &SimConfig::paper().with_mvl(8),
        &ds,
    )
    .cpt;
    let big = run_algorithm(
        Algorithm::StandardSortedReduce,
        &SimConfig::paper().with_mvl(64),
        &ds,
    )
    .cpt;
    assert!(
        big < small,
        "MVL 64 ({big:.2}) should beat MVL 8 ({small:.2}) for sorted reduce"
    );
}

#[test]
fn polytable_replication_cost_grows_with_mvl() {
    // The §IV-B pathology: the replicated tables are MVL× larger, so at
    // moderate cardinality a *wider* machine makes polytable slower.
    let small = cpt_with(&SimConfig::paper().with_mvl(8), Algorithm::Polytable);
    let big = cpt_with(&SimConfig::paper().with_mvl(64), Algorithm::Polytable);
    assert!(
        big > small,
        "MVL 64 ({big:.2}) should pay more replication cost than MVL 8 ({small:.2})"
    );
}

#[test]
fn mvl_does_not_change_results() {
    let ds = DatasetSpec::paper(Distribution::Zipf, 610)
        .with_rows(5_000)
        .generate();
    let r64 = run_algorithm(Algorithm::Monotable, &SimConfig::paper(), &ds);
    let r16 = run_algorithm(Algorithm::Monotable, &SimConfig::paper().with_mvl(16), &ds);
    let r256 = run_algorithm(Algorithm::Monotable, &SimConfig::paper().with_mvl(256), &ds);
    assert_eq!(r64.result, r16.result);
    assert_eq!(r64.result, r256.result);
}

#[test]
fn more_cam_ports_never_slow_monotable() {
    let mut last = f64::INFINITY;
    for ports in [1usize, 2, 4, 8] {
        let c = cpt_with(
            &SimConfig::paper().with_cam_ports(ports),
            Algorithm::Monotable,
        );
        assert!(
            c <= last * 1.01,
            "ports={ports} regressed: {c:.2} > {last:.2}"
        );
        last = c;
    }
}

#[test]
fn more_lanes_speed_up_vector_work() {
    let two = cpt_with(&SimConfig::paper().with_lanes(2), Algorithm::Polytable);
    let eight = cpt_with(&SimConfig::paper().with_lanes(8), Algorithm::Polytable);
    assert!(
        eight < two,
        "8 lanes ({eight:.2}) should beat 2 lanes ({two:.2})"
    );
}

#[test]
fn l1_bypass_config_changes_timing_but_not_results() {
    let ds = DatasetSpec::paper(Distribution::Uniform, 610)
        .with_rows(5_000)
        .generate();
    let mut cfg_no = SimConfig::paper();
    cfg_no.mem.l1_bypass_vector = false;
    let with = run_algorithm(Algorithm::Monotable, &SimConfig::paper(), &ds);
    let without = run_algorithm(Algorithm::Monotable, &cfg_no, &ds);
    assert_eq!(with.result, without.result);
    assert_ne!(with.cycles, without.cycles);
}

#[test]
fn cycle_accounting_is_exactly_reproducible() {
    let build = || {
        let mut m = Machine::paper();
        let data: Vec<u32> = (0..256).collect();
        let base = m.space_mut().alloc_slice_u32(&data);
        m.set_vl(64);
        for i in 0..4 {
            m.vload_unit(Vreg(0), base + i * 256, 4, 0);
            let _ = m.vred(RedOp::Sum, Vreg(0), None);
        }
        m.cycles()
    };
    assert_eq!(build(), build());
}

#[test]
fn vector_length_scales_op_cost() {
    let mut m = Machine::paper();
    m.set_vl(64);
    m.viota(Vreg(0), None);
    let t0 = m.cycles();
    for _ in 0..100 {
        m.vbinop_vs(vagg::isa::BinOp::Add, Vreg(1), Vreg(0), 1, None);
    }
    let full = m.cycles() - t0;

    let mut m = Machine::paper();
    m.set_vl(8);
    m.viota(Vreg(0), None);
    let t0 = m.cycles();
    for _ in 0..100 {
        m.vbinop_vs(vagg::isa::BinOp::Add, Vreg(1), Vreg(0), 1, None);
    }
    let short = m.cycles() - t0;
    assert!(
        short < full / 2,
        "VL=8 chain ({short}) should be far cheaper than VL=64 ({full})"
    );
}

#[test]
fn memory_stats_flow_through() {
    let mut m = Machine::paper();
    let data: Vec<u32> = (0..1024).collect();
    let base = m.space_mut().alloc_slice_u32(&data);
    m.set_vl(64);
    for i in 0..16u64 {
        m.vload_unit(Vreg(0), base + i * 256, 4, 0);
    }
    let s = m.stats();
    assert!(s.mem.l2.accesses >= 64, "vector loads must hit the L2 path");
    assert_eq!(s.mem.l1.accesses, 0, "vector loads must bypass the L1");
    assert!(s.mem.dram.requests > 0, "cold data must come from DRAM");
    assert!(s.ops >= 17);
}
