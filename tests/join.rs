//! Differential tests for equi-joins: the hash join (every serving
//! path of it) against a brute-force nested-loop oracle.
//!
//! The oracle materialises the nested-loop match pairs into a flat
//! table whose columns carry the query's reference spellings verbatim,
//! then runs the *single-table* engine over it — so the join machinery
//! under test (build-side choice, key interning, morsel exchange,
//! caching) is exactly what differs between the two sides.

use proptest::correlated::{SideData, TablePair};
use proptest::prelude::*;
use vagg::db::{
    parse, CompactionPolicy, Database, Engine, Row, RowBatch, ShardedDatabase, SqlOutcome, Table,
};

/// Correlated pairs over one or two key columns, sweeping overlap
/// (including never-matching 0%) and skew.
fn arb_pair() -> impl Strategy<Value = TablePair> {
    (1usize..=2, 0u32..=100, 0u32..=80).prop_flat_map(|(key_columns, overlap_pct, skew_pct)| {
        proptest::correlated::join_tables(proptest::correlated::JoinConfig {
            key_columns,
            domain: 12,
            overlap_pct,
            skew_pct,
            ..proptest::correlated::JoinConfig::default()
        })
    })
}

/// `l.k0 = r.k0 [AND l.k1 = r.k1]`.
fn on_clause(key_columns: usize) -> String {
    (0..key_columns)
        .map(|c| format!("l.k{c} = r.k{c}"))
        .collect::<Vec<_>>()
        .join(" AND ")
}

/// The join statement under test: left table `l` (value column `v`),
/// right table `r` (value column `w`), optional tail clauses.
fn join_sql(
    key_columns: usize,
    group_w: bool,
    filter_t: Option<u32>,
    having_n: Option<u32>,
    order_limit: Option<usize>,
) -> String {
    let groups = if group_w { "l.k0, w" } else { "l.k0" };
    let mut sql = format!(
        "SELECT {groups}, COUNT(*), SUM(w) FROM l JOIN r ON {}",
        on_clause(key_columns)
    );
    if let Some(t) = filter_t {
        sql += &format!(" WHERE v > {t}");
    }
    sql += &format!(" GROUP BY {groups}");
    if let Some(n) = having_n {
        sql += &format!(" HAVING COUNT(*) > {n}");
    }
    if let Some(k) = order_limit {
        sql += &format!(" ORDER BY SUM(w) DESC LIMIT {k}");
    }
    sql
}

/// The first `rows` rows of one generated side as a registered table.
fn side_table(name: &str, value_col: &str, side: &SideData, rows: usize) -> Table {
    let mut t = Table::new(name);
    for (c, keys) in side.keys.iter().enumerate() {
        t = t.with_column(format!("k{c}"), keys[..rows].to_vec());
    }
    t.with_column(value_col, side.vals[..rows].to_vec())
}

/// The rows from `from` onward as an ingest batch.
fn side_batch(value_col: &str, side: &SideData, from: usize) -> RowBatch {
    let mut b = RowBatch::new();
    for (c, keys) in side.keys.iter().enumerate() {
        b = b.with_column(format!("k{c}"), keys[from..].to_vec());
    }
    b.with_column(value_col, side.vals[from..].to_vec())
}

/// Resolves a reference spelling from the test's SQL to its side:
/// `l.x` / `r.x` are qualified, bare `v` is unique to the left table,
/// any other bare name (`w`) is unique to the right.
fn resolve(spelling: &str) -> (bool, &str) {
    if let Some(col) = spelling.strip_prefix("l.") {
        (true, col)
    } else if let Some(col) = spelling.strip_prefix("r.") {
        (false, col)
    } else {
        (spelling == "v", spelling)
    }
}

/// One raw cell of a generated side, by db-visible column name.
fn raw(side: &SideData, col: &str, row: usize) -> u32 {
    match col {
        "v" | "w" => side.vals[row],
        _ => side.keys[col[1..].parse::<usize>().expect("key column index")][row],
    }
}

/// The brute-force oracle: nested-loop match over the first
/// `left_rows` × `right_rows` rows, gathered into a flat table named
/// by the query's reference spellings, aggregated by the single-table
/// engine. Returns the expected output rows.
fn oracle_rows(sql: &str, pair: &TablePair, left_rows: usize, right_rows: usize) -> Vec<Row> {
    let q = parse(sql).unwrap_or_else(|e| panic!("oracle SQL {sql:?} failed to parse: {e}"));
    let mut pairs = Vec::new();
    for i in 0..left_rows {
        let tuple = pair.left.key_tuple(i);
        for j in 0..right_rows {
            if tuple == pair.right.key_tuple(j) {
                pairs.push((i, j));
            }
        }
    }
    if pairs.is_empty() {
        return Vec::new();
    }
    let mut spellings: Vec<String> = Vec::new();
    for s in q.query.group_columns() {
        spellings.push(s.to_string());
    }
    spellings.push(q.query.value.clone());
    if let Some((col, _)) = &q.query.filter {
        spellings.push(col.clone());
    }
    spellings.dedup();
    let mut flat = Table::new("oracle");
    for s in &spellings {
        if flat.column(s).is_some() {
            continue;
        }
        let (from_left, col) = resolve(s);
        let data: Vec<u32> = pairs
            .iter()
            .map(|&(i, j)| {
                let (side, row) = if from_left {
                    (&pair.left, i)
                } else {
                    (&pair.right, j)
                };
                raw(side, col, row)
            })
            .collect();
        flat = flat.with_column(s.clone(), data);
    }
    Engine::new()
        .execute(&flat, &q.query)
        .unwrap_or_else(|e| panic!("oracle execution of {sql:?} failed: {e}"))
        .rows
}

/// Runs one SELECT on a single-session database, unwrapping to rows.
fn run_single(db: &mut Database, sql: &str) -> Vec<Row> {
    match db.run_sql(sql).unwrap_or_else(|e| panic!("{sql:?}: {e}")) {
        SqlOutcome::Rows(out) => out.rows,
        other => panic!("SELECT returned {other:?}"),
    }
}

/// A database holding the first `lrows` / `rrows` rows of the pair.
fn seed_db(pair: &TablePair, lrows: usize, rrows: usize) -> Database {
    let mut db = Database::new();
    db.register(side_table("l", "v", &pair.left, lrows));
    db.register(side_table("r", "w", &pair.right, rrows));
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Single-session hash join ≡ nested-loop oracle, across the full
    /// WHERE → GROUP BY → HAVING → ORDER BY → LIMIT tail, composite
    /// keys included.
    #[test]
    fn single_session_join_matches_nested_loop_oracle(
        pair in arb_pair(),
        filter_t in proptest::option::of(0u32..900),
        having_n in proptest::option::of(0u32..4),
        order_limit in proptest::option::of(1usize..6),
        group_w in any::<bool>(),
    ) {
        let sql = join_sql(pair.key_columns, group_w, filter_t, having_n, order_limit);
        let expect = oracle_rows(&sql, &pair, pair.left.rows(), pair.right.rows());
        let mut db = seed_db(&pair, pair.left.rows(), pair.right.rows());
        let got = run_single(&mut db, &sql);
        prop_assert_eq!(got, expect, "{}", sql);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(14))]

    /// The sharded morsel join is bit-identical to the single-session
    /// join and to the oracle, for every shard count and both exchange
    /// strategies (the planner flips broadcast/partition as the sampled
    /// table sizes move).
    #[test]
    fn sharded_join_is_bit_identical_to_single_session(
        pair in arb_pair(),
        shards in 2usize..6,
        having_n in proptest::option::of(0u32..4),
        order_limit in proptest::option::of(1usize..6),
        group_w in any::<bool>(),
    ) {
        let sql = join_sql(pair.key_columns, group_w, None, having_n, order_limit);
        let expect = oracle_rows(&sql, &pair, pair.left.rows(), pair.right.rows());

        let mut db = seed_db(&pair, pair.left.rows(), pair.right.rows());
        let single = run_single(&mut db, &sql);

        let mut sharded = ShardedDatabase::new(shards);
        sharded.register(side_table("l", "v", &pair.left, pair.left.rows()));
        sharded.register(side_table("r", "w", &pair.right, pair.right.rows()));
        let merged = sharded
            .run_sql(&sql)
            .unwrap_or_else(|e| panic!("{sql:?} on {shards} shards: {e}"))
            .rows;

        prop_assert_eq!(&single, &expect, "single vs oracle: {}", &sql);
        prop_assert_eq!(&merged, &expect, "{} shards vs oracle: {}", shards, &sql);
    }

    /// Snapshot reads of a join — `run_sql_at`, `AS OF <name>`,
    /// `AS OF data_version N`, and `PreparedJoin::execute_at` — all see
    /// the pinned state; the current read sees base ++ delta.
    #[test]
    fn snapshot_joins_ignore_later_ingest(
        pair in arb_pair(),
        lsplit in 20usize..=80,
        rsplit in 20usize..=80,
    ) {
        let lbase = 1 + (pair.left.rows() - 1) * lsplit / 100;
        let rbase = 1 + (pair.right.rows() - 1) * rsplit / 100;
        let sql = join_sql(pair.key_columns, false, None, None, None);
        let expect_base = oracle_rows(&sql, &pair, lbase, rbase);
        let expect_all = oracle_rows(&sql, &pair, pair.left.rows(), pair.right.rows());

        let mut db = seed_db(&pair, lbase, rbase);
        // Keep raw versions reconstructible: compaction would retire
        // data_version 1 once the deltas land (only named snapshots
        // survive it), and this test reads `AS OF data_version 1`.
        db.catalogue().set_compaction_policy(CompactionPolicy::never());
        let snap = db.snapshot();
        db.run_sql("CREATE SNAPSHOT cut").unwrap();
        let mut stmt = db.prepare_join(&sql.replacen(
            " GROUP BY", " WHERE v > ? GROUP BY", 1)).unwrap();

        if lbase < pair.left.rows() {
            db.append_rows("l", side_batch("v", &pair.left, lbase)).unwrap();
        }
        if rbase < pair.right.rows() {
            db.append_rows("r", side_batch("w", &pair.right, rbase)).unwrap();
        }

        let pinned = match db.run_sql_at(&snap, &sql).unwrap() {
            SqlOutcome::Rows(out) => out.rows,
            other => panic!("SELECT returned {other:?}"),
        };
        prop_assert_eq!(&pinned, &expect_base, "run_sql_at");

        let named = sql.replacen(" GROUP BY", " AS OF cut GROUP BY", 1);
        prop_assert_eq!(&run_single(&mut db, &named), &expect_base, "AS OF name");

        let versioned = sql.replacen(" GROUP BY", " AS OF data_version 1 GROUP BY", 1);
        prop_assert_eq!(&run_single(&mut db, &versioned), &expect_base, "AS OF data_version");

        // WHERE v > 0 drops the zero-valued left rows from the pinned cut.
        let filtered = oracle_filtered(&pair, lbase, rbase, &sql);
        prop_assert_eq!(
            &stmt.execute_at(&mut db, &snap, &[0]).unwrap().rows,
            &filtered,
            "prepared execute_at"
        );

        prop_assert_eq!(&run_single(&mut db, &sql), &expect_all, "current read");
    }
}

/// The oracle for the snapshot test's prepared statement: the pinned
/// cut with `WHERE v > 0` inlined.
fn oracle_filtered(pair: &TablePair, lbase: usize, rbase: usize, sql: &str) -> Vec<Row> {
    let inlined = sql.replacen(" GROUP BY", " WHERE v > 0 GROUP BY", 1);
    oracle_rows(&inlined, pair, lbase, rbase)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `PreparedJoin` over a parameter sweep matches a fresh oracle of
    /// the literal-inlined SQL, and ingest invalidates the cached build
    /// (rejoins increments) while the results stay oracle-exact.
    #[test]
    fn prepared_join_matches_fresh_oracle_across_ingest(
        pair in arb_pair(),
        thresholds in proptest::collection::vec(0u64..900, 1..4),
        lsplit in 20usize..=80,
    ) {
        let lbase = 1 + (pair.left.rows() - 1) * lsplit / 100;
        let template = format!(
            "SELECT l.k0, COUNT(*), SUM(w) FROM l JOIN r ON {} WHERE v > ? GROUP BY l.k0",
            on_clause(pair.key_columns)
        );
        let mut db = seed_db(&pair, lbase, pair.right.rows());
        let mut stmt = db.prepare_join(&template).unwrap();
        prop_assert_eq!(stmt.parameter_count(), 1);

        for &t in &thresholds {
            let got = stmt.execute(&mut db, &[t]).unwrap().rows;
            let inlined = template.replacen('?', &t.to_string(), 1);
            let expect = oracle_rows(&inlined, &pair, lbase, pair.right.rows());
            prop_assert_eq!(got, expect, "{} with v > {}", &template, t);
        }
        // Binding constants must not rebuild the join: one rejoin total
        // for the initial (cold) execution.
        prop_assert_eq!(stmt.rejoins(), 1, "bind-only executions re-joined");

        if lbase < pair.left.rows() {
            db.append_rows("l", side_batch("v", &pair.left, lbase)).unwrap();
            let got = stmt.execute(&mut db, &[thresholds[0]]).unwrap().rows;
            let inlined = template.replacen('?', &thresholds[0].to_string(), 1);
            let expect = oracle_rows(&inlined, &pair, pair.left.rows(), pair.right.rows());
            prop_assert_eq!(got, expect, "post-ingest execution");
            prop_assert_eq!(stmt.rejoins(), 2, "ingest must invalidate the cached build");
        }
        prop_assert_eq!(
            stmt.executions(),
            thresholds.len() as u64 + u64::from(lbase < pair.left.rows())
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Joins over base ++ delta — including across compaction
    /// boundaries — match the oracle over the accumulated rows, on the
    /// single session and on every shard count.
    #[test]
    fn join_over_deltas_and_compaction_matches_oracle(
        pair in arb_pair(),
        lsplit in 20usize..=60,
        rsplit in 20usize..=60,
        compact_every in 1usize..24,
        shards in 1usize..4,
    ) {
        let lbase = 1 + (pair.left.rows() - 1) * lsplit / 100;
        let rbase = 1 + (pair.right.rows() - 1) * rsplit / 100;
        let sql = join_sql(pair.key_columns, false, None, None, None);

        let mut db = seed_db(&pair, lbase, rbase);
        db.catalogue().set_compaction_policy(CompactionPolicy::every(compact_every));
        let mut sharded = ShardedDatabase::new(shards);
        sharded.set_compaction_policy(CompactionPolicy::every(compact_every));
        sharded.register(side_table("l", "v", &pair.left, lbase));
        sharded.register(side_table("r", "w", &pair.right, rbase));

        // Grow the left side, then the right, checking after each step.
        let steps = [(pair.left.rows(), rbase), (pair.left.rows(), pair.right.rows())];
        let mut at = (lbase, rbase);
        for (lrows, rrows) in steps {
            if lrows > at.0 {
                db.append_rows("l", side_batch("v", &pair.left, at.0)).unwrap();
                sharded.append_rows("l", side_batch("v", &pair.left, at.0)).unwrap();
            }
            if rrows > at.1 {
                db.append_rows("r", side_batch("w", &pair.right, at.1)).unwrap();
                sharded.append_rows("r", side_batch("w", &pair.right, at.1)).unwrap();
            }
            at = (lrows, rrows);
            let expect = oracle_rows(&sql, &pair, lrows, rrows);
            prop_assert_eq!(&run_single(&mut db, &sql), &expect, "single, {:?}", at);
            let merged = sharded.run_sql(&sql).unwrap().rows;
            prop_assert_eq!(&merged, &expect, "{} shards, {:?}", shards, at);
        }
    }
}
