//! Integration tests for the snapshot-first read path: MVCC isolation
//! under ingest and compaction, the prepared-statement acceptance
//! scenario, read-only transactions, and the pin/deferred-GC
//! lifecycle under concurrent traffic.

use proptest::prelude::*;
use std::sync::Arc;
use vagg::core::Algorithm;
use vagg::db::{
    CompactionPolicy, Database, QueryOutput, RowBatch, ShardedDatabase, SharedCatalogue,
    SqlOutcome, Table,
};

fn seed_table(n: usize, cardinality: u32) -> Table {
    Table::new("events")
        .with_column(
            "g",
            (0..n)
                .map(|i| ((i * 7919) % cardinality as usize) as u32)
                .collect(),
        )
        .with_column("v", (0..n).map(|i| (i % 10) as u32).collect())
}

fn batch(g: Vec<u32>, v: Vec<u32>) -> RowBatch {
    RowBatch::new().with_column("g", g).with_column("v", v)
}

fn rows_of(outcome: SqlOutcome) -> QueryOutput {
    match outcome {
        SqlOutcome::Rows(out) => out,
        other => panic!("SELECT returns rows: {other:?}"),
    }
}

const SQL: &str = "SELECT g, COUNT(*), SUM(v), MIN(v), MAX(v) FROM events GROUP BY g";

/// The acceptance scenario: a prepared statement executed at an old
/// snapshot returns results identical to a fresh plan over a table
/// registered from that snapshot's rows — even after subsequent ingest
/// flipped the live §V-D choice and triggered compaction — and the
/// pinned plan makes the *snapshot's* algorithm choice, not the live
/// one.
#[test]
fn prepared_statement_at_an_old_snapshot_survives_drift_and_compaction() {
    let mut db = Database::new();
    db.catalogue()
        .set_compaction_policy(CompactionPolicy::every(4));
    // Low cardinality (100 ≤ 9,765): the monotable division.
    db.register(seed_table(600, 100));
    let sql = "SELECT g, COUNT(*), SUM(v) FROM events GROUP BY g";
    let mut stmt = db.prepare(sql).unwrap();
    stmt.execute(&mut db, &[]).unwrap();
    assert_eq!(stmt.plan().unwrap().algorithm(), Algorithm::Monotable);

    // Park rows in the delta, then pin the snapshot so its cut holds a
    // non-trivial delta prefix (the retired-store path must carry it).
    db.append_rows("events", batch(vec![7, 8], vec![1, 2]))
        .unwrap();
    let snap = db.snapshot();
    assert_eq!(snap.delta_rows("events"), Some(2));

    // Drift the live table across the §V-D division boundary AND trip
    // compaction: the pinned delta generation is retired.
    let receipt = db
        .append_rows("events", batch(vec![20_000, 3], vec![1, 1]))
        .unwrap();
    assert!(receipt.compacted, "threshold compaction ran");
    assert_eq!(db.snapshot_stats().deferred_gcs, 1, "pinned delta retired");
    let live = stmt.execute(&mut db, &[]).unwrap();
    assert_eq!(
        stmt.plan().unwrap().algorithm(),
        Algorithm::PartiallySortedMonotable,
        "the live choice flipped"
    );
    assert_eq!(live.rows.len(), 101);

    // Executing at the old snapshot re-pins the plan to the snapshot's
    // statistics: the choice flips *back* and the rows are exactly the
    // pinned cut's.
    let at = stmt.execute_at(&mut db, &snap, &[]).unwrap();
    assert_eq!(stmt.plan().unwrap().algorithm(), Algorithm::Monotable);
    assert_eq!(
        stmt.plan().unwrap().data_version(),
        snap.data_version("events")
    );

    // Oracle: a fresh plan over a table registered from the snapshot's
    // rows.
    let mut fresh = Database::new();
    fresh.register(snap.table("events").unwrap());
    let oracle = fresh.execute_sql(sql).unwrap();
    assert_eq!(at.rows, oracle.rows);
    let oracle_out = fresh.explain_sql(sql).unwrap();
    let oracle_plan = oracle_out.plan().unwrap();
    assert_eq!(stmt.plan().unwrap().algorithm(), oracle_plan.algorithm());
    assert_eq!(
        stmt.plan().unwrap().cardinality_estimate(),
        oracle_plan.cardinality_estimate()
    );

    // And the pinned state is released on drop.
    drop(snap);
    let stats = db.snapshot_stats();
    assert_eq!(stats.live_pins, 0);
    assert_eq!(stats.retired_deltas, 0, "deferred GC reclaimed");
}

/// The one-read-path check: the live `run_sql` is a snapshot-of-now
/// wrapper — every SELECT moves the snapshot counter, pins nothing
/// afterwards, and agrees with an explicit snapshot taken at the same
/// moment.
#[test]
fn run_sql_is_a_snapshot_of_now_wrapper() {
    let mut db = Database::new();
    db.register(seed_table(200, 23));
    let taken = db.snapshot_stats().snapshots_taken;
    let live = rows_of(db.run_sql(SQL).unwrap());
    let stats = db.snapshot_stats();
    assert_eq!(
        stats.snapshots_taken,
        taken + 1,
        "the SELECT ran through the snapshot read path"
    );
    assert_eq!(stats.live_snapshots, 0, "and released its cut on return");
    assert_eq!(stats.live_pins, 0);

    let snap = db.snapshot();
    let at = rows_of(db.run_sql_at(&snap, SQL).unwrap());
    assert_eq!(live.rows, at.rows, "same cut, same answer");

    // EXPLAIN (the satellite): the plan records the data version it
    // was produced against, live and pinned.
    let plan = db.explain_sql(SQL).unwrap();
    assert_eq!(plan.plan().unwrap().data_version(), Some(1));
    assert!(plan.explain().contains("data_version=1"));
    db.run_sql("INSERT INTO events (g, v) VALUES (1, 2)")
        .unwrap();
    let drifted = db.explain_sql(SQL).unwrap();
    assert_eq!(drifted.plan().unwrap().data_version(), Some(2));
    assert!(drifted.explain().contains("data_version=2"));
    let pinned = match db.run_sql_at(&snap, &format!("EXPLAIN {SQL}")).unwrap() {
        SqlOutcome::Plan(p) => p,
        other => panic!("EXPLAIN returns a plan: {other:?}"),
    };
    assert!(
        pinned.explain().contains("data_version=1"),
        "snapshot version"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Snapshot isolation on a single session: for a random base, a
    /// random split of appended batches and a random compaction
    /// threshold, `run_sql_at(snap)` after the tail of appends equals
    /// the same query run at the moment the snapshot was taken.
    #[test]
    fn snapshot_reads_equal_the_pre_append_answer(
        base_rows in 1usize..60,
        appends in proptest::collection::vec(
            proptest::collection::vec((0u32..50, 0u32..100), 1..8),
            1..8,
        ),
        cut in 0usize..8,
        threshold in 1usize..16,
    ) {
        let cut = cut.min(appends.len());
        let mut db = Database::new();
        db.catalogue().set_compaction_policy(CompactionPolicy::every(threshold));
        db.register(seed_table(base_rows, 13));

        // Head of the append stream lands before the snapshot.
        for rows in &appends[..cut] {
            let (g, v): (Vec<u32>, Vec<u32>) = rows.iter().copied().unzip();
            db.append_rows("events", batch(g, v)).unwrap();
        }
        let snap = db.snapshot();
        let expected = rows_of(db.run_sql(SQL).unwrap());

        // Tail lands after it (drift + possible compactions).
        for rows in &appends[cut..] {
            let (g, v): (Vec<u32>, Vec<u32>) = rows.iter().copied().unzip();
            db.append_rows("events", batch(g, v)).unwrap();
        }

        let at = rows_of(db.run_sql_at(&snap, SQL).unwrap());
        prop_assert_eq!(&at.rows, &expected.rows);
        // Repeatable: asking again changes nothing.
        let again = rows_of(db.run_sql_at(&snap, SQL).unwrap());
        prop_assert_eq!(&again.rows, &expected.rows);
        // And the snapshot's materialised table IS the pre-append table.
        let mut fresh = Database::new();
        fresh.register(snap.table("events").unwrap());
        let oracle = fresh.execute_sql(SQL).unwrap();
        prop_assert_eq!(&oracle.rows, &expected.rows);
    }

    /// The same isolation property on a shared catalogue with the
    /// appends arriving from concurrently running writer threads.
    #[test]
    fn snapshot_reads_are_isolated_from_concurrent_writers(
        appends in proptest::collection::vec(
            proptest::collection::vec((0u32..50, 0u32..100), 1..6),
            2..6,
        ),
        threshold in 1usize..8,
    ) {
        let catalogue = SharedCatalogue::new();
        catalogue.set_compaction_policy(CompactionPolicy::every(threshold));
        catalogue.register(seed_table(40, 13));

        let mut reader = catalogue.connect();
        let snap = Arc::new(catalogue.snapshot());
        let expected = rows_of(reader.run_sql(SQL).unwrap());

        std::thread::scope(|scope| {
            // Writers stream batches into the shared catalogue...
            for rows in &appends {
                let catalogue = catalogue.clone();
                scope.spawn(move || {
                    let (g, v): (Vec<u32>, Vec<u32>) = rows.iter().copied().unzip();
                    catalogue.append("events", batch(g, v)).unwrap();
                });
            }
            // ...while reader sessions on other threads keep answering
            // from the pinned cut.
            for _ in 0..2 {
                let mut session = catalogue.connect();
                let snap = Arc::clone(&snap);
                let expected = expected.rows.clone();
                scope.spawn(move || {
                    for _ in 0..4 {
                        let at = rows_of(session.run_sql_at(&snap, SQL).unwrap());
                        assert_eq!(at.rows, expected, "torn or non-repeatable read");
                    }
                });
            }
        });

        // After the dust settles the snapshot still answers the old cut
        // and the live table holds every appended row.
        let at = rows_of(reader.run_sql_at(&snap, SQL).unwrap());
        prop_assert_eq!(&at.rows, &expected.rows);
        let appended: usize = appends.iter().map(Vec::len).sum();
        prop_assert_eq!(
            catalogue.table("events").unwrap().rows(),
            40 + appended
        );
    }

    /// Cross-shard snapshot isolation: the sharded cut answers the
    /// pre-append merged result while routed ingest mutates the shards.
    #[test]
    fn sharded_snapshot_reads_equal_the_pre_append_answer(
        shards in 1usize..5,
        appends in proptest::collection::vec(
            proptest::collection::vec((0u32..50, 0u32..100), 1..8),
            1..6,
        ),
        threshold in 1usize..8,
    ) {
        let mut sharded = ShardedDatabase::new(shards);
        sharded.register(seed_table(50, 13));
        sharded.set_compaction_policy(CompactionPolicy::every(threshold));

        let snap = sharded.snapshot();
        let expected = sharded.run_sql(SQL).unwrap();
        for rows in &appends {
            let (g, v): (Vec<u32>, Vec<u32>) = rows.iter().copied().unzip();
            sharded.append_rows("events", batch(g, v)).unwrap();
        }
        let at = sharded.run_sql_at(&snap, SQL).unwrap();
        prop_assert_eq!(&at.rows, &expected.rows);
        // The live merged answer equals a single fresh session over the
        // merged rows (the sharded correctness oracle still holds).
        let live = sharded.run_sql(SQL).unwrap();
        let appended: usize = appends.iter().map(Vec::len).sum();
        prop_assert_eq!(live.report.rows_aggregated, 50 + appended);
    }
}

/// Stress: concurrent appends + aggressive threshold compaction +
/// long-lived snapshot readers. No torn reads, pins released on drop,
/// deferred GC eventually reclaims every retired delta.
#[test]
fn concurrent_ingest_compaction_and_snapshot_readers() {
    let catalogue = SharedCatalogue::new();
    catalogue.set_compaction_policy(CompactionPolicy::every(32));
    catalogue.register(seed_table(256, 23));

    const WRITER_BATCHES: usize = 40;
    const BATCH_ROWS: usize = 7;
    std::thread::scope(|scope| {
        let writer = {
            let catalogue = catalogue.clone();
            scope.spawn(move || {
                for i in 0..WRITER_BATCHES {
                    let g: Vec<u32> = (0..BATCH_ROWS)
                        .map(|j| ((i * 31 + j) % 23) as u32)
                        .collect();
                    let v: Vec<u32> = (0..BATCH_ROWS).map(|j| ((i + j) % 10) as u32).collect();
                    catalogue.append("events", batch(g, v)).unwrap();
                }
            })
        };
        for _ in 0..3 {
            let catalogue = catalogue.clone();
            scope.spawn(move || {
                let mut session = catalogue.connect();
                for _ in 0..12 {
                    // Long-lived snapshot: hold it across several
                    // queries while the writer keeps appending and
                    // compacting underneath.
                    let snap = catalogue.snapshot();
                    let pinned_rows = snap.table_stats("events").unwrap().rows();
                    let first = rows_of(session.run_sql_at(&snap, SQL).unwrap());
                    let count: f64 = first.rows.iter().map(|r| r.values[0]).sum();
                    assert_eq!(count as usize, pinned_rows, "torn snapshot read");
                    let second = rows_of(session.run_sql_at(&snap, SQL).unwrap());
                    assert_eq!(first.rows, second.rows, "non-repeatable read");
                    drop(snap);
                }
            });
        }
        writer.join().unwrap();
    });

    // Every pin released; every deferred GC reclaimed; the final
    // content equals the full stream loaded in one shot.
    let stats = catalogue.snapshot_stats();
    assert_eq!(stats.live_snapshots, 0);
    assert_eq!(stats.live_pins, 0);
    assert_eq!(stats.retired_deltas, 0, "deferred GCs all reclaimed");
    assert_eq!(stats.reclaimed_gcs, stats.deferred_gcs);
    assert_eq!(
        catalogue.table("events").unwrap().rows(),
        256 + WRITER_BATCHES * BATCH_ROWS
    );
}

/// A long-lived `BEGIN READ ONLY` transaction sees one consistent
/// database across statements while another session ingests, and the
/// commit releases the pinned snapshot.
#[test]
fn read_only_transactions_survive_heavy_concurrent_ingest() {
    let catalogue = SharedCatalogue::new();
    catalogue.register(seed_table(300, 23));
    let mut reporter = catalogue.connect();
    let mut writer = catalogue.connect();

    reporter.run_sql("BEGIN READ ONLY").unwrap();
    let totals = rows_of(reporter.run_sql(SQL).unwrap());
    for i in 0..10u32 {
        writer
            .run_sql(&format!(
                "INSERT INTO events (g, v) VALUES ({}, {})",
                i % 23,
                i
            ))
            .unwrap();
        // Every statement of the open transaction reads the same cut.
        let again = rows_of(reporter.run_sql(SQL).unwrap());
        assert_eq!(totals.rows, again.rows, "repeatable read across statements");
    }
    reporter.run_sql("COMMIT").unwrap();
    assert_eq!(catalogue.snapshot_stats().live_snapshots, 0);
    let after = rows_of(reporter.run_sql(SQL).unwrap());
    let count: f64 = after.rows.iter().map(|r| r.values[0]).sum();
    assert_eq!(count as usize, 310, "live again after COMMIT");
}
