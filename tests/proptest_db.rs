//! Property tests for the query engine: SQL roundtripping, vectorised
//! filter equivalence, and full pipelines against a host-side oracle.

use proptest::prelude::*;
use std::collections::BTreeMap;
use vagg::db::{
    parse, AggFn, AggregateQuery, CompactionPolicy, Database, Engine, OrderKey, Predicate,
    RowBatch, Session, ShardedDatabase, Table,
};
use vagg::sim::Machine;

fn arb_aggfn() -> impl Strategy<Value = AggFn> {
    prop_oneof![
        Just(AggFn::Count),
        Just(AggFn::Sum),
        Just(AggFn::Min),
        Just(AggFn::Max),
        Just(AggFn::Avg),
    ]
}

fn arb_predicate() -> impl Strategy<Value = Predicate> {
    prop_oneof![
        any::<u32>().prop_map(|k| if k == 0 {
            Predicate::NonZero
        } else {
            Predicate::NotEqual(k)
        }),
        Just(Predicate::NonZero),
        any::<u32>().prop_map(Predicate::GreaterThan),
        any::<u32>().prop_map(Predicate::LessThan),
    ]
}

// HAVING / ORDER BY keys must be materialised integral aggregates.
fn arb_int_aggfn() -> impl Strategy<Value = AggFn> {
    prop_oneof![
        Just(AggFn::Count),
        Just(AggFn::Sum),
        Just(AggFn::Min),
        Just(AggFn::Max),
    ]
}

fn arb_query() -> impl Strategy<Value = AggregateQuery> {
    (
        proptest::collection::vec(arb_aggfn(), 1..5),
        proptest::option::of(arb_predicate()),
        proptest::option::of((arb_int_aggfn(), arb_predicate())),
        proptest::option::of((
            prop_oneof![
                Just(OrderKey::Group),
                arb_int_aggfn().prop_map(OrderKey::Agg)
            ],
            any::<bool>(),
            proptest::option::of(1usize..20),
        )),
    )
        .prop_map(|(aggs, filter, having, order)| {
            let mut q = AggregateQuery::paper("g", "v");
            q.aggregates.clear();
            for a in aggs {
                q = q.with_aggregate(a);
            }
            if let Some(p) = filter {
                q = q.with_filter("w", p);
            }
            if let Some((agg, pred)) = having {
                q = q.with_having(agg, pred);
            }
            if let Some((key, desc, limit)) = order {
                q = q.with_order_by(key, desc);
                if let Some(k) = limit {
                    q = q.with_limit(k);
                }
            }
            q
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any constructible query renders to SQL that parses back to the
    /// same structured query.
    #[test]
    fn sql_roundtrips(q in arb_query()) {
        let text = q.sql("r");
        let parsed = parse(&text).unwrap_or_else(|e| {
            panic!("rendered SQL failed to parse: {text:?}: {e}")
        });
        prop_assert_eq!(&parsed.table, "r");
        prop_assert_eq!(&parsed.query.group_by, &q.group_by);
        prop_assert_eq!(&parsed.query.aggregates, &q.aggregates);
        prop_assert_eq!(&parsed.query.filter, &q.filter);
        prop_assert_eq!(&parsed.query.having, &q.having);
        prop_assert_eq!(&parsed.query.order_by, &q.order_by);
        // And rendering is a fixed point.
        prop_assert_eq!(parsed.query.sql("r"), text);
    }

    /// The vectorised filter matches the host-side oracle on arbitrary
    /// columns and predicates.
    #[test]
    fn vector_filter_matches_oracle(
        col in proptest::collection::vec(0u32..64, 1..300),
        pred in prop_oneof![
            (0u32..64).prop_map(Predicate::NotEqual),
            Just(Predicate::NonZero),
            (0u32..64).prop_map(Predicate::GreaterThan),
            (0u32..64).prop_map(Predicate::LessThan),
        ],
    ) {
        let mut m = Machine::paper();
        let n = col.len();
        let src = m.space_mut().alloc_slice_u32(&col);
        let dst = m.space_mut().alloc(4 * n as u64, 64);
        let kept = vagg::db::vector_filter(&mut m, src, n, pred, &[(src, dst)]);
        let expect: Vec<u32> =
            col.iter().copied().filter(|&x| pred.matches(x)).collect();
        prop_assert_eq!(kept, expect.len());
        prop_assert_eq!(m.space().read_slice_u32(dst, kept), expect);
    }

    /// Full WHERE → GROUP BY → HAVING → ORDER BY → LIMIT pipelines agree
    /// with a host-side reference implementation.
    #[test]
    fn engine_pipeline_matches_oracle(
        rows in proptest::collection::vec((0u32..16, 0u32..10, 0u32..8), 1..400),
        filter_pred in proptest::option::of(prop_oneof![
            (0u32..8).prop_map(Predicate::NotEqual),
            (0u32..8).prop_map(Predicate::GreaterThan),
            (0u32..8).prop_map(Predicate::LessThan),
        ]),
        having_t in proptest::option::of(0u32..30),
        desc in any::<bool>(),
        limit in proptest::option::of(1usize..8),
    ) {
        let g: Vec<u32> = rows.iter().map(|r| r.0).collect();
        let v: Vec<u32> = rows.iter().map(|r| r.1).collect();
        let w: Vec<u32> = rows.iter().map(|r| r.2).collect();

        let mut q = AggregateQuery::paper("g", "v");
        if let Some(p) = filter_pred {
            q = q.with_filter("w", p);
        }
        if let Some(t) = having_t {
            q = q.with_having(AggFn::Sum, Predicate::GreaterThan(t));
        }
        q = q.with_order_by(OrderKey::Agg(AggFn::Sum), desc);
        if let Some(k) = limit {
            q = q.with_limit(k);
        }

        // Host-side oracle.
        let mut agg: BTreeMap<u32, (u32, u32)> = BTreeMap::new();
        for i in 0..g.len() {
            if filter_pred.is_none_or(|p| p.matches(w[i])) {
                let e = agg.entry(g[i]).or_insert((0, 0));
                e.0 += 1;
                e.1 += v[i];
            }
        }
        let mut expect: Vec<(u32, u32, u32)> = agg
            .into_iter()
            .filter(|(_, (_, sum))| having_t.is_none_or(|t| *sum > t))
            .map(|(g, (c, s))| (g, c, s))
            .collect();
        // Stable sort by sum (complement for DESC) mirrors the engine.
        expect.sort_by_key(|&(_, _, s)| if desc { u32::MAX - s } else { s });
        if let Some(k) = limit {
            expect.truncate(k);
        }

        let table = Table::new("r")
            .with_column("g", g)
            .with_column("v", v)
            .with_column("w", w);
        let out = Engine::new().execute(&table, &q);

        match out {
            Ok(out) => {
                let got: Vec<(u32, u32, u32)> = out
                    .rows
                    .iter()
                    .map(|r| (r.group, r.values[0] as u32, r.values[1] as u32))
                    .collect();
                prop_assert_eq!(got, expect);
            }
            Err(e) => {
                // The only legitimate failure is the all-rows-filtered
                // empty input... which execute reports as empty output,
                // so any error is a bug.
                return Err(TestCaseError::fail(format!("engine error: {e}")));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `Engine::plan` + `Session::run` is exactly the one-shot
    /// `Engine::execute` it replaced: same rows, same cycles, same
    /// algorithm, on random full-pipeline queries.
    #[test]
    fn plan_plus_session_matches_execute(
        rows in proptest::collection::vec((0u32..16, 0u32..10, 0u32..8), 1..300),
        filter_pred in proptest::option::of(prop_oneof![
            (0u32..8).prop_map(Predicate::NotEqual),
            (0u32..8).prop_map(Predicate::GreaterThan),
            (0u32..8).prop_map(Predicate::LessThan),
        ]),
        having_t in proptest::option::of(0u32..30),
        desc in any::<bool>(),
        limit in proptest::option::of(1usize..8),
    ) {
        let g: Vec<u32> = rows.iter().map(|r| r.0).collect();
        let v: Vec<u32> = rows.iter().map(|r| r.1).collect();
        let w: Vec<u32> = rows.iter().map(|r| r.2).collect();

        let mut q = AggregateQuery::paper("g", "v");
        if let Some(p) = filter_pred {
            q = q.with_filter("w", p);
        }
        if let Some(t) = having_t {
            q = q.with_having(AggFn::Sum, Predicate::GreaterThan(t));
        }
        q = q.with_order_by(OrderKey::Agg(AggFn::Sum), desc);
        if let Some(k) = limit {
            q = q.with_limit(k);
        }

        let table = Table::new("r")
            .with_column("g", g)
            .with_column("v", v)
            .with_column("w", w);

        let engine = Engine::new();
        let via_execute = engine.execute(&table, &q).unwrap();
        let plan = engine.plan(&table, &q).unwrap();
        prop_assert!(plan.explain().contains("CardinalityScan"));
        let via_session = Session::new().run(&plan);

        prop_assert_eq!(via_execute.rows, via_session.rows);
        prop_assert_eq!(via_execute.report.cycles, via_session.report.cycles);
        prop_assert_eq!(
            via_execute.report.algorithm,
            via_session.report.algorithm
        );
        prop_assert_eq!(
            via_execute.report.rows_aggregated,
            via_session.report.rows_aggregated
        );
    }

    /// Running one plan twice on a shared session gives identical rows,
    /// and the session accounts per-query cycle deltas exactly.
    #[test]
    fn session_reuse_is_deterministic_on_rows(
        rows in proptest::collection::vec((0u32..16, 0u32..10), 1..200),
    ) {
        let g: Vec<u32> = rows.iter().map(|r| r.0).collect();
        let v: Vec<u32> = rows.iter().map(|r| r.1).collect();
        let table = Table::new("r").with_column("g", g).with_column("v", v);
        let plan = Engine::new()
            .plan(&table, &AggregateQuery::paper("g", "v"))
            .unwrap();
        let mut session = Session::new();
        let first = session.run(&plan);
        let second = session.run(&plan);
        prop_assert_eq!(session.queries_run(), 2);
        prop_assert_eq!(&first.rows, &second.rows);
        prop_assert_eq!(
            session.total_cycles(),
            first.report.cycles + second.report.cycles
        );
    }

    /// Prepared `execute(params)` returns exactly the rows a fresh
    /// one-shot execution of the literal-inlined SQL returns, across a
    /// sweep of bound parameters — the prepared fast path (bind +
    /// rebind, no re-planning) must be invisible in the results.
    #[test]
    fn prepared_execute_matches_fresh_run_sql(
        rows in proptest::collection::vec((0u32..16, 0u32..10, 0u32..8), 1..200),
        thresholds in proptest::collection::vec(0u64..12, 1..6),
        having_t in proptest::option::of(0u64..30),
        limit in proptest::option::of(1u64..8),
    ) {
        let g: Vec<u32> = rows.iter().map(|r| r.0).collect();
        let v: Vec<u32> = rows.iter().map(|r| r.1).collect();
        let w: Vec<u32> = rows.iter().map(|r| r.2).collect();
        let table = Table::new("r")
            .with_column("g", g)
            .with_column("v", v)
            .with_column("w", w);

        let mut sql = "SELECT g, COUNT(*), SUM(v) FROM r WHERE w < ? GROUP BY g".to_string();
        if having_t.is_some() {
            sql += " HAVING SUM(v) > ?";
        }
        if limit.is_some() {
            sql += " ORDER BY SUM(v) DESC LIMIT ?";
        }

        let mut db = Database::new();
        db.register(table.clone());
        let mut stmt = db.prepare(&sql).unwrap();

        for &t in &thresholds {
            let mut params = vec![t];
            params.extend(having_t);
            params.extend(limit);
            let prepared = stmt.execute(&mut db, &params).unwrap();

            // Oracle: inline the literals and execute one-shot, with no
            // caching layer anywhere near the plan.
            let mut inlined = sql.clone();
            for p in &params {
                inlined = inlined.replacen('?', &p.to_string(), 1);
            }
            let fresh = Engine::new()
                .execute(&table, &parse(&inlined).unwrap().query)
                .unwrap();
            prop_assert_eq!(prepared.rows, fresh.rows, "{} with {:?}", sql, params);
        }
        prop_assert_eq!(stmt.replans(), 0, "binding never re-plans");
        prop_assert_eq!(stmt.executions(), thresholds.len() as u64);
    }

    /// The N-session sharded aggregate merges to exactly the
    /// single-session answer for COUNT/SUM/MIN/MAX (and AVG on
    /// readback), for any shard count.
    #[test]
    fn sharded_aggregate_matches_single_session(
        rows in proptest::collection::vec((0u32..16, 0u32..10), 1..300),
        shards in 1usize..9,
    ) {
        let g: Vec<u32> = rows.iter().map(|r| r.0).collect();
        let v: Vec<u32> = rows.iter().map(|r| r.1).collect();
        let table = Table::new("t").with_column("g", g).with_column("v", v);
        let sql = "SELECT g, COUNT(*), SUM(v), MIN(v), MAX(v), AVG(v) FROM t GROUP BY g";

        let mut single = Database::new();
        single.register(table.clone());
        let expect = single.execute_sql(sql).unwrap();

        let mut sharded = ShardedDatabase::new(shards);
        sharded.register(table);
        let got = sharded.run_sql(sql).unwrap();
        prop_assert_eq!(got.rows, expect.rows, "{} shards", shards);
        prop_assert_eq!(
            got.report.rows_aggregated,
            expect.report.rows_aggregated
        );
    }

    /// `run_sql` over base ++ delta equals `run_sql` over the same rows
    /// registered in one shot — on a single session and across every
    /// shard count — for arbitrary seed tables, batch sequences and
    /// compaction thresholds.
    #[test]
    fn ingest_equals_fresh_registration_single_and_sharded(
        base in proptest::collection::vec((0u32..2000, 0u32..10), 1..60),
        batches in proptest::collection::vec(
            proptest::collection::vec((0u32..20_000, 0u32..10), 1..20),
            1..5,
        ),
        compact_every in 1usize..40,
        shards in 1usize..5,
    ) {
        let table = || {
            Table::new("t")
                .with_column("g", base.iter().map(|r| r.0).collect::<Vec<u32>>())
                .with_column("v", base.iter().map(|r| r.1).collect::<Vec<u32>>())
        };
        let sql = "SELECT g, COUNT(*), SUM(v), MIN(v), MAX(v) FROM t \
                   WHERE v <> 9 GROUP BY g";

        let mut db = Database::new();
        db.catalogue()
            .set_compaction_policy(CompactionPolicy::every(compact_every));
        db.register(table());
        let mut sharded = ShardedDatabase::new(shards);
        sharded.set_compaction_policy(CompactionPolicy::every(compact_every));
        sharded.register(table());

        // Accumulate all rows for the one-shot oracle.
        let mut all = base.clone();
        for batch in &batches {
            all.extend(batch.iter().copied());
            let rb = || {
                RowBatch::new()
                    .with_column("g", batch.iter().map(|r| r.0).collect::<Vec<u32>>())
                    .with_column("v", batch.iter().map(|r| r.1).collect::<Vec<u32>>())
            };
            db.append_rows("t", rb()).unwrap();
            sharded.append_rows("t", rb()).unwrap();

            let mut oracle = Database::new();
            oracle.register(
                Table::new("t")
                    .with_column("g", all.iter().map(|r| r.0).collect::<Vec<u32>>())
                    .with_column("v", all.iter().map(|r| r.1).collect::<Vec<u32>>()),
            );
            let expect = oracle.execute_sql(sql).unwrap();
            let single = db.execute_sql(sql).unwrap();
            prop_assert_eq!(&single.rows, &expect.rows, "single session");
            let merged = sharded.run_sql(sql).unwrap();
            prop_assert_eq!(&merged.rows, &expect.rows, "{} shards", shards);
        }
    }

    #[test]
    fn composite_group_by_matches_host_oracle(
        n in 1usize..150,
        da in 1u32..20,
        db_ in 1u32..20,
        seed in 0u64..1000,
    ) {
        // Two grouping columns with independent domains; values 0..10.
        let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let a: Vec<u32> = (0..n).map(|_| (next() % da as u64) as u32).collect();
        let b: Vec<u32> = (0..n).map(|_| (next() % db_ as u64) as u32).collect();
        let v: Vec<u32> = (0..n).map(|_| (next() % 10) as u32).collect();

        let mut expect: BTreeMap<(u32, u32), (u32, u32)> = BTreeMap::new();
        for i in 0..n {
            let e = expect.entry((a[i], b[i])).or_insert((0, 0));
            e.0 += 1;
            e.1 += v[i];
        }

        let table = Table::new("r")
            .with_column("a", a)
            .with_column("b", b)
            .with_column("v", v);
        let q = AggregateQuery::paper("a", "v").with_group_by_also("b");
        let out = Engine::new().execute(&table, &q).unwrap();

        prop_assert_eq!(out.rows.len(), expect.len());
        for r in &out.rows {
            prop_assert_eq!(r.group_parts.len(), 2);
            let key = (r.group_parts[0], r.group_parts[1]);
            let (count, sum) = expect[&key];
            prop_assert_eq!(r.values[0] as u32, count);
            prop_assert_eq!(r.values[1] as u32, sum);
        }
    }
}
