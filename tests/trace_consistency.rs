//! Instruction-trace consistency: the trace is an event-level view of the
//! same execution the `OpMix` counters summarise, so with an unbounded
//! buffer the two must agree exactly, and traces of real kernels must
//! show the instruction sequences the paper describes.

use vagg::core::{run_algorithm, Algorithm};
use vagg::datagen::{DatasetSpec, Distribution};
use vagg::isa::{BinOp, Mreg, RedOp, Vreg};
use vagg::sim::{Machine, SimConfig, TraceClass};

/// Runs one algorithm with tracing enabled and returns the machine.
fn traced_run(alg: Algorithm, n: usize, c: u64) -> Machine {
    let ds = DatasetSpec::paper(Distribution::Uniform, c)
        .with_rows(n)
        .with_seed(7)
        .generate();
    let mut m = Machine::new(SimConfig::paper());
    m.enable_trace(usize::MAX);
    let st = vagg::core::StagedInput::stage(&mut m, &ds);
    // Drive the kernel directly so the trace and mix come from one machine.
    match alg {
        Algorithm::Scalar => {
            vagg::core::scalar::scalar_aggregate(&mut m, &st);
        }
        Algorithm::Monotable => {
            vagg::core::monotable::monotable_aggregate(&mut m, &st);
        }
        _ => {
            let run = run_algorithm(alg, &SimConfig::paper(), &ds);
            assert!(run.cycles > 0);
        }
    }
    m
}

#[test]
fn trace_counts_match_opmix_for_monotable() {
    let mut m = traced_run(Algorithm::Monotable, 2_000, 152);
    let mix = m.mix();
    let t = m.take_trace().unwrap();
    assert_eq!(t.dropped(), 0, "unbounded buffer must not drop");

    let count = |class: TraceClass| t.of_class(class).count() as u64;
    assert_eq!(count(TraceClass::ScalarAlu), mix.scalar_arith);
    assert_eq!(count(TraceClass::ScalarLoad), mix.scalar_loads);
    assert_eq!(count(TraceClass::ScalarStore), mix.scalar_stores);
    assert_eq!(count(TraceClass::VecReduction), mix.v_reductions);
    assert_eq!(count(TraceClass::Cam), mix.v_cam);
    assert_eq!(count(TraceClass::MaskOp), mix.v_mask_ops);
    assert_eq!(count(TraceClass::Xfer), mix.v_scalar_xfer);
    assert_eq!(count(TraceClass::VecCompute), mix.v_elementwise);
    let loads: u64 = t
        .events()
        .iter()
        .filter(|e| e.class == TraceClass::VecLoad)
        .count() as u64;
    assert_eq!(
        loads,
        mix.v_unit_loads + mix.v_strided_loads + mix.v_gathers
    );
    let stores: u64 = t
        .events()
        .iter()
        .filter(|e| e.class == TraceClass::VecStore)
        .count() as u64;
    assert_eq!(
        stores,
        mix.v_unit_stores + mix.v_strided_stores + mix.v_scatters
    );
}

#[test]
fn trace_counts_match_opmix_for_scalar() {
    let mut m = traced_run(Algorithm::Scalar, 1_000, 76);
    let mix = m.mix();
    let t = m.take_trace().unwrap();
    let count = |class: TraceClass| t.of_class(class).count() as u64;
    assert_eq!(count(TraceClass::ScalarAlu), mix.scalar_arith);
    assert_eq!(count(TraceClass::ScalarLoad), mix.scalar_loads);
    assert_eq!(count(TraceClass::ScalarStore), mix.scalar_stores);
    // The scalar baseline uses no vector instructions at all.
    assert!(t.events().iter().all(|e| !e.class.is_vector()));
}

#[test]
fn monotable_trace_shows_the_fig15_sequence() {
    // The Figure 15 inner loop is vgasum → vlu → gather → vadd → scatter;
    // every vgasum in the trace must be followed (before the next vgasum)
    // by a vlu, a gather and a scatter.
    let mut m = traced_run(Algorithm::Monotable, 2_000, 152);
    let t = m.take_trace().unwrap();
    let names: Vec<&str> = t.events().iter().map(|e| e.mnemonic).collect();
    let count = |n: &str| names.iter().filter(|&&x| x == n).count();
    // Per chunk: two vgasum (sums + counts), one vlu, and one masked
    // gather/add/scatter per table.
    let vlu = count("vlu");
    assert!(vlu > 0, "monotable must execute vlu");
    assert_eq!(count("vgasum"), 2 * vlu);
    assert_eq!(count("vgather"), 2 * vlu);
    assert_eq!(count("vscatter"), 2 * vlu);
    // The Figure 15 order holds within each chunk: vgasum → vlu →
    // gather → add → scatter.
    let first_vlu = names.iter().position(|&n| n == "vlu").unwrap();
    let chunk = &names[first_vlu..];
    let pos = |n: &str| chunk.iter().position(|&x| x == n).unwrap();
    assert!(pos("vgather") < pos("vscatter"));
    assert!(
        names[..first_vlu].contains(&"vgasum"),
        "vgasum precedes the first vlu"
    );
}

#[test]
fn completion_cycles_are_bounded_by_machine_cycles() {
    let mut m = traced_run(Algorithm::Monotable, 1_000, 76);
    let cycles = m.cycles();
    let t = m.take_trace().unwrap();
    // Loads and compute complete before they retire, so their completion
    // tokens are bounded by the commit clock. Stores, prefetches and
    // scatter-adds retire at address generation and drain afterwards
    // (write-buffer semantics), so only their *start* is bounded.
    assert!(t
        .events()
        .iter()
        .filter(|e| !matches!(
            e.class,
            TraceClass::ScalarStore
                | TraceClass::VecStore
                | TraceClass::Prefetch
                | TraceClass::ScatterAdd
        ))
        .all(|e| e.done <= cycles));
    // Sequence numbers are dense and ordered.
    for (i, e) in t.events().iter().enumerate() {
        assert_eq!(e.seq, i as u64);
    }
}

#[test]
fn bounded_trace_keeps_head_and_counts_rest() {
    let ds = DatasetSpec::paper(Distribution::Uniform, 76)
        .with_rows(2_000)
        .with_seed(7)
        .generate();
    let mut m = Machine::new(SimConfig::paper());
    m.enable_trace(100);
    let st = vagg::core::StagedInput::stage(&mut m, &ds);
    vagg::core::monotable::monotable_aggregate(&mut m, &st);
    let mix = m.mix();
    let total_expected = mix.scalar_ops()
        + mix.v_elementwise
        + mix.v_reductions
        + mix.v_cam
        + mix.v_mask_ops
        + mix.v_scalar_xfer
        + mix.v_unit_loads
        + mix.v_strided_loads
        + mix.v_gathers
        + mix.v_unit_stores
        + mix.v_strided_stores
        + mix.v_scatters
        + mix.v_scatter_adds
        + mix.v_prefetches;
    let t = m.take_trace().unwrap();
    assert_eq!(t.events().len(), 100);
    // setvl (Control) events are traced but not in OpMix, so total() is
    // at least the OpMix total.
    assert!(
        t.total() >= total_expected,
        "{} < {total_expected}",
        t.total()
    );
    assert!(t.dropped() > 0);
    let listing = t.listing();
    assert!(listing.contains("further instructions not stored"));
}

#[test]
fn trace_disabled_by_default_and_removable() {
    let mut m = Machine::paper();
    assert!(m.trace().is_none());
    m.set_vl(4);
    m.vset(Vreg(0), 1, None);
    assert!(m.take_trace().is_none());

    m.enable_trace(16);
    m.vbinop_vs(BinOp::Add, Vreg(1), Vreg(0), 1, None);
    assert_eq!(m.trace().unwrap().total(), 1);
    let t = m.take_trace().unwrap();
    assert_eq!(t.events()[0].mnemonic, "vadd");
    // After take_trace, recording stops.
    m.vbinop_vs(BinOp::Add, Vreg(1), Vreg(0), 1, None);
    assert!(m.trace().is_none());
}

#[test]
fn irregular_instruction_mnemonics_appear() {
    let mut m = Machine::paper();
    m.enable_trace(64);
    m.set_vl(8);
    m.vset(Vreg(0), 5, None);
    m.vset(Vreg(1), 1, None);
    m.vpi(Vreg(2), Vreg(0));
    m.vlu(Mreg(0), Vreg(0));
    m.vga(RedOp::Sum, Vreg(3), Vreg(0), Vreg(1));
    m.vga(RedOp::Min, Vreg(4), Vreg(0), Vreg(1));
    m.vga(RedOp::Max, Vreg(5), Vreg(0), Vreg(1));
    m.vred(RedOp::Sum, Vreg(3), None);
    let t = m.take_trace().unwrap();
    let names: Vec<&str> = t.events().iter().map(|e| e.mnemonic).collect();
    for expect in [
        "setvl", "vset", "vpi", "vlu", "vgasum", "vgamin", "vgamax", "vredsum",
    ] {
        assert!(names.contains(&expect), "missing {expect} in {names:?}");
    }
    // CAM events carry the CAM class.
    assert_eq!(t.of_class(TraceClass::Cam).count(), 5);
}

#[test]
fn fu_utilization_reflects_algorithm_character() {
    // The scalar baseline exercises only scalar clusters; monotable
    // shifts the work onto the vector execution cluster.
    let mut scalar = traced_run(Algorithm::Scalar, 2_000, 152);
    let mut mono = traced_run(Algorithm::Monotable, 2_000, 152);
    let util = |m: &mut Machine, name: &str| -> f64 {
        m.fu_utilization()
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, u)| u)
            .unwrap()
    };
    assert_eq!(util(&mut scalar, "vec-exec"), 0.0);
    assert_eq!(util(&mut scalar, "vec-mem-agu"), 0.0);
    assert!(util(&mut scalar, "load-agu") > 0.1);
    assert!(util(&mut mono, "vec-exec") > util(&mut scalar, "vec-exec"));
    assert!(util(&mut mono, "vec-exec") > 0.1);
    // All fractions stay in [0, 1].
    for (_, u) in mono.fu_utilization() {
        assert!((0.0..=1.0).contains(&u), "utilisation {u} out of range");
    }
}
