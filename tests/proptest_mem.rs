//! Property-based tests on the memory hierarchy's timing model: for
//! arbitrary access streams the counters must stay internally consistent
//! and the latencies must obey the structural invariants of §II (L1 →
//! L2 → DRAM walks, vector L1 bypass, locality always helping).

use proptest::prelude::*;
use vagg::mem::{HierarchyParams, MemoryHierarchy};

#[derive(Debug, Clone, Copy)]
struct Access {
    addr: u64,
    write: bool,
    vector: bool,
    gap: u64,
}

fn accesses() -> impl Strategy<Value = Vec<Access>> {
    prop::collection::vec(
        (0u64..1 << 16, any::<bool>(), any::<bool>(), 0u64..8).prop_map(
            |(addr, write, vector, gap)| Access {
                addr,
                write,
                vector,
                gap,
            },
        ),
        1..200,
    )
}

fn drive(h: &mut MemoryHierarchy, stream: &[Access]) -> u64 {
    let mut now = 0u64;
    for a in stream {
        now += a.gap;
        let done = if a.vector {
            h.vector_access(a.addr, a.write, now)
        } else {
            h.scalar_access(a.addr, a.write, now)
        };
        assert!(done >= now, "completion {done} before issue {now}");
        now = now.max(done.saturating_sub(32)); // overlapping issue window
    }
    now
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn counters_are_internally_consistent(stream in accesses()) {
        let mut h = MemoryHierarchy::new(HierarchyParams::westmere());
        drive(&mut h, &stream);
        let s = h.stats();
        prop_assert_eq!(s.l1.hits + s.l1.misses, s.l1.accesses);
        prop_assert_eq!(s.l2.hits + s.l2.misses, s.l2.accesses);
        // Every L2 access is a scalar L1 miss (fill), a vector access
        // (bypass), an L1 write-back install, or a coherence eviction of
        // an L1 line hit by a vector access — never invented from
        // nothing.
        let scalar = stream.iter().filter(|a| !a.vector).count() as u64;
        let vector = stream.iter().filter(|a| a.vector).count() as u64;
        prop_assert_eq!(s.l1.accesses, scalar);
        prop_assert!(
            s.l2.accesses
                <= s.l1.misses
                    + vector
                    + s.l1.writebacks
                    + s.vector_l1_evictions,
            "l2 accesses {} exceed possible sources {} + {} + {} + {}",
            s.l2.accesses, s.l1.misses, vector, s.l1.writebacks,
            s.vector_l1_evictions
        );
        // DRAM only sees L2 misses and L2 write-backs.
        prop_assert!(
            s.dram.requests <= s.l2.misses + s.l2.writebacks,
            "dram requests {} exceed l2 misses {} + writebacks {}",
            s.dram.requests, s.l2.misses, s.l2.writebacks
        );
    }

    #[test]
    fn repeated_line_access_hits(addr in 0u64..1 << 20) {
        let mut h = MemoryHierarchy::new(HierarchyParams::westmere());
        let cold = h.scalar_access(addr, false, 0);
        let before = h.stats();
        let warm_start = cold + 1;
        let warm = h.scalar_access(addr, false, warm_start);
        let after = h.stats();
        prop_assert_eq!(after.l1.hits, before.l1.hits + 1);
        // A warm hit is never slower than the cold walk took.
        prop_assert!(warm - warm_start <= cold);
    }

    #[test]
    fn vector_accesses_bypass_the_l1(stream in accesses()) {
        let mut h = MemoryHierarchy::new(HierarchyParams::westmere());
        let only_vector: Vec<Access> = stream
            .iter()
            .map(|a| Access { vector: true, ..*a })
            .collect();
        drive(&mut h, &only_vector);
        let s = h.stats();
        prop_assert_eq!(s.l1.accesses, 0, "vector stream must not touch L1");
        prop_assert_eq!(
            s.l2.accesses,
            only_vector.len() as u64,
            "every vector access goes to the L2"
        );
    }

    #[test]
    fn timing_is_replay_deterministic(stream in accesses()) {
        let mut h1 = MemoryHierarchy::new(HierarchyParams::westmere());
        let mut h2 = MemoryHierarchy::new(HierarchyParams::westmere());
        let a = drive(&mut h1, &stream);
        let b = drive(&mut h2, &stream);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn flush_empties_both_caches(stream in accesses()) {
        let mut h = MemoryHierarchy::new(HierarchyParams::westmere());
        drive(&mut h, &stream);
        h.flush();
        // After a flush no line can still be resident.
        for a in &stream {
            prop_assert!(!h.l1_contains(a.addr));
            prop_assert!(!h.l2_contains(a.addr));
        }
    }
}

#[test]
fn capacity_overflow_of_dirty_lines_generates_writebacks() {
    // Write one line per L1 set way and then some: once the working set
    // exceeds the 32 KB L1, dirty victims must be written back (counted),
    // not dropped.
    let mut h = MemoryHierarchy::new(HierarchyParams::westmere());
    let line = h.line_bytes();
    let l1_lines = 32 * 1024 / line; // 512 lines
    let mut now = 0;
    for i in 0..l1_lines * 3 {
        now = h.scalar_access(i * line, true, now);
    }
    let s = h.stats();
    assert!(
        s.l1.writebacks >= l1_lines,
        "streaming 3x the L1 in dirty lines produced only {} write-backs",
        s.l1.writebacks
    );
}
