//! Integration tests for the serving layer through the public facade:
//! counter-verified plan-cache hits, invalidation on re-registration,
//! prepared-statement bind errors, truly concurrent sessions over one
//! shared catalogue, and sharded-vs-single equivalence.

use vagg::db::{Database, PlanError, ShardedDatabase, SharedCatalogue, SqlError, Table};

fn events(n: usize) -> Table {
    Table::new("events")
        .with_column("g", (0..n).map(|i| ((i * 7919) % 31) as u32).collect())
        .with_column("v", (0..n).map(|i| ((i * 31) % 100) as u32).collect())
}

#[test]
fn repeated_query_shapes_hit_the_cache_counter_verified() {
    let mut db = Database::new();
    db.register(events(500));

    // Three literals, one shape: one miss, two hits.
    for threshold in [10, 50, 90] {
        db.execute_sql(&format!(
            "SELECT g, COUNT(*), SUM(v) FROM events WHERE v > {threshold} GROUP BY g"
        ))
        .unwrap();
    }
    let stats = db.plan_cache_stats();
    assert_eq!(stats.misses, 1, "one planning pass for the shape");
    assert_eq!(stats.hits, 2, "the other literals rebound the cached plan");

    // A structurally different query is a new shape.
    db.execute_sql("SELECT g, COUNT(*), SUM(v) FROM events WHERE v < 50 GROUP BY g")
        .unwrap();
    let stats = db.plan_cache_stats();
    assert_eq!((stats.hits, stats.misses), (2, 2));

    // And cached plans answer correctly: hit ≡ miss output.
    let cached = db
        .execute_sql("SELECT g, COUNT(*), SUM(v) FROM events WHERE v > 10 GROUP BY g")
        .unwrap();
    let mut fresh_db = Database::new();
    fresh_db.register(events(500));
    let fresh = fresh_db
        .execute_sql("SELECT g, COUNT(*), SUM(v) FROM events WHERE v > 10 GROUP BY g")
        .unwrap();
    assert_eq!(cached.rows, fresh.rows);
}

#[test]
fn re_registering_a_table_invalidates_its_plans() {
    let mut db = Database::new();
    db.register(events(100));
    let sql = "SELECT g, COUNT(*), SUM(v) FROM events GROUP BY g";
    let before = db.execute_sql(sql).unwrap();
    assert!(!before.rows.is_empty());

    // Replace the table: different groups entirely.
    db.register(
        Table::new("events")
            .with_column("g", vec![500, 500])
            .with_column("v", vec![1, 2]),
    );
    let after = db.execute_sql(sql).unwrap();
    assert_eq!(after.rows.len(), 1, "served from the new table");
    assert_eq!(after.rows[0].group, 500);
    assert_eq!(after.rows[0].values, vec![2.0, 3.0]);

    let stats = db.plan_cache_stats();
    assert_eq!(stats.invalidations, 1, "the stale plan was purged");
    assert_eq!(stats.hits, 0, "it never served after the re-register");
}

#[test]
fn bind_errors_are_typed_plan_errors() {
    let mut db = Database::new();
    db.register(events(50));
    let mut stmt = db
        .prepare("SELECT g, SUM(v) FROM events WHERE v > ? GROUP BY g")
        .unwrap();

    let e = stmt.execute(&mut db, &[]).unwrap_err();
    assert_eq!(
        e,
        SqlError::Plan(PlanError::BindArity {
            expected: 1,
            got: 0
        })
    );
    let e = stmt.execute(&mut db, &[1, 2, 3]).unwrap_err();
    assert_eq!(
        e,
        SqlError::Plan(PlanError::BindArity {
            expected: 1,
            got: 3
        })
    );
    let e = stmt.execute(&mut db, &[1 << 40]).unwrap_err();
    assert_eq!(
        e,
        SqlError::Plan(PlanError::BindType {
            index: 0,
            value: 1 << 40
        })
    );
    assert!(e.to_string().contains("32-bit"));
    // The statement survives failed binds.
    let out = stmt.execute(&mut db, &[42]).unwrap();
    let fresh = db
        .execute_sql("SELECT g, SUM(v) FROM events WHERE v > 42 GROUP BY g")
        .unwrap();
    assert_eq!(out.rows, fresh.rows);
    assert!(!out.rows.is_empty());
}

#[test]
fn concurrent_sessions_serve_from_one_catalogue() {
    let catalogue = SharedCatalogue::new();
    catalogue.register(events(600));
    let sql = "SELECT g, COUNT(*), SUM(v) FROM events WHERE v <> 0 GROUP BY g";

    // Warm the shared cache so every thread's query is a hit.
    let expected = catalogue.connect().execute_sql(sql).unwrap().rows;
    let warm_stats = catalogue.cache_stats();
    assert_eq!((warm_stats.hits, warm_stats.misses), (0, 1));

    const SESSIONS: usize = 4;
    const QUERIES_PER_SESSION: usize = 3;
    std::thread::scope(|scope| {
        for _ in 0..SESSIONS {
            let mut session = catalogue.connect();
            let expected = &expected;
            scope.spawn(move || {
                for _ in 0..QUERIES_PER_SESSION {
                    let out = session.execute_sql(sql).unwrap();
                    assert_eq!(&out.rows, expected);
                }
                assert_eq!(session.session().queries_run(), QUERIES_PER_SESSION);
            });
        }
    });

    let stats = catalogue.cache_stats();
    assert_eq!(
        stats.hits as usize,
        SESSIONS * QUERIES_PER_SESSION,
        "every concurrent query was served from the shared plan cache"
    );
    assert_eq!(stats.misses, 1);
}

#[test]
fn sharded_sessions_match_a_single_session_for_every_aggregate() {
    let sql = "SELECT g, COUNT(*), SUM(v), MIN(v), MAX(v) FROM events \
               WHERE v > 5 GROUP BY g";
    let mut single = Database::new();
    single.register(events(1200));
    let expect = single.execute_sql(sql).unwrap();

    for sessions in [1, 2, 4, 8] {
        let mut sharded = ShardedDatabase::new(sessions);
        sharded.register(events(1200));
        let out = sharded.run_sql(sql).unwrap();
        assert_eq!(out.rows, expect.rows, "{sessions} sessions");
        assert_eq!(out.report.rows_aggregated, expect.report.rows_aggregated);
        // The makespan is the slowest shard, not the sum.
        let max = out.shard_reports.iter().map(|r| r.cycles).max().unwrap();
        assert_eq!(out.report.cycles, max);
    }
}

#[test]
fn prepared_statements_work_across_concurrent_sessions() {
    // Each session owns its statement; the catalogue (tables + plan
    // cache) is shared. All sessions must agree.
    let catalogue = SharedCatalogue::new();
    catalogue.register(events(400));
    let sql = "SELECT g, COUNT(*), SUM(v) FROM events WHERE v < ? GROUP BY g";

    let baseline = {
        let mut db = catalogue.connect();
        let mut stmt = db.prepare(sql).unwrap();
        stmt.execute(&mut db, &[60]).unwrap().rows
    };
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let mut db = catalogue.connect();
            let baseline = &baseline;
            scope.spawn(move || {
                let mut stmt = db.prepare(sql).unwrap();
                for _ in 0..2 {
                    assert_eq!(&stmt.execute(&mut db, &[60]).unwrap().rows, baseline);
                }
                assert_eq!(stmt.replans(), 0);
            });
        }
    });
}
