//! Morsel-driven sharded execution, end to end.
//!
//! Two families of guarantees:
//!
//! * **Composite `GROUP BY` shards correctly.** Property tests check
//!   that `SELECT a, b, ... GROUP BY a, b` on a [`ShardedDatabase`] —
//!   merged through the query-scoped key dictionary — matches a single
//!   session bit for bit, including `HAVING`/`ORDER BY`/`LIMIT` tails,
//!   across delta compaction boundaries, over the prepared path, and
//!   at pinned snapshots.
//! * **Work stealing changes the makespan, never the answer.** A
//!   Zipf-skewed partition (`vagg::datagen::zipf`) is stressed with
//!   stealing on and off: results must be identical to each other and
//!   to a single session, and the steal schedule must shorten the
//!   simulated makespan that whole-shard scheduling pays.

use proptest::prelude::*;
use vagg::datagen::rng::Xoshiro256StarStar;
use vagg::datagen::zipf::Zipf;
use vagg::db::{
    CompactionPolicy, Database, Engine, ExecutorConfig, RowBatch, ShardedDatabase, Table,
};

/// Deterministic pseudo-random columns for the proptest cases.
fn columns(n: usize, da: u32, db: u32, seed: u64) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(7));
    let a = (0..n).map(|_| rng.next_below(da as u64) as u32).collect();
    let b = (0..n).map(|_| rng.next_below(db as u64) as u32).collect();
    let v = (0..n).map(|_| rng.next_below(100) as u32).collect();
    (a, b, v)
}

fn two_key_table(a: &[u32], b: &[u32], v: &[u32]) -> Table {
    Table::new("t")
        .with_column("a", a.to_vec())
        .with_column("b", b.to_vec())
        .with_column("v", v.to_vec())
}

proptest! {
    #[test]
    fn sharded_composite_group_by_matches_a_single_session(
        n in 1usize..200,
        da in 1u32..12,
        db in 1u32..12,
        shards in 1usize..6,
        tail in 0usize..4,
        threshold in 0u32..100,
        seed in 0u64..1000,
    ) {
        let (a, b, v) = columns(n, da, db, seed);
        let tail_sql = match tail {
            0 => String::new(),
            1 => format!(" HAVING SUM(v) > {threshold}"),
            2 => format!(" ORDER BY SUM(v) DESC LIMIT {}", 1 + threshold as usize % 9),
            _ => format!(
                " HAVING COUNT(*) > 1 ORDER BY a LIMIT {}",
                1 + threshold as usize % 9
            ),
        };
        let sql = format!(
            "SELECT a, b, COUNT(*), SUM(v), MIN(v) FROM t \
             WHERE v < {} GROUP BY a, b{tail_sql}",
            threshold.max(1)
        );

        let mut single = Database::new();
        single.register(two_key_table(&a, &b, &v));
        let mut sharded = ShardedDatabase::new(shards);
        sharded.register(two_key_table(&a, &b, &v));

        let expect = single.execute_sql(&sql).unwrap();
        let got = sharded.run_sql(&sql).unwrap();
        prop_assert_eq!(&got.rows, &expect.rows, "{} shards: {}", shards, sql);
    }

    #[test]
    fn sharded_composite_group_by_survives_ingest_compaction_and_snapshots(
        n in 1usize..120,
        batch_rows in 1usize..40,
        compact_every in 1usize..30,
        shards in 1usize..5,
        seed in 0u64..1000,
    ) {
        let (a, b, v) = columns(n, 7, 9, seed);
        let sql = "SELECT a, b, COUNT(*), SUM(v) FROM t WHERE v <> 3 GROUP BY a, b";

        let mut single = Database::new();
        single
            .catalogue()
            .set_compaction_policy(CompactionPolicy::every(compact_every));
        single.register(two_key_table(&a, &b, &v));
        let mut sharded = ShardedDatabase::new(shards);
        sharded.set_compaction_policy(CompactionPolicy::every(compact_every));
        sharded.register(two_key_table(&a, &b, &v));

        // Pin a cross-shard cut, remember its answer.
        let snap = sharded.snapshot();
        let pinned = sharded.run_sql(sql).unwrap();

        // Stream a batch through both write paths (possibly tripping
        // per-shard compactions), then compare live and pinned reads.
        let (ba, bb, bv) = columns(batch_rows, 9, 11, seed ^ 0xDEAD);
        let batch = || {
            RowBatch::new()
                .with_column("a", ba.clone())
                .with_column("b", bb.clone())
                .with_column("v", bv.clone())
        };
        single.append_rows("t", batch()).unwrap();
        sharded.append_rows("t", batch()).unwrap();

        let expect = single.execute_sql(sql).unwrap();
        let live = sharded.run_sql(sql).unwrap();
        prop_assert_eq!(&live.rows, &expect.rows, "live after ingest");
        let at = sharded.run_sql_at(&snap, sql).unwrap();
        prop_assert_eq!(&at.rows, &pinned.rows, "pinned cut unchanged");

        // The prepared path binds into the same executor pipeline.
        let mut stmt = sharded
            .prepare("SELECT a, b, COUNT(*), SUM(v) FROM t WHERE v < ? GROUP BY a, b")
            .unwrap();
        let mut fresh = single
            .prepare("SELECT a, b, COUNT(*), SUM(v) FROM t WHERE v < ? GROUP BY a, b")
            .unwrap();
        for param in [5u64, 60, 100] {
            let got = sharded.execute_prepared(&mut stmt, &[param]).unwrap();
            let expect = fresh.execute(&mut single, &[param]).unwrap();
            prop_assert_eq!(&got.rows, &expect.rows, "prepared, v < {}", param);
        }
    }
}

/// A Zipf-keyed table of `n` rows (the paper's skewed key family).
fn zipf_table(n: usize, domain: u64, seed: u64) -> Table {
    let zipf = Zipf::new(domain, 1.0);
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    Table::new("events")
        .with_column("g", (0..n).map(|_| zipf.sample(&mut rng) as u32).collect())
        .with_column("v", (0..n).map(|_| rng.next_below(1000) as u32).collect())
}

/// Splits a table's rows at the given fractions (percent numerators
/// over 100) into one partition per fraction.
fn split_at(table: &Table, percents: &[usize]) -> Vec<Table> {
    assert_eq!(percents.iter().sum::<usize>(), 100);
    let n = table.rows();
    let mut parts = Vec::new();
    let mut lo = 0;
    for (i, pct) in percents.iter().enumerate() {
        let hi = if i + 1 == percents.len() {
            n
        } else {
            lo + n * pct / 100
        };
        let mut part = Table::new(table.name());
        for col in table.column_names() {
            part = part.with_column(col, table.column(col).unwrap()[lo..hi].to_vec());
        }
        parts.push(part);
        lo = hi;
    }
    parts
}

#[test]
fn zipf_skewed_partitions_steal_without_changing_results() {
    let sql = "SELECT g, COUNT(*), SUM(v), MAX(v) FROM events \
               WHERE v > 17 GROUP BY g HAVING COUNT(*) > 1 \
               ORDER BY SUM(v) DESC LIMIT 40";
    let table = zipf_table(4000, 500, 0x5EED);

    let mut single = Database::new();
    single.register(table.clone());
    let expect = single.execute_sql(sql).unwrap();
    assert!(!expect.rows.is_empty());

    // One pathologically hot shard, three thin ones.
    let mut makespans = Vec::new();
    for steal in [false, true] {
        let mut sharded = ShardedDatabase::with_executor(
            Engine::new(),
            4,
            ExecutorConfig {
                workers: 4,
                morsel_rows: 64,
                steal,
                ..ExecutorConfig::default()
            },
        );
        sharded.register_partitioned(split_at(&table, &[76, 12, 6, 6]));
        // Warm the pool once, then measure the steady state.
        sharded.run_sql(sql).unwrap();
        let out = sharded.run_sql(sql).unwrap();
        assert_eq!(out.rows, expect.rows, "steal={steal} matches single");
        assert_eq!(out.worker_loads.len(), 4);
        assert_eq!(
            *out.worker_loads.iter().max().unwrap(),
            out.report.cycles,
            "makespan is the busiest worker"
        );
        if steal {
            assert!(out.steals > 0, "idle workers dismantled the hot shard");
        } else {
            assert_eq!(out.steals, 0, "no stealing when disabled");
        }
        makespans.push(out.report.cycles);
    }
    assert!(
        makespans[1] < makespans[0],
        "stealing shortened the skewed makespan: steal={} vs no-steal={}",
        makespans[1],
        makespans[0]
    );

    // Ingest keeps routing to the smallest shard even from a skewed
    // start: new batches pile onto the thin shards, not the hot one.
    let mut sharded = ShardedDatabase::new(4);
    sharded.register_partitioned(split_at(&table, &[76, 12, 6, 6]));
    let before: Vec<usize> = sharded
        .shards()
        .iter()
        .map(|s| s.table("events").unwrap().rows())
        .collect();
    for chunk in 0..10 {
        let batch = zipf_table(120, 500, 0xBEEF ^ chunk);
        sharded
            .append_rows(
                "events",
                RowBatch::new()
                    .with_column("g", batch.column("g").unwrap().to_vec())
                    .with_column("v", batch.column("v").unwrap().to_vec()),
            )
            .unwrap();
    }
    let after: Vec<usize> = sharded
        .shards()
        .iter()
        .map(|s| s.table("events").unwrap().rows())
        .collect();
    assert_eq!(after[0], before[0], "the hot shard took no new rows");
    assert!(
        after.iter().skip(1).all(|&rows| rows > before[1]),
        "the thin shards absorbed the stream: {before:?} -> {after:?}"
    );
}
