//! Integration tests for the planned-query API: golden `EXPLAIN`
//! renderings, typed end-to-end errors, and session reuse through the
//! public facade.

use vagg::db::{
    AggFn, AggregateQuery, Database, Engine, JoinStrategy, OrderKey, PlanError, PlanStep,
    Predicate, Session, ShardedDatabase, SqlError, SqlOutcome, Table,
};

fn people() -> Table {
    Table::new("r")
        .with_column("g", vec![1, 3, 3, 0, 0, 5, 2, 4])
        .with_column("v", vec![0, 5, 2, 4, 1, 3, 3, 0])
}

fn orders() -> Table {
    Table::new("orders")
        .with_column("region", vec![0, 1, 0, 2, 1, 0])
        .with_column("quarter", vec![0, 1, 2, 3, 0, 1])
        .with_column("amount", vec![10, 20, 30, 40, 50, 60])
        .with_column("status", vec![1, 0, 1, 1, 0, 1])
}

#[test]
fn explain_golden_paper_query() {
    let plan = Engine::new()
        .plan(&people(), &AggregateQuery::paper("g", "v"))
        .unwrap();
    assert_eq!(
        plan.explain(),
        "SELECT g, COUNT(*), SUM(v) FROM r GROUP BY g\n\
         \x20 rows=8 presorted=false algorithm=monotable cardinality≈6\n\
         \x20 1. CardinalityScan[exact](cardinality≈6)\n\
         \x20 2. Aggregate[mono]"
    );
}

#[test]
fn explain_golden_full_tail_via_sql() {
    let mut db = Database::new();
    db.register(orders());
    let outcome = db
        .run_sql(
            "EXPLAIN SELECT region, quarter, COUNT(*), SUM(amount) \
             FROM orders WHERE status <> 0 GROUP BY region, quarter \
             HAVING COUNT(*) > 1 ORDER BY SUM(amount) DESC LIMIT 3",
        )
        .unwrap();
    let plan = match outcome {
        SqlOutcome::Plan(p) => p,
        other => panic!("EXPLAIN must not execute: {other:?}"),
    };
    // Nothing ran on the session's machine.
    assert_eq!(db.session().queries_run(), 0);
    assert_eq!(db.session().total_cycles(), 0);
    assert_eq!(
        plan.explain(),
        "SELECT region, quarter, COUNT(*), SUM(amount) FROM orders \
         WHERE status <> 0 GROUP BY region, quarter \
         HAVING COUNT(*) > 1 ORDER BY SUM(amount) DESC LIMIT 3\n\
         \x20 rows=6 presorted=false algorithm=monotable cardinality≈12 data_version=1\n\
         \x20 1. FuseKeys(region×quarter)\n\
         \x20 2. VectorFilter(status <> 0)\n\
         \x20 3. CardinalityScan[exact](cardinality≈12)\n\
         \x20 4. Aggregate[mono]\n\
         \x20 5. VectorHaving(COUNT(*) > 1)\n\
         \x20 6. VectorOrderBy[radix](SUM(amount) DESC)\n\
         \x20 7. Limit(3)"
    );
}

#[test]
fn explain_golden_presorted_minmax() {
    let n = 512usize;
    let t = Table::new("sorted")
        .with_column("k", (0..n).map(|i| (i / 128) as u32).collect())
        .with_column("x", (0..n).map(|i| (i % 7) as u32).collect());
    let q = AggregateQuery::paper("k", "x")
        .with_aggregate(AggFn::Min)
        .with_aggregate(AggFn::Max);
    let plan = Engine::new().plan(&t, &q).unwrap();
    assert_eq!(
        plan.explain(),
        "SELECT k, COUNT(*), SUM(x), MIN(x), MAX(x) FROM sorted GROUP BY k\n\
         \x20 rows=512 presorted=true algorithm=polytable cardinality≈4\n\
         \x20 1. CardinalityScan[presorted](cardinality≈4)\n\
         \x20 2. MinMaxKernel[VGAmin/VGAmax]"
    );
}

#[test]
fn explain_golden_as_of_renders_frozen_provenance() {
    let mut db = Database::new();
    db.register(people());
    db.run_sql("CREATE SNAPSHOT launch").unwrap();
    db.run_sql("INSERT INTO r (g, v) VALUES (9, 9)").unwrap();

    // A named version: the frozen label rides next to data_version.
    let plan = db
        .explain_sql("EXPLAIN SELECT g, COUNT(*), SUM(v) FROM r AS OF launch GROUP BY g")
        .unwrap();
    assert_eq!(plan.as_of(), Some("launch@1"));
    assert_eq!(
        plan.explain(),
        "SELECT g, COUNT(*), SUM(v) FROM r GROUP BY g\n\
         \x20 rows=8 presorted=false algorithm=monotable cardinality≈6 \
         data_version=1 as_of=launch@1\n\
         \x20 1. CardinalityScan[exact](cardinality≈6)\n\
         \x20 2. Aggregate[mono]"
    );

    // A raw version pin renders as data_version@N.
    let plan = db
        .explain_sql("EXPLAIN SELECT g, COUNT(*), SUM(v) FROM r AS OF data_version 2 GROUP BY g")
        .unwrap();
    assert_eq!(plan.as_of(), Some("data_version@2"));
    assert_eq!(
        plan.explain(),
        "SELECT g, COUNT(*), SUM(v) FROM r GROUP BY g\n\
         \x20 rows=9 presorted=false algorithm=monotable cardinality≈10 \
         data_version=2 as_of=data_version@2\n\
         \x20 1. CardinalityScan[exact](cardinality≈10)\n\
         \x20 2. Aggregate[mono]"
    );

    // The live plan carries no provenance label.
    let plan = db
        .explain_sql("EXPLAIN SELECT g, COUNT(*), SUM(v) FROM r GROUP BY g")
        .unwrap();
    assert_eq!(plan.as_of(), None);
    assert!(!plan.explain().contains("as_of="));
}

fn returns() -> Table {
    Table::new("returns")
        .with_column("region", vec![0, 0, 1, 2, 2, 1, 0, 3])
        .with_column("penalty", vec![5, 7, 2, 1, 9, 4, 3, 8])
}

#[test]
fn explain_golden_join_build_side_and_versions() {
    let mut db = Database::new();
    db.register(orders());
    db.register(returns());
    // Drift the right table so the two pinned versions differ.
    db.run_sql("INSERT INTO orders (region, quarter, amount, status) VALUES (3, 2, 70, 1)")
        .unwrap();

    let plan = db
        .explain_join_sql(
            "EXPLAIN SELECT returns.region, COUNT(*), SUM(penalty) \
             FROM returns JOIN orders ON returns.region = orders.region \
             GROUP BY returns.region",
        )
        .unwrap();
    assert_eq!(plan.build_table(), "orders");
    assert_eq!(plan.probe_table(), "returns");
    assert_eq!(plan.strategy(), JoinStrategy::Local);
    assert_eq!(plan.left_data_version(), 1);
    assert_eq!(plan.right_data_version(), 2);
    assert_eq!(
        plan.explain(),
        "SELECT returns.region, COUNT(*), SUM(penalty) FROM returns \
         JOIN orders ON returns.region = orders.region GROUP BY returns.region\n\
         \x20 join=hash build=orders probe=returns strategy=local \
         build_rows=7 probe_rows=8 build_distinct≈4 build_sorted=false\n\
         \x20 left=returns data_version=1 right=orders data_version=2\n\
         \x20 1. JoinBuild(orders[region] rows=7 distinct≈4)\n\
         \x20 2. JoinProbe(returns[region] rows=8)"
    );
}

#[test]
fn explain_golden_join_broadcast_on_shards() {
    let mut db = ShardedDatabase::new(4);
    db.register(orders());
    db.register(returns());
    let plan = db
        .explain_join_sql(
            "EXPLAIN SELECT returns.region, COUNT(*), SUM(penalty) \
             FROM returns JOIN orders ON returns.region = orders.region \
             GROUP BY returns.region",
        )
        .unwrap();
    assert_eq!(plan.strategy(), JoinStrategy::Broadcast);
    assert_eq!(
        plan.explain(),
        "SELECT returns.region, COUNT(*), SUM(penalty) FROM returns \
         JOIN orders ON returns.region = orders.region GROUP BY returns.region\n\
         \x20 join=hash build=orders probe=returns strategy=broadcast \
         build_rows=6 probe_rows=8 build_distinct≈3 build_sorted=false\n\
         \x20 left=returns data_version=1 right=orders data_version=1\n\
         \x20 1. JoinBuild(orders[region] rows=6 distinct≈3)\n\
         \x20 2. JoinProbe(returns[region] rows=8)"
    );
}

#[test]
fn explain_golden_join_partitions_a_large_build_side() {
    let mut db = ShardedDatabase::new(4);
    db.register(
        Table::new("fact")
            .with_column("k", (0..1200u32).map(|i| i % 8).collect())
            .with_column("v", (0..1200u32).map(|i| i % 10).collect()),
    );
    db.register(Table::new("dims").with_column("k", (0..1100u32).map(|i| i % 8).collect()));
    let plan = db
        .explain_join_sql(
            "EXPLAIN SELECT fact.k, COUNT(*), SUM(v) \
             FROM fact JOIN dims ON fact.k = dims.k GROUP BY fact.k",
        )
        .unwrap();
    assert_eq!(plan.build_table(), "dims");
    assert_eq!(plan.strategy(), JoinStrategy::Partition);
    assert_eq!(
        plan.explain(),
        "SELECT fact.k, COUNT(*), SUM(v) FROM fact \
         JOIN dims ON fact.k = dims.k GROUP BY fact.k\n\
         \x20 join=hash build=dims probe=fact strategy=partition \
         build_rows=1100 probe_rows=1200 build_distinct≈8 build_sorted=false\n\
         \x20 left=fact data_version=1 right=dims data_version=1\n\
         \x20 1. JoinBuild(dims[k] rows=1100 distinct≈8)\n\
         \x20 2. JoinProbe(fact[k] rows=1200)"
    );
}

#[test]
fn explain_golden_join_as_of_renders_the_pinned_cut() {
    let mut db = Database::new();
    db.register(orders());
    db.register(returns());
    db.run_sql("CREATE SNAPSHOT cut").unwrap();
    db.run_sql("INSERT INTO returns (region, penalty) VALUES (3, 6)")
        .unwrap();

    let plan = db
        .explain_join_sql(
            "EXPLAIN SELECT returns.region, COUNT(*), SUM(penalty) \
             FROM returns JOIN orders ON returns.region = orders.region \
             AS OF cut GROUP BY returns.region",
        )
        .unwrap();
    // The plan pins both tables at the named cut: the insert after the
    // snapshot is invisible.
    assert_eq!(plan.as_of(), Some("cut"));
    assert_eq!(plan.probe_rows(), 8);
    assert_eq!(plan.left_data_version(), 1);
    assert!(plan.explain().contains(" as_of=cut"));

    // The single-table EXPLAIN entry points refuse joins with a typed
    // error pointing at the join APIs.
    assert_eq!(
        db.explain_sql(
            "EXPLAIN SELECT returns.region, COUNT(*), SUM(penalty) \
             FROM returns JOIN orders ON returns.region = orders.region \
             GROUP BY returns.region",
        )
        .unwrap_err(),
        SqlError::JoinStatement
    );
}

#[test]
fn plan_steps_are_typed_and_inspectable() {
    let q = AggregateQuery::paper("g", "v")
        .with_filter("v", Predicate::GreaterThan(0))
        .with_order_by(OrderKey::Group, false);
    let plan = Engine::new().plan(&people(), &q).unwrap();
    assert!(matches!(
        plan.steps()[0],
        PlanStep::VectorFilter {
            pred: Predicate::GreaterThan(0),
            ..
        }
    ));
    assert!(plan
        .steps()
        .iter()
        .any(|s| matches!(s, PlanStep::CardinalityScan { .. })));
    assert!(plan
        .steps()
        .iter()
        .any(|s| matches!(s, PlanStep::Aggregate(_))));
    assert_eq!(plan.rows(), 8);
    assert_eq!(plan.cardinality_estimate(), 6);
}

#[test]
fn sql_errors_are_fully_typed() {
    let mut db = Database::new();
    db.register(people());

    // Planning errors arrive as typed PlanError values, not strings.
    let e = db
        .execute_sql("SELECT g, SUM(missing) FROM r GROUP BY g")
        .unwrap_err();
    assert_eq!(
        e,
        SqlError::Plan(PlanError::UnknownColumn("missing".into()))
    );

    let e = db
        .execute_sql("SELECT g, SUM(v) FROM r GROUP BY g HAVING AVG(v) > 1")
        .unwrap_err();
    assert_eq!(
        e,
        SqlError::Plan(PlanError::UnsupportedAvgPredicate { clause: "HAVING" })
    );

    let e = db
        .execute_sql("SELECT g, SUM(v) FROM nowhere GROUP BY g")
        .unwrap_err();
    assert_eq!(e, SqlError::UnknownTable("nowhere".into()));
}

#[test]
fn two_queries_on_one_session_reuse_the_machine() {
    let t = people();
    let engine = Engine::new();
    let p1 = engine.plan(&t, &AggregateQuery::paper("g", "v")).unwrap();
    let p2 = engine
        .plan(
            &t,
            &AggregateQuery::paper("g", "v").with_filter("v", Predicate::GreaterThan(0)),
        )
        .unwrap();

    let mut session = Session::new();
    let r1 = session.run(&p1);
    let r2 = session.run(&p2);

    assert_eq!(session.queries_run(), 2);
    // One machine, cumulative cycles, per-query deltas.
    assert_eq!(session.total_cycles(), r1.report.cycles + r2.report.cycles);
    assert_eq!(r1.rows.len(), 6);
    assert!(r2.rows.iter().all(|r| r.group != 1 || r.values[0] > 0.0));
}

#[test]
fn empty_filter_result_reports_skipped_aggregation() {
    let mut db = Database::new();
    db.register(people());
    let out = db
        .execute_sql("SELECT g, COUNT(*), SUM(v) FROM r WHERE v > 100 GROUP BY g")
        .unwrap();
    assert!(out.rows.is_empty());
    assert_eq!(out.report.algorithm, None);
    assert!(out.report.steps.contains(&PlanStep::AggregateSkipped));
}
