//! Integration tests for the planned-query API: golden `EXPLAIN`
//! renderings, typed end-to-end errors, and session reuse through the
//! public facade.

use vagg::db::{
    AggFn, AggregateQuery, Database, Engine, JoinStrategy, OrderKey, PlanError, PlanStep,
    Predicate, Session, ShardedDatabase, SqlError, SqlOutcome, Table,
};

fn people() -> Table {
    Table::new("r")
        .with_column("g", vec![1, 3, 3, 0, 0, 5, 2, 4])
        .with_column("v", vec![0, 5, 2, 4, 1, 3, 3, 0])
}

fn orders() -> Table {
    Table::new("orders")
        .with_column("region", vec![0, 1, 0, 2, 1, 0])
        .with_column("quarter", vec![0, 1, 2, 3, 0, 1])
        .with_column("amount", vec![10, 20, 30, 40, 50, 60])
        .with_column("status", vec![1, 0, 1, 1, 0, 1])
}

#[test]
fn explain_golden_paper_query() {
    let plan = Engine::new()
        .plan(&people(), &AggregateQuery::paper("g", "v"))
        .unwrap();
    assert_eq!(
        plan.explain(),
        "SELECT g, COUNT(*), SUM(v) FROM r GROUP BY g\n\
         \x20 rows=8 presorted=false algorithm=monotable cardinality≈6\n\
         \x20 1. CardinalityScan[exact](cardinality≈6)\n\
         \x20 2. Aggregate[mono]"
    );
}

#[test]
fn explain_golden_full_tail_via_sql() {
    let mut db = Database::new();
    db.register(orders());
    let outcome = db
        .run_sql(
            "EXPLAIN SELECT region, quarter, COUNT(*), SUM(amount) \
             FROM orders WHERE status <> 0 GROUP BY region, quarter \
             HAVING COUNT(*) > 1 ORDER BY SUM(amount) DESC LIMIT 3",
        )
        .unwrap();
    let plan = match outcome {
        SqlOutcome::Plan(p) => p,
        other => panic!("EXPLAIN must not execute: {other:?}"),
    };
    // Nothing ran on the session's machine.
    assert_eq!(db.session().queries_run(), 0);
    assert_eq!(db.session().total_cycles(), 0);
    assert_eq!(
        plan.explain(),
        "SELECT region, quarter, COUNT(*), SUM(amount) FROM orders \
         WHERE status <> 0 GROUP BY region, quarter \
         HAVING COUNT(*) > 1 ORDER BY SUM(amount) DESC LIMIT 3\n\
         \x20 rows=6 presorted=false algorithm=monotable cardinality≈12 data_version=1 \
         zone_maps=1\n\
         \x20 1. FuseKeys(region×quarter)\n\
         \x20 2. VectorFilter(status <> 0)\n\
         \x20 3. CardinalityScan[exact](cardinality≈12)\n\
         \x20 4. Aggregate[mono]\n\
         \x20 5. VectorHaving(COUNT(*) > 1)\n\
         \x20 6. VectorOrderBy[radix](SUM(amount) DESC)\n\
         \x20 7. Limit(3)"
    );
}

#[test]
fn explain_golden_presorted_minmax() {
    let n = 512usize;
    let t = Table::new("sorted")
        .with_column("k", (0..n).map(|i| (i / 128) as u32).collect())
        .with_column("x", (0..n).map(|i| (i % 7) as u32).collect());
    let q = AggregateQuery::paper("k", "x")
        .with_aggregate(AggFn::Min)
        .with_aggregate(AggFn::Max);
    let plan = Engine::new().plan(&t, &q).unwrap();
    assert_eq!(
        plan.explain(),
        "SELECT k, COUNT(*), SUM(x), MIN(x), MAX(x) FROM sorted GROUP BY k\n\
         \x20 rows=512 presorted=true algorithm=polytable cardinality≈4\n\
         \x20 1. CardinalityScan[presorted](cardinality≈4)\n\
         \x20 2. MinMaxKernel[VGAmin/VGAmax]"
    );
}

#[test]
fn explain_golden_as_of_renders_frozen_provenance() {
    let mut db = Database::new();
    db.register(people());
    db.run_sql("CREATE SNAPSHOT launch").unwrap();
    db.run_sql("INSERT INTO r (g, v) VALUES (9, 9)").unwrap();

    // A named version: the frozen label rides next to data_version.
    let out = db
        .explain_sql("EXPLAIN SELECT g, COUNT(*), SUM(v) FROM r AS OF launch GROUP BY g")
        .unwrap();
    let plan = out.plan().expect("non-join SELECT yields a query plan");
    assert_eq!(plan.as_of(), Some("launch@1"));
    assert_eq!(
        plan.explain(),
        "SELECT g, COUNT(*), SUM(v) FROM r GROUP BY g\n\
         \x20 rows=8 presorted=false algorithm=monotable cardinality≈6 \
         data_version=1 as_of=launch@1\n\
         \x20 1. CardinalityScan[exact](cardinality≈6)\n\
         \x20 2. Aggregate[mono]"
    );

    // A raw version pin renders as data_version@N.
    let out = db
        .explain_sql("EXPLAIN SELECT g, COUNT(*), SUM(v) FROM r AS OF data_version 2 GROUP BY g")
        .unwrap();
    let plan = out.plan().expect("non-join SELECT yields a query plan");
    assert_eq!(plan.as_of(), Some("data_version@2"));
    assert_eq!(
        plan.explain(),
        "SELECT g, COUNT(*), SUM(v) FROM r GROUP BY g\n\
         \x20 rows=9 presorted=false algorithm=monotable cardinality≈10 \
         data_version=2 as_of=data_version@2\n\
         \x20 1. CardinalityScan[exact](cardinality≈10)\n\
         \x20 2. Aggregate[mono]"
    );

    // The live plan carries no provenance label.
    let out = db
        .explain_sql("EXPLAIN SELECT g, COUNT(*), SUM(v) FROM r GROUP BY g")
        .unwrap();
    let plan = out.plan().expect("non-join SELECT yields a query plan");
    assert_eq!(plan.as_of(), None);
    assert!(!plan.explain().contains("as_of="));
}

fn returns() -> Table {
    Table::new("returns")
        .with_column("region", vec![0, 0, 1, 2, 2, 1, 0, 3])
        .with_column("penalty", vec![5, 7, 2, 1, 9, 4, 3, 8])
}

#[test]
fn explain_golden_join_build_side_and_versions() {
    let mut db = Database::new();
    db.register(orders());
    db.register(returns());
    // Drift the right table so the two pinned versions differ.
    db.run_sql("INSERT INTO orders (region, quarter, amount, status) VALUES (3, 2, 70, 1)")
        .unwrap();

    let plan = db
        .explain_join_sql(
            "EXPLAIN SELECT returns.region, COUNT(*), SUM(penalty) \
             FROM returns JOIN orders ON returns.region = orders.region \
             GROUP BY returns.region",
        )
        .unwrap();
    assert_eq!(plan.build_table(), "orders");
    assert_eq!(plan.probe_table(), "returns");
    assert_eq!(plan.strategy(), JoinStrategy::Local);
    assert_eq!(plan.left_data_version(), 1);
    assert_eq!(plan.right_data_version(), 2);
    assert_eq!(
        plan.explain(),
        "SELECT returns.region, COUNT(*), SUM(penalty) FROM returns \
         JOIN orders ON returns.region = orders.region GROUP BY returns.region\n\
         \x20 join=hash build=orders probe=returns strategy=local \
         build_rows=7 probe_rows=8 build_distinct≈4 build_sorted=false\n\
         \x20 left=returns data_version=1 right=orders data_version=2\n\
         \x20 1. JoinBuild(orders[region] rows=7 distinct≈4)\n\
         \x20 2. JoinProbe(returns[region] rows=8)"
    );
}

#[test]
fn explain_golden_join_broadcast_on_shards() {
    let mut db = ShardedDatabase::new(4);
    db.register(orders());
    db.register(returns());
    let plan = db
        .explain_join_sql(
            "EXPLAIN SELECT returns.region, COUNT(*), SUM(penalty) \
             FROM returns JOIN orders ON returns.region = orders.region \
             GROUP BY returns.region",
        )
        .unwrap();
    assert_eq!(plan.strategy(), JoinStrategy::Broadcast);
    assert_eq!(
        plan.explain(),
        "SELECT returns.region, COUNT(*), SUM(penalty) FROM returns \
         JOIN orders ON returns.region = orders.region GROUP BY returns.region\n\
         \x20 join=hash build=orders probe=returns strategy=broadcast \
         build_rows=6 probe_rows=8 build_distinct≈3 build_sorted=false\n\
         \x20 left=returns data_version=1 right=orders data_version=1\n\
         \x20 1. JoinBuild(orders[region] rows=6 distinct≈3)\n\
         \x20 2. JoinProbe(returns[region] rows=8)"
    );
}

#[test]
fn explain_golden_join_partitions_a_large_build_side() {
    let mut db = ShardedDatabase::new(4);
    db.register(
        Table::new("fact")
            .with_column("k", (0..1200u32).map(|i| i % 8).collect())
            .with_column("v", (0..1200u32).map(|i| i % 10).collect()),
    );
    db.register(Table::new("dims").with_column("k", (0..1100u32).map(|i| i % 8).collect()));
    let plan = db
        .explain_join_sql(
            "EXPLAIN SELECT fact.k, COUNT(*), SUM(v) \
             FROM fact JOIN dims ON fact.k = dims.k GROUP BY fact.k",
        )
        .unwrap();
    assert_eq!(plan.build_table(), "dims");
    assert_eq!(plan.strategy(), JoinStrategy::Partition);
    assert_eq!(
        plan.explain(),
        "SELECT fact.k, COUNT(*), SUM(v) FROM fact \
         JOIN dims ON fact.k = dims.k GROUP BY fact.k\n\
         \x20 join=hash build=dims probe=fact strategy=partition \
         build_rows=1100 probe_rows=1200 build_distinct≈8 build_sorted=false\n\
         \x20 left=fact data_version=1 right=dims data_version=1\n\
         \x20 1. JoinBuild(dims[k] rows=1100 distinct≈8)\n\
         \x20 2. JoinProbe(fact[k] rows=1200)"
    );
}

#[test]
fn explain_golden_join_as_of_renders_the_pinned_cut() {
    let mut db = Database::new();
    db.register(orders());
    db.register(returns());
    db.run_sql("CREATE SNAPSHOT cut").unwrap();
    db.run_sql("INSERT INTO returns (region, penalty) VALUES (3, 6)")
        .unwrap();

    let plan = db
        .explain_join_sql(
            "EXPLAIN SELECT returns.region, COUNT(*), SUM(penalty) \
             FROM returns JOIN orders ON returns.region = orders.region \
             AS OF cut GROUP BY returns.region",
        )
        .unwrap();
    // The plan pins both tables at the named cut: the insert after the
    // snapshot is invisible.
    assert_eq!(plan.as_of(), Some("cut"));
    assert_eq!(plan.probe_rows(), 8);
    assert_eq!(plan.left_data_version(), 1);
    assert!(plan.explain().contains(" as_of=cut"));

    // explain_sql routes join statements through the join planner and
    // returns the join plan — no more JoinStatement refusal.
    let out = db
        .explain_sql(
            "EXPLAIN SELECT returns.region, COUNT(*), SUM(penalty) \
             FROM returns JOIN orders ON returns.region = orders.region \
             GROUP BY returns.region",
        )
        .unwrap();
    let join = out.join().expect("join SELECT yields a join plan");
    assert_eq!(join.build_table(), "orders");
    assert_eq!(join.probe_table(), "returns");
    assert!(out.explain().contains("join=hash"));
}

/// Normalizes an `EXPLAIN ANALYZE` rendering for golden comparison:
/// wall-clock diagnostics (`*_ns`) and simulated cycle totals are
/// replaced with `_` so the golden pins only the stable fields — the
/// step order, estimates, and observed row counts.
fn normalize_analyze(text: &str) -> String {
    text.lines()
        .map(|line| {
            line.split(' ')
                .map(|token| {
                    for key in ["cycles=", "queue_wait_ns=", "freeze_barrier_ns="] {
                        if let Some(rest) = token.strip_prefix(key) {
                            if !rest.is_empty() && rest.chars().all(|c| c.is_ascii_digit()) {
                                return format!("{key}_");
                            }
                        }
                    }
                    token.to_string()
                })
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn analyzed(db: &mut Database, sql: &str) -> vagg::db::AnalyzedQuery {
    match db.run_sql(sql).unwrap() {
        SqlOutcome::Analyzed(a) => *a,
        other => panic!("EXPLAIN ANALYZE returns a trace: {other:?}"),
    }
}

#[test]
fn explain_analyze_golden_full_tail() {
    let mut db = Database::new();
    db.register(orders());
    let a = analyzed(
        &mut db,
        "EXPLAIN ANALYZE SELECT region, quarter, COUNT(*), SUM(amount) \
         FROM orders WHERE status <> 0 GROUP BY region, quarter \
         HAVING COUNT(*) > 0 ORDER BY SUM(amount) DESC LIMIT 3",
    );
    assert_eq!(a.output.rows.len(), 3);
    assert_eq!(
        normalize_analyze(&a.explain()),
        "EXPLAIN ANALYZE SELECT region, quarter, COUNT(*), SUM(amount) \
         FROM orders WHERE status <> 0 GROUP BY region, quarter \
         HAVING COUNT(*) > 0 ORDER BY SUM(amount) DESC LIMIT 3\n\
         \x20 rows=3 cycles=_ morsels=0 steals=0 queue_wait_ns=_\n\
         \x20 1. FuseKeys(region×quarter) est≈6 rows=6→6 cycles=_ morsels=1\n\
         \x20 2. VectorFilter(status <> 0) est≈6 rows=6→4 cycles=_ morsels=1\n\
         \x20 3. CardinalityScan[exact](cardinality≈12) est≈? rows=4→4 cycles=_ morsels=1\n\
         \x20 4. Aggregate[mono] est≈12 rows=4→4 cycles=_ morsels=1\n\
         \x20 5. VectorHaving(COUNT(*) > 0) est≈? rows=4→4 cycles=_ morsels=1\n\
         \x20 6. VectorOrderBy[radix](SUM(amount) DESC) est≈? rows=4→4 cycles=_ morsels=1\n\
         \x20 7. Limit(3) est≈3 rows=4→3 cycles=_ morsels=1"
    );
}

#[test]
fn explain_analyze_golden_sharded_morsels() {
    let mut db = ShardedDatabase::new(4);
    db.register(
        Table::new("events")
            .with_column("g", (0..400u32).map(|i| i % 7).collect())
            .with_column("v", (0..400u32).map(|i| i % 10).collect()),
    );
    let out = db
        .run_sql("EXPLAIN ANALYZE SELECT g, COUNT(*), SUM(v) FROM events GROUP BY g")
        .unwrap();
    let t = out.trace.as_deref().expect("EXPLAIN ANALYZE traces");
    let text = normalize_analyze(&t.explain());
    // Stable structure: 4 shards × 100 rows = one morsel each, the
    // distributive steps roll up across all 4, and the coordinator's
    // merge folds 28 partial groups down to 7.
    assert!(text.contains("rows=7 cycles=_ morsels=4 steals="), "{text}");
    assert!(
        text.contains(
            "1. CardinalityScan[exact](cardinality≈7) est≈? rows=400→400 cycles=_ morsels=4"
        ),
        "{text}"
    );
    assert!(
        text.contains("2. Aggregate[mono] est≈28 rows=400→28 cycles=_ morsels=4"),
        "{text}"
    );
    assert!(
        text.contains("3. MergePartials est≈? rows=28→7 cycles=_ morsels=1"),
        "{text}"
    );
    assert!(text.contains("workers: 0:"), "{text}");
    // The dispatch rollup: all 4 morsels ran, none were zone-pruned
    // (the query has no WHERE to prune against).
    assert!(
        text.contains("morsels: dispatched=4 pruned=0 rows_pruned=0"),
        "{text}"
    );
    // Every morsel span is attributed and internally consistent.
    assert_eq!(t.morsels.len(), 4);
    assert!(t.morsels.iter().all(|m| m.hi - m.lo == 100));
}

#[test]
fn explain_analyze_golden_join() {
    let mut db = Database::new();
    db.register(orders());
    db.register(returns());
    let a = analyzed(
        &mut db,
        "EXPLAIN ANALYZE SELECT returns.region, COUNT(*), SUM(penalty) \
         FROM returns JOIN orders ON returns.region = orders.region \
         GROUP BY returns.region",
    );
    let text = normalize_analyze(&a.explain());
    // The join trace records build/probe actuals (6 build rows → 3
    // dictionary entries, 8 probe rows → 15 matched pairs) and the
    // freeze-barrier diagnostic.
    assert!(text.contains("dictionary: entries=3 hits="), "{text}");
    assert!(text.contains("freeze_barrier_ns=_"), "{text}");
    assert!(
        text.contains(
            "1. JoinBuild(orders[region] rows=6 distinct≈3) est≈3 rows=6→3 cycles=_ morsels=1"
        ),
        "{text}"
    );
    assert!(
        text.contains("2. JoinProbe(returns[region] rows=8) est≈8 rows=8→15 cycles=_ morsels=1"),
        "{text}"
    );
    assert!(
        text.contains("4. Aggregate[mono] est≈3 rows=15→3"),
        "{text}"
    );
}

#[test]
fn explain_analyze_as_of_and_prepared() {
    let mut db = Database::new();
    db.register(people());
    db.run_sql("CREATE SNAPSHOT launch").unwrap();
    db.run_sql("INSERT INTO r (g, v) VALUES (9, 9)").unwrap();

    // AS OF: the traced execution sees the pinned cut, not the insert.
    let a = analyzed(
        &mut db,
        "EXPLAIN ANALYZE SELECT g, COUNT(*), SUM(v) FROM r AS OF launch GROUP BY g",
    );
    assert_eq!(a.output.rows.len(), 6, "the snapshot misses group 9");
    assert!(
        normalize_analyze(&a.explain()).contains("rows=8→8"),
        "8-row cut"
    );

    // Prepared: `analyze` is `execute` plus the trace.
    let mut stmt = db
        .prepare("SELECT g, COUNT(*), SUM(v) FROM r WHERE v > ? GROUP BY g")
        .unwrap();
    let plain = stmt.execute(&mut db, &[2]).unwrap();
    let traced = stmt.analyze(&mut db, &[2]).unwrap();
    assert_eq!(traced.output.rows, plain.rows);
    let text = normalize_analyze(&traced.explain());
    assert!(text.contains("VectorFilter(v > 2)"), "{text}");
    assert!(text.contains("est≈"), "{text}");
    assert_eq!(stmt.executions(), 2);
}

#[test]
fn plan_steps_are_typed_and_inspectable() {
    let q = AggregateQuery::paper("g", "v")
        .with_filter("v", Predicate::GreaterThan(0))
        .with_order_by(OrderKey::Group, false);
    let plan = Engine::new().plan(&people(), &q).unwrap();
    assert!(matches!(
        plan.steps()[0],
        PlanStep::VectorFilter {
            pred: Predicate::GreaterThan(0),
            ..
        }
    ));
    assert!(plan
        .steps()
        .iter()
        .any(|s| matches!(s, PlanStep::CardinalityScan { .. })));
    assert!(plan
        .steps()
        .iter()
        .any(|s| matches!(s, PlanStep::Aggregate(_))));
    assert_eq!(plan.rows(), 8);
    assert_eq!(plan.cardinality_estimate(), 6);
}

#[test]
fn sql_errors_are_fully_typed() {
    let mut db = Database::new();
    db.register(people());

    // Planning errors arrive as typed PlanError values, not strings.
    let e = db
        .execute_sql("SELECT g, SUM(missing) FROM r GROUP BY g")
        .unwrap_err();
    assert_eq!(
        e,
        SqlError::Plan(PlanError::UnknownColumn("missing".into()))
    );

    let e = db
        .execute_sql("SELECT g, SUM(v) FROM r GROUP BY g HAVING AVG(v) > 1")
        .unwrap_err();
    assert_eq!(
        e,
        SqlError::Plan(PlanError::UnsupportedAvgPredicate { clause: "HAVING" })
    );

    let e = db
        .execute_sql("SELECT g, SUM(v) FROM nowhere GROUP BY g")
        .unwrap_err();
    assert_eq!(e, SqlError::UnknownTable("nowhere".into()));
}

#[test]
fn two_queries_on_one_session_reuse_the_machine() {
    let t = people();
    let engine = Engine::new();
    let p1 = engine.plan(&t, &AggregateQuery::paper("g", "v")).unwrap();
    let p2 = engine
        .plan(
            &t,
            &AggregateQuery::paper("g", "v").with_filter("v", Predicate::GreaterThan(0)),
        )
        .unwrap();

    let mut session = Session::new();
    let r1 = session.run(&p1);
    let r2 = session.run(&p2);

    assert_eq!(session.queries_run(), 2);
    // One machine, cumulative cycles, per-query deltas.
    assert_eq!(session.total_cycles(), r1.report.cycles + r2.report.cycles);
    assert_eq!(r1.rows.len(), 6);
    assert!(r2.rows.iter().all(|r| r.group != 1 || r.values[0] > 0.0));
}

#[test]
fn empty_filter_result_reports_skipped_aggregation() {
    let mut db = Database::new();
    db.register(people());
    let out = db
        .execute_sql("SELECT g, COUNT(*), SUM(v) FROM r WHERE v > 100 GROUP BY g")
        .unwrap();
    assert!(out.rows.is_empty());
    assert_eq!(out.report.algorithm, None);
    assert!(out.report.steps.contains(&PlanStep::AggregateSkipped));
}
