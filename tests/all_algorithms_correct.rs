//! Cross-crate correctness: every algorithm on every distribution at
//! representative cardinalities must produce exactly the reference
//! aggregation, and the adaptive selector must match whatever it picks.

use vagg::core::{reference, run_adaptive, run_algorithm, AdaptiveMode, Algorithm};
use vagg::datagen::{DatasetSpec, Distribution};
use vagg::sim::SimConfig;

const N: usize = 3_000;

fn check_cell(dist: Distribution, card: u64) {
    let cfg = SimConfig::paper();
    let ds = DatasetSpec::paper(dist, card)
        .with_rows(N)
        .with_seed(11)
        .generate();
    let expect = reference(&ds.g, &ds.v);
    for alg in Algorithm::ALL {
        let run = run_algorithm(alg, &cfg, &ds);
        assert_eq!(
            run.result,
            expect,
            "{} wrong on {} c={}",
            alg.name(),
            dist.name(),
            card
        );
        run.result.validate(N).unwrap();
        assert!(run.cycles > 0);
    }
    for mode in [AdaptiveMode::Ideal, AdaptiveMode::Realistic] {
        let run = run_adaptive(&cfg, &ds, mode);
        assert_eq!(run.result, expect, "adaptive {mode:?} wrong");
    }
}

#[test]
fn low_cardinality_cells() {
    for dist in Distribution::ALL {
        check_cell(dist, 4);
        check_cell(dist, 76);
    }
}

#[test]
fn low_normal_cells() {
    for dist in Distribution::ALL {
        check_cell(dist, 610);
    }
}

#[test]
fn high_normal_cells() {
    for dist in Distribution::ALL {
        check_cell(dist, 19_531);
    }
}

#[test]
fn high_cells() {
    // c >> n: nearly every key unique — vector lengths collapse to 1 in
    // the sorted-reduce algorithms and VLU masks are all-set. (625,000 is
    // the first cardinality of the paper's `high` division; larger values
    // only grow the table-walk loops linearly without new behaviour.)
    for dist in Distribution::ALL {
        check_cell(dist, 625_000);
    }
}

#[test]
fn extended_distribution_cells() {
    // The two Cieslewicz & Ross distributions beyond the paper's grid:
    // every algorithm must still aggregate them exactly, and the §V-D
    // planner (which never sees the distribution) must still pick a
    // correct algorithm.
    for dist in [Distribution::MovingCluster, Distribution::SelfSimilar] {
        check_cell(dist, 76);
        check_cell(dist, 2_441);
        check_cell(dist, 625_000);
    }
}

#[test]
fn results_deterministic_across_runs() {
    let cfg = SimConfig::paper();
    let ds = DatasetSpec::paper(Distribution::Zipf, 1_220)
        .with_rows(N)
        .generate();
    for alg in Algorithm::ALL {
        let a = run_algorithm(alg, &cfg, &ds);
        let b = run_algorithm(alg, &cfg, &ds);
        assert_eq!(
            a.cycles,
            b.cycles,
            "{} cycle count not deterministic",
            alg.name()
        );
        assert_eq!(a.result, b.result);
    }
}

#[test]
fn n_not_multiple_of_mvl() {
    // 3000 % 64 != 0 already, but pin the edge explicitly: n = MVL ± 1.
    let cfg = SimConfig::paper();
    for n in [63usize, 64, 65, 127, 129] {
        let ds = DatasetSpec::paper(Distribution::Uniform, 19)
            .with_rows(n)
            .with_seed(5)
            .generate();
        let expect = reference(&ds.g, &ds.v);
        for alg in Algorithm::ALL {
            let run = run_algorithm(alg, &cfg, &ds);
            assert_eq!(run.result, expect, "{} wrong at n={n}", alg.name());
        }
    }
}

#[test]
fn single_row_input() {
    let cfg = SimConfig::paper();
    let ds = DatasetSpec::paper(Distribution::Uniform, 4)
        .with_rows(1)
        .generate();
    let expect = reference(&ds.g, &ds.v);
    for alg in Algorithm::ALL {
        assert_eq!(run_algorithm(alg, &cfg, &ds).result, expect);
    }
}
