//! Property-based tests for the ISA layer: the irregular-DLP instructions
//! against O(VL²) oracles, permutative inverses, reduction/fold agreement
//! and CAM timing bounds.

use proptest::prelude::*;
use vagg::isa::cam::cam_cycles;
use vagg::isa::exec::{self, BinOp, RedOp};
use vagg::isa::irregular::{vga_sum, vlu, vpi};

fn keyvec() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..32, 1..=64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn vpi_matches_quadratic_oracle(keys in keyvec()) {
        let vl = keys.len();
        let got = vpi(&keys, vl, 4).value;
        for i in 0..vl {
            let expect = keys[..i].iter().filter(|&&k| k == keys[i]).count() as u64;
            prop_assert_eq!(got[i], expect);
        }
    }

    #[test]
    fn vlu_matches_quadratic_oracle(keys in keyvec()) {
        let vl = keys.len();
        let got = vlu(&keys, vl, 4).value;
        for i in 0..vl {
            prop_assert_eq!(got[i], !keys[i + 1..vl].contains(&keys[i]));
        }
    }

    #[test]
    fn vlu_selects_exactly_the_distinct_keys(keys in keyvec()) {
        let vl = keys.len();
        let mask = vlu(&keys, vl, 4).value;
        let distinct: std::collections::HashSet<u64> =
            keys.iter().copied().collect();
        let set = mask.iter().take(vl).filter(|&&b| b).count();
        prop_assert_eq!(set, distinct.len());
    }

    #[test]
    fn vgasum_running_totals(keys in keyvec(), seed in 0u64..1000) {
        let vl = keys.len();
        let vals: Vec<u64> = (0..vl as u64).map(|i| (i * 7 + seed) % 100).collect();
        let got = vga_sum(&keys, &vals, vl, 4).value;
        // Inclusive running sum per group.
        for i in 0..vl {
            let expect: u64 = (0..=i)
                .filter(|&j| keys[j] == keys[i])
                .map(|j| vals[j])
                .sum();
            prop_assert_eq!(got[i], expect);
        }
    }

    #[test]
    fn vgasum_at_last_instance_is_group_total(keys in keyvec()) {
        // The monotable invariant: at VLU positions, VGAsum holds the
        // whole in-register group aggregate.
        let vl = keys.len();
        let vals = vec![1u64; vl];
        let sums = vga_sum(&keys, &vals, vl, 4).value;
        let last = vlu(&keys, vl, 4).value;
        for i in 0..vl {
            if last[i] {
                let total = keys[..vl].iter().filter(|&&k| k == keys[i]).count() as u64;
                prop_assert_eq!(sums[i], total);
            }
        }
    }

    #[test]
    fn cam_cycles_bounds(keys in keyvec(), ports in 1usize..=8) {
        let vl = keys.len();
        let c = cam_cycles(&keys, vl, ports);
        // Between perfect packing and full serialisation.
        let best = 2 * vl.div_ceil(ports) as u64;
        let worst = 2 * vl as u64;
        prop_assert!(c >= best && c <= worst, "{c} not in [{best}, {worst}]");
    }

    #[test]
    fn more_ports_never_hurt(keys in keyvec()) {
        let vl = keys.len();
        let mut last = u64::MAX;
        for p in [1usize, 2, 4, 8] {
            let c = cam_cycles(&keys, vl, p);
            prop_assert!(c <= last, "p={p} regressed: {c} > {last}");
            last = c;
        }
    }

    #[test]
    fn compress_expand_inverse(vals in prop::collection::vec(0u64..1000, 1..=64),
                               maskbits in prop::collection::vec(any::<bool>(), 64)) {
        let vl = vals.len();
        let mask = &maskbits[..vl];
        let mut packed = vec![0u64; vl];
        let k = exec::compress(&mut packed, &vals, mask, vl);
        prop_assert_eq!(k, mask.iter().filter(|&&b| b).count());
        let mut restored = vec![0u64; vl];
        let consumed = exec::expand(&mut restored, &packed, mask, vl);
        prop_assert_eq!(consumed, k);
        for i in 0..vl {
            if mask[i] {
                prop_assert_eq!(restored[i], vals[i]);
            }
        }
    }

    #[test]
    fn reduce_agrees_with_fold(vals in prop::collection::vec(any::<u64>(), 1..=64)) {
        let vl = vals.len();
        let sum = exec::reduce(RedOp::Sum, &vals, vl, None);
        let expect = vals.iter().fold(0u64, |a, &x| a.wrapping_add(x));
        prop_assert_eq!(sum, expect);
        prop_assert_eq!(exec::reduce(RedOp::Max, &vals, vl, None),
                        vals.iter().copied().max().unwrap());
        prop_assert_eq!(exec::reduce(RedOp::Min, &vals, vl, None),
                        vals.iter().copied().min().unwrap());
    }

    #[test]
    fn binops_elementwise(a in prop::collection::vec(any::<u64>(), 8),
                          b in prop::collection::vec(any::<u64>(), 8)) {
        let mut d = vec![0u64; 8];
        exec::binop_vv(BinOp::Add, &mut d, &a, &b, 8, None);
        for i in 0..8 {
            prop_assert_eq!(d[i], a[i].wrapping_add(b[i]));
        }
        exec::binop_vv(BinOp::Max, &mut d, &a, &b, 8, None);
        for i in 0..8 {
            prop_assert_eq!(d[i], a[i].max(b[i]));
        }
    }

    #[test]
    fn masked_ops_do_not_touch_inactive_lanes(
        a in prop::collection::vec(any::<u64>(), 16),
        maskbits in prop::collection::vec(any::<bool>(), 16),
    ) {
        let sentinel = 0xDEAD_BEEFu64;
        let mut d = vec![sentinel; 16];
        exec::binop_vs(BinOp::Add, &mut d, &a, 1, 16, Some(&maskbits));
        for i in 0..16 {
            if !maskbits[i] {
                prop_assert_eq!(d[i], sentinel);
            }
        }
    }
}
