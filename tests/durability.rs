//! Crash-recovery property tests: a durable database dropped at an
//! arbitrary point and reopened must replay to exactly the state an
//! in-memory oracle reaches from the committed operations alone —
//! across compaction/checkpoint boundaries, with uncommitted
//! transactions invisible and torn log tails truncated.

use proptest::prelude::*;
use vagg::db::{Database, Row, ShardedDatabase, SqlError, Table, TempDir};

/// The statements a test sequence is built from.
#[derive(Debug, Clone)]
enum Op {
    /// `INSERT INTO t (g, v) VALUES ...`.
    Insert(Vec<(u32, u32)>),
    /// `DELETE FROM t WHERE <clause>`.
    Delete(String),
    /// `UPDATE t SET v = <n> WHERE <clause>`.
    Update(u32, String),
    /// `BEGIN; <ops>; COMMIT|ROLLBACK`.
    Txn(Vec<Op>, bool),
    /// `CREATE SNAPSHOT s<n>` (names assigned in sequence order).
    Snapshot,
    /// An explicit WAL checkpoint (durable side only; a logical no-op).
    Checkpoint,
}

fn arb_where() -> impl Strategy<Value = String> {
    prop_oneof![
        (0u32..8).prop_map(|k| format!("g > {k}")),
        (0u32..8).prop_map(|k| format!("g <> {k}")),
        (0u32..100).prop_map(|k| format!("v < {k}")),
        (0u32..100).prop_map(|k| format!("v > {k}")),
    ]
}

fn arb_simple_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        proptest::collection::vec((0u32..8, 0u32..100), 1..6).prop_map(Op::Insert),
        arb_where().prop_map(Op::Delete),
        (1u32..100, arb_where()).prop_map(|(v, w)| Op::Update(v, w)),
    ]
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        arb_simple_op(),
        arb_simple_op(),
        (
            proptest::collection::vec(arb_simple_op(), 1..4),
            any::<bool>()
        )
            .prop_map(|(block, commit)| Op::Txn(block, commit)),
        Just(Op::Snapshot),
        Just(Op::Checkpoint),
    ]
}

fn seed_table() -> Table {
    Table::new("t")
        .with_column("g", vec![1, 3, 3, 0, 0, 5, 2, 4])
        .with_column("v", vec![0, 55, 22, 44, 11, 33, 73, 90])
}

fn insert_sql(rows: &[(u32, u32)]) -> String {
    let values: Vec<String> = rows.iter().map(|(g, v)| format!("({g}, {v})")).collect();
    format!("INSERT INTO t (g, v) VALUES {}", values.join(", "))
}

/// Applies `op` to `db`; `durable` gates the checkpoint (a logical
/// no-op the in-memory oracle has no file to write). `snaps` counts
/// snapshot names so both sides assign identical ones.
fn apply(db: &mut Database, op: &Op, durable: bool, snaps: &mut u32) {
    match op {
        Op::Insert(rows) => {
            db.run_sql(&insert_sql(rows)).unwrap();
        }
        Op::Delete(clause) => {
            db.run_sql(&format!("DELETE FROM t WHERE {clause}"))
                .unwrap();
        }
        Op::Update(v, clause) => {
            db.run_sql(&format!("UPDATE t SET v = {v} WHERE {clause}"))
                .unwrap();
        }
        Op::Txn(block, commit) => {
            db.run_sql("BEGIN").unwrap();
            let mut ignored = 0;
            for inner in block {
                apply(db, inner, false, &mut ignored);
            }
            db.run_sql(if *commit { "COMMIT" } else { "ROLLBACK" })
                .unwrap();
        }
        Op::Snapshot => {
            db.run_sql(&format!("CREATE SNAPSHOT s{snaps}")).unwrap();
            *snaps += 1;
        }
        Op::Checkpoint => {
            if durable {
                db.checkpoint().unwrap();
            }
        }
    }
}

/// A table's exact physical content, column by column.
fn columns_of(t: &Table) -> Vec<(String, Vec<u32>)> {
    t.column_names()
        .iter()
        .map(|c| (c.to_string(), t.column(c).unwrap().to_vec()))
        .collect()
}

/// Everything recovery promises to reconstruct: the materialised live
/// table, its data version, statistics row count, and every named
/// version's query answer (or its typed error, e.g. on empty tables).
type Fingerprint = (
    Option<Vec<(String, Vec<u32>)>>,
    Option<u64>,
    Option<usize>,
    Vec<Result<Vec<Row>, SqlError>>,
);

fn fingerprint(db: &mut Database, snaps: u32) -> Fingerprint {
    let named = (0..snaps)
        .map(|i| {
            db.execute_sql(&format!(
                "SELECT g, COUNT(*), SUM(v) FROM t AS OF s{i} GROUP BY g"
            ))
            .map(|out| out.rows)
        })
        .collect();
    (
        db.table("t").map(|t| columns_of(&t)),
        db.data_version("t"),
        db.table_stats("t").map(|s| s.rows()),
        named,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Open → random committed workload (+ an uncommitted transaction
    /// left open at the crash, + a torn half-frame on the log tail) →
    /// drop → reopen replays to exactly the oracle's committed state.
    #[test]
    fn recovery_replays_to_the_committed_oracle_state(
        ops in proptest::collection::vec(arb_op(), 0..10),
        open_txn in proptest::collection::vec(arb_simple_op(), 0..3),
        torn in proptest::collection::vec(any::<u8>(), 0..19),
    ) {
        let dir = TempDir::new("prop-recover");
        let mut oracle = Database::new();
        oracle.register(seed_table());
        let mut committed_snaps = 0;
        {
            let mut db = Database::open(dir.path()).unwrap();
            db.register(seed_table());
            let mut snaps = 0;
            for op in &ops {
                apply(&mut db, op, true, &mut snaps);
                apply(&mut oracle, op, false, &mut committed_snaps);
            }
            prop_assert_eq!(snaps, committed_snaps);
            // An open transaction at crash time: applied to the
            // durable side only, never committed.
            if !open_txn.is_empty() {
                db.run_sql("BEGIN").unwrap();
                for op in &open_txn {
                    apply(&mut db, op, false, &mut snaps);
                }
            }
        } // crash
        if !torn.is_empty() {
            // A half-written frame on the tail (< frame header size,
            // so it can never masquerade as a valid record).
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(dir.path().join("wal.log"))
                .unwrap();
            f.write_all(&torn).unwrap();
        }
        let mut recovered = Database::open(dir.path()).unwrap();
        prop_assert_eq!(
            fingerprint(&mut recovered, committed_snaps),
            fingerprint(&mut oracle, committed_snaps)
        );
        // The recovered database is fully live: it keeps accepting and
        // logging writes at the resumed LSN.
        recovered.run_sql("INSERT INTO t (g, v) VALUES (7, 7)").unwrap();
        oracle.run_sql("INSERT INTO t (g, v) VALUES (7, 7)").unwrap();
        prop_assert_eq!(
            fingerprint(&mut recovered, committed_snaps),
            fingerprint(&mut oracle, committed_snaps)
        );
    }
}

/// A sharded workload step: the statements `ShardedDatabase` accepts.
#[derive(Debug, Clone)]
enum ShardOp {
    Insert(Vec<(u32, u32)>),
    Delete(String),
    Update(u32, String),
    Checkpoint,
}

fn arb_shard_op() -> impl Strategy<Value = ShardOp> {
    prop_oneof![
        proptest::collection::vec((0u32..8, 0u32..100), 1..6).prop_map(ShardOp::Insert),
        arb_where().prop_map(ShardOp::Delete),
        (1u32..100, arb_where()).prop_map(|(v, w)| ShardOp::Update(v, w)),
        Just(ShardOp::Checkpoint),
    ]
}

fn apply_sharded(db: &mut ShardedDatabase, op: &ShardOp, durable: bool) {
    match op {
        ShardOp::Insert(rows) => {
            db.insert_sql(&insert_sql(rows)).unwrap();
        }
        ShardOp::Delete(clause) => {
            db.mutate_sql(&format!("DELETE FROM t WHERE {clause}"))
                .unwrap();
        }
        ShardOp::Update(v, clause) => {
            db.mutate_sql(&format!("UPDATE t SET v = {v} WHERE {clause}"))
                .unwrap();
        }
        ShardOp::Checkpoint => {
            if durable {
                db.checkpoint().unwrap();
            }
        }
    }
}

/// Per-shard materialised tables and data versions: recovery must land
/// every shard on the identical partition, not merely the same union.
type ShardFingerprint = Vec<(Option<Vec<(String, Vec<u32>)>>, Option<u64>)>;

fn sharded_fingerprint(db: &ShardedDatabase) -> ShardFingerprint {
    db.shards()
        .iter()
        .map(|s| (s.table("t").map(|t| columns_of(&t)), s.data_version("t")))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The sharded engine recovers every shard to the oracle's
    /// partition — per-shard logs plus the coordinator's commit
    /// records survive drop/reopen (and a torn coordinator tail).
    #[test]
    fn sharded_recovery_replays_to_the_committed_oracle_state(
        shards in 1usize..4,
        ops in proptest::collection::vec(arb_shard_op(), 0..8),
        torn in proptest::collection::vec(any::<u8>(), 0..19),
    ) {
        let dir = TempDir::new("prop-recover-shard");
        let mut oracle = ShardedDatabase::new(shards);
        oracle.register(seed_table());
        {
            let mut db = ShardedDatabase::open(dir.path(), shards).unwrap();
            db.register(seed_table());
            for op in &ops {
                apply_sharded(&mut db, op, true);
                apply_sharded(&mut oracle, op, false);
            }
        } // crash
        if !torn.is_empty() {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(dir.path().join("coordinator.log"))
                .unwrap();
            f.write_all(&torn).unwrap();
        }
        // The shard count on disk is authoritative; ask for a wrong
        // one to prove reopen adopts the layout it finds.
        let mut recovered = ShardedDatabase::open(dir.path(), shards + 1).unwrap();
        prop_assert_eq!(recovered.shard_count(), shards);
        prop_assert_eq!(sharded_fingerprint(&recovered), sharded_fingerprint(&oracle));
        // Still live after recovery.
        apply_sharded(&mut recovered, &ShardOp::Insert(vec![(7, 7)]), true);
        apply_sharded(&mut oracle, &ShardOp::Insert(vec![(7, 7)]), false);
        prop_assert_eq!(sharded_fingerprint(&recovered), sharded_fingerprint(&oracle));
    }
}
