//! Integration tests for the write path: INSERT/append through delta
//! stores, live statistics, plan-cache reconciliation, and the §V-D
//! re-planning loop a statistics drift finally exercises end to end.

use vagg::core::Algorithm;
use vagg::datagen::{DatasetSpec, Distribution};
use vagg::db::{CompactionPolicy, Database, RowBatch, ShardedDatabase, SqlOutcome, Table};

fn seed_table(n: usize, cardinality: u32) -> Table {
    Table::new("events")
        .with_column(
            "g",
            (0..n)
                .map(|i| ((i * 7919) % cardinality as usize) as u32)
                .collect(),
        )
        .with_column("v", (0..n).map(|i| (i % 10) as u32).collect())
}

/// Registers the logical content of `db`'s table under a fresh
/// database — the "as if it had been loaded in one shot" oracle.
fn fresh_merged(db: &Database, table: &str) -> Database {
    let mut fresh = Database::new();
    fresh.register(db.table(table).expect("table registered"));
    fresh
}

/// The acceptance scenario: a prepared statement planned with one §V-D
/// algorithm choice; an ingest drifts the statistics past the policy
/// threshold; the statement observably re-plans to the new choice, and
/// its answers equal a fresh plan over the merged table.
#[test]
fn prepared_statement_replans_on_statistics_drift() {
    let mut db = Database::new();
    // Unsorted, low cardinality (100 ≤ 9,765): monotable division.
    db.register(seed_table(600, 100));
    let sql = "SELECT g, COUNT(*), SUM(v) FROM events WHERE v > ? GROUP BY g";
    let mut stmt = db.prepare(sql).unwrap();

    let before = stmt.execute(&mut db, &[2]).unwrap();
    assert_eq!(stmt.plan().unwrap().algorithm(), Algorithm::Monotable);
    assert!(stmt.explain().unwrap().contains("Aggregate[mono]"));
    assert_eq!(before.report.algorithm, Some(Algorithm::Monotable));
    assert_eq!(stmt.replans(), 0);

    // Ingest a batch whose keys cross the §V-D division boundary
    // (9,765): the table flips from low- to high-cardinality.
    let appended: Vec<u32> = (0..50).map(|i| 10_000 + i * 137).collect();
    db.append_rows(
        "events",
        RowBatch::new()
            .with_column("g", appended.clone())
            .with_column("v", (0..50u32).map(|i| i % 10).collect()),
    )
    .unwrap();

    let after = stmt.execute(&mut db, &[2]).unwrap();
    assert_eq!(stmt.replans(), 1, "the drift forced a re-plan");
    assert_eq!(
        stmt.plan().unwrap().algorithm(),
        Algorithm::PartiallySortedMonotable,
        "the §V-D choice moved with the statistics"
    );
    assert!(stmt.explain().unwrap().contains("Aggregate[psm]"));
    assert_eq!(
        after.report.algorithm,
        Some(Algorithm::PartiallySortedMonotable)
    );

    // Results are exactly a fresh plan over the merged table.
    let mut oracle = fresh_merged(&db, "events");
    let mut oracle_stmt = oracle.prepare(sql).unwrap();
    let expect = oracle_stmt.execute(&mut oracle, &[2]).unwrap();
    assert_eq!(
        oracle_stmt.plan().unwrap().algorithm(),
        Algorithm::PartiallySortedMonotable,
        "oracle agrees the merged statistics demand PSM"
    );
    assert_eq!(after.rows, expect.rows);

    // Steady state resumes: no further re-plans without further drift.
    stmt.execute(&mut db, &[5]).unwrap();
    assert_eq!(stmt.replans(), 1);
}

/// The plan-cache lifecycle under ingest: hit → append → rebase (choice
/// holds) → hit → drifting append → invalidation + fresh plan → hit.
#[test]
fn plan_cache_serves_rebases_and_invalidates_under_ingest() {
    let mut db = Database::new();
    db.register(seed_table(400, 60));
    let sql = "SELECT g, COUNT(*), SUM(v) FROM events GROUP BY g";

    db.execute_sql(sql).unwrap(); // miss: first plan
    db.execute_sql(sql).unwrap(); // hit
    let s = db.plan_cache_stats();
    assert_eq!((s.hits, s.misses, s.rebases, s.invalidations), (1, 1, 0, 0));

    // Low-drift append: the entry survives by rebasing.
    db.run_sql("INSERT INTO events (g, v) VALUES (3, 1), (4, 2)")
        .unwrap();
    db.execute_sql(sql).unwrap(); // hit + rebase
    db.execute_sql(sql).unwrap(); // plain hit again
    let s = db.plan_cache_stats();
    assert_eq!((s.hits, s.misses, s.rebases, s.invalidations), (3, 1, 1, 0));

    // High-drift append: the entry is stats-sensitive and re-plans.
    db.run_sql("INSERT INTO events (g, v) VALUES (20000, 1)")
        .unwrap();
    db.execute_sql(sql).unwrap(); // invalidation + miss
    db.execute_sql(sql).unwrap(); // hit on the fresh entry
    let s = db.plan_cache_stats();
    assert_eq!((s.hits, s.misses, s.rebases, s.invalidations), (4, 2, 1, 1));
}

/// Query answers over base ++ delta equal answers over the same rows
/// registered in one shot, across a compaction boundary.
#[test]
fn queries_over_delta_match_a_fresh_one_shot_registration() {
    let sqls = [
        "SELECT g, COUNT(*), SUM(v), MIN(v), MAX(v), AVG(v) FROM events GROUP BY g",
        "SELECT g, COUNT(*), SUM(v) FROM events WHERE v > 4 GROUP BY g \
         HAVING SUM(v) > 9 ORDER BY SUM(v) DESC LIMIT 5",
    ];
    let mut db = Database::new();
    db.catalogue()
        .set_compaction_policy(CompactionPolicy::every(64));
    db.register(seed_table(300, 40));
    let mut compactions = 0;
    for round in 0..6usize {
        let n = 20 + round * 7;
        let g: Vec<u32> = (0..n).map(|i| ((i * 31 + round) % 55) as u32).collect();
        let v: Vec<u32> = (0..n).map(|i| ((i + round) % 10) as u32).collect();
        let receipt = db
            .append_rows(
                "events",
                RowBatch::new().with_column("g", g).with_column("v", v),
            )
            .unwrap();
        compactions += receipt.compacted as usize;
        let mut oracle = fresh_merged(&db, "events");
        for sql in sqls {
            let got = db.execute_sql(sql).unwrap();
            let expect = oracle.execute_sql(sql).unwrap();
            assert_eq!(got.rows, expect.rows, "round {round}: {sql}");
        }
    }
    assert!(compactions >= 1, "the workload crossed a compaction");
}

/// The same equivalence holds when ingest is routed across shards.
#[test]
fn sharded_queries_over_routed_ingest_match_a_single_session() {
    let sql = "SELECT g, COUNT(*), SUM(v), MIN(v), MAX(v) FROM events \
               WHERE v <> 0 GROUP BY g";
    let mut sharded = ShardedDatabase::new(3);
    sharded.set_compaction_policy(CompactionPolicy::every(32));
    sharded.register(seed_table(200, 30));
    let mut single = Database::new();
    single.register(seed_table(200, 30));

    for round in 0..5usize {
        let n = 10 + round * 13;
        let g: Vec<u32> = (0..n).map(|i| ((i * 13 + round) % 45) as u32).collect();
        let v: Vec<u32> = (0..n).map(|i| ((i * 3 + round) % 10) as u32).collect();
        let batch = || {
            RowBatch::new()
                .with_column("g", g.clone())
                .with_column("v", v.clone())
        };
        sharded.append_rows("events", batch()).unwrap();
        single.append_rows("events", batch()).unwrap();
        let got = sharded.run_sql(sql).unwrap();
        let expect = single.execute_sql(sql).unwrap();
        assert_eq!(got.rows, expect.rows, "round {round}");
    }
}

/// A drifting ingest stream from the datagen side: batches ramp from
/// low to high cardinality, and both the plan cache and a prepared
/// statement follow the drift while answering exactly like a one-shot
/// load of the same rows.
#[test]
fn streaming_ingest_with_cardinality_drift_replans_mid_stream() {
    let mut db = Database::new();
    let first_batches: Vec<vagg::datagen::Batch> = DatasetSpec::paper(Distribution::Uniform, 50)
        .stream(128)
        .with_cardinality_drift(30_000, 6)
        .take(6)
        .collect();

    db.register(
        Table::new("events")
            .with_column("g", first_batches[0].g.clone())
            .with_column("v", first_batches[0].v.clone()),
    );
    let sql = "SELECT g, COUNT(*), SUM(v) FROM events GROUP BY g";
    let mut stmt = db.prepare(sql).unwrap();
    assert_eq!(stmt.plan().unwrap().algorithm(), Algorithm::Monotable);

    for batch in &first_batches[1..] {
        db.append_rows(
            "events",
            RowBatch::new()
                .with_column("g", batch.g.clone())
                .with_column("v", batch.v.clone()),
        )
        .unwrap();
        let out = stmt.execute(&mut db, &[]).unwrap();
        let expect = fresh_merged(&db, "events").execute_sql(sql).unwrap();
        assert_eq!(out.rows, expect.rows, "batch {}", batch.index);
    }
    assert_eq!(
        stmt.plan().unwrap().algorithm(),
        Algorithm::PartiallySortedMonotable,
        "the drifted stream flipped the §V-D choice"
    );
    assert_eq!(stmt.replans(), 1, "exactly one threshold crossing");
    assert!(stmt.rebases() >= 1, "sub-threshold batches rebased");
}

/// INSERT through `run_sql` reports a receipt and the write is
/// immediately visible to every session of the catalogue.
#[test]
fn insert_sql_is_visible_across_sessions() {
    let mut alice = Database::new();
    alice.register(seed_table(50, 10));
    let mut bob = alice.catalogue().connect();

    match alice
        .run_sql("INSERT INTO events (g, v) VALUES (100, 1), (100, 2)")
        .unwrap()
    {
        SqlOutcome::Inserted(receipt) => {
            assert_eq!(receipt.rows, 2);
            assert!(!receipt.compacted);
        }
        other => panic!("INSERT must report a receipt: {other:?}"),
    }
    let out = bob
        .execute_sql("SELECT g, COUNT(*), SUM(v) FROM events GROUP BY g")
        .unwrap();
    let g100 = out.rows.iter().find(|r| r.group == 100).unwrap();
    assert_eq!(g100.values, vec![2.0, 3.0]);
}
