//! Pins the paper's instruction-level claims using the dynamic
//! instruction mix ([`vagg_sim::OpMix`]): which instruction classes each
//! algorithm relies on, and how the average vector length behaves.

use vagg_core::{run_algorithm, Algorithm};
use vagg_datagen::{DatasetSpec, Distribution};
use vagg_sim::SimConfig;

fn run(alg: Algorithm, dist: Distribution, card: u64, rows: usize) -> vagg_core::AggRun {
    let ds = DatasetSpec::paper(dist, card)
        .with_rows(rows)
        .with_seed(11)
        .generate();
    run_algorithm(alg, &SimConfig::paper(), &ds)
}

#[test]
fn scalar_baseline_uses_no_vector_instructions() {
    let r = run(Algorithm::Scalar, Distribution::Uniform, 1_220, 20_000);
    assert_eq!(r.mix.vector_ops(), 0);
    assert_eq!(r.mix.v_mask_ops, 0);
    // Step 3 does one load of g, one of v, one table load each for count
    // and sum per tuple — so well over 2 scalar loads/tuple.
    assert!(r.mix.scalar_loads as usize > 2 * 20_000);
    assert!(r.mix.scalar_stores as usize > 20_000);
}

#[test]
fn monotable_is_built_on_cam_gather_scatter() {
    let r = run(Algorithm::Monotable, Distribution::Uniform, 1_220, 20_000);
    // Figure 15's loop: VGAsum + VLU per block → ≥ 2 CAM ops per MVL
    // elements; a masked gather and scatter per block.
    let blocks = (20_000 / 64) as u64;
    assert!(
        r.mix.v_cam >= 2 * blocks,
        "cam={} blocks={blocks}",
        r.mix.v_cam
    );
    assert!(r.mix.v_gathers >= blocks);
    assert!(r.mix.v_scatters >= blocks);
    // No algorithm transformation: the input is streamed unit-stride, never
    // strided.
    assert_eq!(r.mix.v_strided_loads, 0);
    // The tuple stream dominates: two unit loads (g, v) per block.
    assert!(r.mix.v_unit_loads >= 2 * blocks);
}

#[test]
fn radix_sort_pays_the_strided_transformation_cost() {
    // §IV-A: "the input must be loaded into a vector register using a
    // strided memory access pattern in lieu of a unit-stride one."
    let ssr = run(
        Algorithm::StandardSortedReduce,
        Distribution::Uniform,
        1_220,
        20_000,
    );
    assert!(
        ssr.mix.v_strided_loads > 0,
        "vectorised radix sort must stream its input strided for stability"
    );

    // §V-A: VSR sort "processes the input arrays sequentially" —
    // unit-stride, no strided loads at all.
    let asr = run(
        Algorithm::AdvancedSortedReduce,
        Distribution::Uniform,
        1_220,
        20_000,
    );
    assert_eq!(asr.mix.v_strided_loads, 0);
    assert!(asr.mix.v_cam > 0, "VSR sort is built on VPI/VLU");
}

#[test]
fn polytable_avoids_cam_entirely() {
    // Polytable is the evasion technique: typical SIMD only.
    let r = run(Algorithm::Polytable, Distribution::Uniform, 76, 20_000);
    assert_eq!(r.mix.v_cam, 0);
    // Table replication is updated through gather/scatter on per-element
    // copies.
    assert!(r.mix.v_gathers > 0);
    assert!(r.mix.v_scatters > 0);
}

#[test]
fn sorted_reduce_average_vector_length_collapses_at_high_cardinality() {
    // §V-A: "when c = 10,000,000 the vector length of every reduction is
    // 1 and this reduces performance considerably". At c = n every group
    // is (nearly) unique, so the segmented reductions run at VL ≈ 1 and
    // the run average collapses relative to a low-cardinality input.
    let rows = 20_000;
    let low = run(
        Algorithm::AdvancedSortedReduce,
        Distribution::Uniform,
        76,
        rows,
    );
    let high = run(
        Algorithm::AdvancedSortedReduce,
        Distribution::Uniform,
        10_000_000,
        rows,
    );
    assert!(
        high.mix.avg_vl() < low.mix.avg_vl() * 0.8,
        "avg VL should collapse: low-c {:.1} vs high-c {:.1}",
        low.mix.avg_vl(),
        high.mix.avg_vl()
    );
    // And specifically the reduction count explodes (one per run of
    // repeated keys, ~n runs at c = n).
    assert!(high.mix.v_reductions > low.mix.v_reductions * 4);
}

#[test]
fn scatter_add_comparator_uses_the_memory_side_instruction() {
    let r = run(
        Algorithm::ScatterAddMonotable,
        Distribution::Uniform,
        1_220,
        20_000,
    );
    assert!(r.mix.v_scatter_adds > 0);
    // No CAM hardware in the scatter-add world (§VI-B).
    assert_eq!(r.mix.v_cam, 0);
}

#[test]
fn cdi_comparator_retries_instead_of_using_the_cam() {
    let cdi = run(
        Algorithm::CdiMonotable,
        Distribution::Uniform,
        1_220,
        20_000,
    );
    assert_eq!(cdi.mix.v_cam, 0, "CDI-style loop must not use VPI/VLU/VGAx");
    assert!(cdi.mix.v_mask_ops > 0, "retry loop is mask-driven");

    // §VI-B: on skewed input the retry loop re-issues the gather-modify-
    // scatter, so CDI executes strictly more gathers than monotable.
    let rows = 20_000;
    let mono = run(Algorithm::Monotable, Distribution::HeavyHitter, 1_220, rows);
    let cdi = run(
        Algorithm::CdiMonotable,
        Distribution::HeavyHitter,
        1_220,
        rows,
    );
    assert!(
        cdi.mix.v_gathers > mono.mix.v_gathers,
        "retries should inflate gathers: cdi={} mono={}",
        cdi.mix.v_gathers,
        mono.mix.v_gathers
    );
}

#[test]
fn vector_algorithms_execute_far_fewer_dynamic_ops_than_scalar() {
    // The DLP premise: one vector instruction does MVL elements of work.
    let rows = 20_000;
    let scalar = run(Algorithm::Scalar, Distribution::Uniform, 1_220, rows);
    let mono = run(Algorithm::Monotable, Distribution::Uniform, 1_220, rows);
    let scalar_total = scalar.mix.scalar_ops();
    let mono_total = mono.mix.scalar_ops() + mono.mix.vector_ops() + mono.mix.v_mask_ops;
    assert!(
        mono_total * 4 < scalar_total,
        "monotable ops {mono_total} vs scalar {scalar_total}"
    );
}
