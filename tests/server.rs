//! Integration tests for the TCP serving layer: concurrent clients
//! answered bit-identically to direct library calls, typed overload
//! rejection, observable cancellation, protocol-error hygiene, and
//! graceful shutdown that drains in-flight work.

use std::net::TcpStream;
use std::time::Duration;

use vagg::db::{Row, SharedCatalogue, SqlOutcome, Table};
use vagg_server::{serve, Client, ClientError, ErrorCode, Reply, ServerConfig, WireRow};

fn events(n: usize) -> Table {
    Table::new("events")
        .with_column("g", (0..n).map(|i| ((i * 7919) % 31) as u32).collect())
        .with_column("v", (0..n).map(|i| ((i * 31) % 100) as u32).collect())
        .with_column("k", (0..n).map(|i| ((i * 13) % 977) as u32).collect())
}

fn dims() -> Table {
    Table::new("dims")
        .with_column("g", (0..31).collect())
        .with_column("w", (0..31).map(|i| (i * i) as u32).collect())
}

fn catalogue(rows: usize) -> SharedCatalogue {
    let catalogue = SharedCatalogue::new();
    catalogue.register(events(rows));
    catalogue.register(dims());
    catalogue
}

/// Runs `sql` directly on a library session and returns its rows.
fn library_rows(catalogue: &SharedCatalogue, sql: &str) -> Vec<Row> {
    match catalogue.connect().run_sql(sql).expect("library query") {
        SqlOutcome::Rows(output) => output.rows,
        other => panic!("expected rows, got {other:?}"),
    }
}

fn assert_same_rows(wire: &[WireRow], lib: &[Row], sql: &str) {
    assert_eq!(wire.len(), lib.len(), "row count for {sql}");
    for (w, l) in wire.iter().zip(lib) {
        assert_eq!(w.group, l.group, "group for {sql}");
        assert_eq!(w.group_parts, l.group_parts, "group parts for {sql}");
        assert_eq!(w.values.len(), l.values.len(), "value arity for {sql}");
        for (a, b) in w.values.iter().zip(&l.values) {
            assert_eq!(a.to_bits(), b.to_bits(), "bit-identical values for {sql}");
        }
    }
}

#[test]
fn eight_concurrent_clients_match_the_library_bit_for_bit() {
    let catalogue = catalogue(20_000);
    let handle = serve(catalogue.clone(), ServerConfig::default()).unwrap();
    let addr = handle.addr();

    // Eight clients, each hammering a different statement shape —
    // aggregates, composite keys, HAVING/ORDER BY tails, and a join.
    let statements = [
        "SELECT g, COUNT(*), SUM(v), MIN(v), MAX(v), AVG(v) FROM events GROUP BY g",
        "SELECT g, SUM(v) FROM events WHERE v > 50 GROUP BY g",
        "SELECT g, k, COUNT(*) FROM events WHERE k < 100 GROUP BY g, k",
        "SELECT g, COUNT(*) FROM events GROUP BY g HAVING COUNT(*) > 100",
        "SELECT g, SUM(v) FROM events GROUP BY g ORDER BY SUM(v) DESC LIMIT 7",
        "SELECT g, AVG(k) FROM events WHERE v > 9 GROUP BY g",
        "SELECT events.g, SUM(dims.w) FROM events JOIN dims ON events.g = dims.g GROUP BY events.g",
        "SELECT g, MAX(k), MIN(k) FROM events GROUP BY g",
    ];

    let workers: Vec<_> = statements
        .iter()
        .map(|&sql| {
            let expected = library_rows(&catalogue, sql);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for _ in 0..5 {
                    let rows = client.query(sql).expect("wire query");
                    assert_same_rows(&rows, &expected, sql);
                }
                client.goodbye().expect("clean goodbye");
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("client thread");
    }

    assert_eq!(handle.stats().queries(), 8 * 5);
    assert_eq!(handle.stats().rejected(), 0);
    handle.shutdown();
}

#[test]
fn prepared_statements_bind_over_the_wire() {
    let catalogue = catalogue(5_000);
    let handle = serve(catalogue.clone(), ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    let stmt = client
        .prepare("SELECT g, COUNT(*), SUM(v) FROM events WHERE v > ? GROUP BY g")
        .unwrap();
    for threshold in [10u64, 50, 90] {
        let rows = client.execute(stmt, &[threshold]).unwrap();
        let expected = library_rows(
            &catalogue,
            &format!("SELECT g, COUNT(*), SUM(v) FROM events WHERE v > {threshold} GROUP BY g"),
        );
        assert_same_rows(&rows, &expected, "prepared execute");
    }

    // Typed bind errors: wrong arity, then an unknown statement id.
    let err = client.execute(stmt, &[1, 2]).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Bind), "{err}");
    let err = client.execute(stmt + 99, &[1]).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Bind), "{err}");
}

#[test]
fn overload_is_a_typed_rejection_and_the_listener_stays_responsive() {
    // A gate that admits nothing: every query is an immediate,
    // typed Overloaded — the pathological extreme of a full queue.
    let config = ServerConfig {
        max_inflight: 0,
        max_queue: 0,
        ..ServerConfig::default()
    };
    let handle = serve(catalogue(1_000), config).unwrap();

    let mut client = Client::connect(handle.addr()).unwrap();
    let err = client
        .query("SELECT g, COUNT(*) FROM events GROUP BY g")
        .unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Overloaded), "{err}");

    // The rejection did not wedge anything: the same connection still
    // serves metrics, and new connections are still accepted.
    let metrics = client.metrics().unwrap();
    assert!(
        metrics.contains("vagg_server_rejected_total 1"),
        "{metrics}"
    );
    let mut second = Client::connect(handle.addr()).unwrap();
    let err = second.query("SELECT g, COUNT(*) FROM events GROUP BY g");
    assert_eq!(err.unwrap_err().code(), Some(ErrorCode::Overloaded));
    assert_eq!(handle.stats().rejected(), 2);
    handle.shutdown();
}

#[test]
fn a_morsel_budget_cancels_mid_query_and_the_session_survives() {
    // 60k rows ≈ 30 morsels; a budget of 2 trips mid-flight.
    let config = ServerConfig {
        morsel_budget: Some(2),
        ..ServerConfig::default()
    };
    let handle = serve(catalogue(60_000), config).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    let err = client
        .query("SELECT g, COUNT(*), SUM(v) FROM events GROUP BY g")
        .unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Cancelled), "{err}");

    // The worker is free and the connection usable: a query that fits
    // the budget (≤ 2 morsels) still runs on the same session.
    let rows = client
        .query("SELECT g, COUNT(*) FROM dims GROUP BY g")
        .unwrap();
    assert_eq!(rows.len(), 31);
    assert_eq!(handle.stats().cancelled(), 1);
    let metrics = client.metrics().unwrap();
    assert!(
        metrics.contains("vagg_server_cancelled_total 1"),
        "{metrics}"
    );
}

#[test]
fn an_explicit_cancel_reaches_a_query_on_another_connection() {
    let handle = serve(catalogue(200_000), ServerConfig::default()).unwrap();
    let addr = handle.addr();

    // The runner submits the same query id in a loop; the controller
    // fires Cancel at it from a separate connection until one lands
    // mid-flight (pure explicit cancellation, no budget involved).
    let runner = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("runner connect");
        for _ in 0..200 {
            match client.run_with_id(
                42,
                "SELECT g, k, COUNT(*), SUM(v), MIN(v), MAX(v) FROM events GROUP BY g, k",
            ) {
                Ok(Reply::Rows(_)) => continue,
                Ok(other) => panic!("unexpected reply {other:?}"),
                Err(e) => {
                    assert_eq!(e.code(), Some(ErrorCode::Cancelled), "{e}");
                    return true;
                }
            }
        }
        false
    });
    let mut controller = Client::connect(addr).expect("controller connect");
    let mut landed = false;
    for _ in 0..2_000 {
        let outcome = controller.cancel(42).expect("cancel frame");
        if outcome.contains("cancel signalled") {
            landed = true;
        }
        if runner.is_finished() {
            break;
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    assert!(landed, "the controller saw the query in flight");
    assert!(
        runner.join().expect("runner thread"),
        "the runner observed a Cancelled error"
    );
    assert!(handle.stats().cancelled() >= 1);
    handle.shutdown();
}

#[test]
fn garbage_frames_get_a_typed_protocol_error_not_a_panic() {
    let handle = serve(catalogue(100), ServerConfig::default()).unwrap();

    // Handshake by hand, then send an unparseable frame.
    use vagg_server::protocol::{read_frame, write_frame};
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    write_frame(
        &mut stream,
        &vagg_server::Request::Hello { version: 1 }.encode(),
    )
    .unwrap();
    let payload = read_frame(&mut stream).unwrap().expect("a HelloOk frame");
    assert!(matches!(
        vagg_server::Response::decode(&payload).unwrap(),
        vagg_server::Response::HelloOk { .. }
    ));

    write_frame(&mut stream, &[0xFF, 0xDE, 0xAD, 0x00]).unwrap();
    let payload = read_frame(&mut stream).unwrap().expect("an error frame");
    match vagg_server::Response::decode(&payload).unwrap() {
        vagg_server::Response::Error { code, .. } => {
            assert_eq!(code, ErrorCode::Protocol)
        }
        other => panic!("expected a protocol error, got {other:?}"),
    }
    // The server closes the torn connection...
    assert_eq!(read_frame(&mut stream).unwrap(), None, "connection closed");

    // ...and keeps serving everyone else.
    let distinct_groups = (0..100)
        .map(|i| (i * 7919) % 31)
        .collect::<std::collections::HashSet<_>>()
        .len();
    let mut client = Client::connect(handle.addr()).unwrap();
    assert_eq!(
        client
            .query("SELECT g, COUNT(*) FROM events GROUP BY g")
            .unwrap()
            .len(),
        distinct_groups,
    );
    handle.shutdown();
}

#[test]
fn transactions_are_session_scoped_over_the_wire() {
    let catalogue = catalogue(1_000);
    let handle = serve(catalogue.clone(), ServerConfig::default()).unwrap();
    let mut writer = Client::connect(handle.addr()).unwrap();
    let mut reader = Client::connect(handle.addr()).unwrap();

    let count = |client: &mut Client| -> f64 {
        client
            .query("SELECT g, COUNT(*) FROM events WHERE g < 1 GROUP BY g")
            .unwrap()[0]
            .values[0]
    };
    let before = count(&mut reader);

    writer.begin(false).unwrap();
    match writer
        .run("INSERT INTO events (g, v, k) VALUES (0, 1, 2), (0, 3, 4)")
        .unwrap()
    {
        Reply::Outcome(text) => assert!(text.contains("queued"), "{text}"),
        other => panic!("expected a queued outcome, got {other:?}"),
    }
    // Buffered, not visible — to the other session or this one.
    assert_eq!(count(&mut reader), before);
    writer.commit().unwrap();
    assert_eq!(count(&mut reader), before + 2.0);

    // Transaction misuse is a typed error, not a closed connection.
    let err = writer.commit().unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Transaction), "{err}");
    assert_eq!(count(&mut writer), before + 2.0, "session still live");
}

#[test]
fn metrics_expose_qps_quantiles_and_queue_depth() {
    let handle = serve(catalogue(2_000), ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    for _ in 0..4 {
        client
            .query("SELECT g, SUM(v) FROM events GROUP BY g")
            .unwrap();
    }
    let text = client.metrics().unwrap();
    for needle in [
        "vagg_server_qps ",
        "vagg_server_queue_depth 0",
        "vagg_server_inflight 0",
        "vagg_server_queries_total 4",
        "vagg_server_connections_open 1",
        "vagg_query_cycles_p50 ",
        "vagg_query_cycles_p99 ",
        "queries_total",
        "morsels_pruned",
        "rows_pruned",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
}

#[test]
fn graceful_shutdown_drains_and_joins() {
    let handle = serve(catalogue(10_000), ServerConfig::default()).unwrap();
    let addr = handle.addr();
    let mut client = Client::connect(addr).unwrap();
    client
        .query("SELECT g, COUNT(*) FROM events GROUP BY g")
        .unwrap();

    // shutdown() joining proves the drain: it blocks on every
    // connection thread, so returning means none are stuck.
    handle.shutdown();

    // The listener is gone: a fresh connect must fail outright or be
    // dead on arrival (accept already exited).
    match Client::connect(addr) {
        Err(ClientError::Io(_)) => {}
        Err(other) => panic!("expected an i/o error, got {other}"),
        Ok(_) => panic!("connected to a shut-down server"),
    }
}
