//! Property-based tests: all six algorithms agree with the hash-map
//! reference on arbitrary inputs — arbitrary key skew, arbitrary value
//! data, arbitrary lengths (including non-multiples of MVL).

use proptest::prelude::*;
use vagg::core::{reference, Algorithm, StagedInput};
use vagg::sim::Machine;

fn columns() -> impl Strategy<Value = (Vec<u32>, Vec<u32>)> {
    // Keys in a modest domain so collisions are common; lengths 1..300.
    (1usize..300).prop_flat_map(|n| {
        (
            prop::collection::vec(0u32..500, n),
            prop::collection::vec(0u32..10, n),
        )
    })
}

fn run(alg: Algorithm, g: &[u32], v: &[u32], presorted: bool) {
    let mut m = Machine::paper();
    let input = StagedInput::stage_raw(&mut m, g, v, presorted);
    let (result, _) = alg.execute(&mut m, &input);
    assert_eq!(result, reference(g, v), "{} diverged", alg.name());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn scalar_matches_reference((g, v) in columns()) {
        run(Algorithm::Scalar, &g, &v, false);
    }

    #[test]
    fn polytable_matches_reference((g, v) in columns()) {
        run(Algorithm::Polytable, &g, &v, false);
    }

    #[test]
    fn monotable_matches_reference((g, v) in columns()) {
        run(Algorithm::Monotable, &g, &v, false);
    }

    #[test]
    fn standard_sorted_reduce_matches_reference((g, v) in columns()) {
        run(Algorithm::StandardSortedReduce, &g, &v, false);
    }

    #[test]
    fn advanced_sorted_reduce_matches_reference((g, v) in columns()) {
        run(Algorithm::AdvancedSortedReduce, &g, &v, false);
    }

    #[test]
    fn psm_matches_reference((g, v) in columns()) {
        run(Algorithm::PartiallySortedMonotable, &g, &v, false);
    }

    #[test]
    fn presorted_path_matches_reference((g, v) in columns()) {
        let mut g = g;
        g.sort_unstable();
        for alg in Algorithm::ALL {
            run(alg, &g, &v, true);
        }
    }

    #[test]
    fn wide_key_domain((g, v) in (1usize..200).prop_flat_map(|n| (
        prop::collection::vec(0u32..300_000, n),
        prop::collection::vec(0u32..10, n),
    ))) {
        // Sparse keys: exercises table clearing/compaction over huge
        // ranges and the multi-pass sorts.
        run(Algorithm::Monotable, &g, &v, false);
        run(Algorithm::AdvancedSortedReduce, &g, &v, false);
        run(Algorithm::PartiallySortedMonotable, &g, &v, false);
    }
}
