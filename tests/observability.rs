//! Observability tests: `EXPLAIN ANALYZE` must never change an answer,
//! and the metrics registry must count what actually happened.
//!
//! The load-bearing property is bit-identity — a traced execution
//! returns exactly the rows (and, where the machine is shared, exactly
//! the simulated cycles) of the untraced execution, across every
//! execution path: single-session, sharded/morsel-driven, snapshot
//! (`AS OF`), prepared, and joins. Tracing only *reads* the simulated
//! cycle counter and host-side lengths, so this is structural; the
//! property tests here keep it that way.

use proptest::prelude::*;
use vagg::db::{Database, ShardedDatabase, SqlOutcome, Table};

fn rows_of(out: SqlOutcome) -> Vec<vagg::db::Row> {
    match out {
        SqlOutcome::Rows(out) => out.rows,
        other => panic!("expected rows, got {other:?}"),
    }
}

/// Runs `sql` untraced and traced on `db`, asserting bit-identical rows
/// and internally consistent trace rollups; returns the trace.
fn assert_traced_matches(db: &mut Database, sql: &str) -> vagg::db::QueryTrace {
    let plain = rows_of(db.run_sql(sql).unwrap());
    let analyzed = match db.run_sql(&format!("EXPLAIN ANALYZE {sql}")).unwrap() {
        SqlOutcome::Analyzed(a) => a,
        other => panic!("EXPLAIN ANALYZE returns a trace: {other:?}"),
    };
    assert_eq!(analyzed.output.rows, plain, "traced rows drifted: {sql}");
    assert_trace_consistent(&analyzed.trace);
    analyzed.trace
}

/// Structural invariants every trace must satisfy, regardless of path.
fn assert_trace_consistent(t: &vagg::db::QueryTrace) {
    assert!(!t.steps.is_empty(), "a trace records at least one step");
    assert!(!t.sql.is_empty());
    let worker_morsels: u64 = t.workers.iter().map(|w| w.morsels).sum();
    assert_eq!(
        worker_morsels,
        t.morsels.len() as u64,
        "virtual schedule accounts every morsel exactly once"
    );
    let worker_steals: u64 = t.workers.iter().map(|w| w.steals).sum();
    assert_eq!(t.steals, worker_steals);
    for m in &t.morsels {
        let step_cycles: u64 = m.steps.iter().map(|s| s.cycles).sum();
        assert_eq!(
            step_cycles, m.cycles,
            "per-step cycles sum to the morsel's exact total"
        );
        assert!(m.lo < m.hi, "morsels cover a non-empty range");
    }
    // The rendering never panics and carries the headline counters.
    let text = t.explain();
    assert!(text.contains("rows="));
    assert!(text.contains("cycles="));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Single-session: `EXPLAIN ANALYZE` over random full pipelines
    /// (WHERE → GROUP BY → HAVING → ORDER BY → LIMIT) returns exactly
    /// the untraced rows, and fresh traced/untraced databases agree on
    /// simulated cycles too (bit-identity, not just row-identity).
    #[test]
    fn traced_equals_untraced_single_session(
        rows in proptest::collection::vec((0u32..16, 0u32..10, 0u32..8), 1..300),
        filter_t in proptest::option::of(0u32..8),
        having_t in proptest::option::of(0u32..30),
        limit in proptest::option::of(1usize..8),
    ) {
        let table = Table::new("r")
            .with_column("g", rows.iter().map(|r| r.0).collect::<Vec<u32>>())
            .with_column("v", rows.iter().map(|r| r.1).collect::<Vec<u32>>())
            .with_column("w", rows.iter().map(|r| r.2).collect::<Vec<u32>>());
        let mut sql = "SELECT g, COUNT(*), SUM(v) FROM r".to_string();
        if let Some(t) = filter_t {
            sql += &format!(" WHERE w > {t}");
        }
        sql += " GROUP BY g";
        if let Some(t) = having_t {
            sql += &format!(" HAVING SUM(v) > {t}");
        }
        if let Some(k) = limit {
            sql += &format!(" ORDER BY SUM(v) DESC LIMIT {k}");
        }

        // Same-database identity: rows only (the shared machine's cycle
        // counter advances between statements, but deltas are exact).
        let mut db = Database::new();
        db.register(table.clone());
        let trace = assert_traced_matches(&mut db, &sql);
        prop_assert!(trace.morsels.is_empty(), "single-session runs whole");

        // Fresh-database identity: the traced run's report must carry
        // the exact simulated cycles of the untraced run.
        let mut a = Database::new();
        a.register(table.clone());
        let untraced = match a.run_sql(&sql).unwrap() {
            SqlOutcome::Rows(out) => out,
            other => panic!("rows: {other:?}"),
        };
        let mut b = Database::new();
        b.register(table);
        let traced = match b.run_sql(&format!("EXPLAIN ANALYZE {sql}")).unwrap() {
            SqlOutcome::Analyzed(x) => x,
            other => panic!("analyzed: {other:?}"),
        };
        prop_assert_eq!(untraced.rows, traced.output.rows);
        prop_assert_eq!(untraced.report.cycles, traced.output.report.cycles);
        prop_assert_eq!(traced.trace.rows, traced.output.rows.len() as u64);
        prop_assert_eq!(traced.trace.cycles, traced.output.report.cycles);
    }

    /// Sharded: the morsel-driven traced execution merges to exactly the
    /// untraced answer for any shard count, and the virtual schedule
    /// accounts every morsel.
    #[test]
    fn traced_equals_untraced_sharded(
        rows in proptest::collection::vec((0u32..16, 0u32..10), 1..400),
        shards in 1usize..6,
    ) {
        let table = Table::new("t")
            .with_column("g", rows.iter().map(|r| r.0).collect::<Vec<u32>>())
            .with_column("v", rows.iter().map(|r| r.1).collect::<Vec<u32>>());
        let sql = "SELECT g, COUNT(*), SUM(v), MIN(v), MAX(v) FROM t GROUP BY g";

        // Rows must be bit-identical. (Cycles are not asserted across
        // runs here: per-morsel costs depend on which physical worker's
        // cache-model state a morsel lands on, and placement races —
        // with or without tracing.)
        let mut db = ShardedDatabase::new(shards);
        db.register(table);
        let plain = db.run_sql(sql).unwrap();
        prop_assert!(plain.trace.is_none(), "untraced output carries no trace");
        let traced = db.run_sql(&format!("EXPLAIN ANALYZE {sql}")).unwrap();
        prop_assert_eq!(&traced.rows, &plain.rows, "{} shards", shards);

        let t = traced.trace.as_deref().expect("EXPLAIN ANALYZE traces");
        assert_trace_consistent(t);
        prop_assert!(!t.morsels.is_empty());
        prop_assert_eq!(t.rows, traced.rows.len() as u64);
        prop_assert_eq!(t.cycles, traced.report.cycles);
    }

    /// Snapshot reads: `EXPLAIN ANALYZE ... ` through `run_sql_at` sees
    /// exactly the pinned cut the untraced read sees, ingest afterwards
    /// notwithstanding.
    #[test]
    fn traced_equals_untraced_at_snapshot(
        rows in proptest::collection::vec((0u32..16, 0u32..10), 1..200),
        extra in proptest::collection::vec((0u32..16, 0u32..10), 1..50),
    ) {
        let mut db = Database::new();
        db.register(
            Table::new("t")
                .with_column("g", rows.iter().map(|r| r.0).collect::<Vec<u32>>())
                .with_column("v", rows.iter().map(|r| r.1).collect::<Vec<u32>>()),
        );
        let snap = db.snapshot();
        let values = extra
            .iter()
            .map(|(g, v)| format!("({g}, {v})"))
            .collect::<Vec<_>>()
            .join(", ");
        db.run_sql(&format!("INSERT INTO t (g, v) VALUES {values}")).unwrap();

        let sql = "SELECT g, COUNT(*), SUM(v) FROM t GROUP BY g";
        let plain = rows_of(db.run_sql_at(&snap, sql).unwrap());
        let analyzed = match db
            .run_sql_at(&snap, &format!("EXPLAIN ANALYZE {sql}"))
            .unwrap()
        {
            SqlOutcome::Analyzed(a) => a,
            other => panic!("analyzed: {other:?}"),
        };
        prop_assert_eq!(&analyzed.output.rows, &plain, "pinned cut drifted");
        assert_trace_consistent(&analyzed.trace);
        // Neither read sees the post-snapshot ingest.
        let live = rows_of(db.run_sql(sql).unwrap());
        let pinned_total: u64 = plain.iter().map(|r| r.values[0] as u64).sum();
        let live_total: u64 = live.iter().map(|r| r.values[0] as u64).sum();
        prop_assert_eq!(pinned_total + extra.len() as u64, live_total);
    }

    /// Prepared statements: `analyze(params)` returns exactly the rows
    /// `execute(params)` returns, across a sweep of bound parameters.
    #[test]
    fn prepared_analyze_matches_execute(
        rows in proptest::collection::vec((0u32..16, 0u32..10, 0u32..8), 1..200),
        thresholds in proptest::collection::vec(0u64..12, 1..5),
    ) {
        let mut db = Database::new();
        db.register(
            Table::new("r")
                .with_column("g", rows.iter().map(|r| r.0).collect::<Vec<u32>>())
                .with_column("v", rows.iter().map(|r| r.1).collect::<Vec<u32>>())
                .with_column("w", rows.iter().map(|r| r.2).collect::<Vec<u32>>()),
        );
        let mut stmt = db
            .prepare("SELECT g, COUNT(*), SUM(v) FROM r WHERE w < ? GROUP BY g")
            .unwrap();
        for &t in &thresholds {
            let plain = stmt.execute(&mut db, &[t]).unwrap();
            let analyzed = stmt.analyze(&mut db, &[t]).unwrap();
            prop_assert_eq!(&analyzed.output.rows, &plain.rows, "w < {}", t);
            assert_trace_consistent(&analyzed.trace);
        }
        prop_assert_eq!(stmt.executions(), 2 * thresholds.len() as u64);
        prop_assert_eq!(stmt.replans(), 0, "tracing never re-plans");
    }

    /// Joins: traced equi-JOIN aggregation matches the untraced answer
    /// on both the single database and the sharded coordinator, and the
    /// trace carries the build/probe actuals.
    #[test]
    fn traced_equals_untraced_join(
        fact in proptest::collection::vec((0u32..8, 0u32..10), 1..200),
        dims in proptest::collection::vec(0u32..8, 1..60),
        shards in 1usize..4,
    ) {
        let fact_table = || {
            Table::new("fact")
                .with_column("k", fact.iter().map(|r| r.0).collect::<Vec<u32>>())
                .with_column("v", fact.iter().map(|r| r.1).collect::<Vec<u32>>())
        };
        let dims_table = || Table::new("dims").with_column("k", dims.clone());
        let sql = "SELECT fact.k, COUNT(*), SUM(v) \
                   FROM fact JOIN dims ON fact.k = dims.k GROUP BY fact.k";

        let mut db = Database::new();
        db.register(fact_table());
        db.register(dims_table());
        let trace = assert_traced_matches(&mut db, sql);
        prop_assert!(
            trace.steps.iter().any(|s| s.step.starts_with("JoinBuild")),
            "join trace records the build side"
        );
        prop_assert!(trace.steps.iter().any(|s| s.step.starts_with("JoinProbe")));
        prop_assert!(trace.freeze_ns.is_some(), "joins time the freeze barrier");

        let mut sharded = ShardedDatabase::new(shards);
        sharded.register(fact_table());
        sharded.register(dims_table());
        let plain = sharded.run_sql(sql).unwrap();
        let traced = sharded.run_sql(&format!("EXPLAIN ANALYZE {sql}")).unwrap();
        prop_assert_eq!(&traced.rows, &plain.rows, "{} shards", shards);
        if let Some(t) = traced.trace.as_deref() {
            assert_trace_consistent(t);
        }
    }
}

/// The registry counts queries, rows, and traced executions exactly,
/// and exposes both text and JSON forms.
#[test]
fn metrics_count_queries_and_traces() {
    let mut db = Database::new();
    db.register(
        Table::new("r")
            .with_column("g", vec![1, 2, 1, 3])
            .with_column("v", vec![10, 20, 30, 40]),
    );
    let sql = "SELECT g, COUNT(*), SUM(v) FROM r GROUP BY g";
    db.run_sql(sql).unwrap();
    db.run_sql(sql).unwrap();
    db.run_sql(&format!("EXPLAIN ANALYZE {sql}")).unwrap();

    let snap = db.metrics();
    assert_eq!(snap.get("queries"), Some(3));
    assert_eq!(snap.get("traced_queries"), Some(1));
    assert_eq!(snap.get("query_rows"), Some(9), "3 groups × 3 queries");
    assert_eq!(snap.get("plan_cache_misses"), Some(1), "same shape re-hits");
    assert_eq!(snap.get("plan_cache_hits"), Some(2));
    assert!(snap.get("query_cycles").unwrap() > 0);
    assert_eq!(snap.cycle_histogram().iter().sum::<u64>(), 3);

    let text = snap.to_text();
    assert!(text.contains("vagg_queries 3"));
    assert!(text.contains("vagg_traced_queries 1"));
    assert!(text.contains("vagg_query_cycles_bucket{le=\"+Inf\"} 3"));
    let json = snap.to_json();
    assert!(json.contains("\"queries\": 3"));

    // EXPLAIN (no ANALYZE) plans without executing: nothing counted.
    db.explain_sql(sql).unwrap();
    assert_eq!(db.metrics().get("queries"), Some(3));
}

/// Ingest, compaction, and WAL activity land in the unified snapshot.
#[test]
fn metrics_count_ingest_and_wal() {
    let dir = vagg::db::TempDir::new("obs-metrics");
    {
        let mut db = Database::open(dir.path()).unwrap();
        db.register(
            Table::new("t")
                .with_column("g", vec![1, 2])
                .with_column("v", vec![1, 2]),
        );
        db.run_sql("INSERT INTO t (g, v) VALUES (1, 10), (2, 20)")
            .unwrap();
        db.run_sql("INSERT INTO t (g, v) VALUES (3, 30)").unwrap();
        let snap = db.metrics();
        assert_eq!(snap.get("ingest_batches"), Some(2));
        assert_eq!(snap.get("ingest_rows"), Some(3));
        assert_eq!(snap.get("wal_replayed_records"), Some(0));
        // Registration checkpoints the log (restating it as an image),
        // so only the two INSERTs are session appends.
        assert!(snap.get("wal_appends").unwrap() >= 2);
        assert!(snap.get("wal_bytes").unwrap() > 0);
    }
    // Reopen: recovery reports the replayed records (the checkpoint
    // image plus the appends that followed it).
    let db = Database::open(dir.path()).unwrap();
    assert!(db.metrics().get("wal_replayed_records").unwrap() >= 1);
}

/// The slow-query log retains the worst N by simulated cycles, most
/// expensive first, and the threshold gates admission.
#[test]
fn slow_query_log_keeps_the_worst() {
    let mut db = Database::new();
    db.register(
        Table::new("r")
            .with_column("g", (0..512u32).map(|i| i % 7).collect())
            .with_column("v", (0..512u32).map(|i| i % 10).collect()),
    );
    // A cheap query and an expensive one (ORDER BY radix-sorts).
    db.run_sql("SELECT g, COUNT(*) FROM r GROUP BY g").unwrap();
    db.run_sql("SELECT g, COUNT(*), SUM(v) FROM r GROUP BY g ORDER BY SUM(v) DESC")
        .unwrap();

    let slow = db.slow_queries();
    assert_eq!(slow.len(), 2, "default threshold 0 retains everything");
    assert!(
        slow[0].cycles >= slow[1].cycles,
        "most expensive first: {} < {}",
        slow[0].cycles,
        slow[1].cycles
    );
    assert!(slow[0].sql.contains("ORDER BY"));

    // A threshold above the cheap query's cost filters it out.
    let mut db2 = Database::new();
    db2.register(
        Table::new("r")
            .with_column("g", (0..512u32).map(|i| i % 7).collect())
            .with_column("v", (0..512u32).map(|i| i % 10).collect()),
    );
    db2.set_slow_query_threshold(slow[1].cycles + 1);
    db2.run_sql("SELECT g, COUNT(*) FROM r GROUP BY g").unwrap();
    db2.run_sql("SELECT g, COUNT(*), SUM(v) FROM r GROUP BY g ORDER BY SUM(v) DESC")
        .unwrap();
    let gated = db2.slow_queries();
    assert_eq!(gated.len(), 1, "threshold admits only the sort");
    assert!(gated[0].sql.contains("ORDER BY"));

    // The ring is bounded: many distinct queries never grow it past 16.
    let mut db3 = Database::new();
    db3.register(
        Table::new("r")
            .with_column("g", (0..64u32).map(|i| i % 7).collect())
            .with_column("v", (0..64u32).map(|i| i % 10).collect()),
    );
    for t in 0..40 {
        db3.run_sql(&format!(
            "SELECT g, COUNT(*) FROM r WHERE v > {t} GROUP BY g"
        ))
        .unwrap();
    }
    assert!(db3.slow_queries().len() <= 16, "worst-N ring is bounded");
}

/// The sharded coordinator merges every shard's registry and folds the
/// executor pool's counters in.
#[test]
fn sharded_metrics_merge_shards_and_executor() {
    let mut db = ShardedDatabase::new(4);
    db.register(
        Table::new("t")
            .with_column("g", (0..400u32).map(|i| i % 7).collect())
            .with_column("v", (0..400u32).map(|i| i % 10).collect()),
    );
    let sql = "SELECT g, COUNT(*), SUM(v) FROM t GROUP BY g";
    db.run_sql(sql).unwrap();
    db.run_sql(&format!("EXPLAIN ANALYZE {sql}")).unwrap();

    let snap = db.metrics();
    assert_eq!(snap.get("queries"), Some(2));
    assert_eq!(snap.get("traced_queries"), Some(1));
    assert_eq!(snap.get("executor_queries"), Some(2));
    assert!(snap.get("executor_morsels").unwrap() >= 2);
    assert!(db.slow_queries().len() >= 2);
    db.set_slow_query_threshold(u64::MAX);
}
