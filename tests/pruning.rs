//! Zone-map morsel pruning is result-invariant, everywhere.
//!
//! Pruning skips morsels whose per-column (min, max) zone maps prove
//! the `WHERE` predicate can match no row. A pruned morsel is exactly
//! one the vector filter would have emptied, so it contributes the
//! same empty partial — the answer must be identical bit for bit with
//! pruning on or off, on every read path:
//!
//! * single-session morselized execution ([`Database`], always prunes)
//! * sharded execution ([`ShardedDatabase`]) with `prune` on and off
//! * pinned snapshots and `AS OF` reads
//! * the prepared-statement path
//! * equi-joins
//! * across delta compaction (zones are rebuilt when batches fold in)
//!
//! A deterministic companion test pins down that pruning actually
//! fires on clustered data (the counters move) while the answer stays
//! put.

use proptest::prelude::*;
use vagg::datagen::rng::Xoshiro256StarStar;
use vagg::db::{
    CompactionPolicy, Database, Engine, ExecutorConfig, RowBatch, ShardedDatabase, Table,
};

/// A table whose `v` column is clustered by row position — the shape
/// zone maps thrive on: disjoint per-batch value ranges mean selective
/// predicates exclude whole morsels.
fn clustered(n: usize, stride: u32, seed: u64) -> (Vec<u32>, Vec<u32>) {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(3));
    let g = (0..n).map(|_| rng.next_below(8) as u32).collect();
    // v climbs with the row index plus a little jitter, so early rows
    // hold small values and late rows large ones.
    let v = (0..n)
        .map(|i| (i as u32 / stride.max(1)) * 10 + rng.next_below(10) as u32)
        .collect();
    (g, v)
}

fn table(g: &[u32], v: &[u32]) -> Table {
    Table::new("t")
        .with_column("g", g.to_vec())
        .with_column("v", v.to_vec())
}

fn sharded_with(shards: usize, prune: bool) -> ShardedDatabase {
    ShardedDatabase::with_executor(
        Engine::new(),
        shards,
        ExecutorConfig {
            prune,
            ..ExecutorConfig::default()
        },
    )
}

proptest! {
    /// Single (always prunes), sharded-pruned, and sharded-unpruned
    /// agree bit for bit on filtered aggregations — simple and
    /// composite keys, both predicate directions.
    #[test]
    fn pruned_reads_match_unpruned_reads(
        n in 1usize..400,
        stride in 1u32..64,
        threshold in 0u32..120,
        shards in 1usize..6,
        composite in 0usize..2,
        flip in 0usize..2,
        seed in 0u64..1000,
    ) {
        let (g, v) = clustered(n, stride, seed);
        let composite = composite == 1;
        let op = if flip == 1 { ">" } else { "<" };
        let sql = if composite {
            format!(
                "SELECT g, v, COUNT(*), SUM(v) FROM t WHERE v {op} {threshold} GROUP BY g, v"
            )
        } else {
            format!(
                "SELECT g, COUNT(*), SUM(v), MIN(v) FROM t WHERE v {op} {threshold} GROUP BY g"
            )
        };

        let mut single = Database::new();
        single.register(table(&g, &v));
        let mut pruned = sharded_with(shards, true);
        pruned.register(table(&g, &v));
        let mut unpruned = sharded_with(shards, false);
        unpruned.register(table(&g, &v));

        let expect = single.execute_sql(&sql).unwrap();
        let a = pruned.run_sql(&sql).unwrap();
        let b = unpruned.run_sql(&sql).unwrap();
        prop_assert_eq!(&a.rows, &expect.rows, "pruned vs single: {}", sql);
        prop_assert_eq!(&b.rows, &expect.rows, "unpruned vs single: {}", sql);
    }

    /// Pruning stays invariant across ingest, compaction (zones are
    /// rebuilt when the delta folds into the base), pinned snapshots,
    /// `AS OF` reads, and the prepared path.
    #[test]
    fn pruning_survives_ingest_compaction_and_snapshots(
        n in 1usize..200,
        batches in 1usize..6,
        batch_rows in 1usize..60,
        compact_every in 1usize..20,
        shards in 1usize..5,
        threshold in 0u32..80,
        seed in 0u64..1000,
    ) {
        let (g, v) = clustered(n, 16, seed);
        let sql = format!(
            "SELECT g, COUNT(*), SUM(v) FROM t WHERE v > {threshold} GROUP BY g"
        );

        let mut single = Database::new();
        single
            .catalogue()
            .set_compaction_policy(CompactionPolicy::every(compact_every));
        single.register(table(&g, &v));
        let mut pruned = sharded_with(shards, true);
        pruned.set_compaction_policy(CompactionPolicy::every(compact_every));
        pruned.register(table(&g, &v));
        let mut unpruned = sharded_with(shards, false);
        unpruned.set_compaction_policy(CompactionPolicy::every(compact_every));
        unpruned.register(table(&g, &v));

        // Pin a cut before ingest; its answer must never drift.
        let cut = pruned.snapshot();
        let pinned = pruned.run_sql(&sql).unwrap();

        for i in 0..batches {
            let (bg, bv) = clustered(batch_rows, 8, seed ^ (0xA11CE + i as u64));
            let batch = || {
                RowBatch::new()
                    .with_column("g", bg.clone())
                    .with_column("v", bv.clone())
            };
            single.append_rows("t", batch()).unwrap();
            pruned.append_rows("t", batch()).unwrap();
            unpruned.append_rows("t", batch()).unwrap();
        }

        let expect = single.execute_sql(&sql).unwrap();
        let a = pruned.run_sql(&sql).unwrap();
        let b = unpruned.run_sql(&sql).unwrap();
        prop_assert_eq!(&a.rows, &expect.rows, "live pruned after ingest");
        prop_assert_eq!(&b.rows, &expect.rows, "live unpruned after ingest");

        let at = pruned.run_sql_at(&cut, &sql).unwrap();
        prop_assert_eq!(&at.rows, &pinned.rows, "pinned cut unchanged");

        // Prepared statements bind into the same pruning pipeline.
        let mut ps = pruned
            .prepare("SELECT g, COUNT(*), SUM(v) FROM t WHERE v > ? GROUP BY g")
            .unwrap();
        let mut us = unpruned
            .prepare("SELECT g, COUNT(*), SUM(v) FROM t WHERE v > ? GROUP BY g")
            .unwrap();
        let mut fresh = single
            .prepare("SELECT g, COUNT(*), SUM(v) FROM t WHERE v > ? GROUP BY g")
            .unwrap();
        for param in [0u64, u64::from(threshold), 10_000] {
            let expect = fresh.execute(&mut single, &[param]).unwrap();
            let a = pruned.execute_prepared(&mut ps, &[param]).unwrap();
            let b = unpruned.execute_prepared(&mut us, &[param]).unwrap();
            prop_assert_eq!(&a.rows, &expect.rows, "prepared pruned, v > {}", param);
            prop_assert_eq!(&b.rows, &expect.rows, "prepared unpruned, v > {}", param);
        }
    }
}

/// Equi-joins give identical answers whether the executor prunes or
/// not (join morsels carry no zone maps today — the switch must be a
/// no-op there, never a wrong answer).
#[test]
fn joins_are_identical_with_pruning_on_and_off() {
    let (g, v) = clustered(600, 16, 7);
    let dims = Table::new("dims").with_column("g", (0..6u32).collect());
    let sql = "SELECT t.g, COUNT(*), SUM(v) FROM t JOIN dims ON t.g = dims.g GROUP BY t.g";

    let mut single = Database::new();
    single.register(table(&g, &v));
    single.register(dims.clone());
    let expect = match single.run_sql(sql).unwrap() {
        vagg::db::SqlOutcome::Rows(out) => out.rows,
        other => panic!("join SELECT executes: {other:?}"),
    };
    assert!(!expect.is_empty());

    for prune in [true, false] {
        let mut sharded = sharded_with(3, prune);
        sharded.register(table(&g, &v));
        sharded.register(dims.clone());
        let got = sharded.run_sql(sql).unwrap();
        assert_eq!(got.rows, expect, "join, prune={prune}");
    }
}

/// On clustered data the pruning counters actually move — and the
/// answer still matches the unpruned run bit for bit.
#[test]
fn pruning_fires_on_clustered_data_and_counts_it() {
    let n = 40_000;
    let (g, v) = clustered(n, 1, 42);
    // v tops out near n/1*10; keep only the very tail — almost every
    // zone excludes the predicate.
    let sql = format!("SELECT g, COUNT(*), SUM(v) FROM t WHERE v > {} GROUP BY g", n * 10 - 500);

    let mut single = Database::new();
    single.register(table(&g, &v));
    // The governed path is the morselized one — it splits the plan
    // into morsel-sized ranges and consults zone maps before each
    // (`run_sql`/`execute_sql` run the plan whole).
    let token = vagg::db::CancelToken::new();
    let expect = match single.run_sql_cancellable(&sql, &token).unwrap() {
        vagg::db::SqlOutcome::Rows(out) => out,
        other => panic!("SELECT executes: {other:?}"),
    };
    let snap = single.metrics();
    assert!(
        snap.get("morsels_pruned").unwrap_or(0) > 0,
        "single-session path pruned no morsels"
    );
    assert!(snap.get("rows_pruned").unwrap_or(0) > 0);

    let mut pruned = sharded_with(4, true);
    pruned.register(table(&g, &v));
    let mut unpruned = sharded_with(4, false);
    unpruned.register(table(&g, &v));

    let a = pruned.run_sql(&sql).unwrap();
    let b = unpruned.run_sql(&sql).unwrap();
    assert_eq!(a.rows, expect.rows, "pruned sharded vs single");
    assert_eq!(b.rows, expect.rows, "unpruned sharded vs single");

    let snap = pruned.metrics();
    assert!(
        snap.get("executor_morsels_pruned").unwrap_or(0) > 0,
        "sharded executor pruned no morsels: {:?}",
        snap.counters().collect::<Vec<_>>()
    );
    assert_eq!(
        unpruned.metrics().get("executor_morsels_pruned"),
        Some(0),
        "prune=false must not prune"
    );
}
