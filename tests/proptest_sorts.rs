//! Property-based tests for the simulated sorts: both must be stable
//! sorts on arbitrary inputs, and the single partial pass must partition
//! by the selected bit field while preserving order within partitions.

use proptest::prelude::*;
use vagg::sim::Machine;
use vagg::sort::scalar::is_stable_sort_of;
use vagg::sort::{radix_sort, vsr_partial_pass, vsr_sort, SortArrays};

fn columns() -> impl Strategy<Value = (Vec<u32>, Vec<u32>)> {
    (1usize..250).prop_flat_map(|n| {
        (prop::collection::vec(0u32..100_000, n), (Just(n),)).prop_map(|(keys, (n,))| {
            let payload: Vec<u32> = (0..n as u32).collect();
            (keys, payload)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn radix_is_a_stable_sort((keys, payload) in columns()) {
        let mut m = Machine::paper();
        let a = SortArrays::stage(&mut m, &keys, &payload);
        let max = keys.iter().copied().max().unwrap();
        let passes = radix_sort(&mut m, &a, max);
        let (k, v) = a.read_result(&m, passes);
        prop_assert!(is_stable_sort_of(&k, &v, &keys, &payload));
    }

    #[test]
    fn vsr_is_a_stable_sort((keys, payload) in columns()) {
        let mut m = Machine::paper();
        let a = SortArrays::stage(&mut m, &keys, &payload);
        let max = keys.iter().copied().max().unwrap();
        let passes = vsr_sort(&mut m, &a, max);
        let (k, v) = a.read_result(&m, passes);
        prop_assert!(is_stable_sort_of(&k, &v, &keys, &payload));
    }

    #[test]
    fn both_sorts_agree((keys, payload) in columns()) {
        let max = keys.iter().copied().max().unwrap();
        let mut m1 = Machine::paper();
        let a1 = SortArrays::stage(&mut m1, &keys, &payload);
        let p1 = radix_sort(&mut m1, &a1, max);
        let mut m2 = Machine::paper();
        let a2 = SortArrays::stage(&mut m2, &keys, &payload);
        let p2 = vsr_sort(&mut m2, &a2, max);
        prop_assert_eq!(a1.read_result(&m1, p1), a2.read_result(&m2, p2));
    }

    #[test]
    fn partial_pass_partitions_and_stays_stable(
        (keys, payload) in columns(),
        lo in 2u32..12,
    ) {
        let max = keys.iter().copied().max().unwrap();
        let bits = 32 - max.leading_zeros();
        prop_assume!(bits > lo);
        let mut m = Machine::paper();
        let a = SortArrays::stage(&mut m, &keys, &payload);
        vsr_partial_pass(&mut m, &a, lo, bits, max);
        let (k, v) = a.read_result(&m, 1);

        // Permutation of the input.
        let mut sk = k.clone();
        let mut ok = keys.clone();
        sk.sort_unstable();
        ok.sort_unstable();
        prop_assert_eq!(sk, ok);

        // Partitioned by the top bits, stable within (payload is the row
        // index, so equal-bucket payloads must increase).
        let bucket = |x: u32| x >> lo;
        for i in 1..k.len() {
            prop_assert!(bucket(k[i - 1]) <= bucket(k[i]), "not partitioned");
            if bucket(k[i - 1]) == bucket(k[i]) {
                prop_assert!(v[i - 1] < v[i], "instability inside bucket");
            }
        }
    }

    #[test]
    fn bitonic_is_a_stable_sort((keys, payload) in columns()) {
        let mut m = Machine::paper();
        let a = SortArrays::stage(&mut m, &keys, &payload);
        vagg::sort::bitonic_sort(&mut m, &a);
        let (k, v) = a.read_result(&m, 0);
        let mut expect: Vec<(u32, u32)> =
            keys.iter().copied().zip(payload.iter().copied()).collect();
        expect.sort_by_key(|&(k, _)| k); // stable host sort
        let got: Vec<(u32, u32)> =
            k.into_iter().zip(v.into_iter()).collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn all_three_sorts_agree((keys, payload) in columns()) {
        let max = keys.iter().copied().max().unwrap_or(0);

        let mut m1 = Machine::paper();
        let a1 = SortArrays::stage(&mut m1, &keys, &payload);
        let p1 = vagg::sort::radix_sort(&mut m1, &a1, max);
        let r1 = a1.read_result(&m1, p1);

        let mut m2 = Machine::paper();
        let a2 = SortArrays::stage(&mut m2, &keys, &payload);
        vagg::sort::bitonic_sort(&mut m2, &a2);
        let r2 = a2.read_result(&m2, 0);

        prop_assert_eq!(r1, r2);
    }

    #[test]
    fn quicksort_orders_and_preserves_pairs((keys, payload) in columns()) {
        let mut m = Machine::paper();
        let a = SortArrays::stage(&mut m, &keys, &payload);
        vagg::sort::quicksort(&mut m, &a);
        let (k, v) = a.read_result(&m, 0);
        prop_assert!(k.windows(2).all(|w| w[0] <= w[1]));
        // Unstable, so compare the (key, payload) multisets.
        let mut got: Vec<(u32, u32)> =
            k.into_iter().zip(v.into_iter()).collect();
        let mut expect: Vec<(u32, u32)> =
            keys.iter().copied().zip(payload.iter().copied()).collect();
        got.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn sort_cost_is_deterministic((keys, payload) in columns()) {
        let max = keys.iter().copied().max().unwrap();
        let mut m1 = Machine::paper();
        let a1 = SortArrays::stage(&mut m1, &keys, &payload);
        vsr_sort(&mut m1, &a1, max);
        let mut m2 = Machine::paper();
        let a2 = SortArrays::stage(&mut m2, &keys, &payload);
        vsr_sort(&mut m2, &a2, max);
        prop_assert_eq!(m1.cycles(), m2.cycles());
    }
}
