//! Property-based tests over *machine configurations*: the algorithms
//! must stay correct — and the timing model sane — for any MVL / lane
//! count / CAM port count, not just the paper's MVL = 64, lanes = 4
//! point. This is the configuration space the paper's §II simulator
//! exposes as parameters.

use proptest::prelude::*;
use vagg::core::{reference, Algorithm, StagedInput};
use vagg::sim::{Machine, SimConfig};

fn config() -> impl Strategy<Value = SimConfig> {
    (
        prop::sample::select(vec![8usize, 16, 32, 64, 128]),
        prop::sample::select(vec![1usize, 2, 4, 8]),
        prop::sample::select(vec![1usize, 2, 4, 8]),
    )
        .prop_map(|(mvl, lanes, ports)| {
            SimConfig::paper()
                .with_mvl(mvl)
                .with_lanes(lanes)
                .with_cam_ports(ports)
        })
}

fn columns() -> impl Strategy<Value = (Vec<u32>, Vec<u32>)> {
    (1usize..220).prop_flat_map(|n| {
        (
            prop::collection::vec(0u32..300, n),
            prop::collection::vec(0u32..10, n),
        )
    })
}

fn run(cfg: &SimConfig, alg: Algorithm, g: &[u32], v: &[u32]) -> u64 {
    let mut m = Machine::new(cfg.clone());
    let input = StagedInput::stage_raw(&mut m, g, v, false);
    let (result, _) = alg.execute(&mut m, &input);
    assert_eq!(
        result,
        reference(g, v),
        "{} diverged at mvl={} lanes={} ports={}",
        alg.name(),
        cfg.mvl,
        cfg.lanes,
        cfg.cam_ports
    );
    m.cycles()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn monotable_correct_on_any_config(
        cfg in config(),
        (g, v) in columns(),
    ) {
        run(&cfg, Algorithm::Monotable, &g, &v);
    }

    #[test]
    fn polytable_correct_on_any_config(
        cfg in config(),
        (g, v) in columns(),
    ) {
        run(&cfg, Algorithm::Polytable, &g, &v);
    }

    #[test]
    fn sorted_reduce_correct_on_any_config(
        cfg in config(),
        (g, v) in columns(),
    ) {
        run(&cfg, Algorithm::StandardSortedReduce, &g, &v);
        run(&cfg, Algorithm::AdvancedSortedReduce, &g, &v);
    }

    #[test]
    fn psm_correct_on_any_config(
        cfg in config(),
        (g, v) in columns(),
    ) {
        run(&cfg, Algorithm::PartiallySortedMonotable, &g, &v);
    }

    #[test]
    fn cycles_positive_and_deterministic(
        cfg in config(),
        (g, v) in columns(),
    ) {
        let a = run(&cfg, Algorithm::Monotable, &g, &v);
        let b = run(&cfg, Algorithm::Monotable, &g, &v);
        prop_assert!(a > 0);
        prop_assert_eq!(a, b, "timing must be deterministic");
    }

    #[test]
    fn more_lanes_never_slow_cam_free_kernels(
        (g, v) in columns(),
    ) {
        // Lane scaling monotonicity for an elementwise-dominated kernel:
        // polytable (no CAM instructions). Going from 1 to 8 lanes must
        // not make it slower — FU occupancy is ceil(VL/lanes).
        let slow = run(
            &SimConfig::paper().with_lanes(1),
            Algorithm::Polytable,
            &g,
            &v,
        );
        let fast = run(
            &SimConfig::paper().with_lanes(8),
            Algorithm::Polytable,
            &g,
            &v,
        );
        prop_assert!(
            fast <= slow,
            "8 lanes slower than 1 lane: {} vs {}",
            fast,
            slow
        );
    }

    #[test]
    fn more_cam_ports_never_slow_monotable(
        (g, v) in columns(),
    ) {
        // CAM port scaling: conflict-free slices of p adjacent elements
        // proceed in parallel, so more ports can only help VGAx/VLU.
        let slow = run(
            &SimConfig::paper().with_cam_ports(1),
            Algorithm::Monotable,
            &g,
            &v,
        );
        let fast = run(
            &SimConfig::paper().with_cam_ports(8),
            Algorithm::Monotable,
            &g,
            &v,
        );
        prop_assert!(
            fast <= slow,
            "8 CAM ports slower than 1: {} vs {}",
            fast,
            slow
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn multicore_correct_for_any_thread_count(
        (g, v) in columns(),
        threads in 1usize..12,
    ) {
        let run = vagg::core::multicore_scalar_aggregate(
            &SimConfig::paper(),
            &g,
            &v,
            threads,
            false,
        );
        prop_assert_eq!(run.result, reference(&g, &v));
        prop_assert_eq!(
            run.cycles,
            run.parallel_cycles + run.merge_cycles
        );
    }
}

/// Deterministic edge cases that proptest's generator may not hit.
mod edges {
    use super::*;

    fn all_algorithms(g: &[u32], v: &[u32]) {
        for alg in Algorithm::ALL {
            run(&SimConfig::paper(), alg, g, v);
        }
    }

    #[test]
    fn single_row() {
        all_algorithms(&[42], &[7]);
    }

    #[test]
    fn exactly_one_vector() {
        let g: Vec<u32> = (0..64).map(|i| i % 5).collect();
        let v = vec![1u32; 64];
        all_algorithms(&g, &v);
    }

    #[test]
    fn one_more_than_a_vector() {
        let g: Vec<u32> = (0..65).map(|i| i % 5).collect();
        let v = vec![1u32; 65];
        all_algorithms(&g, &v);
    }

    #[test]
    fn one_less_than_a_vector() {
        let g: Vec<u32> = (0..63).collect();
        let v = vec![2u32; 63];
        all_algorithms(&g, &v);
    }

    #[test]
    fn all_rows_one_group() {
        all_algorithms(&[9; 130], &[3; 130]);
    }

    #[test]
    fn sparse_keys_with_large_gaps() {
        // Key domain far larger than the distinct key count: tables are
        // mostly NULL rows and compaction does the work.
        let g = vec![0u32, 5_000, 10_000, 5_000, 0];
        let v = vec![1u32, 2, 3, 4, 5];
        all_algorithms(&g, &v);
    }

    #[test]
    fn tiny_mvl_machines_work() {
        // MVL = 1 degenerates every vector loop to scalar-shaped strips;
        // MVL = 2 exercises inter-chunk carry logic hard.
        let g: Vec<u32> = (0..50).map(|i| i % 7).collect();
        let v: Vec<u32> = (0..50).map(|i| i % 10).collect();
        for mvl in [1usize, 2, 4] {
            let cfg = SimConfig::paper().with_mvl(mvl).with_lanes(1);
            for alg in [
                Algorithm::Scalar,
                Algorithm::Polytable,
                Algorithm::Monotable,
                Algorithm::StandardSortedReduce,
                Algorithm::AdvancedSortedReduce,
                Algorithm::PartiallySortedMonotable,
            ] {
                run(&cfg, alg, &g, &v);
            }
        }
    }

    #[test]
    fn lanes_exceeding_mvl_work() {
        let cfg = SimConfig::paper().with_mvl(4).with_lanes(8);
        let g: Vec<u32> = (0..40).map(|i| i % 3).collect();
        let v = vec![1u32; 40];
        run(&cfg, Algorithm::Monotable, &g, &v);
    }
}
