//! # vagg — Vector Microprocessor Extensions for Data Aggregations
//!
//! A full reproduction of Hayes, Palomar, Unsal, Cristal & Valero,
//! *"Future Vector Microprocessor Extensions for Data Aggregations"*
//! (ISCA 2016): the simulated vector machine, the VPI/VLU/VGAx
//! irregular-DLP instructions, the six aggregation algorithms and the
//! complete experimental grid.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! * [`isa`] — the vector instruction set (functional semantics + timing
//!   metadata, CAM model for the irregular instructions);
//! * [`mem`] — caches, XOR-interleaved L2 placement, DDR3-1333 DRAM;
//! * [`cpu`] — the out-of-order superscalar timing model (Table I);
//! * [`sim`] — the [`sim::Machine`] fusing all of the
//!   above with a simulated address space;
//! * [`datagen`] — the 110-dataset workload grid (5 distributions × 22
//!   cardinalities);
//! * [`sort`] — vectorised radix sort and VSR sort (full + partial);
//! * [`core`] — the aggregation algorithms and adaptive selection;
//! * [`db`] — a miniature column-store query engine tying it together,
//!   built around a plan/execute split: typed [`db::QueryPlan`]s (with
//!   `EXPLAIN`), reusable [`db::Session`]s, typed [`db::PlanError`]s,
//!   and a serving layer — a [`db::PlanCache`] keyed by normalized
//!   query shape, [`db::PreparedStatement`]s (`?` placeholders, bind
//!   per execution), a [`db::SharedCatalogue`] for concurrent
//!   sessions, and a [`db::ShardedDatabase`] merging partial
//!   aggregates — composite `GROUP BY` included, via a shared
//!   [`db::KeyDictionary`] — across morsels run on a persistent
//!   work-stealing [`db::Executor`] pool.
//!
//! ## Quickstart
//!
//! ```
//! use vagg::core::{run_algorithm, Algorithm, reference};
//! use vagg::datagen::{DatasetSpec, Distribution};
//! use vagg::sim::SimConfig;
//!
//! // One cell of the paper's grid: zipf keys, max cardinality 1,220.
//! let ds = DatasetSpec::paper(Distribution::Zipf, 1_220)
//!     .with_rows(20_000)
//!     .generate();
//!
//! // Run the paper's monotable algorithm on the simulated machine.
//! let run = run_algorithm(Algorithm::Monotable, &SimConfig::paper(), &ds);
//! assert_eq!(run.result, reference(&ds.g, &ds.v));
//! println!("monotable: {:.2} cycles/tuple", run.cpt);
//! ```
//!
//! ## Planned queries
//!
//! The query layer separates planning from execution, the shape every
//! real column-store uses: plan once (typed steps, inspectable with
//! `explain()`), then run many plans on one long-lived session machine.
//!
//! ```
//! use vagg::db::{AggregateQuery, Engine, Session, Table};
//!
//! let t = Table::new("r")
//!     .with_column("g", vec![1, 2, 1, 2])
//!     .with_column("v", vec![10, 20, 30, 40]);
//! let plan = Engine::new().plan(&t, &AggregateQuery::paper("g", "v"))?;
//! println!("{}", plan.explain());
//!
//! let mut session = Session::new();
//! let out = session.run(&plan);
//! assert_eq!(out.rows.len(), 2);
//! # Ok::<(), vagg::db::PlanError>(())
//! ```

#![warn(missing_docs)]

pub use vagg_core as core;
pub use vagg_cpu as cpu;
pub use vagg_datagen as datagen;
pub use vagg_db as db;
pub use vagg_isa as isa;
pub use vagg_mem as mem;
pub use vagg_sim as sim;
pub use vagg_sort as sort;
